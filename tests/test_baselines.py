"""Tests for the baseline mechanisms (Fig. 1 comparison set)."""

import math

import numpy as np
import pytest

from repro.baselines import (
    BaselineResult,
    GlobalSensitivityLaplace,
    KarwaKStarMechanism,
    KarwaKTriangleMechanism,
    NRSTriangleMechanism,
    RHMSMechanism,
    SmoothSensitivity,
    cauchy_noise_release,
    laplace_mechanism,
    laplace_noise_release,
    triangle_local_sensitivity_at_distance,
)
from repro.errors import MechanismError, PrivacyParameterError
from repro.graphs import Graph, erdos_renyi, random_graph_with_avg_degree
from repro.subgraphs import count_triangles, k_star, triangle
from repro.subgraphs.counting import count_k_triangles


@pytest.fixture
def medium_graph():
    return random_graph_with_avg_degree(120, 10, rng=9)


class TestLaplaceMechanism:
    def test_unbiased(self):
        rng = np.random.default_rng(0)
        answers = [laplace_mechanism(100.0, 1.0, 1.0, rng).answer for _ in range(500)]
        assert abs(np.median(answers) - 100.0) < 1.0

    def test_noise_scale(self):
        result = laplace_mechanism(0.0, 4.0, 0.5, rng=0)
        assert result.noise_scale == pytest.approx(8.0)

    def test_unbounded_sensitivity_raises(self):
        mech = GlobalSensitivityLaplace(math.inf)
        with pytest.raises(MechanismError):
            mech.run(10.0, 1.0)

    def test_invalid_params(self):
        with pytest.raises(PrivacyParameterError):
            GlobalSensitivityLaplace(-1.0)
        with pytest.raises(PrivacyParameterError):
            laplace_mechanism(0.0, 1.0, 0.0)

    def test_result_error_fields(self):
        result = BaselineResult(
            answer=12.0, true_answer=10.0, noise_scale=1.0, mechanism="x"
        )
        assert result.absolute_error == pytest.approx(2.0)
        assert result.relative_error == pytest.approx(0.2)


class TestSmoothSensitivity:
    def test_constant_ls(self):
        smooth = SmoothSensitivity(lambda s: 5.0, ls_cap=5.0)
        assert smooth.value(0.1) == pytest.approx(5.0)

    def test_growing_ls_maximized_in_interior(self):
        # LS^(s) = min(s, 10): max_s e^{-βs}·min(s,10) at β=0.5 occurs at s=2
        smooth = SmoothSensitivity(lambda s: float(min(s, 10)), ls_cap=10.0)
        values = [math.exp(-0.5 * s) * min(s, 10) for s in range(30)]
        assert smooth.value(0.5) == pytest.approx(max(values))

    def test_invalid_beta(self):
        smooth = SmoothSensitivity(lambda s: 1.0, ls_cap=1.0)
        with pytest.raises(PrivacyParameterError):
            smooth.value(0.0)

    def test_cauchy_release_centers_on_truth(self):
        smooth = SmoothSensitivity(lambda s: 1.0, ls_cap=1.0)
        rng = np.random.default_rng(1)
        answers = [
            cauchy_noise_release(50.0, smooth, 1.0, rng).answer for _ in range(400)
        ]
        assert abs(np.median(answers) - 50.0) < 3.0

    def test_laplace_release_validates(self):
        smooth = SmoothSensitivity(lambda s: 1.0, ls_cap=1.0)
        with pytest.raises(PrivacyParameterError):
            laplace_noise_release(0.0, smooth, 1.0, delta=0.0)
        result = laplace_noise_release(0.0, smooth, 1.0, delta=0.1, rng=0)
        assert result.delta == 0.1


class TestNRSTriangles:
    def test_ls_at_distance_zero_is_max_common_neighbors(self):
        g = Graph(edges=[(0, 1), (0, 2), (1, 2), (0, 3), (1, 3)])
        # pair (0,1) has common neighbors {2,3}
        assert triangle_local_sensitivity_at_distance(g, 0) == 2

    def test_ls_monotone_in_distance(self, medium_graph):
        values = [
            triangle_local_sensitivity_at_distance(medium_graph, s)
            for s in range(0, 20, 4)
        ]
        assert all(a <= b for a, b in zip(values, values[1:]))

    def test_ls_capped_at_n_minus_2(self):
        g = Graph(edges=[(0, 1), (1, 2), (2, 3)])
        assert triangle_local_sensitivity_at_distance(g, 1000) == g.num_nodes - 2

    def test_candidate_pairs_match_exact_on_small_graphs(self):
        for seed in range(5):
            g = erdos_renyi(16, 0.3, rng=seed)
            for s in (0, 1, 3, 7):
                approx = triangle_local_sensitivity_at_distance(g, s)
                exact = triangle_local_sensitivity_at_distance(g, s, exact_pairs=True)
                assert approx == exact, (seed, s)

    def test_run_centers_on_truth(self, medium_graph):
        mech = NRSTriangleMechanism(medium_graph)
        rng = np.random.default_rng(2)
        answers = [mech.run(2.0, rng).answer for _ in range(200)]
        truth = count_triangles(medium_graph)
        assert abs(np.median(answers) - truth) / truth < 0.5

    def test_empty_graph(self):
        mech = NRSTriangleMechanism(Graph(nodes=[0, 1]))
        result = mech.run(1.0, rng=0)
        assert result.true_answer == 0.0


class TestKarwaKStar:
    def test_ls_at_distance(self, medium_graph):
        mech = KarwaKStarMechanism(medium_graph, 2)
        degrees = sorted(medium_graph.degrees().values(), reverse=True)
        assert mech._ls_at_distance(0) == pytest.approx(
            math.comb(degrees[0], 1) + math.comb(degrees[1], 1)
        )

    def test_accuracy_much_better_than_global(self, medium_graph):
        """2-star counting with smooth sensitivity is tight (Fig. 4)."""
        mech = KarwaKStarMechanism(medium_graph, 2)
        rng = np.random.default_rng(3)
        errors = [mech.run(0.5, rng).relative_error for _ in range(51)]
        assert float(np.median(errors)) < 0.2

    def test_invalid_k(self, medium_graph):
        from repro.errors import PatternError

        with pytest.raises(PatternError):
            KarwaKStarMechanism(medium_graph, 0)


class TestKarwaKTriangle:
    def test_runs_and_reports_a_max(self, medium_graph):
        mech = KarwaKTriangleMechanism(medium_graph, 2)
        result = mech.run(0.5, 0.1, rng=0)
        assert result.true_answer == count_k_triangles(medium_graph, 2)
        assert result.diagnostics["a_max"] == medium_graph.max_common_neighbors()
        assert result.delta == 0.1

    def test_smaller_delta_means_more_noise(self, medium_graph):
        mech = KarwaKTriangleMechanism(medium_graph, 2)
        loose = mech.run(0.5, 0.1, rng=1).noise_scale
        tight = mech.run(0.5, 1e-9, rng=1).noise_scale
        assert tight > loose

    def test_invalid_params(self, medium_graph):
        mech = KarwaKTriangleMechanism(medium_graph, 2)
        with pytest.raises(PrivacyParameterError):
            mech.run(0.0, 0.1)
        with pytest.raises(PrivacyParameterError):
            mech.run(0.5, 0.0)


class TestRHMS:
    def test_noise_scale_formula(self):
        g = Graph(edges=[(0, 1)], nodes=range(100))
        mech = RHMSMechanism(g, triangle(), true_answer=10.0)
        k, num_edges = 3, 3
        expected = (k * num_edges**2 * math.log(100)) ** (num_edges - 1) / 0.5
        assert mech.noise_scale(0.5) == pytest.approx(expected)

    def test_error_explodes_with_subgraph_edges(self, medium_graph):
        """The paper's point: RHMS noise grows exponentially with l."""
        star = RHMSMechanism(medium_graph, k_star(2), 100.0)
        tri = RHMSMechanism(medium_graph, triangle(), 100.0)
        assert tri.noise_scale(0.5) > 50 * star.noise_scale(0.5)

    def test_run(self, medium_graph):
        mech = RHMSMechanism(medium_graph, triangle(), 50.0)
        result = mech.run(0.5, rng=0)
        assert result.privacy == "adversarial-edge"
        assert math.isfinite(result.answer)

    def test_invalid_epsilon(self, medium_graph):
        mech = RHMSMechanism(medium_graph, triangle(), 50.0)
        with pytest.raises(PrivacyParameterError):
            mech.run(0.0)
