"""Tests for tuples, semirings, K-relations and positive relational algebra.

The central correctness property is the *commutation with valuation* of
provenance semantics (Green et al.): grounding the provenance annotations
under a participant valuation and evaluating the query on the corresponding
plain database must agree.
"""

import itertools

import pytest

from repro.algebra import (
    BOOLEAN,
    COUNTING,
    PROVENANCE,
    TROPICAL,
    Join,
    KRelation,
    Project,
    Rename,
    Select,
    Table,
    Tup,
    Union,
    cartesian_product,
    difference_unsupported,
    evaluate_query,
    intersection,
    natural_join,
    project,
    rename,
    select,
    union,
)
from repro.boolexpr import FALSE, TRUE, And, Or, Var, parse
from repro.errors import AlgebraError, SchemaError


class TestTup:
    def test_mapping_protocol(self):
        t = Tup(a=1, b="x")
        assert t["a"] == 1
        assert set(t) == {"a", "b"}
        assert len(t) == 2

    def test_equality_and_hash(self):
        assert Tup(a=1, b=2) == Tup(b=2, a=1)
        assert hash(Tup(a=1)) == hash(Tup(a=1))

    def test_project(self):
        assert Tup(a=1, b=2).project({"a"}) == Tup(a=1)

    def test_project_missing_attr(self):
        with pytest.raises(SchemaError):
            Tup(a=1).project({"z"})

    def test_compatible_and_merge(self):
        t1, t2 = Tup(a=1, b=2), Tup(b=2, c=3)
        assert t1.compatible_with(t2)
        assert t1.merge(t2) == Tup(a=1, b=2, c=3)

    def test_incompatible_merge_rejected(self):
        with pytest.raises(SchemaError):
            Tup(a=1).merge(Tup(a=2))

    def test_rename(self):
        assert Tup(a=1, b=2).rename({"a": "x"}) == Tup(x=1, b=2)

    def test_rename_collision_rejected(self):
        with pytest.raises(SchemaError):
            Tup(a=1, b=2).rename({"a": "b"})

    def test_non_string_attribute_rejected(self):
        with pytest.raises(SchemaError):
            Tup({1: "x"})


class TestSemirings:
    @pytest.mark.parametrize("semiring", [BOOLEAN, COUNTING, TROPICAL])
    def test_laws_on_samples(self, semiring):
        if semiring is BOOLEAN:
            samples = [False, True]
        elif semiring is COUNTING:
            samples = [0, 1, 2, 3]
        else:
            samples = [0.0, 1.0, 2.5, float("inf")]
        zero, one = semiring.zero, semiring.one
        for a, b, c in itertools.product(samples, repeat=3):
            assert semiring.add(a, b) == semiring.add(b, a)
            assert semiring.mul(a, b) == semiring.mul(b, a)
            assert semiring.add(a, zero) == a
            assert semiring.mul(a, one) == a
            assert semiring.mul(a, zero) == zero
            assert semiring.add(semiring.add(a, b), c) == semiring.add(
                a, semiring.add(b, c)
            )
            assert semiring.mul(semiring.mul(a, b), c) == semiring.mul(
                a, semiring.mul(b, c)
            )
            assert semiring.mul(a, semiring.add(b, c)) == semiring.add(
                semiring.mul(a, b), semiring.mul(a, c)
            )

    def test_provenance_operations(self):
        a, b = Var("a"), Var("b")
        assert PROVENANCE.add(a, b) == Or((a, b))
        assert PROVENANCE.mul(a, b) == And((a, b))
        assert PROVENANCE.zero == FALSE
        assert PROVENANCE.one == TRUE
        assert PROVENANCE.is_zero(FALSE)
        assert not PROVENANCE.is_zero(a)


class TestKRelation:
    def test_add_and_annotation(self):
        r = KRelation({"a"}, COUNTING)
        r.add(Tup(a=1), 2)
        r.add(Tup(a=1), 3)
        assert r.annotation(Tup(a=1)) == 5

    def test_zero_annotations_dropped(self):
        r = KRelation({"a"}, COUNTING)
        r.add(Tup(a=1), 0)
        assert len(r) == 0
        assert Tup(a=1) not in r

    def test_schema_mismatch_rejected(self):
        r = KRelation({"a"}, COUNTING)
        with pytest.raises(SchemaError):
            r.add(Tup(b=1), 1)

    def test_support_deterministic(self):
        r = KRelation({"a"}, COUNTING, {Tup(a=2): 1, Tup(a=1): 1})
        assert r.support() == (Tup(a=1), Tup(a=2))

    def test_map_annotations(self):
        r = KRelation({"a"}, COUNTING, {Tup(a=1): 3})
        doubled = r.map_annotations(lambda k: k * 2)
        assert doubled.annotation(Tup(a=1)) == 6

    def test_pretty_renders(self):
        r = KRelation({"a"}, COUNTING, {Tup(a=1): 3})
        assert "annotation" in r.pretty()


def _edge_relation(edges):
    """Provenance relation for an undirected edge table, one var per edge."""
    r = KRelation({"src", "dst"}, PROVENANCE)
    for u, v in edges:
        var = Var(f"e{min(u,v)}{max(u,v)}")
        r.add(Tup(src=u, dst=v), var)
        r.add(Tup(src=v, dst=u), var)
    return r


class TestOps:
    def test_union_adds(self):
        r1 = KRelation({"a"}, COUNTING, {Tup(a=1): 1})
        r2 = KRelation({"a"}, COUNTING, {Tup(a=1): 2, Tup(a=2): 1})
        u = union(r1, r2)
        assert u.annotation(Tup(a=1)) == 3
        assert u.annotation(Tup(a=2)) == 1

    def test_union_schema_mismatch(self):
        with pytest.raises(SchemaError):
            union(KRelation({"a"}, COUNTING), KRelation({"b"}, COUNTING))

    def test_union_semiring_mismatch(self):
        with pytest.raises(AlgebraError):
            union(KRelation({"a"}, COUNTING), KRelation({"a"}, BOOLEAN))

    def test_projection_sums(self):
        r = KRelation({"a", "b"}, COUNTING, {Tup(a=1, b=1): 2, Tup(a=1, b=2): 3})
        p = project(r, {"a"})
        assert p.annotation(Tup(a=1)) == 5

    def test_projection_provenance_builds_or(self):
        r = KRelation(
            {"a", "b"},
            PROVENANCE,
            {Tup(a=1, b=1): Var("x"), Tup(a=1, b=2): Var("y")},
        )
        p = project(r, {"a"})
        assert p.annotation(Tup(a=1)) == Or((Var("x"), Var("y")))

    def test_selection_multiplies_by_predicate(self):
        r = KRelation({"a"}, COUNTING, {Tup(a=1): 2, Tup(a=2): 3})
        s = select(r, lambda t: t["a"] > 1)
        assert Tup(a=1) not in s
        assert s.annotation(Tup(a=2)) == 3

    def test_join_multiplies(self):
        r1 = KRelation({"a", "b"}, COUNTING, {Tup(a=1, b=1): 2})
        r2 = KRelation({"b", "c"}, COUNTING, {Tup(b=1, c=1): 3})
        j = natural_join(r1, r2)
        assert j.annotation(Tup(a=1, b=1, c=1)) == 6

    def test_join_provenance_builds_and(self):
        r1 = KRelation({"a", "b"}, PROVENANCE, {Tup(a=1, b=1): Var("x")})
        r2 = KRelation({"b", "c"}, PROVENANCE, {Tup(b=1, c=1): Var("y")})
        j = natural_join(r1, r2)
        assert j.annotation(Tup(a=1, b=1, c=1)) == And((Var("x"), Var("y")))

    def test_cartesian_product_requires_disjoint(self):
        r1 = KRelation({"a"}, COUNTING, {Tup(a=1): 1})
        with pytest.raises(SchemaError):
            cartesian_product(r1, r1)

    def test_intersection_requires_same_schema(self):
        r1 = KRelation({"a"}, COUNTING, {Tup(a=1): 2})
        r2 = KRelation({"a"}, COUNTING, {Tup(a=1): 3})
        assert intersection(r1, r2).annotation(Tup(a=1)) == 6

    def test_rename(self):
        r = KRelation({"a"}, COUNTING, {Tup(a=1): 1})
        assert rename(r, {"a": "z"}).annotation(Tup(z=1)) == 1

    def test_difference_unsupported(self):
        with pytest.raises(AlgebraError):
            difference_unsupported()

    def test_valuation_commutes_with_query(self):
        """Ground provenance then evaluate == evaluate then ground."""
        edges = [(1, 2), (2, 3), (1, 3), (3, 4)]
        r = _edge_relation(edges)
        e1 = rename(r, {"src": "x", "dst": "y"})
        e2 = rename(r, {"src": "y", "dst": "z"})
        joined = select(natural_join(e1, e2), lambda t: t["x"] != t["z"])
        result = project(joined, {"x", "z"})

        # choose a valuation: drop edge (2,3)
        def ground(expr):
            return expr.evaluate(
                {f"e{min(u,v)}{max(u,v)}": (u, v) != (2, 3) for u, v in edges}
            )

        grounded_after = {t for t, annotation in result.items() if ground(annotation)}
        # evaluate the same query on the reduced plain relation
        reduced = _edge_relation([e for e in edges if e != (2, 3)])
        reduced_bool = reduced.map_annotations(ground, semiring=BOOLEAN)
        e1b = rename(reduced_bool, {"src": "x", "dst": "y"})
        e2b = rename(reduced_bool, {"src": "y", "dst": "z"})
        joined_b = select(natural_join(e1b, e2b), lambda t: t["x"] != t["z"])
        grounded_before = set(project(joined_b, {"x", "z"}).support())
        assert grounded_after == grounded_before


class TestQueryAst:
    def _tables(self):
        return {"E": _edge_relation([("a", "b"), ("b", "c"), ("c", "d"), ("c", "e")])}

    def test_table_lookup(self):
        tables = self._tables()
        assert evaluate_query(Table("E"), tables) is tables["E"]

    def test_unknown_table(self):
        with pytest.raises(AlgebraError):
            evaluate_query(Table("missing"), {})

    def test_fig2b_common_friend_pairs(self):
        """Fig. 2(b): pairs of friends with a common friend."""
        tables = self._tables()
        e1 = Rename(Table("E"), {"src": "u", "dst": "w"})
        e2 = Rename(Table("E"), {"src": "w", "dst": "v"})
        e3 = Rename(Table("E"), {"src": "u", "dst": "v"})
        two_path = Select(Join(e1, e2), lambda t: t["u"] != t["v"])
        friends_with_common = Join(two_path, e3)
        result = evaluate_query(Project(friends_with_common, ("u", "v")), tables)
        # b-c are friends and share no common friend? b's neighbors {a,c};
        # c's {b,d,e}; common = {} -> not in result. Add a-b? a-b share c? a's
        # neighbors {b}, b's {a,c}: common {} -> no pairs here at all except
        # none. Extend the graph for a positive case:
        tables["E"] = _edge_relation([("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")])
        result = evaluate_query(Project(friends_with_common, ("u", "v")), tables)
        pairs = {frozenset((t["u"], t["v"])) for t in result.support()}
        assert frozenset(("a", "b")) in pairs  # common friend c
        # the annotation of (a,b) must mention all three edges
        annotation = result.annotation(Tup(u="a", v="b"))
        assert {"eab", "eac", "ebc"} <= annotation.variables()

    def test_union_node(self):
        r1 = KRelation({"a"}, COUNTING, {Tup(a=1): 1})
        r2 = KRelation({"a"}, COUNTING, {Tup(a=2): 1})
        out = evaluate_query(Union(Table("R1"), Table("R2")), {"R1": r1, "R2": r2})
        assert len(out) == 2

    def test_query_sugar(self):
        tables = self._tables()
        q = Table("E").where(lambda t: t["src"] == "a").onto(["dst"])
        out = evaluate_query(q, tables)
        assert Tup(dst="b") in out

    def test_table_names(self):
        q = Join(Table("A"), Union(Table("B"), Table("A")))
        assert q.table_names() == frozenset({"A", "B"})
