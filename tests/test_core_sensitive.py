"""Tests for sensitive databases, sensitive K-relations and neighboring."""

import pytest

from repro.boolexpr import FALSE, TRUE, Var, parse
from repro.core import (
    SensitiveDatabase,
    SensitiveKRelation,
    are_neighboring_databases,
    are_neighboring_krelations,
)
from repro.errors import AnnotationError, SensitiveModelError


def counting_db(participants):
    """A toy (P, M): content is the sorted tuple of present participants."""
    return SensitiveDatabase(participants, lambda subset: tuple(sorted(subset)))


class TestSensitiveDatabase:
    def test_content_defaults_to_full(self):
        db = counting_db(["a", "b"])
        assert db.content() == ("a", "b")

    def test_content_of_subset(self):
        db = counting_db(["a", "b"])
        assert db.content({"a"}) == ("a",)
        assert db.content(set()) == ()

    def test_unknown_participant_rejected(self):
        db = counting_db(["a"])
        with pytest.raises(SensitiveModelError):
            db.content({"z"})

    def test_restrict_is_ancestor(self):
        db = counting_db(["a", "b", "c"])
        ancestor = db.restrict({"a", "b"})
        assert ancestor.participants == {"a", "b"}
        assert ancestor.content() == ("a", "b")

    def test_without(self):
        db = counting_db(["a", "b"])
        assert db.without("a").participants == {"b"}
        with pytest.raises(SensitiveModelError):
            db.without("z")

    def test_neighboring_check(self):
        db = counting_db(["a", "b", "c"])
        assert are_neighboring_databases(db, db.without("c"))
        assert not are_neighboring_databases(db, db.restrict({"a"}))
        assert not are_neighboring_databases(db, db)

    def test_neighboring_rejects_content_disagreement(self):
        d1 = counting_db(["a", "b"])
        d2 = SensitiveDatabase(["a"], lambda s: ("different",))
        assert not are_neighboring_databases(d1, d2)


class TestSensitiveKRelation:
    def test_basic_construction(self):
        rel = SensitiveKRelation(
            ["a", "b", "c"], [("t1", parse("a & b")), ("t2", parse("b | c"))]
        )
        assert len(rel) == 2
        assert rel.num_participants == 3
        assert rel.total_annotation_length() == 4

    def test_false_annotations_dropped(self):
        rel = SensitiveKRelation(["a"], [("t1", FALSE), ("t2", Var("a"))])
        assert len(rel) == 1

    def test_true_annotation_rejected(self):
        with pytest.raises(AnnotationError):
            SensitiveKRelation(["a"], [("t1", TRUE)])

    def test_unknown_variable_rejected(self):
        with pytest.raises(AnnotationError):
            SensitiveKRelation(["a"], [("t1", parse("a & z"))])

    def test_non_expression_annotation_rejected(self):
        with pytest.raises(AnnotationError):
            SensitiveKRelation(["a"], [("t1", True)])

    def test_world_semantics(self):
        rel = SensitiveKRelation(
            ["a", "b", "c"],
            [("t1", parse("a & b")), ("t2", parse("b | c"))],
        )
        assert rel.world({"a", "b"}) == {"t1", "t2"}
        assert rel.world({"c"}) == {"t2"}
        assert rel.world(set()) == frozenset()

    def test_world_unknown_participant(self):
        rel = SensitiveKRelation(["a"], [("t", Var("a"))])
        with pytest.raises(SensitiveModelError):
            rel.world({"z"})

    def test_withdraw_prunes_tuples(self):
        rel = SensitiveKRelation(
            ["a", "b", "c"],
            [("t1", parse("a & b")), ("t2", parse("b | c"))],
        )
        reduced = rel.withdraw("a")
        assert reduced.num_participants == 2
        assert len(reduced) == 1  # t1 collapsed to FALSE
        assert dict(reduced.items())["t2"] == parse("b | c")

    def test_withdraw_unknown(self):
        rel = SensitiveKRelation(["a"], [("t", Var("a"))])
        with pytest.raises(SensitiveModelError):
            rel.withdraw("z")

    def test_withdraw_produces_neighbor(self):
        rel = SensitiveKRelation(
            ["a", "b", "c"],
            [("t1", parse("(a & b) | c")), ("t2", parse("b & c"))],
        )
        assert are_neighboring_krelations(rel, rel.withdraw("a"))
        assert are_neighboring_krelations(rel.withdraw("a"), rel)  # symmetric

    def test_not_neighboring_when_two_apart(self):
        rel = SensitiveKRelation(["a", "b", "c"], [("t1", parse("(a & b) | c"))])
        assert not are_neighboring_krelations(rel, rel.withdraw("a", "b"))

    def test_not_neighboring_when_annotations_differ(self):
        r1 = SensitiveKRelation(["a", "b"], [("t", parse("a & b"))])
        r2 = SensitiveKRelation(["a", "b", "c"], [("t", parse("a | b"))])
        assert not are_neighboring_krelations(r1, r2)

    def test_as_sensitive_database(self):
        rel = SensitiveKRelation(["a", "b"], [("t", parse("a & b"))])
        db = rel.as_sensitive_database()
        assert db.content({"a"}) == frozenset()
        assert db.content({"a", "b"}) == {"t"}

    def test_normalized_rewrites_to_minimal_dnf(self):
        rel = SensitiveKRelation(["a", "b", "c"], [("t", parse("(a | b) & (a | c)"))])
        normalized = rel.normalized()
        assert dict(normalized.items())["t"] == parse("a | (b & c)")

    def test_repr_mentions_sizes(self):
        rel = SensitiveKRelation(["a"], [("t", Var("a"))])
        assert "|P|=1" in repr(rel)
