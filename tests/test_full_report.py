"""Tests for the combined report generator."""

import pytest

from repro.experiments.full_report import FIGURES, generate_report
from repro.experiments.harness import Scale

TINY = Scale("tiny", 0.1, 2, 1, 0.02, 0.01, sweep_points=2)


class TestGenerateReport:
    def test_all_figures_registered(self):
        assert set(FIGURES) == {
            "fig1", "fig4a", "fig4b", "fig4c", "fig5", "fig6", "fig7",
            "fig8", "fig9",
        }

    def test_single_figure(self):
        report = generate_report(figures=["fig9"], scale=TINY, rng=0)
        assert "Fig 9 — 3-DNF" in report
        assert "Fig 9 — 3-CNF" in report
        assert "scale=tiny" in report

    def test_krelation_figures_pair(self):
        report = generate_report(figures=["fig8"], scale=TINY, rng=0)
        assert "Fig 8 — 3-DNF" in report
        assert "us_reference" in report

    def test_unknown_figure_rejected(self):
        with pytest.raises(ValueError):
            generate_report(figures=["fig99"], scale=TINY)

    def test_dataset_figure(self):
        report = generate_report(figures=["fig6"], scale=TINY, rng=0)
        assert "ca-GrQc" in report
        assert "paper_triangles" in report
