"""Tests for the LP epigraph encoding of H_i, G_i and the X relaxation.

The key correctness property: the LP values must equal the true minima of
the φ objectives over the constrained cube.  For small relations we verify
against dense grid/scipy minimization and against hand-computed values.
"""

import itertools

import numpy as np
import pytest

from repro.boolexpr import And, Var, parse
from repro.errors import LPError
from repro.lp import ScipyBackend, SimplexBackend
from repro.relax import encode_relation, phi
from repro.relax.encode import EncodedRelation


def brute_force_h(participants, annotated, i, grid=6):
    """Grid-search min of Σ q·φ(f) over |f| = i (coarse upper bound)."""
    best = float("inf")
    # project random dirichlet-ish points onto the simplex slice
    rng = np.random.default_rng(0)
    n = len(participants)
    for _ in range(4000):
        f = rng.random(n)
        total = f.sum()
        if total == 0:
            continue
        f = np.minimum(1.0, f * (i / total))
        # repair: redistribute clipped mass
        for _ in range(6):
            deficit = i - f.sum()
            if abs(deficit) < 1e-9:
                break
            room = (1.0 - f) if deficit > 0 else f
            total_room = room.sum()
            if total_room <= 0:
                break
            f = np.clip(f + deficit * room / total_room, 0.0, 1.0)
        if abs(f.sum() - i) > 1e-6:
            continue
        assignment = dict(zip(participants, f))
        value = sum(q * phi(expr, assignment) for expr, q in annotated)
        best = min(best, value)
    return best


class TestSolveH:
    def test_triangle_relation_fig2a(self):
        """Fig. 2(a): tuples abc, bcd, cde under node privacy."""
        participants = list("abcdef")
        annotated = [(And([Var(p) for p in t]), 1.0) for t in ("abc", "bcd", "cde")]
        enc = encode_relation(participants, annotated)
        assert enc.solve_h(0) == pytest.approx(0.0)
        assert enc.solve_h(6) == pytest.approx(3.0)
        # removing node c kills all triangles: H_5 = 0
        assert enc.solve_h(5) == pytest.approx(0.0)

    def test_h_monotone_in_i(self):
        participants = [f"p{i}" for i in range(5)]
        annotated = [
            (parse("p0 & p1"), 1.0),
            (parse("(p1 & p2) | (p3 & p4)"), 2.0),
            (parse("p0 & p2 & p4"), 1.5),
        ]
        enc = encode_relation(participants, annotated)
        values = [enc.solve_h(i) for i in range(6)]
        assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))

    def test_h_full_equals_total_weight(self):
        participants = ["a", "b", "c"]
        annotated = [(parse("a & b"), 2.0), (parse("b | c"), 3.0)]
        enc = encode_relation(participants, annotated)
        assert enc.solve_h(3) == pytest.approx(5.0)
        assert enc.true_answer() == pytest.approx(5.0)

    def test_h_at_fractional_index(self):
        participants = ["a", "b"]
        annotated = [(parse("a & b"), 1.0)]
        enc = encode_relation(participants, annotated)
        # min over |f|=1.5 of max(0, f_a+f_b-1) = 0.5
        assert enc.solve_h(1.5) == pytest.approx(0.5)

    def test_h_convexity_lemma10(self):
        participants = [f"p{i}" for i in range(4)]
        annotated = [
            (parse("p0 & p1 & p2"), 1.0),
            (parse("p1 & p3"), 1.0),
            (parse("(p0 & p3) | (p1 & p2)"), 2.0),
        ]
        enc = encode_relation(participants, annotated)
        h = [enc.solve_h(i) for i in range(5)]
        increments = [b - a for a, b in zip(h, h[1:])]
        assert all(
            first <= second + 1e-7 for first, second in zip(increments, increments[1:])
        )

    def test_against_grid_search(self):
        participants = ["a", "b", "c", "d"]
        annotated = [
            (parse("a & b"), 1.0),
            (parse("(b & c) | d"), 2.0),
            (parse("a & c & d"), 1.0),
        ]
        enc = encode_relation(participants, annotated)
        for i in (1, 2, 3):
            lp_value = enc.solve_h(i)
            grid_value = brute_force_h(participants, annotated, i)
            assert lp_value <= grid_value + 1e-6  # LP is the exact min

    def test_index_out_of_range(self):
        enc = encode_relation(["a"], [(Var("a"), 1.0)])
        with pytest.raises(LPError):
            enc.solve_h(2)
        with pytest.raises(LPError):
            enc.solve_h(-0.5)

    def test_unused_participants_absorb_mass(self):
        """Participants outside all annotations keep H at 0 longer."""
        annotated = [(parse("a & b"), 1.0)]
        enc_small = encode_relation(["a", "b"], annotated)
        enc_big = encode_relation(["a", "b", "x", "y"], annotated)
        assert enc_small.solve_h(2) == pytest.approx(1.0)
        assert enc_big.solve_h(2) == pytest.approx(0.0)
        assert enc_big.solve_h(4) == pytest.approx(1.0)

    def test_false_constant_weight_excluded(self):
        """FALSE-annotated tuples contribute nothing — not to the H
        endpoint closed form, not to q(supp(R))."""
        from repro.boolexpr import FALSE, TRUE

        enc = encode_relation(["a", "b"], [(Var("a"), 1.0), (FALSE, 5.0), (TRUE, 2.0)])
        assert enc.true_answer() == pytest.approx(3.0)
        assert enc.solve_h(2) == pytest.approx(3.0)
        # the endpoint closed form must agree with the LP limit
        assert enc.solve_h(2 - 1e-7) == pytest.approx(3.0, abs=1e-5)

    def test_zero_weight_tuples_skipped(self):
        enc = encode_relation(["a", "b"], [(parse("a & b"), 0.0), (Var("a"), 1.0)])
        assert enc.num_encoded_tuples == 1
        assert enc.true_answer() == pytest.approx(1.0)

    def test_negative_weight_rejected(self):
        with pytest.raises(LPError):
            encode_relation(["a"], [(Var("a"), -1.0)])

    def test_unknown_participant_rejected(self):
        with pytest.raises(LPError):
            encode_relation(["a"], [(parse("a & b"), 1.0)])

    def test_duplicate_participants_rejected(self):
        with pytest.raises(LPError):
            encode_relation(["a", "a"], [(Var("a"), 1.0)])


class TestSolveG:
    def test_triangle_relation(self):
        participants = list("abcdef")
        annotated = [(And([Var(p) for p in t]), 1.0) for t in ("abc", "bcd", "cde")]
        enc = encode_relation(participants, annotated)
        # G_n = 2 * max_p (#tuples containing p) = 2*3 (node c)
        assert enc.solve_g(6) == pytest.approx(6.0)
        assert enc.solve_g(0) == pytest.approx(0.0)

    def test_g_monotone_in_i(self):
        participants = [f"p{i}" for i in range(4)]
        annotated = [
            (parse("p0 & p1"), 1.0),
            (parse("(p1 | p2) & p3"), 2.0),
        ]
        enc = encode_relation(participants, annotated)
        values = [enc.solve_g(i) for i in range(5)]
        assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))

    def test_g_uses_phi_sensitivities(self):
        """CNF annotations weight tuples by S_{k,p} > 1."""
        participants = ["a", "b", "c"]
        cnf = parse("(a | b) & (a | c)")  # S_a = 2
        enc = encode_relation(participants, [(cnf, 1.0)])
        # at full participation φ = 1, so G_3 = 2 * max_p (q * S) = 2*2
        assert enc.solve_g(3) == pytest.approx(4.0)

    def test_empty_relation(self):
        enc = encode_relation(["a", "b"], [])
        assert enc.solve_g(2) == 0.0
        assert enc.solve_h(2) == 0.0
        assert enc.true_answer() == 0.0

    def test_endpoint_closed_forms_match_lp_limit(self):
        """G is continuous on [0, |P|], so the i=0 / i=|P| closed forms
        must agree with near-endpoint LP solves (both paths shortcut the
        endpoints, so the compiled/legacy equivalence test cannot see a
        wrong closed form — this pins it against the LP itself)."""
        participants = ["a", "b", "c", "d"]
        annotated = [
            (parse("a & b"), 1.0),
            (parse("(a | c) & d"), 2.0),
            (parse("b & c & d"), 0.5),
        ]
        enc = encode_relation(participants, annotated)
        n = len(participants)
        assert enc.solve_g(n) == pytest.approx(enc.solve_g(n - 1e-7), abs=1e-4)
        assert enc.solve_g(0) == pytest.approx(enc.solve_g(1e-7), abs=1e-4)
        assert enc.solve_h(n) == pytest.approx(enc.solve_h(n - 1e-7), abs=1e-4)
        assert enc.solve_h(0) == pytest.approx(enc.solve_h(1e-7), abs=1e-4)


class TestSolveXRelaxation:
    def test_large_delta_prefers_full_index(self):
        participants = list("abcdef")
        annotated = [(And([Var(p) for p in t]), 1.0) for t in ("abc", "bcd", "cde")]
        enc = encode_relation(participants, annotated)
        value, i_prime = enc.solve_x_relaxation(100.0)
        assert i_prime == pytest.approx(6.0, abs=1e-6)
        assert value == pytest.approx(3.0, abs=1e-4)

    def test_small_delta_prefers_low_index(self):
        participants = list("abcdef")
        annotated = [(And([Var(p) for p in t]), 1.0) for t in ("abc", "bcd", "cde")]
        enc = encode_relation(participants, annotated)
        value, i_prime = enc.solve_x_relaxation(0.1)
        # X = min_i H_i + (6-i)*0.1; H_5=0 so X <= 0.1
        assert value <= 0.1 + 1e-6

    def test_matches_index_scan(self):
        participants = ["a", "b", "c", "d"]
        annotated = [
            (parse("a & b"), 1.0),
            (parse("(b & c) | d"), 2.0),
        ]
        enc = encode_relation(participants, annotated)
        for delta in (0.05, 0.3, 1.0, 5.0):
            relaxed, _ = enc.solve_x_relaxation(delta)
            scan = min(enc.solve_h(i) + (4 - i) * delta for i in range(5))
            assert relaxed <= scan + 1e-7

    def test_negative_delta_rejected(self):
        enc = encode_relation(["a"], [(Var("a"), 1.0)])
        with pytest.raises(LPError):
            enc.solve_x_relaxation(-1.0)


class TestBackendAgreement:
    def test_scipy_and_simplex_agree(self):
        participants = ["a", "b", "c"]
        annotated = [
            (parse("a & b"), 1.0),
            (parse("(a | c) & b"), 2.0),
        ]
        enc_scipy = EncodedRelation(participants, annotated, ScipyBackend())
        enc_simplex = EncodedRelation(participants, annotated, SimplexBackend())
        for i in range(4):
            assert enc_scipy.solve_h(i) == pytest.approx(
                enc_simplex.solve_h(i), abs=1e-6
            )
            assert enc_scipy.solve_g(i) == pytest.approx(
                enc_simplex.solve_g(i), abs=1e-6
            )
