"""Tests for the top-level public API surface."""

import math

import pytest

import repro
from repro import (
    RecursiveMechanismParams,
    private_subgraph_count,
    random_graph_with_avg_degree,
    triangle,
)


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_core_classes_importable_from_top_level(self):
        from repro import (
            And,
            CountQuery,
            EfficientRecursiveMechanism,
            Graph,
            KRelation,
            Or,
            SensitiveKRelation,
            Var,
        )

        assert Var("a") & Var("b") == And((Var("a"), Var("b")))
        imported = (
            CountQuery,
            EfficientRecursiveMechanism,
            Graph,
            KRelation,
            Or,
            SensitiveKRelation,
        )
        assert all(isinstance(item, type) for item in imported)


class TestPrivateSubgraphCount:
    def test_node_privacy(self):
        g = random_graph_with_avg_degree(40, 8, rng=1)
        result = private_subgraph_count(
            g, triangle(), privacy="node", epsilon=1.0, rng=2
        )
        assert math.isfinite(result.answer)
        assert result.params.mu == 1.0  # node privacy default

    def test_edge_privacy(self):
        g = random_graph_with_avg_degree(40, 8, rng=1)
        result = private_subgraph_count(
            g, triangle(), privacy="edge", epsilon=1.0, rng=2
        )
        assert result.params.mu == 0.5

    def test_custom_params_override(self):
        g = random_graph_with_avg_degree(30, 6, rng=1)
        params = RecursiveMechanismParams(
            epsilon1=0.4, epsilon2=0.4, beta=0.2, mu=0.7, g=2
        )
        result = private_subgraph_count(g, triangle(), params=params, rng=0)
        assert result.params is params

    def test_deterministic_with_seed(self):
        g = random_graph_with_avg_degree(30, 6, rng=1)
        r1 = private_subgraph_count(g, triangle(), epsilon=1.0, rng=5)
        r2 = private_subgraph_count(g, triangle(), epsilon=1.0, rng=5)
        assert r1.answer == r2.answer

    def test_different_seeds_differ(self):
        g = random_graph_with_avg_degree(30, 6, rng=1)
        r1 = private_subgraph_count(g, triangle(), epsilon=1.0, rng=5)
        r2 = private_subgraph_count(g, triangle(), epsilon=1.0, rng=6)
        assert r1.answer != r2.answer

    def test_accuracy_improves_with_epsilon(self):
        """Statistically: eps=8 should beat eps=0.1 in median error."""
        import numpy as np

        g = random_graph_with_avg_degree(60, 8, rng=3)
        rng = np.random.default_rng(0)
        from repro.core import EfficientRecursiveMechanism
        from repro.subgraphs import subgraph_krelation

        rel = subgraph_krelation(g, triangle(), privacy="edge")
        mech = EfficientRecursiveMechanism(rel)
        lo = [
            mech.run(RecursiveMechanismParams.paper(0.1), rng).relative_error
            for _ in range(15)
        ]
        hi = [
            mech.run(RecursiveMechanismParams.paper(8.0), rng).relative_error
            for _ in range(15)
        ]
        assert sorted(hi)[7] < sorted(lo)[7]
