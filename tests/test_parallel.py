"""The process-pool execution layer: fork-after-compile workers.

Pins the three guarantees of ``repro.parallel``:

* **determinism** — released answers are byte-identical between serial
  (``workers=1``) and parallel (``workers=k``) execution at a fixed seed,
  for trial sharding, sweep-grid sharding, and the Δ-probe process race;
* **fork-safety** — persistent HiGHS models never cross the fork: each
  worker re-instantiates its own lazily, and using a parent's model from
  a child raises instead of corrupting shared solver state;
* **fallback** — ``workers=1`` (or no fork support) runs the identical
  scheme in-process.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.efficient import EfficientRecursiveMechanism
from repro.core.params import RecursiveMechanismParams
from repro.experiments.harness import (
    ParallelHarness,
    Scale,
    run_mechanism_trials,
)
from repro.experiments.mechanisms import make_runner
from repro.experiments.runtime import fig5_runtime_sweep
from repro.graphs import random_graph_with_avg_degree
from repro.lp.highs_engine import engine_available
from repro.parallel import (
    StrandError,
    first_decided,
    fork_available,
    map_tasks,
    resolve_workers,
)
from repro.rng import spawn_seed_sequences
from repro.subgraphs import subgraph_krelation, triangle

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="platform has no fork start method"
)
needs_engine = pytest.mark.skipif(
    not engine_available(), reason="scipy HiGHS bindings unavailable"
)


@pytest.fixture(scope="module")
def small_graph():
    return random_graph_with_avg_degree(26, 5.0, rng=3)


@pytest.fixture()
def mechanism(small_graph, lp_backend):
    """The edge-DP triangle mechanism, once per available solver backend."""
    relation = subgraph_krelation(small_graph, triangle(), privacy="edge")
    return EfficientRecursiveMechanism(relation, backend=lp_backend)


class TestResolveWorkers:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert resolve_workers(3) == 3

    def test_env_beats_cpu_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert resolve_workers(None) == 5

    def test_default_is_available_cpus(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        if hasattr(os, "sched_getaffinity"):
            expected = len(os.sched_getaffinity(0))
        else:
            expected = os.cpu_count() or 1
        assert resolve_workers(None) == max(1, expected)

    def test_non_positive_rejected(self):
        # uniform entry-point validation: workers must be >= 1 or None
        with pytest.raises(ValueError, match="positive integer"):
            resolve_workers(0)
        with pytest.raises(ValueError, match="positive integer"):
            resolve_workers(-4)

    def test_bad_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "0")
        with pytest.raises(ValueError, match="positive integer"):
            resolve_workers(None)

    def test_bad_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "lots")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            resolve_workers(None)


class TestScaleSubsetEmpty:
    def test_empty_sweep_raises_with_scale_names(self):
        scale = Scale("t", 1.0, 1, 1, 1.0, 1.0, sweep_points=3)
        with pytest.raises(ValueError, match="empty sweep") as excinfo:
            scale.subset([])
        assert "smoke" in str(excinfo.value)


def _double(payload, task):
    return (payload or 0) + 2 * task


def _boom(payload, task):
    raise ValueError(f"boom on {task}")


@needs_fork
class TestMapTasks:
    def test_order_and_payload(self):
        assert map_tasks(_double, [1, 2, 3, 4], payload=10, workers=2) == [
            12,
            14,
            16,
            18,
        ]

    def test_serial_fallback_identical(self):
        serial = map_tasks(_double, range(6), payload=1, workers=1)
        parallel = map_tasks(_double, range(6), payload=1, workers=3)
        assert serial == parallel

    def test_worker_exception_propagates(self):
        with pytest.raises(ValueError, match="boom"):
            map_tasks(_boom, [1, 2], workers=2)


def _sleep_task(payload, task):
    import time

    time.sleep(task)
    return task


@needs_fork
class TestWorkerPoolShutdown:
    def test_close_does_not_deadlock_on_abandoned_submit(self):
        """Regression: closing a pool with an unconsumed in-flight
        apply_async result must return promptly, and the abandoned future
        must raise instead of blocking forever."""
        import threading

        from repro.errors import WorkerPoolError
        from repro.parallel.pool import WorkerPool

        pool = WorkerPool(2, _sleep_task)
        abandoned = pool.submit(60.0)  # never consumed before close
        closer = threading.Thread(target=pool.close)
        closer.start()
        closer.join(timeout=30)
        assert not closer.is_alive(), "WorkerPool.close deadlocked"
        with pytest.raises(WorkerPoolError, match="shut down"):
            abandoned.get(timeout=5)

    def test_close_fires_error_callback_for_abandoned_submit(self):
        from repro.parallel.pool import WorkerPool

        failures = []
        pool = WorkerPool(2, _sleep_task)
        pool.submit(60.0, error_callback=failures.append)
        pool.close()
        assert len(failures) == 1

    def test_completed_results_survive_close(self):
        from repro.parallel.pool import WorkerPool

        pool = WorkerPool(2, _sleep_task)
        done = pool.submit(0.0)
        assert done.get(timeout=30) == 0.0
        pool.close()
        assert done.get(timeout=1) == 0.0  # still readable after close

    def test_submit_after_close_raises(self):
        from repro.parallel.pool import WorkerPool

        pool = WorkerPool(2, _sleep_task)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.submit(0.0)


def _fast_strand():
    return 42


def _slow_strand():
    import time

    time.sleep(30)
    return 0


def _failing_strand():
    raise RuntimeError("strand broke")


@needs_fork
class TestFirstDecided:
    def test_fast_strand_wins_and_loser_dies(self):
        name, value = first_decided([("slow", _slow_strand), ("fast", _fast_strand)])
        assert (name, value) == ("fast", 42)

    def test_all_failures_raise(self):
        with pytest.raises(StrandError, match="strand broke"):
            first_decided([("a", _failing_strand), ("b", _failing_strand)])


class TestSpawnSeedSequences:
    def test_deterministic_from_int(self):
        a = [s.generate_state(2).tolist() for s in spawn_seed_sequences(11, 4)]
        b = [s.generate_state(2).tolist() for s in spawn_seed_sequences(11, 4)]
        assert a == b

    def test_generator_input_is_deterministic(self):
        a = spawn_seed_sequences(np.random.default_rng(5), 3)
        b = spawn_seed_sequences(np.random.default_rng(5), 3)
        assert [s.generate_state(1)[0] for s in a] == [
            s.generate_state(1)[0] for s in b
        ]


@needs_fork
class TestDeterminism:
    """Serial vs parallel released answers are byte-identical."""

    def test_trials_byte_identical(self, small_graph):
        run_once, truth = make_runner("recursive-edge", small_graph, "triangle", 1.0)
        serial = run_mechanism_trials(run_once, truth, 5, rng=123, workers=1)
        parallel = run_mechanism_trials(run_once, truth, 5, rng=123, workers=4)
        assert serial == parallel

    def test_harness_run_trials_identical(self, small_graph):
        run_once, _ = make_runner("recursive-edge", small_graph, "triangle", 1.0)
        serial = ParallelHarness(1).run_trials(run_once, 4, rng=9)
        parallel = ParallelHarness(3).run_trials(run_once, 4, rng=9)
        assert serial == parallel

    def test_sample_answers_identical(self, mechanism):
        params = RecursiveMechanismParams.paper(0.5)
        serial = mechanism.sample_answers(params, 4, rng=7, workers=1)
        parallel = mechanism.sample_answers(params, 4, rng=7, workers=4)
        assert [r.answer for r in serial] == [r.answer for r in parallel]
        assert [r.delta_hat for r in serial] == [r.delta_hat for r in parallel]

    def test_fig5_grid_sharding_identical(self):
        tiny = Scale("tiny", 0.08, 1, 1, 0.05, 0.02, sweep_points=2)
        serial = fig5_runtime_sweep(scale=tiny, rng=5, workers=1)
        parallel = fig5_runtime_sweep(scale=tiny, rng=5, workers=2)
        assert list(serial) == list(parallel)
        stable = ("nodes", "tuples", "lp_size", "true_answer", "answer")
        for combo, rows in serial.items():
            for row, other in zip(rows, parallel[combo]):
                assert {k: row[k] for k in stable} == {
                    k: other[k] for k in stable
                }, combo


def _probe_worker_models(program, index):
    """Worker-side: report whether the parent's H model survived the fork."""
    inherited_model = program._h_model is not None
    solution = program.solve_h(index)
    return os.getpid(), inherited_model, float(solution.objective)


@needs_fork
class TestForkSafety:
    def test_workers_reinstantiate_models(self, mechanism):
        program = mechanism._encoded._compiled
        assert program is not None
        index = mechanism.num_participants / 2.0
        expected = float(program.solve_h(index).objective)
        results = map_tasks(
            _probe_worker_models, [index, index, index], payload=program, workers=2
        )
        assert all(pid != os.getpid() for pid, _, _ in results)
        # every worker's first task found the persistent models dropped
        first_by_pid = {}
        for pid, inherited_model, _ in results:
            first_by_pid.setdefault(pid, inherited_model)
        assert set(first_by_pid.values()) == {False} or not engine_available()
        assert all(value == expected for _, _, value in results)
        # the parent's model is untouched and still usable
        assert float(program.solve_h(index).objective) == expected

    @needs_engine
    def test_persistent_lp_cross_fork_guard(self, mechanism):
        from repro.errors import LPError

        program = mechanism._encoded._compiled
        if not getattr(program.backend, "supports_persistent", False):
            pytest.skip("backend builds no persistent model to guard")
        program.solve_h(mechanism.num_participants / 2.0)
        model = program._h_model
        assert model is not None
        model._owner_pid = os.getpid() + 1  # simulate a forked child
        try:
            with pytest.raises(LPError, match="fork"):
                model.solve()
        finally:
            model._owner_pid = os.getpid()

    def test_fork_reset_drops_models(self, mechanism):
        program = mechanism._encoded._compiled
        program.solve_h(mechanism.num_participants / 2.0)
        program.fork_reset()
        assert program._h_model is None
        assert program._g_model is None
        assert program._x_model is None
        assert program._feas_model is None


@needs_fork
class TestSolveManyAndRace:
    def test_solve_many_matches_pointwise(self, mechanism):
        program = mechanism._encoded._compiled
        n = mechanism.num_participants
        tasks = [
            ("h", n / 2.0),
            ("h", n / 3.0),
            ("g", n / 2.0),
            ("x", 0.5),
        ]
        batched = program.solve_many(tasks, workers=2)
        pointwise = [
            program.solve_h(n / 2.0),
            program.solve_h(n / 3.0),
            program.solve_g(n / 2.0),
            program.solve_x(0.5),
        ]
        assert [s.objective for s in batched] == [s.objective for s in pointwise]

    def test_race_matches_serial_decision(self, small_graph):
        relation = subgraph_krelation(small_graph, triangle(), privacy="edge")
        serial = EfficientRecursiveMechanism(relation)._encoded
        parallel = EfficientRecursiveMechanism(relation)._encoded
        n = serial.num_participants
        full = serial.solve_g(n)
        for i in (n // 3, n // 2, 2 * n // 3):
            for threshold in (0.25 * full, 0.5 * full, 0.9 * full):
                expected, _ = serial.g_decide(float(i), threshold, workers=1)
                decided, value = parallel.g_decide(float(i), threshold, workers=2)
                assert decided == expected, (i, threshold)
                if value is not None:
                    assert (value <= threshold) == decided

    def test_nested_parallelism_demotes_in_daemonic_workers(self, small_graph):
        """A workers>=2 mechanism must run inside a pool shard (where
        daemonic workers may not fork children) by demoting to the
        in-process fallback instead of crashing."""
        relation = subgraph_krelation(small_graph, triangle(), privacy="edge")
        mechanism = EfficientRecursiveMechanism(relation, workers=2)
        params = RecursiveMechanismParams.paper(0.5)
        nested = mechanism.sample_answers(params, 3, rng=0, workers=2)
        flat = mechanism.sample_answers(params, 3, rng=0, workers=1)
        assert [r.answer for r in nested] == [r.answer for r in flat]

    def test_mechanism_with_workers_matches_serial(self, small_graph):
        relation = subgraph_krelation(small_graph, triangle(), privacy="node")
        params = RecursiveMechanismParams.paper(0.5, node_privacy=True)
        serial = EfficientRecursiveMechanism(relation, workers=1)
        parallel = EfficientRecursiveMechanism(relation, workers=2)
        assert serial.run(params, 17).answer == parallel.run(params, 17).answer


class TestCrossBackendIdentity:
    """Released answers are byte-identical across every available backend.

    The registry may route solves through pure ``linprog``, the persistent
    HiGHS engine, or Gurobi — but at a fixed seed the mechanism's noise and
    its deterministic intermediates (Δ-probe race decisions, batched
    ``solve_many`` objectives) must not depend on which backend ran.
    """

    def _backends(self):
        from repro.lp import backends as lp_backends

        return tuple(lp_backends.available())

    def test_released_answers_identical(self, small_graph):
        results = {}
        for name in self._backends():
            relation = subgraph_krelation(small_graph, triangle(), privacy="edge")
            mech = EfficientRecursiveMechanism(relation, backend=name)
            outcome = mech.run(RecursiveMechanismParams.paper(0.5), 17)
            results[name] = (outcome.answer, outcome.delta_hat)
        assert len(set(results.values())) == 1, results

    def test_g_decide_race_identical(self, small_graph):
        relation = subgraph_krelation(small_graph, triangle(), privacy="edge")
        decisions = {}
        for name in self._backends():
            encoded = EfficientRecursiveMechanism(relation, backend=name)._encoded
            n = encoded.num_participants
            full = encoded.solve_g(n)
            decisions[name] = tuple(
                encoded.g_decide(float(i), threshold, workers=1)[0]
                for i in (n // 3, n // 2, 2 * n // 3)
                for threshold in (0.25 * full, 0.5 * full, 0.9 * full)
            )
        assert len(set(decisions.values())) == 1, decisions

    def test_solve_many_identical(self, small_graph):
        relation = subgraph_krelation(small_graph, triangle(), privacy="edge")
        sweeps = {}
        for name in self._backends():
            program = EfficientRecursiveMechanism(
                relation, backend=name
            )._encoded._compiled
            n = program.num_participants
            tasks = [("h", n / 4.0), ("h", n / 2.0), ("h", 3 * n / 4.0)]
            # workers=1 + all-"h" triggers the one-call multi-RHS sweep on
            # backends that support it; others run the pointwise loop
            sweeps[name] = tuple(
                s.objective for s in program.solve_many(tasks, workers=1)
            )
        assert len(set(sweeps.values())) == 1, sweeps


class TestCliWorkers:
    def test_count_accepts_workers(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["count", "--workers", "2"])
        assert args.workers == 2

    def test_fig_accepts_workers(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["fig", "fig5", "--workers", "3"])
        assert args.workers == 3
