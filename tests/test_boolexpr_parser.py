"""Tests for the expression parser."""

import pytest

from repro.boolexpr import FALSE, TRUE, And, Or, Var, parse
from repro.errors import ParseError


class TestParse:
    def test_single_variable(self):
        assert parse("x") == Var("x")

    def test_constants(self):
        assert parse("True") == TRUE
        assert parse("False") == FALSE

    def test_and(self):
        assert parse("a & b") == And((Var("a"), Var("b")))

    def test_or(self):
        assert parse("a | b") == Or((Var("a"), Var("b")))

    def test_precedence_and_binds_tighter(self):
        assert parse("a & b | c") == Or((And((Var("a"), Var("b"))), Var("c")))

    def test_parentheses(self):
        assert parse("a & (b | c)") == And((Var("a"), Or((Var("b"), Var("c")))))

    def test_word_operators(self):
        assert parse("a and b or c") == parse("a & b | c")

    def test_unicode_operators(self):
        assert parse("a ∧ b ∨ c") == parse("a & b | c")

    def test_nary_flattening(self):
        assert parse("a & b & c") == And((Var("a"), Var("b"), Var("c")))

    def test_edge_style_identifiers(self):
        expr = parse("e:1-2 & e:2-3")
        assert expr.variables() == {"e:1-2", "e:2-3"}

    def test_paper_example(self):
        """(b1 ∨ b2) ∧ (b1 ∨ b3) from Sec. 2.4."""
        expr = parse("(b1 | b2) & (b1 | b3)")
        assert isinstance(expr, And)
        assert all(isinstance(child, Or) for child in expr.children)

    def test_identity_folding_through_parse(self):
        assert parse("a & True") == Var("a")
        assert parse("a | False") == Var("a")
        assert parse("a & False") == FALSE
        assert parse("a | True") == TRUE

    def test_roundtrip_through_str(self):
        for text in ("a & b | c", "(a | b) & (c | d)", "a & (b | (c & d))"):
            expr = parse(text)
            assert parse(str(expr)) == expr

    @pytest.mark.parametrize(
        "bad", ["", "   ", "a &", "& a", "(a", "a)", "a b", "a ! b", "a & ()"]
    )
    def test_invalid_inputs(self, bad):
        with pytest.raises(ParseError):
            parse(bad)
