"""Property-based tests of the efficient mechanism's sequence invariants.

On random small sensitive K-relations (hypothesis-generated annotations),
verify against the definitions:

* H is a recursive sequence across real withdrawals (Def. 17);
* H is convex in i (Lemma 10) and H_{|P|} = q(supp(R)) (Thm. 3);
* G is nondecreasing, and the Δ from Eq. 11 obeys Lemmas 1–3 across
  withdrawals;
* X has global sensitivity ≤ Δ̂ across withdrawals (Lemma 7).

These are the privacy-critical invariants: every lemma that the proof of
Theorem 1 relies on is exercised on machine-generated instances.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolexpr import And, Expr, Or, Var
from repro.core import EfficientRecursiveMechanism, SensitiveKRelation
from repro.core.params import RecursiveMechanismParams

VARS = ["p0", "p1", "p2", "p3", "p4"]


def annotations() -> st.SearchStrategy[Expr]:
    leaves = st.sampled_from([Var(v) for v in VARS])
    return st.recursive(
        leaves,
        lambda kids: st.lists(kids, min_size=2, max_size=2).map(And)
        | st.lists(kids, min_size=2, max_size=2).map(Or),
        max_leaves=5,
    )


def krelations() -> st.SearchStrategy[SensitiveKRelation]:
    entry = st.tuples(st.integers(0, 10**6), annotations())
    return st.lists(entry, min_size=1, max_size=4).map(
        lambda pairs: SensitiveKRelation(
            VARS,
            [(f"t{i}", ann) for i, (_, ann) in enumerate(pairs)],
            validate=False,
        )
    )


PARAMS = RecursiveMechanismParams.paper(0.5, g=2)


@given(krelations())
@settings(max_examples=40, deadline=None)
def test_h_boundary_and_convexity(relation):
    mech = EfficientRecursiveMechanism(relation)
    n = mech.num_participants
    h = [mech.h_entry(i) for i in range(n + 1)]
    assert h[0] == 0.0
    assert math.isclose(h[n], mech.true_answer(), abs_tol=1e-6)
    assert all(a <= b + 1e-7 for a, b in zip(h, h[1:]))  # nondecreasing
    increments = [b - a for a, b in zip(h, h[1:])]
    assert all(
        x <= y + 1e-6 for x, y in zip(increments, increments[1:])
    )  # Lemma 10


@given(krelations(), st.sampled_from(VARS))
@settings(max_examples=30, deadline=None)
def test_recursive_monotonicity_across_withdrawal(relation, victim):
    """Def. 17: H_i(P2) <= H_i(P1) <= H_{i+1}(P2) for P1 = P2 - {victim}."""
    mech_full = EfficientRecursiveMechanism(relation)
    mech_less = EfficientRecursiveMechanism(relation.withdraw(victim))
    n1 = mech_less.num_participants
    for i in range(n1 + 1):
        h2_i = mech_full.h_entry(i)
        h1_i = mech_less.h_entry(i)
        h2_next = mech_full.h_entry(i + 1)
        assert h2_i <= h1_i + 1e-6
        assert h1_i <= h2_next + 1e-6


@given(krelations(), st.sampled_from(VARS))
@settings(max_examples=30, deadline=None)
def test_g_recursive_monotonicity_across_withdrawal_uniform(relation, victim):
    """The sound Ĝ = 2·S̄·H bounding sequence (fixed query-level S̄) is a
    recursive sequence on arbitrary annotations.  Eq. 19's G is NOT — see
    test_erratum_eq19.py — which is why the cross-withdrawal property is
    asserted for the "uniform" mode here and for the conjunctive case in
    the dedicated test below."""
    mech_full = EfficientRecursiveMechanism(relation, bounding="uniform", s_bar=5.0)
    mech_less = EfficientRecursiveMechanism(
        relation.withdraw(victim), bounding="uniform", s_bar=5.0
    )
    n1 = mech_less.num_participants
    for i in range(n1 + 1):
        assert mech_full.g_entry(i) <= mech_less.g_entry(i) + 1e-6
        assert mech_less.g_entry(i) <= mech_full.g_entry(i + 1) + 1e-6


def conjunctive_krelations():
    clause = st.lists(
        st.sampled_from(VARS), min_size=1, max_size=4, unique=True
    ).map(lambda names: And(Var(n) for n in names) if len(names) > 1 else Var(names[0]))
    entry = st.tuples(st.integers(0, 10**6), clause)
    return st.lists(entry, min_size=1, max_size=4).map(
        lambda pairs: SensitiveKRelation(
            VARS,
            [(f"t{i}", ann) for i, (_, ann) in enumerate(pairs)],
            validate=False,
        )
    )


@given(conjunctive_krelations(), st.sampled_from(VARS))
@settings(max_examples=30, deadline=None)
def test_g_recursive_monotonicity_conjunctive_paper_mode(relation, victim):
    """Eq. 19's G IS a recursive sequence on conjunctive annotations —
    the subgraph-counting case, where the paper's Lemma 1 is sound."""
    mech_full = EfficientRecursiveMechanism(relation, bounding="paper")
    mech_less = EfficientRecursiveMechanism(relation.withdraw(victim), bounding="paper")
    n1 = mech_less.num_participants
    for i in range(n1 + 1):
        assert mech_full.g_entry(i) <= mech_less.g_entry(i) + 1e-6
        assert mech_less.g_entry(i) <= mech_full.g_entry(i + 1) + 1e-6


@given(krelations(), st.sampled_from(VARS))
@settings(max_examples=25, deadline=None)
def test_lemma1_delta_log_sensitivity_across_withdrawal(relation, victim):
    """GS_{ln Δ} <= β on real neighbors (the heart of the ε1 guarantee),
    using the sound uniform bounding mode with a fixed query-level S̄."""
    delta_full, _ = EfficientRecursiveMechanism(
        relation, bounding="uniform", s_bar=5.0
    ).compute_delta(PARAMS)
    delta_less, _ = EfficientRecursiveMechanism(
        relation.withdraw(victim), bounding="uniform", s_bar=5.0
    ).compute_delta(PARAMS)
    assert abs(math.log(delta_full) - math.log(delta_less)) <= PARAMS.beta + 1e-9


@given(conjunctive_krelations(), st.sampled_from(VARS))
@settings(max_examples=25, deadline=None)
def test_lemma1_conjunctive_paper_mode(relation, victim):
    """Lemma 1 holds in paper mode for conjunctive annotations."""
    delta_full, _ = EfficientRecursiveMechanism(
        relation, bounding="paper"
    ).compute_delta(PARAMS)
    delta_less, _ = EfficientRecursiveMechanism(
        relation.withdraw(victim), bounding="paper"
    ).compute_delta(PARAMS)
    assert abs(math.log(delta_full) - math.log(delta_less)) <= PARAMS.beta + 1e-9


@given(krelations(), st.sampled_from(VARS), st.floats(0.01, 5.0))
@settings(max_examples=25, deadline=None)
def test_lemma7_x_sensitivity_across_withdrawal(relation, victim, delta_hat):
    """|X(P1) - X(P2)| <= Δ̂ on real neighbors (the heart of the ε2 guarantee)."""
    x_full, _ = EfficientRecursiveMechanism(relation)._compute_x(delta_hat)
    x_less, _ = EfficientRecursiveMechanism(
        relation.withdraw(victim)
    )._compute_x(delta_hat)
    tolerance = 1e-5 * max(1.0, abs(x_full))
    # Lemma 7 proof sketch: X(P1) <= X(P2) <= X(P1) + Δ̂ for P1 ⪯ P2.
    assert x_less <= x_full + tolerance
    assert x_full <= x_less + delta_hat + tolerance


@given(krelations())
@settings(max_examples=30, deadline=None)
def test_lemma2_lemma3_delta_bounds(relation):
    mech = EfficientRecursiveMechanism(relation)
    delta, j = mech.compute_delta(PARAMS)
    g_final = mech.g_entry(mech.num_participants)
    assert delta <= max(PARAMS.theta, math.exp(PARAMS.beta) * g_final) + 1e-9
    shift = round(math.log(delta / PARAMS.theta) / PARAMS.beta)
    assert shift == j
    index = mech.num_participants - shift
    if index >= 0:
        assert mech.g_entry(index) <= delta + 1e-9
