"""Tests of the "any kind of subgraph" claim (Sec. 1 / Fig. 1 last row).

The mechanism must handle patterns with no specialized enumerator —
cycles, paths, edge counting — under node *and* edge privacy, end to end.
"""

import itertools
import math

import pytest

from repro import private_subgraph_count, random_graph_with_avg_degree
from repro.core import CountQuery, universal_empirical_sensitivity
from repro.errors import PatternError
from repro.graphs import Graph
from repro.subgraphs import (
    cycle_pattern,
    enumerate_subgraphs,
    path_pattern,
    subgraph_krelation,
)


def brute_force_cycle_count(graph: Graph, k: int) -> int:
    """Count (non-induced) k-cycles by enumerating node orderings.

    Subgraph counting is non-induced — a K4 contains three distinct
    4-cycles — so each cycle is a cyclic ordering of k nodes whose
    consecutive pairs are all edges, counted once (fix the smallest node
    first and halve for direction).
    """
    count = 0
    for subset in itertools.combinations(graph.nodes(), k):
        anchor, *rest = sorted(subset, key=repr)
        for ordering in itertools.permutations(rest):
            walk = (anchor, *ordering, anchor)
            if all(graph.has_edge(a, b) for a, b in zip(walk, walk[1:])):
                count += 1
    return count // 2


class TestCycleCounting:
    def test_square_graph(self):
        g = Graph(edges=[(0, 1), (1, 2), (2, 3), (3, 0)])
        occurrences = list(enumerate_subgraphs(g, cycle_pattern(4)))
        assert len(occurrences) == 1

    def test_counts_match_bruteforce(self):
        for seed in range(3):
            g = random_graph_with_avg_degree(12, 5, rng=seed)
            for k in (3, 4):
                matched = len(list(enumerate_subgraphs(g, cycle_pattern(k))))
                assert matched == brute_force_cycle_count(g, k), (seed, k)

    def test_triangle_is_3cycle(self):
        from repro.subgraphs import count_triangles

        g = random_graph_with_avg_degree(15, 6, rng=1)
        assert len(list(enumerate_subgraphs(g, cycle_pattern(3)))) == (
            count_triangles(g)
        )

    def test_invalid_cycle(self):
        with pytest.raises(PatternError):
            cycle_pattern(2)

    def test_private_4cycle_count_node_dp(self):
        g = random_graph_with_avg_degree(25, 6, rng=2)
        result = private_subgraph_count(
            g, cycle_pattern(4), privacy="node", epsilon=2.0, rng=0
        )
        truth = brute_force_cycle_count(g, 4)
        assert result.true_answer == truth
        assert math.isfinite(result.answer)


class TestEdgeCountingUnderNodeDP:
    """Releasing |E| under node-DP: trivial query, nontrivial privacy —
    one node's withdrawal removes up to deg(v) edges."""

    def test_relation_structure(self):
        g = random_graph_with_avg_degree(20, 6, rng=3)
        relation = subgraph_krelation(g, path_pattern(1), privacy="node")
        assert len(relation) == g.num_edges
        us = universal_empirical_sensitivity(CountQuery(), relation)
        assert us == g.max_degree()

    def test_private_edge_count(self):
        g = random_graph_with_avg_degree(40, 8, rng=4)
        result = private_subgraph_count(
            g, path_pattern(1), privacy="node", epsilon=2.0, rng=1
        )
        assert result.true_answer == g.num_edges
        # generous sanity bound: within 3x of the truth at eps=2
        assert abs(result.answer - g.num_edges) < 3 * g.num_edges


class TestLongerPaths:
    def test_path2_is_2star(self):
        from repro.subgraphs import count_k_stars

        g = random_graph_with_avg_degree(18, 6, rng=5)
        paths = len(list(enumerate_subgraphs(g, path_pattern(2))))
        assert paths == count_k_stars(g, 2)

    def test_private_path3_count(self):
        g = random_graph_with_avg_degree(14, 4, rng=6)
        result = private_subgraph_count(
            g, path_pattern(3), privacy="edge", epsilon=2.0, rng=2
        )
        assert result.true_answer == len(list(enumerate_subgraphs(g, path_pattern(3))))
