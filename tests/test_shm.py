"""Tests for named shared-memory compiled blocks (:mod:`repro.parallel.shm`).

The acceptance pins:

* a :class:`~repro.lp.compiled.CompiledProgram` attached from another
  program's exported segments answers every solve **byte-identical** to
  the exporter (same physical pages, rebuilt derived state);
* attached views are read-only — many readers, no writer;
* segment lifecycle is leak-free: refcounted release unlinks owned
  segments, and a process that exits without releasing is cleaned up by
  the registry's ``atexit`` hook (no stray ``/dev/shm`` entries);
* ``spawn``-started pools (``$REPRO_START_METHOD=spawn``) produce the
  same results as the serial path — the fork-ordering constraint is gone.
"""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np
import pytest

import repro
from repro.boolexpr.expr import And, Or, Var
from repro.lp import backends as lp_backends
from repro.parallel import shm
from repro.parallel.pool import (
    START_METHOD_ENV,
    resolve_start_method,
    spawn_available,
)
from repro.relax.encode import EncodedRelation


def _compiled_program(backend):
    """A small compiled program over a fixed annotated relation."""
    names = ["p0", "p1", "p2", "p3"]
    annotated = [
        (And([Var("p0"), Var("p1")]), 1.5),
        (Or([Var("p1"), And([Var("p2"), Var("p3")])]), 2.0),
        (Var("p2"), 0.75),
    ]
    relation = EncodedRelation(names, annotated, backend)
    assert relation.is_compiled
    return relation._compiled


class TestArrayExportAttach:
    def test_round_trip_and_read_only(self):
        array = np.linspace(0.0, 7.5, 16).reshape(4, 4)
        spec = shm.export_array(array)
        assert set(spec) == {"segment", "shape", "dtype"}
        view = shm.attach_array(spec)
        np.testing.assert_array_equal(view, array)
        assert view.flags.writeable is False
        with pytest.raises((ValueError, RuntimeError)):
            view[0, 0] = 99.0
        del view
        shm.release_spec(spec)  # attach reference
        shm.release_spec(spec)  # owner reference -> unlink
        with pytest.raises(FileNotFoundError):
            shm.registry().attach(spec["segment"])

    def test_refcounts_shared_within_process(self):
        registry = shm.registry()
        spec = shm.export_array(np.arange(8, dtype=np.float64))
        name = spec["segment"]
        assert registry.refcount(name) == 1
        assert name in registry.owned()
        first = registry.attach(name)
        second = registry.attach(name)
        assert first is second  # one mapping per process
        assert registry.refcount(name) == 3
        registry.release(name)
        registry.release(name)
        assert registry.refcount(name) == 1  # owner's reference survives
        registry.release(name)
        assert registry.refcount(name) == 0
        with pytest.raises(FileNotFoundError):
            registry.attach(name)  # owned segment was unlinked at zero

    def test_release_spec_walks_nested_specs(self):
        registry = shm.registry()
        specs = [shm.export_array(np.arange(4.0)) for _ in range(3)]
        nested = {
            "objective": specs[0],
            "g": {"data": specs[1], "extra": [specs[2], None]},
            "scalar": 7,
        }
        names = [spec["segment"] for spec in specs]
        assert all(registry.refcount(name) == 1 for name in names)
        shm.release_spec(nested)
        assert all(registry.refcount(name) == 0 for name in names)

    def test_attach_unknown_segment_raises(self):
        with pytest.raises(FileNotFoundError):
            shm.registry().attach("psm_repro_no_such_segment")


class TestCompiledProgramSharing:
    def test_attach_solves_byte_identical(self, lp_backend):
        program = _compiled_program(lp_backend)
        spec = program.export_shared()
        assert spec["backend"] == lp_backend.name
        assert program.export_shared() is spec  # memoized
        attached = type(program).attach_shared(spec)
        assert attached._c.flags.writeable is False
        points = [0.0, 0.5, 1.0, 2.0, 3.5, float(program.num_variables)]
        for i in points:
            # assert_equal, not ==: an infeasible mass must be infeasible
            # on both sides, and nan != nan under plain comparison
            np.testing.assert_equal(
                attached.solve_h(i).objective, program.solve_h(i).objective
            )
            np.testing.assert_equal(
                attached.solve_g(i).objective, program.solve_g(i).objective
            )
        for delta in (0.0, 0.1, 1.0):
            np.testing.assert_equal(
                attached.solve_x(delta).objective, program.solve_x(delta).objective
            )
        for i, bound in ((1.0, 0.5), (2.0, 10.0)):
            assert (attached.solve_g_feasible(i, bound)
                    == program.solve_g_feasible(i, bound))
        shm.release_spec(spec)  # the attach references
        program.release_shared()
        with pytest.raises(FileNotFoundError):
            shm.registry().attach(spec["objective"]["segment"])

    def test_export_requires_registry_named_backend(self):
        from repro.errors import LPError

        program = _compiled_program(lp_backends.default_backend())
        program.backend = object()  # no usable .name
        with pytest.raises(LPError, match="registry-named"):
            program.export_shared()

    @pytest.mark.skipif(not spawn_available(), reason="spawn not available")
    def test_spawn_pool_matches_serial(self, monkeypatch):
        """solve_many under a spawn pool == the serial in-process path."""
        program = _compiled_program(lp_backends.default_backend())
        tasks = [("h", 1.0), ("h", 2.5), ("g", 1.0), ("g", 3.0), ("x", 0.2)]
        serial = [s.objective for s in program.solve_many(tasks, workers=1)]
        monkeypatch.setenv(START_METHOD_ENV, "spawn")
        assert resolve_start_method() == "spawn"
        fanned = [s.objective for s in program.solve_many(tasks, workers=2)]
        assert fanned == serial
        program.release_shared()

    def test_resolve_start_method_env_validation(self, monkeypatch):
        monkeypatch.setenv(START_METHOD_ENV, "threads")
        with pytest.raises(ValueError, match="fork.*spawn"):
            resolve_start_method()
        monkeypatch.delenv(START_METHOD_ENV)
        assert resolve_start_method() in ("fork", "spawn")


class TestAtexitCleanup:
    def test_exiting_owner_unlinks_segments(self, tmp_path):
        """A process that exports and exits without releasing leaks nothing."""
        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        script = (
            "import numpy as np\n"
            "from repro.parallel import shm\n"
            "spec = shm.export_array(np.arange(32, dtype=np.float64))\n"
            "print(spec['segment'])\n"
            # exit WITHOUT release_spec: the registry's atexit hook must
            # unlink the owned segment.
        )
        env = dict(os.environ, PYTHONPATH=src)
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        name = result.stdout.strip()
        assert name
        with pytest.raises(FileNotFoundError):
            shm.registry().attach(name)
        if sys.platform.startswith("linux") and os.path.isdir("/dev/shm"):
            assert not os.path.exists(os.path.join("/dev/shm", name))
