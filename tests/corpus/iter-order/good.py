"""Near misses: sorted sets, order-free consumers, ordered dicts."""


def occurrence_rows(edges, nodes):
    rows = []
    for node in sorted({n for edge in edges for n in edge}):
        rows.append(node)
    keys = [item for item in sorted(set(edges))]
    if "hub" in set(nodes):  # membership: order-free
        rows.append("hub")
    count = len(set(edges))  # size: order-free
    biggest = max(set(nodes))  # order-free reduction
    by_node = dict.fromkeys(nodes, 0)
    for node, weight in by_node.items():  # dicts are insertion-ordered
        rows.append((node, weight))
    return rows, keys, count, biggest
