"""True positives: sets iterated into order-sensitive output."""


def occurrence_rows(edges, nodes):
    rows = []
    for node in {n for edge in edges for n in edge}:  # expect: iter-order
        rows.append(node)
    keys = [item for item in set(edges)]  # expect: iter-order
    frame = list(set(nodes) | set(edges))  # expect: iter-order
    total = sum(frozenset(nodes))  # expect: iter-order
    for pair in set(edges).union(nodes):  # expect: iter-order
        rows.append(pair)
    return rows, keys, frame, total
