"""True positives: reservations that leak on some control-flow path."""


def leak_on_early_return(accountant, work):
    reservation = accountant.reserve(0.5, label="q")
    if not work.ready():
        return None  # expect: budget-two-phase
    result = work.run()
    reservation.commit(result)
    return result


def leak_on_bare_raise(accountant, work):
    reservation = accountant.reserve(0.5, label="q")
    try:
        result = work.run()
    except RuntimeError:
        raise  # expect: budget-two-phase
    reservation.commit(result)
    return result


def leak_in_swallowing_handler(accountant, work):
    reservation = accountant.reserve(0.5, label="q")
    try:
        result = work.run()
    except ValueError:
        return None  # expect: budget-two-phase
    reservation.commit(result)
    return result


def leak_on_fallthrough(accountant, work):
    reservation = accountant.reserve(0.5, label="q")  # expect: budget-two-phase
    if work.ready():
        reservation.commit(work.run())
