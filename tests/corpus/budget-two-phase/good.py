"""Near misses: the canonical two-phase shapes, and untracked look-alikes."""


def commit_or_rollback(accountant, work):
    reservation = accountant.reserve(0.5, label="q")
    try:
        result = work.run()
    except BaseException:
        reservation.rollback()
        raise
    reservation.commit(result)
    return result


def resolved_in_finally(accountant, work):
    reservation = accountant.reserve(0.5, label="q")
    outcome = None
    try:
        outcome = work.run()
    finally:
        if outcome is None:
            reservation.rollback()
        else:
            reservation.commit(outcome)
    return outcome


def ownership_transferred(accountant, work, ledger):
    reservation = accountant.reserve(0.5, label="q")
    ledger.adopt(reservation)  # the ledger resolves it from here on
    return work.run()


def reserve_on_something_else(seat_map, work):
    ticket = seat_map.reserve(3)  # not a budget accountant: untracked
    if work.ready():
        return ticket
    return None
