"""True positives: dishonest suppression pragmas."""
import numpy as np


def fresh_entropy():
    # repro: allow(not-a-rule) — the rule id is a typo  # expect: pragma
    first = np.random.default_rng(2024)
    unexplained = np.random.default_rng()  # repro: allow(rng-determinism)  # expect: pragma
    idle = np.random.default_rng(7)  # repro: allow(rng-determinism) — nothing here to suppress  # expect: pragma
    return first, unexplained, idle
