"""Near miss: an honest pragma — real rule, reason naming the pinning test."""
import numpy as np


def fresh_entropy():
    # repro: allow(rng-determinism) — deliberate OS entropy for the
    # default path; seeded behavior is pinned by tests/test_analysis.py
    return np.random.default_rng()
