"""Near misses: the fork-reset contract carried correctly."""
from repro.parallel.pool import register_fork_reset


class ResettingHolder:
    """Persistent model with the hook and the registration."""

    def __init__(self, backend, matrix):
        self._model = backend.build_persistent(matrix)
        register_fork_reset(self)

    def fork_reset(self):
        self._model = None


def build_transient(backend, matrix):
    # Built and dropped inside one call: nothing outlives the frame to
    # cross a fork, so plain functions are not held to the class contract.
    model = backend.build_persistent(matrix)
    return model.solve()
