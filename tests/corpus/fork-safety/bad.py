"""True positives: solver handles that would cross a fork unreset."""
import multiprocessing
import os

BACKEND = None
MATRIX = None

_SHARED_MODEL = BACKEND.build_persistent(MATRIX)  # expect: fork-safety


class UnresetHolder:
    """Persistent model, but no fork_reset hook and no registration."""

    def __init__(self, backend, matrix):
        self._model = backend.build_persistent(matrix)  # expect: fork-safety


def spawn_workers(task):
    return multiprocessing.Pool(2).map(task, [1, 2])  # expect: fork-safety


def raw_fork():
    return os.fork()  # expect: fork-safety
