"""True positives: entropy and clocks that bypass the session seed."""
import random
import time
from datetime import datetime

import numpy as np


def sample_noise(values):
    pick = random.choice(values)  # expect: rng-determinism
    rng = np.random.default_rng()  # expect: rng-determinism
    legacy = np.random.RandomState()  # expect: rng-determinism
    np.random.seed(7)  # expect: rng-determinism
    jitter = np.random.normal()  # expect: rng-determinism
    stamp = time.time()  # expect: rng-determinism
    today = datetime.now()  # expect: rng-determinism
    seeds = np.random.SeedSequence()  # expect: rng-determinism
    return pick, rng, legacy, jitter, stamp, today, seeds
