"""Near misses: seeded construction, interval clocks, look-alike names."""
import time

import numpy as np


def sample_noise(seed):
    generator = np.random.default_rng(seed)
    legacy = np.random.RandomState(seed)
    root = np.random.SeedSequence(entropy=seed, spawn_key=(1,))
    start = time.perf_counter()
    draw = generator.normal()
    elapsed = time.perf_counter() - start
    return generator, legacy, root, draw, elapsed


class Sampler:
    """A method named ``random`` is not the stdlib module."""

    def random(self):
        return 4

    def run(self):
        return self.random()
