"""True positives: exported segments with no balancing release."""
from repro.parallel import shm

SPECS = []


def export_blocks(program):
    return program.export_shared()  # expect: shm-lifecycle


def export_column(array):
    SPECS.append(shm.export_array(array))  # expect: shm-lifecycle
