"""Near misses: the export/release lifecycle carried correctly."""
from repro.parallel import shm


class SharedBlocks:
    """Owns the exported specs and releases them on close()."""

    def __init__(self, program):
        self._spec = program.export_shared()

    def close(self):
        shm.release_spec(self._spec)


def export_for_bench(array):
    # Balanced in the same frame: the spec cannot outlive the release.
    spec = shm.export_array(array)
    try:
        return dict(spec)
    finally:
        shm.release_spec(spec)
