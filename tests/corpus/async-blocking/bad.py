"""True positives: blocking calls inside async def bodies."""
import time


async def handle_request(queue, future, backend, arrays):
    time.sleep(0.1)  # expect: async-blocking
    frame = queue.get()  # expect: async-blocking
    answer = future.result()  # expect: async-blocking
    solution = backend.solve_arrays(*arrays)  # expect: async-blocking
    with open("audit.log") as handle:  # expect: async-blocking
        handle.read()
    return frame, answer, solution


async def pump(sock):
    return sock.recv(4096)  # expect: async-blocking
