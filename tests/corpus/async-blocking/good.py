"""Near misses: awaited or executor-routed equivalents."""
import asyncio


async def handle_request(loop, queue, future, session, item, options):
    await asyncio.sleep(0.1)
    frame = await queue.get()  # awaited: the async-native queue read
    answer = await loop.run_in_executor(None, future.result)
    submitted = session.submit(item)  # scheduling, not solving, here
    mode = options.get("mode", "fast")  # dict.get takes arguments
    return frame, answer, submitted, mode


def blocking_helper(queue):
    # Synchronous by design: this helper runs inside the executor.
    return queue.get()


async def delegate(loop, queue):
    return await loop.run_in_executor(None, blocking_helper, queue)
