"""Tests for subgraph patterns, enumeration, counting and annotation."""

import itertools
import math

import pytest

from repro.boolexpr import And, Var
from repro.errors import PatternError
from repro.graphs import Graph, erdos_renyi
from repro.subgraphs import (
    Pattern,
    count_k_stars,
    count_triangles,
    enumerate_k_cliques,
    enumerate_k_stars,
    enumerate_k_triangles,
    enumerate_paths,
    enumerate_subgraphs,
    enumerate_triangles,
    k_clique,
    k_star,
    k_triangle,
    path_pattern,
    subgraph_krelation,
    triangle,
)
from repro.subgraphs.counting import count_k_triangles


@pytest.fixture
def diamond():
    """Two triangles sharing edge (1,2)."""
    return Graph(edges=[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])


class TestPatterns:
    def test_triangle_shape(self):
        p = triangle()
        assert p.num_nodes == 3
        assert p.num_edges == 3

    def test_k_star_shape(self):
        p = k_star(4)
        assert p.num_nodes == 5
        assert p.num_edges == 4

    def test_k_triangle_shape(self):
        p = k_triangle(2)
        assert p.num_nodes == 4
        assert p.num_edges == 5

    def test_k_clique_shape(self):
        p = k_clique(4)
        assert p.num_edges == 6

    def test_path_shape(self):
        p = path_pattern(3)
        assert p.num_nodes == 4

    @pytest.mark.parametrize(
        "factory,arg", [(k_star, 0), (k_triangle, 0), (k_clique, 1), (path_pattern, 0)]
    )
    def test_invalid_parameters(self, factory, arg):
        with pytest.raises(PatternError):
            factory(arg)

    def test_disconnected_pattern_rejected(self):
        with pytest.raises(PatternError):
            Pattern([(0, 1), (2, 3)], name="disconnected")

    def test_constraint_on_unknown_node_rejected(self):
        with pytest.raises(PatternError):
            Pattern([(0, 1)], node_constraints={5: lambda d: True})


class TestEnumerators:
    def test_triangles_on_diamond(self, diamond):
        triangles = list(enumerate_triangles(diamond))
        assert len(triangles) == 2
        node_sets = {occ.nodes for occ in triangles}
        assert frozenset({0, 1, 2}) in node_sets
        assert frozenset({1, 2, 3}) in node_sets

    def test_triangle_occurrence_edges(self, diamond):
        occ = next(
            o for o in enumerate_triangles(diamond) if o.nodes == frozenset({0, 1, 2})
        )
        assert occ.edges == frozenset({(0, 1), (0, 2), (1, 2)})

    def test_k_stars_closed_form(self, diamond):
        for k in (1, 2, 3):
            assert len(list(enumerate_k_stars(diamond, k))) == count_k_stars(diamond, k)

    def test_k_star_counts_match_binomials(self):
        g = Graph(edges=[(0, i) for i in range(1, 6)])  # star with 5 leaves
        assert count_k_stars(g, 2) == math.comb(5, 2) + 5 * math.comb(1, 2)
        assert count_k_stars(g, 5) == 1

    def test_one_stars_are_edges(self, diamond):
        assert count_k_stars(diamond, 1) == diamond.num_edges

    def test_k_triangles_on_diamond(self, diamond):
        # each of the 2 triangles is a 1-triangle based at any of its edges:
        # Σ_e C(a_e, 1) = a(0,1)=1, a(0,2)=1, a(1,2)=2, a(1,3)=1, a(2,3)=1 = 6
        assert len(list(enumerate_k_triangles(diamond, 1))) == 6
        # exactly one 2-triangle (base edge (1,2) with apexes 0 and 3)
        two = list(enumerate_k_triangles(diamond, 2))
        assert len(two) == 1
        assert two[0].nodes == frozenset({0, 1, 2, 3})
        assert count_k_triangles(diamond, 2) == 1

    def test_k_cliques(self):
        g = Graph(edges=[(i, j) for i in range(5) for j in range(i + 1, 5)])
        assert len(list(enumerate_k_cliques(g, 3))) == math.comb(5, 3)
        assert len(list(enumerate_k_cliques(g, 4))) == math.comb(5, 4)

    def test_paths(self):
        g = Graph(edges=[(0, 1), (1, 2), (2, 3)])
        assert len(list(enumerate_paths(g, 1))) == 3
        assert len(list(enumerate_paths(g, 3))) == 1

    def test_count_triangles_matches_enumeration(self):
        g = erdos_renyi(25, 0.3, rng=1)
        assert count_triangles(g) == len(list(enumerate_triangles(g)))


class TestGenericMatcher:
    def test_matches_triangle_enumerator(self):
        g = erdos_renyi(18, 0.35, rng=2)
        generic = {occ.edges for occ in enumerate_subgraphs(g, triangle())}
        fast = {occ.edges for occ in enumerate_triangles(g)}
        assert generic == fast

    def test_matches_k_star_enumerator(self):
        g = erdos_renyi(14, 0.3, rng=3)
        generic = {occ.edges for occ in enumerate_subgraphs(g, k_star(2))}
        fast = {occ.edges for occ in enumerate_k_stars(g, 2)}
        assert generic == fast

    def test_matches_k_triangle_enumerator(self):
        g = erdos_renyi(12, 0.45, rng=4)
        generic = {occ.edges for occ in enumerate_subgraphs(g, k_triangle(2))}
        fast = {occ.edges for occ in enumerate_k_triangles(g, 2)}
        assert generic == fast

    def test_each_occurrence_once(self, diamond):
        occurrences = list(enumerate_subgraphs(diamond, triangle()))
        assert len(occurrences) == len({occ.edges for occ in occurrences})

    def test_node_constraints(self, diamond):
        """Only triangles whose every node has degree >= 3."""
        degrees = diamond.degrees()
        pattern = Pattern(
            [(0, 1), (1, 2), (0, 2)],
            name="hub-triangle",
            node_constraints={i: (lambda d: d >= 3) for i in range(3)},
        )
        occurrences = list(enumerate_subgraphs(diamond, pattern, node_data=degrees))
        # nodes 1 and 2 have degree 3; nodes 0 and 3 degree 2 -> no triangle
        assert occurrences == []

    def test_edge_constraints(self):
        g = Graph(edges=[(0, 1), (1, 2), (0, 2)])
        weights = {(0, 1): 5, (1, 2): 1, (0, 2): 5}
        pattern = Pattern(
            [(0, 1)],
            name="heavy-edge",
            edge_constraints={(0, 1): lambda w: (w or 0) >= 5},
        )
        occurrences = list(enumerate_subgraphs(g, pattern, edge_data=weights))
        assert len(occurrences) == 2


class TestAnnotation:
    def test_node_privacy_fig2a(self, diamond):
        rel = subgraph_krelation(diamond, triangle(), privacy="node")
        assert rel.num_participants == diamond.num_nodes
        annotations = {tuple(sorted(occ.nodes)): ann for occ, ann in rel.items()}
        assert annotations[(0, 1, 2)] == And((Var("v:0"), Var("v:1"), Var("v:2")))

    def test_edge_privacy_fig2a(self, diamond):
        rel = subgraph_krelation(diamond, triangle(), privacy="edge")
        assert rel.num_participants == diamond.num_edges
        for occ, annotation in rel.items():
            assert len(annotation.variables()) == 3
            assert all(name.startswith("e:") for name in annotation.variables())

    def test_invalid_privacy(self, diamond):
        with pytest.raises(PatternError):
            subgraph_krelation(diamond, triangle(), privacy="both")

    def test_isolated_nodes_still_participants(self):
        g = Graph(nodes=[9], edges=[(0, 1), (1, 2), (0, 2)])
        rel = subgraph_krelation(g, triangle(), privacy="node")
        assert "v:9" in rel.participants

    def test_world_semantics_match_graph_deletion(self, diamond):
        """Withdrawing node 3's variable leaves exactly the triangles of G-3."""
        rel = subgraph_krelation(diamond, triangle(), privacy="node")
        reduced_world = rel.world(rel.participants - {"v:3"})
        smaller = diamond.copy()
        smaller.remove_node(3)
        assert len(reduced_world) == count_triangles(smaller)

    def test_precomputed_occurrences_used(self, diamond):
        occurrences = list(enumerate_triangles(diamond))[:1]
        rel = subgraph_krelation(
            diamond, triangle(), privacy="node", occurrences=occurrences
        )
        assert len(rel) == 1

    def test_constrained_pattern_dispatches_to_generic(self, diamond):
        pattern = Pattern(
            [(0, 1), (1, 2), (0, 2)],
            name="triangle",  # same name, but constrained
            node_constraints={0: lambda d: True},
        )
        rel = subgraph_krelation(diamond, pattern, privacy="node")
        assert len(rel) == 2
