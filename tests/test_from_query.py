"""Tests for SensitiveKRelation.from_query — the SQL-to-DP pipeline helper."""

import math

import pytest

from repro import (
    PROVENANCE,
    Join,
    KRelation,
    Project,
    Rename,
    SensitiveKRelation,
    Table,
    Tup,
    Var,
    private_linear_query,
)
from repro.boolexpr import is_dnf
from repro.graphs import Graph


@pytest.fixture
def tables():
    """A small friendship table with node-privacy annotations."""
    graph = Graph(edges=[("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")])
    table = KRelation({"src", "dst"}, PROVENANCE)
    for u, v in graph.edges():
        annotation = Var(u) & Var(v)
        table.add(Tup(src=u, dst=v), annotation)
        table.add(Tup(src=v, dst=u), annotation)
    return {"E": table}, list("abcd")


@pytest.fixture
def two_path_query():
    e1 = Rename(Table("E"), {"src": "u", "dst": "w"})
    e2 = Rename(Table("E"), {"src": "w", "dst": "v"})
    return Project(Join(e1, e2).where(lambda t: t["u"] < t["v"]), ("u", "v"))


class TestFromQuery:
    def test_builds_relation(self, tables, two_path_query):
        base, participants = tables
        relation = SensitiveKRelation.from_query(two_path_query, base, participants)
        assert relation.num_participants == 4
        assert len(relation) > 0

    def test_normalized_by_default(self, tables, two_path_query):
        base, participants = tables
        relation = SensitiveKRelation.from_query(two_path_query, base, participants)
        assert all(is_dnf(annotation) for annotation in relation.annotations())

    def test_raw_mode_keeps_algebra_provenance(self, tables, two_path_query):
        base, participants = tables
        raw = SensitiveKRelation.from_query(
            two_path_query, base, participants, normalize=False
        )
        normalized = SensitiveKRelation.from_query(
            two_path_query, base, participants, normalize=True
        )
        assert set(raw.support()) == set(normalized.support())
        # raw annotations repeat the shared node w across the join legs
        assert raw.total_annotation_length() >= normalized.total_annotation_length()

    def test_end_to_end_release(self, tables, two_path_query):
        base, participants = tables
        relation = SensitiveKRelation.from_query(two_path_query, base, participants)
        result = private_linear_query(relation, epsilon=4.0, node_privacy=True, rng=0)
        assert math.isfinite(result.answer)
        assert result.true_answer == len(relation)

    def test_world_matches_query_on_subgraph(self, tables, two_path_query):
        """Grounding the from_query relation at P-{c} equals re-running the
        query with c's rows removed."""
        base, participants = tables
        relation = SensitiveKRelation.from_query(two_path_query, base, participants)
        world = relation.world({"a", "b", "d"})
        reduced_graph = Graph(edges=[("a", "b")])  # edges not touching c
        reduced_table = KRelation({"src", "dst"}, PROVENANCE)
        for u, v in reduced_graph.edges():
            annotation = Var(u) & Var(v)
            reduced_table.add(Tup(src=u, dst=v), annotation)
            reduced_table.add(Tup(src=v, dst=u), annotation)
        reduced_output = two_path_query.evaluate({"E": reduced_table})
        assert {tuple(sorted(t.items())) for t in world} == {
            tuple(sorted(t.items())) for t in reduced_output.support()
        }
