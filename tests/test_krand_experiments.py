"""Tests for random K-relation generators and the experiment harness."""

import math

import numpy as np
import pytest

from repro.boolexpr import And, Or
from repro.core import universal_empirical_sensitivity
from repro.errors import SensitiveModelError
from repro.experiments import (
    MECHANISM_NAMES,
    format_series,
    format_table,
    make_runner,
    median_relative_error,
    resolve_scale,
    run_mechanism_trials,
)
from repro.experiments.harness import Scale, aggregate_median
from repro.experiments.mechanisms import parse_query, true_count
from repro.graphs import random_graph_with_avg_degree
from repro.krand import random_cnf_krelation, random_dnf_krelation


class TestKrandGenerators:
    def test_dnf_shape(self):
        rel = random_dnf_krelation(50, clauses=4, rng=0)
        assert len(rel) == 50
        assert rel.num_participants == 50
        for _, annotation in rel.items():
            assert isinstance(annotation, Or)
            assert len(annotation.children) == 4
            for clause in annotation.children:
                assert isinstance(clause, And)
                assert len(clause.variables()) == 3

    def test_cnf_shape(self):
        rel = random_cnf_krelation(50, clauses=4, rng=0)
        for _, annotation in rel.items():
            assert isinstance(annotation, And)
            assert len(annotation.children) == 4
            for clause in annotation.children:
                assert isinstance(clause, Or)

    def test_single_clause_degenerates(self):
        rel = random_dnf_krelation(10, clauses=1, rng=0)
        for _, annotation in rel.items():
            assert isinstance(annotation, And)  # single conjunction

    def test_deterministic(self):
        r1 = random_dnf_krelation(20, 3, rng=5)
        r2 = random_dnf_krelation(20, 3, rng=5)
        assert dict(r1.items()) == dict(r2.items())

    def test_participant_count_override(self):
        rel = random_dnf_krelation(10, 2, num_participants=30, rng=0)
        assert rel.num_participants == 30

    def test_invalid_shapes(self):
        with pytest.raises(SensitiveModelError):
            random_dnf_krelation(-1, 3)
        with pytest.raises(SensitiveModelError):
            random_cnf_krelation(10, 0)
        with pytest.raises(SensitiveModelError):
            random_dnf_krelation(2, 3, width=5)

    def test_cnf_sensitivity_grows_with_clauses(self):
        from repro.boolexpr import max_phi_sensitivity

        small = random_cnf_krelation(30, 2, rng=1)
        large = random_cnf_krelation(30, 8, rng=1)
        assert max_phi_sensitivity(large.annotations()) >= max_phi_sensitivity(
            small.annotations()
        )


class TestHarness:
    def test_median_relative_error(self):
        assert median_relative_error([90, 100, 110], 100) == pytest.approx(0.1)

    def test_median_relative_error_zero_truth(self):
        assert median_relative_error([0, 0, 0], 0) == 0.0
        assert math.isinf(median_relative_error([0, 1, 1], 0))

    def test_median_relative_error_empty(self):
        with pytest.raises(ValueError):
            median_relative_error([], 1.0)

    def test_aggregate_median(self):
        assert aggregate_median([1.0, 3.0, 2.0]) == 2.0

    def test_run_mechanism_trials(self):
        calls = []

        def run_once(rng):
            calls.append(1)
            return 100.0 + float(rng.normal(0, 1))

        error = run_mechanism_trials(run_once, 100.0, trials=9, rng=0)
        assert len(calls) == 9
        assert error < 0.05

    def test_resolve_scale(self, monkeypatch):
        assert resolve_scale("smoke").name == "smoke"
        monkeypatch.setenv("REPRO_BENCH_SCALE", "full")
        assert resolve_scale().name == "full"
        with pytest.raises(ValueError):
            resolve_scale("huge")


class TestMechanismRunners:
    def test_parse_query(self):
        assert parse_query("triangle").name == "triangle"
        assert parse_query("3-star").num_edges == 3
        assert parse_query("2-triangle").num_nodes == 4
        from repro.errors import MechanismError

        with pytest.raises(MechanismError):
            parse_query("square")

    def test_true_count_consistency(self):
        g = random_graph_with_avg_degree(30, 6, rng=2)
        from repro.subgraphs import count_triangles

        assert true_count(g, "triangle") == count_triangles(g)

    @pytest.mark.parametrize("mechanism", MECHANISM_NAMES)
    def test_all_runners_produce_finite_answers(self, mechanism):
        g = random_graph_with_avg_degree(25, 8, rng=3)
        run_once, truth = make_runner(mechanism, g, "triangle", epsilon=1.0)
        rng = np.random.default_rng(0)
        answer = run_once(rng)
        assert math.isfinite(answer)
        assert truth > 0

    def test_unknown_mechanism(self):
        from repro.errors import MechanismError

        g = random_graph_with_avg_degree(10, 4, rng=0)
        with pytest.raises(MechanismError):
            make_runner("magic", g, "triangle", 1.0)


class TestReporting:
    def test_format_table(self):
        text = format_table(
            [{"a": 1, "b": 0.5}, {"a": 2, "b": float("inf")}],
            ["a", "b"],
            title="demo",
        )
        assert "demo" in text
        assert "inf" in text

    def test_format_series(self):
        text = format_series("x", [1, 2], {"m1": [0.1, 0.2], "m2": [1e-9, 2e9]})
        assert "m1" in text and "m2" in text
        assert "1e-09" in text or "1.00e-09" in text

    def test_format_value_handles_none_nan(self):
        from repro.experiments.reporting import format_value

        assert format_value(None) == "-"
        assert format_value(float("nan")) == "nan"
        assert format_value("label") == "label"


class TestSweepsSmoke:
    """Tiny end-to-end runs of each figure module (smoke scale)."""

    def _tiny_scale(self):
        return Scale("tiny", 0.1, 3, 1, 0.03, 0.015, sweep_points=3)

    def test_fig4_point(self):
        from repro.experiments.synthetic import accuracy_point

        error = accuracy_point(
            24, 6, "triangle", "recursive-edge", 0.5, self._tiny_scale(), rng=0
        )
        assert error >= 0

    def test_fig5_runtime_point(self):
        from repro.experiments.runtime import runtime_point

        row = runtime_point(24, 6, "triangle", "edge", rng=0)
        assert row["mechanism_seconds"] > 0
        assert row["tuples"] >= 0

    def test_fig8_point(self):
        from repro.experiments.krelations import krelation_point

        row = krelation_point("dnf", 30, 3, 0.5, trials=3, rng=0)
        assert row["true_answer"] == 30.0
        assert row["median_relative_error"] >= 0
        assert row["us_reference"] > 0

    def test_fig8_rejects_bad_kind(self):
        from repro.experiments.krelations import krelation_point

        with pytest.raises(ValueError):
            krelation_point("xor", 10, 3, 0.5, trials=1)

    def test_fig6_table(self):
        from repro.experiments.real_graphs import fig6_dataset_table

        rows = fig6_dataset_table(
            datasets=["1138_bus"], scale=self._tiny_scale(), rng=0
        )
        assert rows[0]["dataset"] == "1138_bus"
        assert rows[0]["paper_triangles"] == 128
        assert rows[0]["node_seconds"] > 0

    def test_fig7_table(self):
        from repro.experiments.real_graphs import fig7_accuracy_table

        rows = fig7_accuracy_table(
            datasets=["1138_bus"],
            mechanisms=["recursive-edge", "rhms"],
            scale=self._tiny_scale(),
            rng=0,
        )
        assert set(rows[0]) == {"dataset", "recursive-edge", "rhms"}

    def test_fig1_comparison(self):
        from repro.experiments.comparison import fig1_comparison_table

        rows = fig1_comparison_table(
            num_nodes=30, queries=["triangle"], scale=self._tiny_scale(), rng=0
        )
        assert len(rows) == 5  # four mechanisms + the PINQ-restricted row
        mechanisms = {row["mechanism"] for row in rows}
        assert mechanisms == set(MECHANISM_NAMES) | {"pinq-restricted"}
