"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.boolexpr import Var
from repro.graphs import Graph
from repro.lp import ScipyBackend, SimplexBackend
from repro.lp import backends as lp_backends

#: Every solver backend registered AND usable in this environment — scipy is
#: always present; "highs" joins when the scipy HiGHS bindings expose the
#: persistent engine; "gurobi" joins only with gurobipy plus a license.
AVAILABLE_LP_BACKENDS = tuple(lp_backends.available())


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(params=AVAILABLE_LP_BACKENDS)
def lp_backend(request):
    """Parametrized over every registered-and-available solver backend."""
    return lp_backends.create(request.param)


@pytest.fixture
def scipy_backend():
    return ScipyBackend()


@pytest.fixture
def simplex_backend():
    return SimplexBackend()


@pytest.fixture(params=["scipy", "simplex"])
def any_backend(request):
    """Parametrized over both LP backends (for conformance tests)."""
    if request.param == "scipy":
        return ScipyBackend()
    return SimplexBackend()


@pytest.fixture
def paper_graph():
    """The 6-node social network of Fig. 2 (a-b-c-d-e path of triangles)."""
    g = Graph()
    for u, v in [
        ("a", "b"),
        ("a", "c"),
        ("b", "c"),
        ("b", "d"),
        ("c", "d"),
        ("c", "e"),
        ("d", "e"),
        ("e", "f"),
    ]:
        g.add_edge(u, v)
    return g


@pytest.fixture
def small_random_graph():
    from repro.graphs import random_graph_with_avg_degree

    return random_graph_with_avg_degree(30, 6, rng=7)


@pytest.fixture
def abc_vars():
    return Var("a"), Var("b"), Var("c")
