"""Tests for empirical sensitivity notions (Def. 9, 10, 15, 16)."""

import pytest

from repro.boolexpr import Var, parse
from repro.core import (
    CountQuery,
    SensitiveKRelation,
    global_empirical_sensitivity,
    impact,
    local_empirical_sensitivity,
    universal_empirical_sensitivity,
)
from repro.core.queries import WeightedQuery
from repro.errors import SensitiveModelError
from repro.graphs import Graph
from repro.subgraphs import subgraph_krelation, triangle


def count_query(world) -> float:
    return float(len(world))


class TestLocalEmpirical:
    def test_triangle_example(self):
        """Fig. 2(a): node c is in all 3 triangles, ~LS = 3."""
        rel = SensitiveKRelation(
            list("abcdef"),
            [(t, parse(" & ".join(t))) for t in ("abc", "bcd", "cde")],
        )
        db = rel.as_sensitive_database()
        assert local_empirical_sensitivity(count_query, db) == 3.0

    def test_empty_participants(self):
        rel = SensitiveKRelation([], [])
        db = rel.as_sensitive_database()
        assert local_empirical_sensitivity(count_query, db) == 0.0

    def test_bounded_by_global_empirical(self):
        rel = SensitiveKRelation(
            ["a", "b", "c", "d"],
            [("t1", parse("a & b")), ("t2", parse("(b | c) & d")), ("t3", Var("d"))],
        )
        db = rel.as_sensitive_database()
        assert local_empirical_sensitivity(
            count_query, db
        ) <= global_empirical_sensitivity(count_query, db)


class TestGlobalEmpirical:
    def test_can_exceed_local(self):
        """~GS maximizes over ancestors, so it can exceed ~LS at the top.

        Two tuples t1 = a|b, t2 = a|c: at full participation removing any
        one participant changes nothing (~LS = 0), but the ancestor {a}
        loses both tuples when a withdraws (~GS = 2).
        """
        rel = SensitiveKRelation(
            ["a", "b", "c"], [("t1", parse("a | b")), ("t2", parse("a | c"))]
        )
        db = rel.as_sensitive_database()
        assert local_empirical_sensitivity(count_query, db) == 0.0
        assert global_empirical_sensitivity(count_query, db) == 2.0

    def test_guard_on_large_participant_sets(self):
        rel = SensitiveKRelation([f"p{i}" for i in range(25)], [("t", Var("p0"))])
        with pytest.raises(SensitiveModelError):
            global_empirical_sensitivity(count_query, rel.as_sensitive_database())


class TestImpact:
    def test_impact_lists_affected_tuples(self):
        rel = SensitiveKRelation(
            ["a", "b", "c"],
            [("t1", parse("a & b")), ("t2", parse("b & c")), ("t3", Var("c"))],
        )
        assert impact("a", rel) == ["t1"]
        assert set(impact("c", rel)) == {"t2", "t3"}

    def test_unimpacted_variable(self):
        """A variable that is syntactically present but φ-irrelevant."""
        rel = SensitiveKRelation(
            ["a", "b"], [("t", parse("a | (a & b)"))], validate=True
        )
        # dropping b: a | (a & False) = a; φ(a|(a&b)) vs φ(a)?  At f=(.6,.9):
        # max(.6, .6+.9-1) = .6 — equal to φ(a) everywhere, so b has no impact.
        assert impact("b", rel) == []
        assert impact("a", rel) == ["t"]

    def test_unknown_participant(self):
        rel = SensitiveKRelation(["a"], [("t", Var("a"))])
        with pytest.raises(SensitiveModelError):
            impact("z", rel)


class TestUniversalEmpirical:
    def test_counts_tuples_per_participant(self):
        rel = SensitiveKRelation(
            list("abcdef"),
            [(t, parse(" & ".join(t))) for t in ("abc", "bcd", "cde")],
        )
        q = CountQuery()
        assert universal_empirical_sensitivity(q, rel, "c") == 3.0
        assert universal_empirical_sensitivity(q, rel, "a") == 1.0
        assert universal_empirical_sensitivity(q, rel) == 3.0

    def test_weighted_query(self):
        rel = SensitiveKRelation(["a", "b"], [("t1", parse("a & b")), ("t2", Var("a"))])
        q = WeightedQuery(lambda t: 2.0 if t == "t1" else 5.0)
        assert universal_empirical_sensitivity(q, rel, "a") == 7.0
        assert universal_empirical_sensitivity(q, rel, "b") == 2.0

    def test_equals_local_empirical_for_subgraph_counting(self):
        """Sec. 5.2: for subgraph counting ~US = ~GS = ~LS."""
        g = Graph(edges=[(0, 1), (1, 2), (0, 2), (2, 3), (1, 3)])
        rel = subgraph_krelation(g, triangle(), privacy="node")
        us = universal_empirical_sensitivity(CountQuery(), rel)
        ls = local_empirical_sensitivity(count_query, rel.as_sensitive_database())
        assert us == ls

    def test_empty_relation(self):
        rel = SensitiveKRelation(["a"], [])
        assert universal_empirical_sensitivity(CountQuery(), rel) == 0.0
