"""Property test: the compiled-LP fast path equals the legacy clone path.

For random small annotated relations, ``solve_h`` / ``solve_g`` /
``solve_g_uniform`` / ``solve_x_relaxation`` through the one-time-compiled
CSR arrays must match the ``LinearProgram.clone()`` re-assembly path within
1e-6, and the full mechanism (Δ and X, in both ``"paper"`` and
``"uniform"`` bounding modes) must agree on its deterministic
intermediates.  The solve-path test runs once per registered-and-available
solver backend (the ``lp_backend`` fixture), so every backend in the
registry is held to the same equivalence contract.
"""

import random

import pytest

from repro.boolexpr.expr import And, Or, Var
from repro.core import (
    EfficientRecursiveMechanism,
    RecursiveMechanismParams,
    SensitiveKRelation,
)
from repro.relax.encode import EncodedRelation


def random_expression(rng: random.Random, names, depth: int):
    """A random positive expression (Var/And/Or) over ``names``."""
    if depth == 0 or rng.random() < 0.3:
        return Var(rng.choice(names))
    arity = rng.randint(2, 3)
    children = [random_expression(rng, names, depth - 1) for _ in range(arity)]
    node = And(children) if rng.random() < 0.5 else Or(children)
    if not isinstance(node, (And, Or)):  # folded to a leaf — retry shallower
        return random_expression(rng, names, 0)
    return node


def random_relation(seed: int):
    rng = random.Random(seed)
    names = [f"p{i}" for i in range(rng.randint(3, 6))]
    annotated = [
        (random_expression(rng, names, rng.randint(1, 3)), rng.uniform(0.5, 3.0))
        for _ in range(rng.randint(1, 5))
    ]
    return names, annotated


@pytest.mark.parametrize("seed", range(12))
def test_compiled_matches_legacy_solves(seed, lp_backend):
    names, annotated = random_relation(seed)
    compiled = EncodedRelation(names, annotated, lp_backend)
    legacy = EncodedRelation(names, annotated, lp_backend, compiled=False)
    assert compiled.is_compiled
    assert not legacy.is_compiled

    indices = list(range(len(names) + 1)) + [0.5, len(names) - 0.5]
    for i in indices:
        assert compiled.solve_h(i) == pytest.approx(legacy.solve_h(i), abs=1e-6)
        assert compiled.solve_g(i) == pytest.approx(legacy.solve_g(i), abs=1e-6)
        assert compiled.solve_g_uniform(i) == pytest.approx(
            legacy.solve_g_uniform(i), abs=1e-6
        )
    assert compiled.solve_h_many(indices) == pytest.approx(
        [legacy.solve_h(i) for i in indices], abs=1e-6
    )
    for i in range(len(names) + 1):
        g_exact = legacy.solve_g(i)
        for threshold in (0.0, g_exact - 0.1, g_exact + 0.1, g_exact * 2 + 1.0):
            if threshold < 0:
                continue
            assert compiled.g_leq(i, threshold) == (g_exact <= threshold + 1e-9)
    for delta in (0.0, 0.05, 0.5, 2.0):
        value_c, index_c = compiled.solve_x_relaxation(delta)
        value_l, index_l = legacy.solve_x_relaxation(delta)
        assert value_c == pytest.approx(value_l, abs=1e-6)
        # the optimal mass i' need not be unique (flat stretches of H),
        # but both must be feasible masses
        assert 0.0 <= index_c <= len(names)
        assert 0.0 <= index_l <= len(names)


def test_h_entries_preserves_fractional_indices():
    """Batched cached access must not truncate fractional H indices."""
    names, annotated = random_relation(3)
    relation = SensitiveKRelation(
        names, [(f"t{k}", expr) for k, (expr, _) in enumerate(annotated)]
    )
    mechanism = EfficientRecursiveMechanism(relation)
    i = len(names) - 0.5
    assert mechanism.h_entries([i])[0] == pytest.approx(
        mechanism._encoded.solve_h(i), abs=1e-9
    )
    # integral floats share the cache slot with int callers
    mechanism.h_entries([2.0])
    assert 2 in mechanism._h_cache


@pytest.mark.parametrize("bounding", ["paper", "uniform"])
@pytest.mark.parametrize("seed", range(6))
def test_mechanism_intermediates_agree_across_paths(seed, bounding, lp_backend):
    names, annotated = random_relation(100 + seed)
    relation = SensitiveKRelation(
        names, [(f"t{k}", expr) for k, (expr, _) in enumerate(annotated)]
    )
    fast = EfficientRecursiveMechanism(relation, bounding=bounding, backend=lp_backend)
    slow = EfficientRecursiveMechanism(
        relation, bounding=bounding, backend=lp_backend, compiled=False
    )
    assert fast.is_compiled and not slow.is_compiled

    params = RecursiveMechanismParams.paper(1.0)
    delta_fast, j_fast = fast.compute_delta(params)
    delta_slow, j_slow = slow.compute_delta(params)
    assert delta_fast == pytest.approx(delta_slow, abs=1e-6)
    assert j_fast == j_slow
    for delta_hat in (0.1, 1.0):
        x_fast = fast._compute_x(delta_hat)
        x_slow = slow._compute_x(delta_hat)
        # X itself is unique (a minimum); its argmin may not be
        assert x_fast[0] == pytest.approx(x_slow[0], abs=1e-6)
