"""Tests for the PINQ-style baseline and the privacy accountant."""

import numpy as np
import pytest

from repro.baselines.pinq import PINQStyleLaplace
from repro.boolexpr import parse
from repro.core import (
    EfficientRecursiveMechanism,
    RecursiveMechanismParams,
    SensitiveKRelation,
)
from repro.core.accountant import BudgetExceededError, PrivacyAccountant
from repro.errors import MechanismError, PrivacyParameterError
from repro.graphs import random_graph_with_avg_degree
from repro.subgraphs import subgraph_krelation, triangle


@pytest.fixture
def star_relation():
    """One participant ('hub') appears in many tuples — unrestricted join."""
    pairs = [(f"t{i}", parse(f"hub & leaf{i}")) for i in range(10)]
    participants = ["hub"] + [f"leaf{i}" for i in range(10)]
    return SensitiveKRelation(participants, pairs)


class TestPINQBaseline:
    def test_restricted_join_is_unbiased(self):
        """When the bound holds, the clipped count equals the true count."""
        pairs = [(f"t{i}", parse(f"a{i} & b{i}")) for i in range(6)]
        participants = [f"a{i}" for i in range(6)] + [f"b{i}" for i in range(6)]
        relation = SensitiveKRelation(participants, pairs)
        mech = PINQStyleLaplace(relation, max_tuples_per_participant=1)
        assert mech.clipped_answer == mech.true_answer == 6.0
        assert mech.dropped_weight == 0.0

    def test_unrestricted_join_clips(self, star_relation):
        mech = PINQStyleLaplace(star_relation, max_tuples_per_participant=3)
        assert mech.true_answer == 10.0
        assert mech.clipped_answer == 3.0  # hub capped at 3 tuples
        assert mech.dropped_weight == 7.0

    def test_strict_mode_refuses(self, star_relation):
        with pytest.raises(MechanismError):
            PINQStyleLaplace(star_relation, max_tuples_per_participant=3, strict=True)

    def test_noise_scale_is_bound_over_epsilon(self, star_relation):
        mech = PINQStyleLaplace(star_relation, max_tuples_per_participant=4)
        assert mech.noise_scale(0.5) == pytest.approx(8.0)

    def test_run_returns_result(self, star_relation):
        result = PINQStyleLaplace(star_relation, 2).run(1.0, rng=0)
        assert result.mechanism == "pinq-bound-2"
        assert result.diagnostics["dropped_weight"] == 8.0

    def test_invalid_parameters(self, star_relation):
        with pytest.raises(PrivacyParameterError):
            PINQStyleLaplace(star_relation, 0)
        with pytest.raises(PrivacyParameterError):
            PINQStyleLaplace(star_relation, 2).run(0.0)

    def test_bias_vs_recursive_mechanism(self):
        """The paper's comparison: on unrestricted joins, PINQ-style clipping
        biases the answer while the recursive mechanism stays consistent."""
        g = random_graph_with_avg_degree(40, 8, rng=3)
        relation = subgraph_krelation(g, triangle(), privacy="node")
        pinq = PINQStyleLaplace(relation, max_tuples_per_participant=1)
        # heavy clipping: most triangles share nodes
        assert pinq.clipped_answer < 0.6 * pinq.true_answer
        recursive = EfficientRecursiveMechanism(relation)
        assert recursive.true_answer() == pinq.true_answer


class TestPrivacyAccountant:
    def test_basic_charging(self):
        accountant = PrivacyAccountant(total_epsilon=1.0)
        accountant.charge(0.4, label="q1")
        accountant.charge(0.6, label="q2")
        assert accountant.remaining == pytest.approx(0.0)
        assert [entry[0] for entry in accountant.ledger] == ["q1", "q2"]

    def test_over_budget_raises(self):
        accountant = PrivacyAccountant(total_epsilon=0.5)
        accountant.charge(0.4)
        with pytest.raises(BudgetExceededError):
            accountant.charge(0.2)
        assert accountant.spent == pytest.approx(0.4)  # unchanged

    def test_delta_tracking(self):
        accountant = PrivacyAccountant(total_epsilon=1.0, total_delta=0.1)
        accountant.charge(0.5, delta=0.05)
        assert not accountant.can_afford(0.1, delta=0.2)
        with pytest.raises(BudgetExceededError):
            accountant.charge(0.1, delta=0.06)

    def test_invalid_construction(self):
        with pytest.raises(PrivacyParameterError):
            PrivacyAccountant(total_epsilon=0.0)
        with pytest.raises(PrivacyParameterError):
            PrivacyAccountant(total_epsilon=1.0, total_delta=-0.1)

    def test_gated_mechanism_run(self):
        g = random_graph_with_avg_degree(20, 5, rng=1)
        relation = subgraph_krelation(g, triangle(), privacy="edge")
        mechanism = EfficientRecursiveMechanism(relation)
        accountant = PrivacyAccountant(total_epsilon=1.0)
        params = RecursiveMechanismParams.paper(0.6)
        result = accountant.run(mechanism, params, rng=0, label="triangles")
        assert result is not None
        assert accountant.remaining == pytest.approx(0.4)
        with pytest.raises(BudgetExceededError):
            accountant.run(mechanism, params, rng=0, label="again")
