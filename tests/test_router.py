"""Tests for the protocol-v2 multi-dataset router (:mod:`repro.service.router`).

The acceptance pins:

* a v1 client (raw ``v: 1`` frames, no ``dataset`` field) against a v2
  router gets **byte-identical** answers to the classic single-dataset
  service at the same seed — the default-dataset compatibility contract;
* explicit and default routing to the same dataset agree; routing to a
  different dataset answers over that dataset's graph;
* per-dataset writer tokens, per-dataset cache/stats counters, and the
  ``min_version`` / ``at_version`` consistency surface all behave as
  declared by the v2 ``hello``.
"""

from __future__ import annotations

import dataclasses
import json
import socket

import pytest

from repro import PrivateSession, random_graph_with_avg_degree
from repro.dynamic import VersionedGraph
from repro.errors import RemoteServiceError, ServiceForbidden
from repro.service import (
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    BackgroundService,
    PrivateQueryService,
    ResultFrame,
    ServiceClient,
    ServiceRouter,
    request_seed,
)
from repro.service.protocol import encode_frame
from repro.service.router import CAPABILITIES
from repro.session import HierarchicalAccountant, SharedCompiledCache

ROUTER_SEED = 20260801


@pytest.fixture(scope="module")
def alpha_graph():
    return random_graph_with_avg_degree(30, 5.0, rng=1)


@pytest.fixture(scope="module")
def beta_graph():
    return random_graph_with_avg_degree(24, 4.0, rng=2)


def _session(graph, *, cache=None, budget=None, user_budget=None, rng=7):
    accountant = HierarchicalAccountant(budget, default_user_budget=user_budget)
    return PrivateSession(
        graph,
        workers=1,
        rng=rng,
        accountant=accountant,
        cache=cache if cache is not None else SharedCompiledCache(maxsize=8),
    )


def _two_dataset_router(
    alpha_graph, beta_graph, *, seed=ROUTER_SEED, cache=None, **router_kwargs
):
    """A router serving static ``alpha`` (default) and ``beta``."""
    router = ServiceRouter(seed=seed, **router_kwargs)
    shared = cache if cache is not None else SharedCompiledCache(maxsize=16)
    sessions = [
        _session(alpha_graph, cache=shared.namespaced("alpha")),
        _session(beta_graph, cache=shared.namespaced("beta")),
    ]
    router.add_dataset("alpha", sessions[0], default=True)
    router.add_dataset("beta", sessions[1])
    return router, sessions


def _close_all(sessions):
    for session in sessions:
        session.close()


class TestHelloAndMounting:
    def test_hello_v2_shape(self, alpha_graph, beta_graph):
        router, sessions = _two_dataset_router(alpha_graph, beta_graph)
        with BackgroundService(router) as bg:
            with ServiceClient(bg.address) as client:
                hello = client.hello()
        assert hello["protocol"] == PROTOCOL_VERSION == 2
        assert hello["protocols"] == list(SUPPORTED_VERSIONS) == [1, 2]
        assert set(CAPABILITIES) <= set(hello["capabilities"])
        assert hello["role"] == "primary"
        assert hello["default_dataset"] == "alpha"
        assert set(hello["datasets"]) == {"alpha", "beta"}
        for row in hello["datasets"].values():
            assert row["updates"] is False and row["dynamic"] is False
            assert row["graph_version"] is None
            assert row["lp_backend"] == sessions[0].lp_backend
        # v1-compat keys still describe the default dataset
        assert hello["multi_tenant"] is True
        assert hello["updates"] is False
        assert "budget" in hello and "mechanisms" in hello
        _close_all(sessions)

    def test_mounting_rules(self, alpha_graph):
        router = ServiceRouter()
        with pytest.raises(KeyError, match="no datasets"):
            router.lane()
        session = _session(alpha_graph)
        router.add_dataset("alpha", session)
        assert router.default_dataset == "alpha"  # first mount is default
        with pytest.raises(ValueError, match="already mounted"):
            router.add_dataset("alpha", session)
        with pytest.raises(ValueError, match="non-empty string"):
            router.add_dataset("", session)
        with pytest.raises(TypeError, match="PrivateSession"):
            router.add_dataset("other", object())
        with pytest.raises(ValueError, match="dynamic"):
            router.add_dataset("upd", _session(alpha_graph), updates=True)
        session.close()


class TestRouting:
    def test_default_and_explicit_routing_identical(self, alpha_graph, beta_graph):
        router, sessions = _two_dataset_router(alpha_graph, beta_graph)
        with BackgroundService(router) as bg:
            with ServiceClient(bg.address) as client:
                implicit = client.query(
                    "triangle", epsilon=0.25, privacy="edge", seed=4242
                )
                explicit = client.query(
                    "triangle", epsilon=0.25, privacy="edge", seed=4242, dataset="alpha"
                )
        assert implicit["dataset"] == explicit["dataset"] == "alpha"
        assert implicit["answer"] == explicit["answer"]
        _close_all(sessions)

    def test_datasets_answer_over_their_own_graphs(self, alpha_graph, beta_graph):
        router, sessions = _two_dataset_router(alpha_graph, beta_graph)
        with BackgroundService(router) as bg:
            # a client pinned to beta via the constructor kwarg ...
            with ServiceClient(bg.address, dataset="beta") as client:
                beta = client.query("triangle", epsilon=0.25, privacy="edge", seed=4242)
                # ... can still route per call
                alpha = client.query(
                    "triangle", epsilon=0.25, privacy="edge", seed=4242, dataset="alpha"
                )
        assert beta["dataset"] == "beta" and alpha["dataset"] == "alpha"
        expected_beta = PrivateSession(beta_graph).query(
            "triangle", privacy="edge", epsilon=0.25, rng=4242
        )
        assert beta["answer"] == expected_beta.answer
        assert alpha["answer"] != beta["answer"]
        _close_all(sessions)

    def test_unknown_dataset_is_refused(self, alpha_graph, beta_graph):
        router, sessions = _two_dataset_router(alpha_graph, beta_graph)
        with BackgroundService(router) as bg:
            with ServiceClient(bg.address) as client:
                with pytest.raises(
                    RemoteServiceError, match="unknown_dataset"
                ) as excinfo:
                    client.query(
                        "triangle", epsilon=0.25, privacy="edge", dataset="gamma"
                    )
        assert "alpha" in str(excinfo.value)  # served datasets are listed
        _close_all(sessions)

    def test_per_dataset_seed_streams_are_independent(self, alpha_graph, beta_graph):
        """Each lane advances its own per-tenant granted counter."""
        router, sessions = _two_dataset_router(alpha_graph, beta_graph)
        with BackgroundService(router) as bg:
            with ServiceClient(bg.address, user="alice") as client:
                a0 = client.query("triangle", epsilon=0.2, privacy="edge")
                client.query("triangle", epsilon=0.2, privacy="edge", dataset="beta")
                a1 = client.query("triangle", epsilon=0.2, privacy="edge")
        reference = PrivateSession(alpha_graph, workers=1)
        for index, result in enumerate((a0, a1)):
            expected = reference.query(
                "triangle",
                privacy="edge",
                epsilon=0.2,
                rng=request_seed(ROUTER_SEED, "alice", index),
            )
            # the beta query in between must not shift alpha's stream
            assert result["answer"] == expected.answer
        reference.close()
        _close_all(sessions)


class TestV1Compatibility:
    def test_v1_frames_route_to_default_and_match_classic_service(self, alpha_graph):
        """A v1 client against the v2 router == the classic service."""
        classic_session = _session(alpha_graph)
        with BackgroundService(classic_session, seed=ROUTER_SEED) as bg:
            with ServiceClient(bg.address) as client:
                classic = client.query("triangle", epsilon=0.3, privacy="edge")
        classic_session.close()

        router, sessions = _two_dataset_router(
            alpha_graph, random_graph_with_avg_degree(10, 2.0, rng=9)
        )
        with BackgroundService(router) as bg:
            host, port = bg.address
            with socket.create_connection((host, port), timeout=30) as sock:
                file = sock.makefile("rb")
                sock.sendall(encode_frame({"v": 1, "id": 1, "op": "hello"}))
                hello = json.loads(file.readline())
                assert hello["v"] == 1 and hello["ok"] is True
                sock.sendall(
                    encode_frame(
                        {
                            "v": 1,
                            "id": 2,
                            "op": "query",
                            "query": "triangle",
                            "epsilon": 0.3,
                            "privacy": "edge",
                        }
                    )
                )
                frame = json.loads(file.readline())
        assert frame["v"] == 1 and frame["ok"] is True
        # no dataset field -> the default lane, same derived seed stream
        assert frame["result"]["dataset"] == "alpha"
        assert frame["result"]["answer"] == classic["answer"]
        _close_all(sessions)

    def test_classic_service_is_a_single_lane_router(self, alpha_graph):
        session = _session(alpha_graph)
        service = PrivateQueryService(session)
        assert isinstance(service, ServiceRouter)
        assert list(service.datasets) == ["default"]
        session.close()


class TestResultFrame:
    def test_query_payload_is_the_declared_frame(self, alpha_graph, beta_graph):
        router, sessions = _two_dataset_router(alpha_graph, beta_graph)
        with BackgroundService(router) as bg:
            with ServiceClient(bg.address, user="alice") as client:
                result = client.query(
                    "triangle", epsilon=0.25, privacy="edge", label="first"
                )
        fields = {f.name for f in dataclasses.fields(ResultFrame)}
        assert set(result) == fields  # every key on the wire, no ad-hoc ones
        frame = ResultFrame.from_payload(result)
        assert frame.dataset == "alpha"
        assert frame.user == "alice" and frame.label == "first"
        assert frame.status == "released" and frame.index == 0
        assert frame.lp_backend == sessions[0].lp_backend
        assert frame.version is None  # static dataset
        assert frame.seed is not None
        _close_all(sessions)

    def test_from_payload_ignores_unknown_keys(self):
        payload = {"answer": 1.5, "status": "released", "novel_field": True}
        frame = ResultFrame.from_payload(payload)
        assert frame.answer == 1.5 and frame.dataset is None


class TestWriterAuthAndVersions:
    def _dynamic_router(self, *, min_version_wait=0.3):
        router = ServiceRouter(seed=ROUTER_SEED, min_version_wait=min_version_wait)
        graphs = {
            "alpha": VersionedGraph(random_graph_with_avg_degree(20, 3.0, rng=3)),
            "beta": VersionedGraph(random_graph_with_avg_degree(20, 3.0, rng=4)),
        }
        sessions = []
        for name, graph in graphs.items():
            session = _session(graph)
            sessions.append(session)
            router.add_dataset(
                name,
                session,
                updates=True,
                writer_token=f"{name}-key",
                default=(name == "alpha"),
            )
        return router, sessions, graphs

    def test_writer_tokens_are_per_dataset(self):
        router, sessions, _ = self._dynamic_router()
        with BackgroundService(router) as bg:
            with ServiceClient(bg.address) as client:
                action = [{"action": "add_edge", "u": 100, "v": 101}]
                with pytest.raises(ServiceForbidden, match="writer token"):
                    client.update(action, token="beta-key")  # wrong lane's
                out = client.update(action, token="alpha-key")
                assert out["dataset"] == "alpha" and out["version"] == 1
                # beta is untouched by alpha's update
                stats = client.stats()
        assert stats["datasets"]["alpha"]["graph_version"] == 1
        assert stats["datasets"]["beta"]["graph_version"] == 0
        _close_all(sessions)

    def test_min_version_gates_and_version_behind(self):
        router, sessions, _ = self._dynamic_router(min_version_wait=0.3)
        with BackgroundService(router) as bg:
            with ServiceClient(bg.address) as client:
                # already satisfied: no wait
                ok = client.query(
                    "triangle", epsilon=0.2, privacy="edge", min_version=0
                )
                assert ok["version"] == 0
                with pytest.raises(RemoteServiceError, match="version_behind"):
                    client.query("triangle", epsilon=0.2, privacy="edge", min_version=5)
                # read-your-writes: write then read at the write's version
                out = client.update(
                    [{"action": "add_edge", "u": 200, "v": 201}],
                    token="alpha-key",
                )
                res = client.query(
                    "triangle", epsilon=0.2, privacy="edge", min_version=out["version"]
                )
                assert res["version"] == out["version"] == 1
        _close_all(sessions)

    def test_at_version_answers_historical_graph(self):
        router, sessions, graphs = self._dynamic_router()
        with BackgroundService(router) as bg:
            with ServiceClient(bg.address) as client:
                # fresh node ids: both edges are genuinely new, so the
                # batch commits exactly two versions
                client.update(
                    [
                        {"action": "add_edge", "u": 100, "v": 101},
                        {"action": "add_edge", "u": 100, "v": 102},
                    ],
                    token="alpha-key",
                )
                historical = client.query(
                    "triangle", epsilon=0.25, privacy="edge", seed=777, at_version=0
                )
                live = client.query("triangle", epsilon=0.25, privacy="edge", seed=777)
        assert historical["version"] == 0 and live["version"] == 2
        fresh = PrivateSession(graphs["alpha"].at_version(0), workers=1)
        expected = fresh.query("triangle", privacy="edge", epsilon=0.25, rng=777)
        fresh.close()
        assert historical["answer"] == expected.answer
        _close_all(sessions)


class TestPerDatasetStats:
    def test_cache_counters_are_namespaced(self, alpha_graph, beta_graph):
        shared = SharedCompiledCache(maxsize=16)
        router, sessions = _two_dataset_router(alpha_graph, beta_graph, cache=shared)
        with BackgroundService(router) as bg:
            with ServiceClient(bg.address) as client:
                client.query("triangle", epsilon=0.1, privacy="edge", seed=1)
                client.query("triangle", epsilon=0.1, privacy="edge",
                             seed=2)  # same compiled relation: a hit
                client.query(
                    "triangle", epsilon=0.1, privacy="edge", seed=3, dataset="beta"
                )
                stats = client.stats()
        alpha = stats["datasets"]["alpha"]
        beta = stats["datasets"]["beta"]
        assert alpha["cache"]["misses"] == 1 and alpha["cache"]["hits"] == 1
        assert beta["cache"]["misses"] == 1 and beta["cache"]["hits"] == 0
        assert alpha["granted"] == 0  # explicit seeds don't advance streams
        assert stats["role"] == "primary"
        assert stats["default_dataset"] == "alpha"
        # one store underneath: both datasets' entries count to the bound
        assert shared.info().size == 2
        _close_all(sessions)

    def test_namespaced_views_do_not_share_entries(self, alpha_graph):
        """One graph under two dataset names compiles twice — namespaces
        isolate tenants even when the data coincides."""
        shared = SharedCompiledCache(maxsize=8)
        s1 = PrivateSession(alpha_graph, cache=shared.namespaced("one"))
        s2 = PrivateSession(alpha_graph, cache=shared.namespaced("two"))
        a = s1.query("triangle", privacy="edge", epsilon=0.2, rng=5)
        b = s2.query("triangle", privacy="edge", epsilon=0.2, rng=5)
        assert a.answer == b.answer  # same graph, same seed
        assert shared.namespaced("one").info().misses == 1
        assert shared.namespaced("two").info().misses == 1
        assert shared.namespaced("two").info().hits == 0
        assert shared.info().size == 2
        s1.close()
        s2.close()


class TestClientSurface:
    def test_positional_host_port_ctor_is_deprecated(self, alpha_graph):
        session = _session(alpha_graph)
        with BackgroundService(session) as bg:
            host, port = bg.address
            with pytest.warns(DeprecationWarning, match="deprecated"):
                client = ServiceClient(host, port)
            with client:
                assert client.ping()["pong"] is True
        session.close()

    def test_connect_context_manager(self, alpha_graph):
        session = _session(alpha_graph)
        with BackgroundService(session) as bg:
            host, port = bg.address
            with ServiceClient(f"{host}:{port}").connect() as client:
                assert client.ping()["pong"] is True
        session.close()

    def test_connect_surfaces_connection_errors_eagerly(self):
        client = ServiceClient("127.0.0.1:1")  # nothing listens on port 1
        with pytest.raises(OSError):
            client.connect()
