"""Tests for graph statistics and stand-in validation."""

import math

import pytest

from repro.graphs import Graph, erdos_renyi, load_dataset, preferential_attachment
from repro.graphs.stats import (
    average_clustering_coefficient,
    connected_components,
    degree_assortativity_proxy,
    degree_histogram,
    global_clustering_coefficient,
    largest_component_size,
    summarize,
    triangle_density,
)


@pytest.fixture
def triangle_graph():
    return Graph(edges=[(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def two_components():
    return Graph(edges=[(0, 1), (1, 2), (10, 11)])


class TestBasicStats:
    def test_degree_histogram(self, triangle_graph):
        assert degree_histogram(triangle_graph) == {2: 3}

    def test_degree_histogram_star(self):
        g = Graph(edges=[(0, i) for i in range(1, 5)])
        assert degree_histogram(g) == {4: 1, 1: 4}

    def test_connected_components(self, two_components):
        components = connected_components(two_components)
        assert [len(c) for c in components] == [3, 2]
        assert largest_component_size(two_components) == 3

    def test_components_empty_graph(self):
        assert connected_components(Graph()) == []
        assert largest_component_size(Graph()) == 0

    def test_clustering_triangle_is_one(self, triangle_graph):
        assert global_clustering_coefficient(triangle_graph) == pytest.approx(1.0)
        assert average_clustering_coefficient(triangle_graph) == pytest.approx(1.0)

    def test_clustering_star_is_zero(self):
        g = Graph(edges=[(0, i) for i in range(1, 5)])
        assert global_clustering_coefficient(g) == 0.0
        assert average_clustering_coefficient(g) == 0.0

    def test_clustering_bounded(self):
        g = erdos_renyi(40, 0.2, rng=1)
        assert 0.0 <= global_clustering_coefficient(g) <= 1.0
        assert 0.0 <= average_clustering_coefficient(g) <= 1.0

    def test_gnp_clustering_near_p(self):
        """For G(n,p), transitivity concentrates near p."""
        g = erdos_renyi(150, 0.2, rng=2)
        assert global_clustering_coefficient(g) == pytest.approx(0.2, abs=0.05)

    def test_triangle_density(self, triangle_graph):
        assert triangle_density(triangle_graph) == pytest.approx(1.0 / 3.0)
        assert triangle_density(Graph()) == 0.0

    def test_degree_spread(self):
        hub = Graph(edges=[(0, i) for i in range(1, 10)])
        ring = Graph(edges=[(i, (i + 1) % 8) for i in range(8)])
        assert degree_assortativity_proxy(hub) > degree_assortativity_proxy(ring)
        assert degree_assortativity_proxy(Graph()) == 0.0

    def test_summarize_keys(self, triangle_graph):
        summary = summarize(triangle_graph)
        assert summary["nodes"] == 3.0
        assert summary["global_clustering"] == pytest.approx(1.0)
        assert set(summary) == {
            "nodes", "edges", "average_degree", "max_degree",
            "largest_component", "global_clustering", "triangle_density",
            "degree_spread",
        }


class TestStandInValidation:
    """The dataset stand-ins must reproduce the qualitative structure the
    experiments depend on (DESIGN.md §4)."""

    def test_collaboration_clustering_exceeds_grid(self):
        collab = load_dataset("netscience", scale=0.05)
        grid = load_dataset("bcspwr10", scale=0.05)
        assert (
            global_clustering_coefficient(collab)
            > 3 * global_clustering_coefficient(grid)
        )

    def test_collaboration_heavy_tailed(self):
        collab = load_dataset("ca-GrQc", scale=0.05)
        grid = load_dataset("power", scale=0.05)
        assert degree_assortativity_proxy(collab) > degree_assortativity_proxy(grid)

    def test_preferential_attachment_clustering_from_closure(self):
        open_graph = preferential_attachment(200, 3, rng=1, closure_probability=0.0)
        closed_graph = preferential_attachment(200, 3, rng=1, closure_probability=0.8)
        assert (
            global_clustering_coefficient(closed_graph)
            > 2 * global_clustering_coefficient(open_graph)
        )
