"""Property-based tests for the algebra layer (hypothesis).

Checks the semiring-lifted laws of positive relational algebra on random
provenance-annotated relations, and the fundamental provenance property:
grounding annotations under a random valuation commutes with evaluating
the query on the grounded database.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import (
    BOOLEAN,
    PROVENANCE,
    KRelation,
    Tup,
    natural_join,
    project,
    select,
    union,
)
from repro.boolexpr import And, Expr, Or, Var
from repro.relax import phi_equivalent

VARS = ["p0", "p1", "p2", "p3"]
VALUES = [0, 1, 2]


def annotations() -> st.SearchStrategy[Expr]:
    leaves = st.sampled_from([Var(v) for v in VARS])
    return st.recursive(
        leaves,
        lambda kids: st.lists(kids, min_size=2, max_size=2).map(And)
        | st.lists(kids, min_size=2, max_size=2).map(Or),
        max_leaves=4,
    )


def relations(attrs: tuple) -> st.SearchStrategy[KRelation]:
    tuple_strategy = st.fixed_dictionaries(
        {a: st.sampled_from(VALUES) for a in attrs}
    ).map(Tup)
    entry = st.tuples(tuple_strategy, annotations())
    return st.lists(entry, max_size=5).map(
        lambda pairs: KRelation(attrs, PROVENANCE, dict(pairs))
    )


def _equivalent_relations(r1: KRelation, r2: KRelation) -> bool:
    """Same support; annotations equal up to φ-equivalence."""
    if set(r1.support()) != set(r2.support()):
        return False
    return all(phi_equivalent(r1.annotation(t), r2.annotation(t)) for t in r1.support())


@given(relations(("a",)), relations(("a",)))
@settings(max_examples=60, deadline=None)
def test_union_commutative_up_to_phi(r1, r2):
    assert _equivalent_relations(union(r1, r2), union(r2, r1))


@given(relations(("a",)), relations(("a",)), relations(("a",)))
@settings(max_examples=60, deadline=None)
def test_union_associative_up_to_phi(r1, r2, r3):
    assert _equivalent_relations(union(union(r1, r2), r3), union(r1, union(r2, r3)))


@given(relations(("a", "b")), relations(("b", "c")))
@settings(max_examples=60, deadline=None)
def test_join_commutative_up_to_phi(r1, r2):
    assert _equivalent_relations(natural_join(r1, r2), natural_join(r2, r1))


@given(relations(("a", "b")), relations(("b", "c")), relations(("b", "c")))
@settings(max_examples=60, deadline=None)
def test_join_distributes_over_union_up_to_phi(r, s1, s2):
    left = natural_join(r, union(s1, s2))
    right = union(natural_join(r, s1), natural_join(r, s2))
    assert _equivalent_relations(left, right)


@given(
    relations(("a", "b")),
    st.fixed_dictionaries({v: st.booleans() for v in VARS}),
)
@settings(max_examples=80, deadline=None)
def test_projection_commutes_with_valuation(relation, valuation):
    """Ground-then-project == project-then-ground (support level)."""
    projected = project(relation, ("a",))
    ground_after = {t for t, ann in projected.items() if ann.evaluate(valuation)}
    grounded = relation.map_annotations(
        lambda ann: ann.evaluate(valuation), semiring=BOOLEAN
    )
    ground_before = set(project(grounded, ("a",)).support())
    assert ground_after == ground_before


@given(
    relations(("a", "b")),
    relations(("b", "c")),
    st.fixed_dictionaries({v: st.booleans() for v in VARS}),
)
@settings(max_examples=80, deadline=None)
def test_join_commutes_with_valuation(r1, r2, valuation):
    joined = natural_join(r1, r2)
    ground_after = {t for t, ann in joined.items() if ann.evaluate(valuation)}
    g1 = r1.map_annotations(lambda a: a.evaluate(valuation), semiring=BOOLEAN)
    g2 = r2.map_annotations(lambda a: a.evaluate(valuation), semiring=BOOLEAN)
    ground_before = set(natural_join(g1, g2).support())
    assert ground_after == ground_before


@given(relations(("a", "b")), st.sampled_from(["a", "b"]), st.sampled_from(VALUES))
@settings(max_examples=60, deadline=None)
def test_selection_is_subset(relation, attr, value):
    selected = select(relation, lambda t: t[attr] == value)
    assert set(selected.support()) <= set(relation.support())
    for t in selected.support():
        assert selected.annotation(t) == relation.annotation(t)
