"""Tests for the dynamic-graph subsystem (repro/dynamic/) and its
threading through the session, cache, service, and CLI layers.

The two pins the subsystem lives or dies by:

* **incremental == from-scratch** — for randomized insert/delete streams
  over the edge / triangle / 2-star patterns (and the generic-matcher
  and constrained fallbacks), the maintained occurrence sets match full
  re-enumeration exactly at every step;
* **answers are version-faithful** — a dynamic session's released
  answers after updates are byte-identical to a fresh session on the
  final graph at the same seeds, replay reproduces every answer against
  the version it was released at, and no compiled relation from a
  superseded version is ever served to a new query.
"""

import random
import threading

import pytest

from repro import PrivateSession, VersionedGraph, random_graph_with_avg_degree
from repro.dynamic import GraphDelta, GraphSnapshot, IncrementalOccurrences
from repro.errors import (
    GraphError,
    ServiceForbidden,
    SessionError,
)
from repro.graphs import Graph
from repro.service import BackgroundService, ServiceClient
from repro.session import (
    HierarchicalAccountant,
    SharedCompiledCache,
)
from repro.subgraphs import k_star, triangle
from repro.subgraphs.patterns import Pattern, cycle_pattern
from repro.validation import validate_batch_spec, validate_service_request


class TestGraphDelta:
    def test_action_round_trip(self):
        for action in (
            {"action": "add_edge", "u": 1, "v": 2},
            {"action": "remove_edge", "u": "a", "v": "b"},
            {"action": "add_node", "node": 7},
        ):
            delta = GraphDelta.from_action(action)
            assert delta.to_dict() == action

    def test_remove_node_keeps_captured_edges(self):
        delta = GraphDelta.remove_node(3, removed_edges=[(3, 1), (3, 2)])
        out = delta.to_dict()
        assert out["action"] == "remove_node" and out["node"] == 3
        assert out["removed_edges"] == [[3, 1], [3, 2]]
        # an audit-exported update log re-parses verbatim (round trip)
        back = GraphDelta.from_action(out)
        assert back.u == 3 and back.removed_edges == ((3, 1), (3, 2))
        validate_service_request({"v": 1, "op": "update", "actions": [out]})

    def test_malformed_actions_rejected(self):
        with pytest.raises(GraphError, match="action must be one of"):
            GraphDelta.from_action({"action": "explode", "u": 1, "v": 2})
        with pytest.raises(GraphError, match="add_edge action needs"):
            GraphDelta.from_action({"action": "add_edge", "u": 1})
        with pytest.raises(GraphError, match="remove_node action needs"):
            GraphDelta.from_action({"action": "remove_node", "u": 1})
        with pytest.raises(GraphError, match="must be an object"):
            GraphDelta.from_action(["add_edge", 1, 2])

    def test_apply_to_replays_onto_plain_graph(self):
        g = Graph(edges=[(0, 1), (1, 2)])
        GraphDelta.add_edge(0, 2).apply_to(g)
        GraphDelta.remove_node(1).apply_to(g)
        assert set(map(frozenset, g.edges())) == {frozenset({0, 2})}


class TestVersionedGraph:
    def test_versions_count_effective_mutations_only(self):
        g = VersionedGraph(edges=[(0, 1)])
        assert g.version == 0 and g.log == ()
        g.add_edge(0, 1)          # present: no-op
        g.add_node(0)             # present: no-op
        assert g.version == 0
        g.add_edge(1, 2)
        g.add_node(9)
        g.remove_edge(0, 1)
        assert g.version == 3
        assert [d.kind for d in g.log] == ["add_edge", "add_node", "remove_edge"]

    def test_edge_insert_is_one_delta_despite_new_endpoints(self):
        g = VersionedGraph()
        g.add_edge("a", "b")  # both endpoints created implicitly
        assert g.version == 1 and g.log[0].kind == "add_edge"

    def test_remove_node_records_incident_edges(self):
        g = VersionedGraph(edges=[(0, 1), (0, 2), (1, 2)])
        g.remove_node(0)
        (delta,) = g.log
        assert delta.kind == "remove_node"
        assert sorted(delta.removed_edges) == [(0, 1), (0, 2)]

    def test_snapshots_and_at_version(self):
        base = random_graph_with_avg_degree(20, 4, rng=0)
        g = VersionedGraph(base)
        snap0 = g.snapshot()
        g.add_edge(0, 1) if not g.has_edge(0, 1) else g.remove_edge(0, 1)
        g.remove_node(5)
        snap2 = g.snapshot()
        assert isinstance(snap0, GraphSnapshot)
        assert snap0.materialize() == base
        assert snap2.materialize() == g.as_graph()
        assert g.at_version(g.version) == g.as_graph()
        # snapshots are independent copies, not views
        materialized = snap2.materialize()
        materialized.add_edge(100, 101)
        assert not g.has_node(100)

    def test_at_version_bounds_checked(self):
        g = VersionedGraph(edges=[(0, 1)])
        with pytest.raises(GraphError, match="version must be"):
            g.at_version(1)
        with pytest.raises(GraphError, match="version must be"):
            g.at_version(-1)

    def test_checkout_is_equal_but_independent(self):
        g = VersionedGraph(edges=[(0, 1), (1, 2)])
        g.add_edge(0, 2)
        old = g.checkout(0)
        assert isinstance(old, VersionedGraph)
        assert old.version == 0
        assert old.as_graph() == Graph(edges=[(0, 1), (1, 2)])

    def test_apply_action_noop_returns_none(self):
        g = VersionedGraph(edges=[(0, 1)])
        assert g.apply({"action": "add_edge", "u": 0, "v": 1}) is None
        assert g.version == 0
        delta = g.apply({"action": "add_edge", "u": 1, "v": 2})
        assert delta is not None and g.version == 1

    def test_apply_invalid_removal_raises(self):
        g = VersionedGraph(edges=[(0, 1)])
        with pytest.raises(GraphError):
            g.apply({"action": "remove_edge", "u": 0, "v": 9})

    def test_constructor_guards(self):
        with pytest.raises(GraphError, match="wraps a Graph"):
            VersionedGraph("not a graph")
        with pytest.raises(GraphError, match="not both"):
            VersionedGraph(Graph(edges=[(0, 1)]), edges=[(1, 2)])

    def test_copy_is_independent_and_rebased(self):
        g = VersionedGraph(edges=[(0, 1)])
        g.add_edge(1, 2)
        clone = g.copy()
        assert clone.version == 0 and clone.as_graph() == g.as_graph()
        clone.add_edge(5, 6)
        assert not g.has_node(5)


#: The acceptance patterns: edge (1-star), triangle, 2-star — plus the
#: generic-matcher cycle to exercise the non-specialized path.
ACCEPTANCE_PATTERNS = [k_star(1), triangle(), k_star(2), cycle_pattern(4)]


def _random_stream(g, rng, steps, node_pool=16):
    """Drive a random insert/delete stream; yields after every delta."""
    for _ in range(steps):
        op = rng.random()
        if op < 0.45:
            u, v = rng.sample(range(node_pool), 2)
            g.add_edge(u, v)
        elif op < 0.65:
            edges = g.edges()
            if edges:
                g.remove_edge(*rng.choice(edges))
        elif op < 0.8:
            g.add_node(rng.randrange(node_pool))
        else:
            nodes = g.nodes()
            if nodes:
                g.remove_node(rng.choice(nodes))
        yield


class TestIncrementalEquivalence:
    """The equivalence oracle: incremental == from-scratch, always."""

    def test_randomized_streams_match_rescan_exactly(self):
        rng = random.Random(20260729)
        for trial in range(3):
            g = VersionedGraph(random_graph_with_avg_degree(14, 4, rng=trial))
            for pattern in ACCEPTANCE_PATTERNS:
                g.occurrences_for(pattern)
            for _ in _random_stream(g, rng, steps=60):
                g.maintainer.verify()  # raises on any divergence
            info = {row["pattern"]: row for row in g.maintainer.info()}
            # the acceptance patterns were maintained, never rebuilt
            for pattern in ACCEPTANCE_PATTERNS:
                assert info[pattern.name]["rebuilds"] == 0
                assert info[pattern.name]["deltas_applied"] == g.version

    def test_occurrence_lists_are_canonical_across_histories(self):
        """Same final graph, different update paths => identical lists."""
        g1 = VersionedGraph(edges=[(0, 1), (1, 2), (0, 2), (2, 3)])
        g1.occurrences_for(triangle())
        g1.add_edge(1, 3)
        g1.add_edge(0, 3)
        g2 = VersionedGraph(g1.as_graph())
        for p1, p2 in zip(
            g1.occurrences_for(triangle()), g2.occurrences_for(triangle())
        ):
            assert p1.nodes == p2.nodes and p1.edges == p2.edges

    def test_constrained_pattern_falls_back_to_rebuild(self):
        pattern = Pattern(
            [(0, 1), (1, 2), (0, 2)],
            name="hot-triangle",
            node_constraints={0: lambda data: True},
        )
        g = VersionedGraph(random_graph_with_avg_degree(12, 4, rng=5))
        inc = g.maintainer
        inc.register(pattern)
        g.add_edge(0, 1) if not g.has_edge(0, 1) else g.remove_edge(0, 1)
        inc.verify(pattern)
        (row,) = [r for r in inc.info() if r["pattern"] == "hot-triangle"]
        assert not row["incremental"] and row["rebuilds"] == 1

    def test_standalone_maintainer_contract(self):
        graph = random_graph_with_avg_degree(16, 4, rng=2)
        inc = IncrementalOccurrences(graph)
        inc.register(triangle())
        before = inc.count(triangle())
        graph.add_edge(0, 1) if not graph.has_edge(0, 1) else None
        inc.apply(GraphDelta.add_edge(0, 1))
        inc.verify()
        assert inc.count(triangle()) >= before - 1  # sanity: tracked
        # diff() reports divergence if the graph mutates behind its back
        graph.remove_node(0)
        missing, extra = inc.diff(triangle())
        inc.full_rebuild()
        inc.verify()

    def test_register_rejects_non_patterns(self):
        inc = IncrementalOccurrences(Graph(edges=[(0, 1)]))
        with pytest.raises(GraphError, match="takes a Pattern"):
            inc.register("triangle")

    def test_equal_repr_nodes_survive_either_removal_orientation(self):
        """Regression: edge identity must be orientation-free.

        ``Occurrence.normalize_edge`` breaks repr ties by argument
        order, so a delete arriving as (b, a) used to miss the index
        entry stored under (a, b) for distinct equal-repr endpoints —
        leaving a dead occurrence in the maintained set."""

        class Twin:
            def __repr__(self):
                return "twin"

        a, b = Twin(), Twin()
        g = VersionedGraph(edges=[(a, b), (a, "x"), (b, "x")])
        g.occurrences_for(triangle())
        assert g.maintainer.count(triangle()) == 1
        g.remove_edge(b, a)  # the orientation normalize_edge flips
        g.maintainer.verify()
        assert g.maintainer.count(triangle()) == 0
        g.add_edge(b, a)
        g.maintainer.verify()
        assert g.maintainer.count(triangle()) == 1
        g.remove_node(a)
        g.maintainer.verify()
        assert g.maintainer.count(triangle()) == 0


class TestDynamicSession:
    def _graph(self, seed=1, n=28):
        return VersionedGraph(random_graph_with_avg_degree(n, 5.0, rng=seed))

    def test_version_keyed_cache_never_serves_stale(self):
        g = self._graph()
        with PrivateSession(g, rng=7) as s:
            before = s.query("triangle", privacy="node", epsilon=0.5, rng=11)
            s.apply_update(
                [
                    {"action": "add_edge", "u": 0, "v": 1},
                    {"action": "add_edge", "u": 0, "v": 2},
                    {"action": "add_edge", "u": 1, "v": 2},
                ]
            )
            after = s.query("triangle", privacy="node", epsilon=0.5, rng=11)
            # same seed, new version: the compiled relation was rebuilt
            # (a stale cache hit would reproduce the old answer bit-for-bit)
            assert s.cache_info().misses == 2
            assert before.true_answer != after.true_answer
            warm = s.query("triangle", privacy="node", epsilon=0.5, rng=11)
            assert s.cache_info().hits == 1
            assert warm.answer == after.answer

    def test_answers_byte_identical_to_fresh_session_on_final_graph(self):
        """The acceptance pin for answers across updates."""
        g = self._graph(seed=3)
        seeds = [101, 202, 303]
        cases = [("triangle", "node"), ("2-star", "edge"), ("triangle", "edge")]
        with PrivateSession(g, rng=1) as s:
            s.query("triangle", privacy="node", epsilon=0.5, rng=77)
            s.apply_update(
                [
                    {"action": "add_edge", "u": 1, "v": 3},
                    {"action": "remove_node", "node": 5},
                ]
            )
            updated = [
                s.query(q, privacy=p, epsilon=0.5, rng=seed)
                for (q, p), seed in zip(cases, seeds)
            ]
            final = VersionedGraph(g.as_graph())
        with PrivateSession(final, rng=999) as fresh:
            fresh_answers = [
                fresh.query(q, privacy=p, epsilon=0.5, rng=seed)
                for (q, p), seed in zip(cases, seeds)
            ]
        for updated_result, fresh_result in zip(updated, fresh_answers):
            assert updated_result.answer == fresh_result.answer

    def test_replay_reproduces_answers_across_mutations(self):
        g = self._graph(seed=4)
        with PrivateSession(g, rng=5) as s:
            s.query("triangle", privacy="node", epsilon=0.4)
            s.apply_update([{"action": "add_edge", "u": 2, "v": 4}])
            s.query("triangle", privacy="node", epsilon=0.4)
            s.apply_update([{"action": "remove_edge", "u": 2, "v": 4}])
            s.query("2-star", privacy="edge", epsilon=0.3)
            assert s.verify_ledger()
            # ... even when superseded compiled relations were dropped
            # (forces rebuild from log snapshots)
            s.apply_update([{"action": "add_node", "node": 90}], drop_stale=True)
            assert s.cache_info().invalidations > 0
            assert s.verify_ledger()

    def test_update_entries_are_ledgered_with_deltas(self):
        g = self._graph(seed=6)
        with PrivateSession(g, budget=1.0, rng=2) as s:
            s.apply_update([{"action": "add_edge", "u": 0, "v": 3}], label="grow")
            (entry,) = s.ledger
            assert entry.status == "update" and entry.epsilon == 0.0
            assert entry.extra["update"] == [{"action": "add_edge", "u": 0, "v": 3}]
            assert s.spent == 0.0  # updates never touch the privacy budget
            exported = s.audit_log()[0]
            assert exported["version"] == 1
            assert exported["update"] == entry.extra["update"]

    def test_partial_update_failure_records_prefix_and_raises(self):
        g = self._graph(seed=8)
        with PrivateSession(g, rng=2) as s:
            with pytest.raises(GraphError):
                s.apply_update([
                    {"action": "add_edge", "u": 0, "v": 1},
                    {"action": "remove_edge", "u": 90, "v": 91},  # absent
                    {"action": "add_edge", "u": 0, "v": 2},
                ])
            (entry,) = s.ledger
            assert entry.status == "update-failed"
            # the prefix took effect and is recorded
            applied = entry.extra["update"]
            assert len(applied) <= 1
            assert s.graph_version == len(applied)

    def test_apply_update_requires_dynamic_data(self):
        static = random_graph_with_avg_degree(20, 4.0, rng=1)
        with PrivateSession(static, rng=1) as s:
            with pytest.raises(SessionError, match="dynamic graph"):
                s.apply_update([{"action": "add_edge", "u": 0, "v": 1}])

    def test_submit_futures_across_updates(self):
        g = self._graph(seed=9)
        with PrivateSession(g, rng=11, workers=1) as s:
            f1 = s.submit("triangle", privacy="node", epsilon=0.3)
            f1.result()
            s.apply_update([{"action": "add_edge", "u": 0, "v": 6}])
            f2 = s.submit("triangle", privacy="node", epsilon=0.3)
            assert f2.entry.extra["version"] == 1
            assert s.verify_ledger()

    def test_pooled_submissions_refork_after_update(self):
        """workers>=2: the pool is retired on update, so later forks see
        the new graph — pooled answers match the serial path exactly."""
        from repro.parallel import fork_available

        if not fork_available():
            pytest.skip("needs the fork start method")
        answers = {}
        for workers in (1, 2):
            g = self._graph(seed=10)
            with PrivateSession(g, rng=13, workers=workers) as s:
                first = s.submit("triangle", privacy="node", epsilon=0.3)
                first.result()
                s.apply_update(
                    [
                        {"action": "add_edge", "u": 0, "v": 7},
                        {"action": "remove_node", "node": 2},
                    ]
                )
                second = s.submit("triangle", privacy="node", epsilon=0.3)
                third = s.submit("2-star", privacy="edge", epsilon=0.2)
                answers[workers] = (first.result().answer,
                                    second.result().answer,
                                    third.result().answer)
                assert s.verify_ledger()
        assert answers[1] == answers[2]

    def test_direct_mutation_retires_stale_pool(self):
        """Mutating the VersionedGraph without apply_update must not let
        a pool forked on the old state answer for the new version."""
        from repro.parallel import fork_available

        if not fork_available():
            pytest.skip("needs the fork start method")
        g = self._graph(seed=11)
        with PrivateSession(g, rng=17, workers=2) as s:
            first = s.submit("triangle", privacy="node", epsilon=0.2)
            first.result()
            g.add_edge(0, 8) if not g.has_edge(0, 8) else g.remove_edge(0, 8)
            second = s.submit("2-star", privacy="edge", epsilon=0.2)
            second.result()
            assert second.entry.extra["version"] == g.version
            assert s.verify_ledger()


class TestSharedCacheInvalidationRaces:
    """Satellite: eviction + invalidation under concurrent querying.

    Values stored under a version-tagged key carry their version; a
    reader must never get a value whose version disagrees with the key
    it asked for, no matter how updates interleave, and the hit/miss
    counters must stay exact.
    """

    def test_concurrent_get_or_build_and_invalidate(self):
        cache = SharedCompiledCache(maxsize=16)
        current_version = [0]
        stop = threading.Event()
        violations = []
        calls = [0] * 8
        lock = threading.Lock()

        def reader(thread_index):
            rng = random.Random(thread_index)
            while not stop.is_set():
                version = current_version[0]
                pattern = rng.randrange(4)
                key = (
                    ("data", 1), ("version", version), "recursive", ("pattern", pattern)
                )
                value, _hit = cache.get_or_build(
                    key, lambda: {"version": key[1], "pattern": pattern}
                )
                with lock:
                    calls[thread_index] += 1
                if value["version"] != key[1] or value["pattern"] != pattern:
                    violations.append((key, value))

        def updater():
            while not stop.is_set():
                current_version[0] += 1
                current = ("version", current_version[0])
                cache.invalidate(lambda k: k[1] != current and random.random() < 0.7)

        threads = [
            threading.Thread(target=reader, args=(i,))
            for i in range(8)
        ]
        threads.append(threading.Thread(target=updater))
        for thread in threads:
            thread.start()
        import time
        time.sleep(0.8)
        stop.set()
        for thread in threads:
            thread.join()
        assert not violations
        info = cache.info()
        assert info.hits + info.misses == sum(calls)
        assert info.size <= 16

    def test_eviction_and_invalidation_counters_exact_serial(self):
        cache = SharedCompiledCache(maxsize=2)
        for i in range(4):
            cache.get_or_build((("version", 0), i), lambda i=i: i)
        info = cache.info()
        assert info.size == 2 and info.evictions == 2
        removed = cache.invalidate(lambda key: key[0] == ("version", 0))
        assert removed == 2
        info = cache.info()
        assert info.size == 0 and info.invalidations == 2


class TestServiceUpdates:
    def _session(self, seed=1):
        graph = VersionedGraph(random_graph_with_avg_degree(24, 4.0, rng=seed))
        return PrivateSession(
            graph,
            rng=7,
            accountant=HierarchicalAccountant(None),
            cache=SharedCompiledCache(maxsize=8),
        )

    def test_update_op_end_to_end_with_versions(self):
        session = self._session()
        with BackgroundService(session, seed=42, updates=True) as bg:
            with ServiceClient(bg.address) as client:
                hello = client.hello()
                assert hello["updates"] is True
                assert hello["graph_version"] == 0
                first = client.query(
                    "triangle", epsilon=0.5, privacy="node", user="alice"
                )
                assert first["version"] == 0
                outcome = client.update(
                    [{"action": "add_edge", "u": 0, "v": 1},
                     {"action": "add_edge", "u": 0, "v": 1}],  # 2nd: no-op
                    label="grow",
                )
                assert outcome["applied"] in (0, 1)
                second = client.query(
                    "triangle", epsilon=0.5, privacy="node", user="alice"
                )
                assert second["version"] == outcome["version"]
                audit = client.audit(replay=True)
                statuses = [e["entry"]["status"] for e in audit["entries"]]
                assert "update" in statuses
                released = [
                    e for e in audit["entries"] if e["entry"]["status"] == "released"
                ]
                assert all(e["matches"] for e in released)
        session.close()

    def test_updates_disabled_by_default(self):
        session = self._session(seed=2)
        with BackgroundService(session) as bg:
            with ServiceClient(bg.address) as client:
                assert client.hello()["updates"] is False
                with pytest.raises(ServiceForbidden, match="disabled"):
                    client.update([{"action": "add_edge", "u": 0, "v": 1}])
                # the refusal costs nothing and the connection survives
                assert client.ping()["pong"]
        session.close()

    def test_update_token_gate(self):
        session = self._session(seed=3)
        with BackgroundService(session, updates=True, update_token="hunter2") as bg:
            with ServiceClient(bg.address) as client:
                with pytest.raises(ServiceForbidden, match="token"):
                    client.update([{"action": "add_node", "node": 99}])
                with pytest.raises(ServiceForbidden, match="token"):
                    client.update([{"action": "add_node", "node": 99}], token="wrong")
                outcome = client.update(
                    [{"action": "add_node", "node": 99}], token="hunter2"
                )
                assert outcome["version"] == 1
        session.close()

    def test_update_requires_dynamic_session(self):
        static = PrivateSession(random_graph_with_avg_degree(20, 4.0, rng=1))
        with pytest.raises(ValueError, match="dynamic session"):
            BackgroundService(static, updates=True)
        static.close()

    def test_invalid_update_actions_are_bad_requests(self):
        session = self._session(seed=4)
        with BackgroundService(session, updates=True) as bg:
            with ServiceClient(bg.address) as client:
                with pytest.raises(ValueError, match="actions"):
                    client.update([])
                with pytest.raises(ValueError, match="action"):
                    client.update([{"action": "explode"}])
                # removal of an absent edge fails but keeps serving
                with pytest.raises(ValueError):
                    client.update([{"action": "remove_edge", "u": 900, "v": 901}])
                assert client.ping()["pong"]
                # a mid-sequence failure names the applied prefix
                with pytest.raises(ValueError, match=r"WERE applied.*v0->v1"):
                    client.update(
                        [
                            {"action": "add_node", "node": 700},
                            {"action": "remove_edge", "u": 900, "v": 901},
                        ]
                    )
                assert client.hello()["graph_version"] == 1
        session.close()

    def test_interleaved_clients_see_consistent_versions(self):
        """Queries racing an update each see exactly one version, and the
        version they see determines their answer deterministically."""
        session = self._session(seed=5)
        answers = []
        errors = []

        def hammer(address, user):
            try:
                with ServiceClient(address, user=user) as client:
                    for index in range(6):
                        result = client.query(
                            "triangle",
                            epsilon=0.05,
                            privacy="edge",
                            seed=1000 + index,
                        )
                        answers.append((result["version"], result["answer"]))
            except Exception as error:  # pragma: no cover - fail loudly
                errors.append(error)

        with BackgroundService(session, updates=True, seed=3) as bg:
            address = bg.address
            threads = [
                threading.Thread(target=hammer, args=(address, f"user{i}"))
                for i in range(3)
            ]
            for thread in threads:
                thread.start()
            with ServiceClient(address) as admin:
                for step in range(4):
                    admin.update([{"action": "add_node", "node": 500 + step}])
            for thread in threads:
                thread.join()
        assert not errors
        assert len(answers) == 18
        final_version = session.data.version
        # every answer must be exactly the release its (version, seed)
        # pair dictates — no answer from a half-updated state can exist
        expected_by_version = {}
        for version, answer in answers:
            assert 0 <= version <= final_version
            if version not in expected_by_version:
                snapshot = VersionedGraph(session.data.at_version(version))
                with PrivateSession(snapshot) as check:
                    expected_by_version[version] = {
                        check.query("triangle", privacy="edge",
                                    epsilon=0.05, rng=1000 + index).answer
                        for index in range(6)
                    }
            assert answer in expected_by_version[version], (version, answer)
        session.close()


class TestValidation:
    def test_service_update_request_shapes(self):
        validate_service_request(
            {
                "v": 1,
                "op": "update",
                "token": "t",
                "actions": [{"action": "add_edge", "u": 1, "v": 2}],
            }
        )
        with pytest.raises(ValueError, match="actions: required"):
            validate_service_request({"v": 1, "op": "update"})
        with pytest.raises(ValueError, match=r"actions\[0\]\.action"):
            validate_service_request(
                {"v": 1, "op": "update", "actions": [{"action": "boom"}]}
            )
        with pytest.raises(ValueError, match=r"actions\[1\]\.v: required"):
            validate_service_request(
                {
                    "v": 1,
                    "op": "update",
                    "actions": [
                        {"action": "add_node", "node": 1},
                        {"action": "add_edge", "u": 1},
                    ],
                }
            )
        with pytest.raises(ValueError, match="unknown key"):
            validate_service_request(
                {
                    "v": 1,
                    "op": "update",
                    "actions": [{"action": "add_node", "node": 1, "x": 2}],
                }
            )

    def test_batch_spec_update_steps(self):
        validate_batch_spec(
            {
                "queries": [
                    {"query": "triangle", "epsilon": 0.5},
                    {
                        "update": [{"action": "remove_node", "node": 3}],
                        "label": "shrink",
                    },
                ]
            }
        )
        with pytest.raises(ValueError, match=r"queries\[0\]\.update"):
            validate_batch_spec({"queries": [{"update": "not-a-list"}]})
        with pytest.raises(ValueError, match="unknown key"):
            validate_batch_spec(
                {
                    "queries": [
                        {"update": [{"action": "add_node", "node": 1}], "epsilon": 0.5}
                    ]
                }
            )


class TestBatchCLIWithUpdates:
    def test_local_batch_interleaves_updates(self, tmp_path, capsys):
        import json

        from repro.cli import main

        spec = {
            "graph": {"nodes": 24, "avgdeg": 4, "seed": 1},
            "seed": 7,
            "queries": [
                {"query": "triangle", "privacy": "node", "epsilon": 0.5},
                {
                    "update": [
                        {"action": "add_edge", "u": 0, "v": 1},
                        {"action": "add_edge", "u": 0, "v": 2},
                    ],
                    "label": "grow",
                },
                {"query": "triangle", "privacy": "node", "epsilon": 0.5},
            ],
        }
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec))
        assert main(["batch", str(path)]) == 0
        out = capsys.readouterr().out
        assert "dynamic (interleaved updates)" in out
        assert "applied" in out and "update->v2" in out

    def test_serve_parser_accepts_update_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--updates", "--update-token", "tok", "--port", "0"]
        )
        assert args.updates is True and args.update_token == "tok"
        args = build_parser().parse_args(["batch", "spec.json", "--update-token", "t"])
        assert args.update_token == "t"

    def test_serve_rejects_token_without_updates(self, capsys):
        from repro.cli import main

        assert main(["serve", "--nodes", "10", "--update-token", "t"]) == 2
        assert "--updates" in capsys.readouterr().err

    def test_lenient_edge_list_flag_loads_snap_style_files(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "both_orientations.txt"
        path.write_text("0 1\n1 0\n1 2\n2 1\n")  # SNAP-style double listing
        with pytest.raises(GraphError, match="duplicate edge"):
            main(
                [
                    "count",
                    "--edge-list",
                    str(path),
                    "--query",
                    "triangle",
                    "--privacy",
                    "edge",
                    "--seed",
                    "1",
                ]
            )
        argv = [
            "count",
            "--edge-list",
            str(path),
            "--lenient-edge-list",
            "--query",
            "triangle",
            "--privacy",
            "edge",
            "--seed",
            "1",
        ]
        assert main(argv) == 0
        assert "2 edges" in capsys.readouterr().out
