"""The paper's Sec. 6.2 claim: "We do not present experimental results for
different kinds of q(t) because the curves are almost the same."

We verify the mechanism's *relative* error distribution is insensitive to
uniform rescaling of the weights (exact scale equivariance — the whole
pipeline is positively homogeneous in q), and close under heterogeneous
bounded weights.
"""

import statistics

import numpy as np
import pytest

from repro.core import EfficientRecursiveMechanism, RecursiveMechanismParams
from repro.core.queries import WeightedQuery
from repro.krand import random_dnf_krelation


@pytest.fixture
def relation():
    return random_dnf_krelation(60, 3, rng=11)


PARAMS = RecursiveMechanismParams.paper(0.5)


class TestScaleEquivariance:
    def test_h_and_g_scale_linearly(self, relation):
        base = EfficientRecursiveMechanism(relation, bounding="paper")
        scaled = EfficientRecursiveMechanism(
            relation, query=WeightedQuery(lambda t: 5.0), bounding="paper"
        )
        n = base.num_participants
        for i in (0, n // 2, n):
            assert scaled.h_entry(i) == pytest.approx(5 * base.h_entry(i), abs=1e-5)
            assert scaled.g_entry(i) == pytest.approx(5 * base.g_entry(i), abs=1e-5)

    def test_relative_error_exactly_invariant_when_theta_scales(self, relation):
        """The pipeline is positively homogeneous: scaling q by c AND the
        grid floor θ by c multiplies Δ, X and the noise by exactly c, so
        with the same seed the relative error is bit-for-bit identical.
        (With θ fixed, the Δ grid rounds differently and the curves agree
        only approximately — which is all the paper claims.)"""
        base = EfficientRecursiveMechanism(relation, bounding="paper")
        scaled = EfficientRecursiveMechanism(
            relation, query=WeightedQuery(lambda t: 5.0), bounding="paper"
        )
        params_scaled = RecursiveMechanismParams(
            epsilon1=PARAMS.epsilon1,
            epsilon2=PARAMS.epsilon2,
            beta=PARAMS.beta,
            theta=5.0 * PARAMS.theta,
            mu=PARAMS.mu,
            g=PARAMS.g,
        )
        for seed in range(6):
            error_base = base.run(PARAMS, np.random.default_rng(seed)).relative_error
            error_scaled = scaled.run(
                params_scaled, np.random.default_rng(seed)
            ).relative_error
            assert error_scaled == pytest.approx(error_base, rel=1e-6)

    def test_heterogeneous_weights_similar_curve(self, relation):
        """Random weights in [1, 2]: median relative error within a small
        factor of the counting query's (the paper's 'almost the same')."""
        rng_weights = np.random.default_rng(0)
        weights = {
            tup: float(rng_weights.uniform(1.0, 2.0)) for tup, _ in relation.items()
        }
        counting = EfficientRecursiveMechanism(relation, bounding="paper")
        weighted = EfficientRecursiveMechanism(
            relation,
            query=WeightedQuery(lambda t: weights[t]),
            bounding="paper",
        )
        errors_count = [
            counting.run(PARAMS, np.random.default_rng(s)).relative_error
            for s in range(15)
        ]
        errors_weighted = [
            weighted.run(PARAMS, np.random.default_rng(s)).relative_error
            for s in range(15)
        ]
        ratio = statistics.median(errors_weighted) / statistics.median(errors_count)
        assert 1 / 3 <= ratio <= 3
