"""Extra coverage for the general sensitive-database model.

Exercises a non-graph, non-K-relation instance of the (P, M) abstraction —
a tiny multi-table payroll database where one participant contributes rows
to several tables — end to end through the general mechanism.  This is the
paper's opening scenario (Sec. 1: "a participant may contribute tuples to
several tables, and a tuple can be contributed collectively by multiple
participants").
"""

import math

import pytest

from repro.core import (
    GeneralRecursiveMechanism,
    RecursiveMechanismParams,
    SensitiveDatabase,
)
from repro.errors import SensitiveModelError


def payroll_database():
    """Employees and projects; a row exists when all its owners are in.

    Tables (as frozensets of rows with owner sets):
      assignments: (employee, project) — owned by the employee
      projects:    (project, lead)     — owned jointly by lead and any
                                         assigned employee (a project row
                                         survives while someone backs it)
    """
    employees = {"ann", "bo", "cy"}
    assignments = {
        ("ann", "p1"): {"ann"},
        ("bo", "p1"): {"bo"},
        ("bo", "p2"): {"bo"},
        ("cy", "p2"): {"cy"},
    }
    projects = {
        ("p1", "ann"): {"ann", "bo"},   # alive while ann or bo participates
        ("p2", "bo"): {"bo", "cy"},
    }

    def content(subset):
        rows_a = frozenset(
            row for row, owners in assignments.items() if owners <= subset
        )
        rows_p = frozenset(row for row, owners in projects.items() if owners & subset)
        return (rows_a, rows_p)

    return SensitiveDatabase(employees, content)


def staffed_project_rows(content) -> float:
    """q: number of (assignment, project) join rows — monotonic."""
    rows_a, rows_p = content
    joined = {
        (employee, project)
        for employee, project in rows_a
        for p_name, _lead in rows_p
        if p_name == project
    }
    return float(len(joined))


class TestPayrollScenario:
    def test_content_shrinks_with_withdrawal(self):
        db = payroll_database()
        full_a, full_p = db.content()
        less_a, less_p = db.content({"ann", "cy"})
        assert less_a <= full_a
        assert less_p <= full_p

    def test_query_monotone_on_lattice(self):
        db = payroll_database()
        mech = GeneralRecursiveMechanism(db, staffed_project_rows)
        assert mech.true_answer() == 4.0

    def test_sequences_well_formed(self):
        db = payroll_database()
        mech = GeneralRecursiveMechanism(db, staffed_project_rows)
        h = mech.h_sequence()
        g = mech.g_sequence()
        assert h[0] == 0.0 and g[0] == 0.0
        assert all(a <= b + 1e-12 for a, b in zip(h, h[1:]))

    def test_release(self):
        db = payroll_database()
        mech = GeneralRecursiveMechanism(db, staffed_project_rows)
        result = mech.run(RecursiveMechanismParams.paper(2.0), rng=0)
        assert math.isfinite(result.answer)
        assert result.true_answer == 4.0

    def test_unknown_participant_rejected(self):
        db = payroll_database()
        with pytest.raises(SensitiveModelError):
            db.content({"mallory"})
