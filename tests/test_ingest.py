"""Tests for streaming edge-list ingestion (repro/graphs/io.py +
repro/store/ingest.py + the ``repro ingest`` CLI).

The chunked reader must validate *across* flush boundaries exactly as
the old line-at-a-time reader did: malformed lines, self-loops and
duplicate edges are each reported with their line number, even when the
duplicate's first copy landed in an earlier chunk.  The ingest wrapper
pins the report fields the scale benchmark and CI consume.
"""

import json

import pytest

from repro.cli import main
from repro.errors import GraphError
from repro.graphs import Graph, read_edge_list, write_edge_list
from repro.store import IngestReport, ingest_edge_list


def _write(tmp_path, text, name="edges.txt"):
    path = tmp_path / name
    path.write_text(text)
    return path


class TestChunkedReader:
    def test_round_trip_across_chunk_sizes(self, tmp_path):
        graph = Graph(edges=[(i, i + 1) for i in range(20)] + [(0, 19)])
        path = tmp_path / "ring.txt"
        write_edge_list(graph, path)
        for chunk_size in (1, 3, 7, 64):
            again = read_edge_list(path, chunk_size=chunk_size)
            assert again == graph

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = _write(tmp_path, "# SNAP header\n% matrix-market\n\n1 2\n2 3\n")
        graph = read_edge_list(path)
        assert graph.num_edges == 2 and graph.has_edge(1, 2)

    def test_malformed_line_reports_line_number(self, tmp_path):
        path = _write(tmp_path, "1 2\noops\n3 4\n")
        with pytest.raises(GraphError) as excinfo:
            read_edge_list(path, chunk_size=1)
        message = str(excinfo.value)
        assert "invalid edge list (1 problem)" in message
        assert f"{path}:2: expected 'u v', got 'oops'" in message

    def test_malformed_line_raises_even_lenient(self, tmp_path):
        path = _write(tmp_path, "1 2\noops\n")
        with pytest.raises(GraphError):
            read_edge_list(path, strict=False)

    def test_duplicate_spanning_chunks_reports_both_lines(self, tmp_path):
        # chunk_size=2 flushes (1,2),(2,3) before the duplicate arrives:
        # cross-chunk detection must still name line 1 as the first copy
        path = _write(tmp_path, "1 2\n2 3\n3 4\n2 1\n")
        with pytest.raises(GraphError) as excinfo:
            read_edge_list(path, chunk_size=2)
        message = str(excinfo.value)
        assert f"{path}:4: duplicate edge 2 1 (first seen on line 1)" \
            in message

    def test_self_loop_strict_vs_lenient(self, tmp_path):
        path = _write(tmp_path, "1 2\n3 3\n2 3\n")
        with pytest.raises(GraphError, match="self-loop 3 3"):
            read_edge_list(path)
        graph = read_edge_list(path, strict=False)
        assert graph.num_edges == 2 and not graph.has_edge(3, 3)

    def test_multiple_problems_all_listed(self, tmp_path):
        path = _write(tmp_path, "1 2\n5 5\n1 2\nbad\n")
        with pytest.raises(GraphError) as excinfo:
            read_edge_list(path, chunk_size=1)
        message = str(excinfo.value)
        assert "invalid edge list (3 problems)" in message
        for fragment in ("self-loop 5 5", "duplicate edge 1 2", "bad"):
            assert fragment in message

    def test_bad_chunk_size_and_missing_file(self, tmp_path):
        with pytest.raises(GraphError, match="chunk_size must be >= 1"):
            read_edge_list(tmp_path / "x.txt", chunk_size=0)
        with pytest.raises(GraphError, match="edge list not found"):
            read_edge_list(tmp_path / "absent.txt")


class TestBulkAddEdges:
    def test_add_edges_from_matches_loop(self):
        edges = [(1, 2), (2, 3), (1, 3), (3, 4)]
        bulk, loop = Graph(), Graph()
        bulk.add_edges_from(edges)
        for u, v in edges:
            loop.add_edge(u, v)
        assert bulk == loop

    def test_add_edges_from_rejects_self_loop(self):
        graph = Graph()
        with pytest.raises(GraphError):
            graph.add_edges_from([(1, 2), (3, 3)])

    def test_add_edges_from_duplicates_are_idempotent(self):
        graph = Graph()
        graph.add_edges_from([(1, 2), (2, 1), (1, 2)])
        assert graph.num_edges == 1


class TestIngestEdgeList:
    def test_report_fields_and_registration(self, tmp_path):
        path = _write(tmp_path, "1 2\n2 3\n1 3\n3 4\n")
        report = ingest_edge_list(path, store="columnar", register=["triangle"])
        assert isinstance(report, IngestReport)
        assert report.num_nodes == 4 and report.num_edges == 4
        assert report.graph.version == 0
        assert report.registered == [
            {
                "pattern": "triangle",
                "occurrences": 1,
                "seconds": report.registered[0]["seconds"],
            }
        ]
        summary = report.summary()
        assert summary["num_edges"] == 4
        assert summary["path"] == str(path)
        assert report.total_seconds >= report.read_seconds

    def test_strict_errors_propagate(self, tmp_path):
        path = _write(tmp_path, "1 1\n")
        with pytest.raises(GraphError, match="self-loop"):
            ingest_edge_list(path)

    @pytest.mark.parametrize("store", ["columnar", "dict"])
    def test_store_knob_reaches_maintainer(self, tmp_path, store):
        path = _write(tmp_path, "1 2\n2 3\n1 3\n")
        report = ingest_edge_list(path, store=store, register=["triangle"])
        (row,) = report.graph.maintainer.info()
        assert row["store"] == store


class TestIngestCli:
    def test_ingest_happy_path(self, tmp_path, capsys):
        path = _write(tmp_path, "1 2\n2 3\n1 3\n3 4\n")
        out_path = tmp_path / "report.json"
        code = main(
            ["ingest", str(path), "--register", "triangle", "--out", str(out_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "4 nodes" in out and "4 edges" in out
        payload = json.loads(out_path.read_text())
        assert payload["num_edges"] == 4
        assert payload["registered"][0]["pattern"] == "triangle"

    def test_ingest_invalid_file_exits_2(self, tmp_path, capsys):
        path = _write(tmp_path, "1 2\n1 2\n")
        assert main(["ingest", str(path)]) == 2
        assert "duplicate edge" in capsys.readouterr().err

    def test_ingest_lenient_accepts_duplicates(self, tmp_path, capsys):
        path = _write(tmp_path, "1 2\n1 2\n2 3\n")
        assert main(["ingest", str(path), "--lenient"]) == 0
        assert "2 edges" in capsys.readouterr().out

    def test_ingest_dict_store(self, tmp_path, capsys):
        path = _write(tmp_path, "1 2\n2 3\n")
        assert main(["ingest", str(path), "--store", "dict"]) == 0
        assert "store: dict" in capsys.readouterr().out
