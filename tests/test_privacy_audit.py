"""Tests for the empirical privacy auditor.

These are statistical tests with fixed seeds; the audit passes for the
correctly implemented mechanism and fails for a deliberately broken one
(noise far too small) — the regression property the auditor exists for.
"""

import numpy as np
import pytest

from repro.core import RecursiveMechanismParams
from repro.experiments.privacy_audit import (
    AuditReport,
    audit_krelation_withdrawal,
    audit_mechanism_pair,
)
from repro.graphs import random_graph_with_avg_degree
from repro.rng import laplace
from repro.subgraphs import subgraph_krelation, triangle


class TestAuditMachinery:
    def test_identical_distributions_pass(self):
        report = audit_mechanism_pair(
            lambda g: float(g.normal(0, 1)),
            lambda g: float(g.normal(0, 1)),
            claimed_epsilon=0.5,
            trials=1500,
            rng=0,
        )
        assert report.empirical_epsilon < 0.5
        assert report.passed

    def test_laplace_mechanism_audits_at_its_epsilon(self):
        """Lap(1/eps) on counts differing by 1: loss exactly eps."""
        eps = 1.0
        report = audit_mechanism_pair(
            lambda g: 10.0 + laplace(1.0 / eps, g),
            lambda g: 11.0 + laplace(1.0 / eps, g),
            claimed_epsilon=eps,
            trials=4000,
            rng=1,
        )
        assert report.empirical_epsilon < eps + 0.7
        assert report.passed

    def test_broken_mechanism_fails(self):
        """Far-apart tight distributions — privacy loss far above claim."""
        report = audit_mechanism_pair(
            lambda g: float(g.normal(0.0, 0.05)),
            lambda g: float(g.normal(5.0, 0.05)),
            claimed_epsilon=0.5,
            trials=1500,
            rng=2,
        )
        assert report.empirical_epsilon > 2.0
        assert not report.passed

    def test_degenerate_outputs(self):
        report = audit_mechanism_pair(
            lambda g: 1.0, lambda g: 1.0, claimed_epsilon=0.5, trials=100, rng=0
        )
        assert report.empirical_epsilon == 0.0


class TestMechanismAudit:
    @pytest.mark.parametrize("privacy", ["node", "edge"])
    def test_recursive_mechanism_passes_audit(self, privacy):
        graph = random_graph_with_avg_degree(18, 5, rng=4)
        relation = subgraph_krelation(graph, triangle(), privacy=privacy)
        params = RecursiveMechanismParams.paper(1.0, node_privacy=(privacy == "node"))
        report = audit_krelation_withdrawal(
            relation, params, trials=900, bins=16, rng=5
        )
        assert report.passed, (
            f"{privacy}: empirical {report.empirical_epsilon:.3f} vs "
            f"claimed {report.claimed_epsilon:.3f}"
        )

    def test_explicit_participant(self):
        graph = random_graph_with_avg_degree(14, 5, rng=6)
        relation = subgraph_krelation(graph, triangle(), privacy="node")
        some_participant = sorted(relation.participants)[0]
        params = RecursiveMechanismParams.paper(1.0, node_privacy=True)
        report = audit_krelation_withdrawal(
            relation,
            params,
            participant=some_participant,
            trials=400,
            bins=12,
            rng=7,
        )
        assert isinstance(report, AuditReport)
        assert report.trials == 400
