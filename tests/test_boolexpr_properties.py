"""Property-based tests (hypothesis) for expressions and the φ relaxation.

These verify the Theorem-5 properties of φ — correctness, naturalness,
monotonicity, convexity, truncated linearity — plus the φ-invariance of the
constructor simplifications, on randomly generated positive expressions.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolexpr import And, Expr, Or, Var, expand_dnf, minimal_dnf, truth_equivalent
from repro.boolexpr.transform import restrict
from repro.relax import phi, phi_star

NAMES = ["a", "b", "c", "d", "e"]


def exprs(max_leaves: int = 12) -> st.SearchStrategy[Expr]:
    """Random positive expressions over a small variable pool."""
    leaves = st.sampled_from([Var(name) for name in NAMES])
    return st.recursive(
        leaves,
        lambda children: st.lists(children, min_size=2, max_size=3).map(And)
        | st.lists(children, min_size=2, max_size=3).map(Or),
        max_leaves=max_leaves,
    )


def assignments(fractional: bool = True) -> st.SearchStrategy[dict]:
    value = st.floats(0.0, 1.0) if fractional else st.booleans().map(float)
    return st.fixed_dictionaries({name: value for name in NAMES})


@given(exprs(), assignments(fractional=False))
@settings(max_examples=150, deadline=None)
def test_phi_correctness_on_boolean_points(expr, f):
    """Theorem 5, correctness: φ agrees with Boolean evaluation on {0,1}^P."""
    boolean = expr.evaluate({name: bool(v) for name, v in f.items()})
    assert phi(expr, f) == (1.0 if boolean else 0.0)


@given(exprs(), assignments())
@settings(max_examples=150, deadline=None)
def test_phi_range(expr, f):
    assert 0.0 <= phi(expr, f) <= 1.0


@given(exprs(), assignments(), st.sampled_from(NAMES))
@settings(max_examples=150, deadline=None)
def test_phi_naturalness(expr, f, name):
    """Theorem 5, naturalness: pinning f(p) to 0/1 equals substitution."""
    f0 = dict(f)
    f0[name] = 0.0
    assert math.isclose(
        phi(expr, f0), phi(restrict(expr, {name: False}), f0), abs_tol=1e-12
    )
    f1 = dict(f)
    f1[name] = 1.0
    assert math.isclose(
        phi(expr, f1), phi(restrict(expr, {name: True}), f1), abs_tol=1e-12
    )


@given(exprs(), assignments(), assignments())
@settings(max_examples=150, deadline=None)
def test_phi_monotonicity(expr, f, g):
    """Theorem 5, monotonicity: f <= g pointwise implies φ(f) <= φ(g)."""
    lo = {name: min(f[name], g[name]) for name in NAMES}
    hi = {name: max(f[name], g[name]) for name in NAMES}
    assert phi(expr, lo) <= phi(expr, hi) + 1e-12


@given(exprs(), assignments(), assignments(), st.floats(0.0, 1.0))
@settings(max_examples=150, deadline=None)
def test_phi_convexity(expr, f, g, lam):
    """Theorem 5, convexity: φ(λf + (1-λ)g) <= λφ(f) + (1-λ)φ(g)."""
    mix = {name: lam * f[name] + (1 - lam) * g[name] for name in NAMES}
    assert phi(expr, mix) <= lam * phi(expr, f) + (1 - lam) * phi(expr, g) + 1e-9


@given(exprs(), assignments(), st.floats(1.0, 5.0))
@settings(max_examples=150, deadline=None)
def test_phi_truncated_linearity(expr, f, c):
    """Theorem 5, truncated linearity: φ*(c·f) = min(1, c·φ*(f))."""
    scaled = {name: c * f[name] for name in NAMES}
    assert math.isclose(
        phi_star(expr, scaled), min(1.0, c * phi_star(expr, f)), abs_tol=1e-9
    )


@given(exprs(), assignments())
@settings(max_examples=100, deadline=None)
def test_expand_dnf_is_phi_invariant(expr, f):
    assert math.isclose(phi(expr, f), phi(expand_dnf(expr), f), abs_tol=1e-12)


@given(exprs())
@settings(max_examples=100, deadline=None)
def test_minimal_dnf_preserves_truth_table(expr):
    assert truth_equivalent(expr, minimal_dnf(expr))


@given(exprs())
@settings(max_examples=100, deadline=None)
def test_minimal_dnf_is_canonical(expr):
    """Idempotence: the minimal DNF of a minimal DNF is itself."""
    once = minimal_dnf(expr)
    assert minimal_dnf(once) == once


@given(exprs(), st.sampled_from(NAMES), assignments(fractional=False))
@settings(max_examples=100, deadline=None)
def test_restrict_false_matches_semantics(expr, name, f):
    """k|p→False evaluates like k with p forced off."""
    reduced = restrict(expr, {name: False})
    forced = dict(f)
    forced[name] = 0.0
    assert phi(reduced, forced) == phi(expr, forced)
