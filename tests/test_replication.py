"""Tests for primary/replica serving (:mod:`repro.service.replication`).

The acceptance pin (the replica consistency contract): under a
randomized update stream with concurrent read replicas, **every** answer
a replica releases is byte-identical to a fresh
:class:`~repro.session.PrivateSession` over the primary's graph checked
out at the version the answer echoes, at the same seed.  Plus the
supporting surface: the ``snapshot``/``log`` replication feed, replica
bootstrap mid-stream, write refusal on replicas, and the ``min_version``
read-your-writes contract across the wire.
"""

from __future__ import annotations

import random

import pytest

from repro import PrivateSession, random_graph_with_avg_degree
from repro.dynamic import VersionedGraph
from repro.errors import ServiceForbidden
from repro.service import (
    BackgroundService,
    ReplicaService,
    ServiceClient,
    ServiceRouter,
)
from repro.session import HierarchicalAccountant, SharedCompiledCache

PRIMARY_SEED = 20260807
WRITER_TOKEN = "replication-key"


def _versioned_graph():
    return VersionedGraph(random_graph_with_avg_degree(24, 4.0, rng=5))


def _session_over(data, rng=7):
    return PrivateSession(
        data,
        workers=1,
        rng=rng,
        accountant=HierarchicalAccountant(),
        cache=SharedCompiledCache(maxsize=8),
    )


def _primary(graph, **router_kwargs):
    router = ServiceRouter(seed=PRIMARY_SEED, **router_kwargs)
    session = _session_over(graph)
    router.add_dataset(
        "alpha", session, updates=True, writer_token=WRITER_TOKEN, default=True
    )
    return router, session


class _UpdateStream:
    """A deterministic stream of valid update batches.

    Tracks a shadow edge set so every generated action is applicable
    (``remove_edge`` of a missing edge would refuse the whole batch).
    """

    def __init__(self, graph: VersionedGraph, seed: int):
        self._rng = random.Random(seed)
        base = graph.as_graph()
        self._edges = {tuple(sorted(edge)) for edge in base.edges()}
        self._next_node = 1000

    def batch(self, size: int):
        actions = []
        for _ in range(size):
            roll = self._rng.random()
            if roll < 0.25 and self._edges:
                edge = self._rng.choice(sorted(self._edges))
                self._edges.discard(edge)
                actions.append({"action": "remove_edge", "u": edge[0], "v": edge[1]})
            elif roll < 0.35:
                actions.append({"action": "add_node", "node": self._next_node})
                self._next_node += 1
            else:
                while True:
                    u, v = self._rng.sample(range(24), 2)
                    edge = tuple(sorted((u, v)))
                    if edge not in self._edges:
                        break
                self._edges.add(edge)
                actions.append({"action": "add_edge", "u": edge[0], "v": edge[1]})
        return actions


class TestReplicationFeed:
    def test_snapshot_and_log_ops(self):
        graph = _versioned_graph()
        base_edges = {tuple(sorted(e)) for e in graph.as_graph().edges()}
        router, session = _primary(graph)
        with BackgroundService(router) as bg:
            with ServiceClient(bg.address) as client:
                snapshot = client.snapshot()
                assert snapshot["dataset"] == "alpha"
                assert snapshot["base_version"] == 0
                assert snapshot["version"] == 0
                assert ({tuple(sorted(e)) for e in snapshot["edges"]} == base_edges)
                client.update(
                    [
                        {"action": "add_edge", "u": 100, "v": 101},
                        {"action": "add_node", "node": 102},
                    ],
                    token=WRITER_TOKEN,
                )
                shipped = client.log()
                suffix = client.log(since=1)
        assert shipped["version"] == 2
        assert [item["version"] for item in shipped["deltas"]] == [1, 2]
        assert shipped["deltas"][0]["delta"]["action"] == "add_edge"
        assert shipped["deltas"][1]["delta"]["action"] == "add_node"
        assert [item["version"] for item in suffix["deltas"]] == [2]
        session.close()

    def test_feed_refused_on_static_dataset(self):
        static = random_graph_with_avg_degree(20, 3.0, rng=6)
        router = ServiceRouter(seed=PRIMARY_SEED)
        session = _session_over(static)
        router.add_dataset("alpha", session)
        with BackgroundService(router) as bg:
            with ServiceClient(bg.address) as client:
                with pytest.raises(ValueError, match="static"):
                    client.snapshot()
                with pytest.raises(ValueError, match="static"):
                    client.log()
        session.close()


class TestReplicaConsistency:
    REPLICAS = 2
    ROUNDS = 3
    EPSILON = 0.2

    def test_replicas_byte_identical_under_randomized_updates(self):
        """The acceptance pin: every replica answer == a fresh session
        over the primary graph at the echoed version and the same seed."""
        graph = _versioned_graph()
        router, primary_session = _primary(graph)
        replica_sessions = []

        def factory(replicated):
            session = _session_over(replicated)
            replica_sessions.append(session)
            return session

        released = []  # (echoed version, seed, answer)
        with BackgroundService(router) as primary_bg:
            stream = _UpdateStream(graph, seed=99)
            replicas = [
                BackgroundService(
                    ReplicaService(
                        primary_bg.address,
                        "alpha",
                        factory,
                        poll_interval=0.05,
                        seed=PRIMARY_SEED + k,
                    )
                )
                for k in range(self.REPLICAS)
            ]
            for bg in replicas:
                bg.start()
            try:
                with ServiceClient(primary_bg.address) as writer:
                    for round_index in range(self.ROUNDS):
                        out = writer.update(
                            stream.batch(1 + round_index % 3),
                            token=WRITER_TOKEN,
                        )
                        version = out["version"]
                        for k, bg in enumerate(replicas):
                            seed = 1000 + 10 * round_index + k
                            with ServiceClient(bg.address) as reader:
                                result = reader.query(
                                    "triangle",
                                    epsilon=self.EPSILON,
                                    privacy="edge",
                                    seed=seed,
                                    min_version=version,
                                )
                            # the read-your-writes floor guarantees the
                            # replica reached `version`; the answer must
                            # echo the exact version it saw
                            assert result["version"] >= version
                            assert result["dataset"] == "alpha"
                            released.append((result["version"], seed, result["answer"]))
            finally:
                for bg in replicas:
                    bg.stop()
        assert len(released) == self.REPLICAS * self.ROUNDS
        # Byte-identity against fresh sessions over the primary's own
        # versioned store, checked out at each echoed version.
        for version, seed, answer in released:
            fresh = PrivateSession(graph.at_version(version), workers=1)
            expected = fresh.query(
                "triangle", privacy="edge", epsilon=self.EPSILON, rng=seed
            )
            fresh.close()
            assert answer == expected.answer, (version, seed)
        primary_session.close()
        for session in replica_sessions:
            session.close()

    def test_replica_bootstrap_mid_stream_aligns_versions(self):
        """A replica started after updates replays the full log, so its
        version numbers line up with the primary's."""
        graph = _versioned_graph()
        router, primary_session = _primary(graph)
        replica_sessions = []

        def factory(replicated):
            session = _session_over(replicated)
            replica_sessions.append(session)
            return session

        with BackgroundService(router) as primary_bg:
            stream = _UpdateStream(graph, seed=7)
            with ServiceClient(primary_bg.address) as writer:
                out = writer.update(stream.batch(3), token=WRITER_TOKEN)
            primary_version = out["version"]
            replica = BackgroundService(
                ReplicaService(
                    primary_bg.address,
                    "alpha",
                    factory,
                    poll_interval=0.05,
                )
            )
            replica.start()
            try:
                with ServiceClient(replica.address) as reader:
                    hello = reader.hello()
                    assert hello["role"] == "replica"
                    assert hello["default_dataset"] == "alpha"
                    lane = hello["datasets"]["alpha"]
                    assert lane["graph_version"] == primary_version
                    assert lane["updates"] is False
                    # writes are refused on replicas, even with the
                    # primary's valid writer token
                    with pytest.raises(ServiceForbidden, match="updates are disabled"):
                        reader.update(
                            [{"action": "add_node", "node": 5000}],
                            token=WRITER_TOKEN,
                        )
            finally:
                replica.stop()
        primary_session.close()
        for session in replica_sessions:
            session.close()
