"""Tests for truth-table utilities and φ-sensitivities S_{k,p}."""

import pytest

from repro.boolexpr import (
    Or,
    Var,
    evaluate,
    iter_assignments,
    max_phi_sensitivity,
    minimal_satisfying_sets,
    parse,
    phi_sensitivities,
    phi_sensitivity,
    truth_equivalent,
)
from repro.boolexpr.truth import truth_equivalent_bruteforce


class TestTruth:
    def test_evaluate_with_set(self):
        expr = parse("(a & b) | c")
        assert evaluate(expr, {"a", "b"})
        assert evaluate(expr, {"c"})
        assert not evaluate(expr, {"a"})

    def test_iter_assignments_count(self):
        assert len(list(iter_assignments(["a", "b", "c"]))) == 8

    def test_minimal_satisfying_sets(self):
        expr = parse("(a & b) | c | (a & b & d)")
        assert minimal_satisfying_sets(expr) == [
            frozenset({"c"}),
            frozenset({"a", "b"}),
        ]

    def test_truth_equivalent_paper_pair(self):
        assert truth_equivalent(parse("(b1 | b2) & (b1 | b3)"), parse("b1 | (b2 & b3)"))

    def test_truth_equivalent_negative(self):
        assert not truth_equivalent(parse("a & b"), parse("a | b"))

    def test_bruteforce_agrees_with_prime_implicants(self):
        pairs = [
            ("(a | b) & (a | c)", "a | (b & c)", True),
            ("(a & b) | (a & c)", "a & (b | c)", True),
            ("a & b", "a | b", False),
            ("a", "a & a", True),
        ]
        for left, right, expected in pairs:
            assert truth_equivalent(parse(left), parse(right)) is expected
            assert truth_equivalent_bruteforce(parse(left), parse(right)) is expected

    def test_bruteforce_guard(self):
        wide = Or(Var(f"x{i}") for i in range(25))
        with pytest.raises(ValueError):
            truth_equivalent_bruteforce(wide, wide, max_vars=20)


class TestPhiSensitivity:
    def test_recursion_base_cases(self):
        from repro.boolexpr import FALSE, TRUE

        assert phi_sensitivity(TRUE, "a") == 0
        assert phi_sensitivity(FALSE, "a") == 0
        assert phi_sensitivity(Var("a"), "a") == 1
        assert phi_sensitivity(Var("a"), "b") == 0

    def test_and_sums(self):
        assert phi_sensitivity(parse("a & a"), "a") == 2

    def test_or_maxes(self):
        assert phi_sensitivity(parse("a | a"), "a") == 1

    def test_fig3_row1(self):
        """a∧b∧c: all sensitivities 1."""
        sens = phi_sensitivities(parse("a & b & c"))
        assert sens == {"a": 1, "b": 1, "c": 1}

    def test_fig3_row2(self):
        """(a∨b)∧(a∨c)∧(b∨d): S_a=S_b=2, S_c=S_d=1."""
        sens = phi_sensitivities(parse("(a | b) & (a | c) & (b | d)"))
        assert sens == {"a": 2, "b": 2, "c": 1, "d": 1}

    def test_fig3_row3(self):
        """(a∧b)∨(a∧c)∨(b∧d): all 1."""
        sens = phi_sensitivities(parse("(a & b) | (a & c) | (b & d)"))
        assert sens == {"a": 1, "b": 1, "c": 1, "d": 1}

    def test_bounded_by_occurrences(self):
        """Property 1 of Sec. 5.2."""
        for text in ["(a | b) & (a | c)", "a & a & a", "(a & b) | (a & c)"]:
            expr = parse(text)
            for name in expr.variables():
                assert phi_sensitivity(expr, name) <= expr.occurrences(name)

    def test_dnf_bounded_by_one(self):
        """Property 3 of Sec. 5.2: DNF with distinct clause literals."""
        expr = parse("(a & b) | (b & c & d) | (a & d)")
        sens = phi_sensitivities(expr)
        assert all(value <= 1 for value in sens.values())

    def test_batch_matches_single(self):
        expr = parse("(a | b) & (a | c) & (b | d)")
        batch = phi_sensitivities(expr)
        for name in expr.variables():
            assert batch[name] == phi_sensitivity(expr, name)

    def test_max_phi_sensitivity(self):
        exprs = [parse("a & b"), parse("(a | b) & (a | c)")]
        assert max_phi_sensitivity(exprs) == 2
        assert max_phi_sensitivity([]) == 0

    def test_eq17_bound_holds(self):
        """S_{k,p} bounds the φ increase from raising f(p) (Eq. 17)."""
        import numpy as np

        from repro.relax import phi

        rng = np.random.default_rng(3)
        exprs = [
            parse("(a | b) & (a | c) & (b | d)"),
            parse("(a & b) | (a & c)"),
            parse("a & a & b"),
        ]
        for expr in exprs:
            names = sorted(expr.variables())
            for _ in range(100):
                f = dict(zip(names, rng.random(len(names))))
                p = names[int(rng.integers(len(names)))]
                g = dict(f)
                g[p] = min(1.0, f[p] + float(rng.random()) * (1 - f[p]))
                lhs = phi(expr, g) - phi(expr, f)
                rhs = (g[p] - f[p]) * phi_sensitivity(expr, p)
                assert lhs <= rhs + 1e-9
