"""Tests for the reporting formatter's numeric rendering rules."""

import pytest

from repro.experiments.reporting import format_series, format_table, format_value


class TestFormatValue:
    def test_integers_render_plainly(self):
        assert format_value(13571) == "13571"
        assert format_value(48260.0) == "48260"
        assert format_value(-7.0) == "-7"

    def test_small_floats_scientific(self):
        assert "e" in format_value(1.5e-7)

    def test_large_floats_scientific(self):
        assert "e" in format_value(6.76e7 + 0.5)

    def test_moderate_floats_compact(self):
        assert format_value(0.4151) == "0.4151"

    def test_specials(self):
        assert format_value(float("inf")) == "inf"
        assert format_value(float("-inf")) == "inf"
        assert format_value(float("nan")) == "nan"
        assert format_value(None) == "-"
        assert format_value("text") == "text"

    def test_zero(self):
        assert format_value(0) == "0"
        assert format_value(0.0) == "0"


class TestTables:
    def test_column_alignment(self):
        text = format_table([{"a": 1, "bb": 22}, {"a": 333, "bb": 4}], ["a", "bb"])
        lines = text.splitlines()
        assert len({line.index("  ") for line in lines if "  " in line}) >= 1
        assert lines[1].startswith("-")

    def test_missing_cells_dash(self):
        text = format_table([{"a": 1}], ["a", "b"])
        assert "-" in text.splitlines()[-1]

    def test_series_pads_short_columns(self):
        text = format_series("x", [1, 2, 3], {"m": [0.5, 0.6]})
        assert text.splitlines()[-1].split()[0] == "3"
