"""Tests for parameters, the Δ/X machinery, and the mechanism lemmas.

The Δ and X computations are deterministic given the database, so the
lemmas of Sec. 4.1 (Lemma 1–3, 7) can be checked exactly on concrete
recursive/bounding sequences.
"""

import math

import numpy as np
import pytest

from repro.core import RecursiveMechanismParams, theorem1_error_bound
from repro.core.framework import MechanismResult, RecursiveMechanismBase
from repro.errors import PrivacyParameterError


class SequenceMechanism(RecursiveMechanismBase):
    """A mechanism defined directly by explicit H and G sequences."""

    def __init__(self, h, g):
        super().__init__()
        assert len(h) == len(g)
        self._h = list(h)
        self._g = list(g)

    @property
    def num_participants(self):
        return len(self._h) - 1

    def _h_entry(self, i):
        return self._h[i]

    def _g_entry(self, i):
        return self._g[i]

    def true_answer(self):
        return self._h[-1]


def linear_scan_delta(g, beta, theta):
    """Reference implementation of Eq. 11 by scanning all i."""
    n = len(g) - 1
    for i in range(n + 1):
        if g[n - i] <= math.exp(i * beta) * theta:
            return math.exp(i * beta) * theta, i
    raise AssertionError("no feasible i — G_0 must be 0")


class TestParams:
    def test_paper_defaults(self):
        params = RecursiveMechanismParams.paper(0.5)
        assert params.epsilon == pytest.approx(0.5)
        assert params.beta == pytest.approx(0.1)
        assert params.theta == 1.0
        assert params.mu == 0.5
        params_node = RecursiveMechanismParams.paper(0.5, node_privacy=True)
        assert params_node.mu == 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(epsilon1=0, epsilon2=1, beta=1),
            dict(epsilon1=1, epsilon2=-1, beta=1),
            dict(epsilon1=1, epsilon2=1, beta=0),
            dict(epsilon1=1, epsilon2=1, beta=1, theta=0),
            dict(epsilon1=1, epsilon2=1, beta=1, mu=0),
            dict(epsilon1=1, epsilon2=1, beta=1, g=0),
        ],
    )
    def test_invalid_params_rejected(self, kwargs):
        with pytest.raises(PrivacyParameterError):
            RecursiveMechanismParams(**kwargs)

    def test_invalid_epsilon_for_paper(self):
        with pytest.raises(PrivacyParameterError):
            RecursiveMechanismParams.paper(-1.0)
        with pytest.raises(PrivacyParameterError):
            RecursiveMechanismParams.paper(1.0, split=1.5)

    def test_failure_probability(self):
        params = RecursiveMechanismParams.paper(0.5)
        p = params.failure_probability(3.0)
        assert 0 < p < 1

    def test_theorem1_bound_positive_and_monotone_in_g(self):
        params = RecursiveMechanismParams.paper(0.5)
        b1 = theorem1_error_bound(params, 5.0)
        b2 = theorem1_error_bound(params, 50.0)
        assert 0 < b1 < b2

    def test_theorem1_bound_needs_positive_c(self):
        params = RecursiveMechanismParams.paper(0.5)
        with pytest.raises(PrivacyParameterError):
            theorem1_error_bound(params, 5.0, c=0)


class TestComputeDelta:
    @pytest.mark.parametrize(
        "h,g",
        [
            ([0, 0, 0, 1, 3, 6], [0, 0, 1, 2, 3, 3]),
            ([0, 1, 2, 3], [0, 1, 1, 1]),
            ([0, 0, 0, 0], [0, 0, 0, 0]),
            ([0] + [0] * 19 + [100], [0] * 15 + [40] * 6),
        ],
    )
    def test_binary_search_matches_linear_scan(self, h, g):
        params = RecursiveMechanismParams.paper(0.5)
        mech = SequenceMechanism(h, g)
        delta, j = mech.compute_delta(params)
        expected_delta, expected_j = linear_scan_delta(g, params.beta, params.theta)
        assert delta == pytest.approx(expected_delta)
        assert j == expected_j

    def test_lemma2_delta_bounded(self):
        """Lemma 2: Δ <= max(θ, e^β G_{|P|})."""
        params = RecursiveMechanismParams.paper(0.5)
        for g_values in ([0, 2, 5, 9], [0, 0, 0, 0], [0, 1, 1, 200]):
            h = [0] * len(g_values)
            mech = SequenceMechanism(h, g_values)
            delta, _ = mech.compute_delta(params)
            assert delta <= max(
                params.theta, math.exp(params.beta) * g_values[-1]
            ) + 1e-9

    def test_lemma3_g_at_shifted_index_bounded_by_delta(self):
        """Lemma 3: G_{|P| - ln(Δ/θ)/β} <= Δ."""
        params = RecursiveMechanismParams.paper(0.5)
        g_values = [0, 1, 2, 4, 8, 16]
        mech = SequenceMechanism([0] * 6, g_values)
        delta, j = mech.compute_delta(params)
        shift = round(math.log(delta / params.theta) / params.beta)
        assert shift == j
        assert g_values[len(g_values) - 1 - shift] <= delta + 1e-9

    def test_zero_participants(self):
        params = RecursiveMechanismParams.paper(0.5)
        mech = SequenceMechanism([0], [0])
        delta, j = mech.compute_delta(params)
        assert delta == params.theta
        assert j == 0

    def test_lemma1_log_delta_sensitivity(self):
        """GS_{ln Δ} <= β: j moves by at most 1 between neighbors.

        We simulate neighbors by the recursive-monotonicity relation:
        H_i(P2) <= H_i(P1) <= H_{i+1}(P2).  For sequence mechanisms,
        shifting the sequence by one index models a withdrawal.
        """
        params = RecursiveMechanismParams.paper(0.5)
        rng = np.random.default_rng(0)
        for _ in range(50):
            # random nondecreasing G with G_0 = 0 for the larger database
            increments = rng.random(8) * rng.integers(0, 4, size=8)
            g2 = [0.0]
            for inc in increments:
                g2.append(g2[-1] + float(inc))
            # neighbor: G1_i sandwiched between G2_i and G2_{i+1}
            lam = rng.random(len(g2) - 1)
            g1 = [g2[i] + lam[i] * (g2[i + 1] - g2[i]) for i in range(len(g2) - 1)]
            g1[0] = 0.0
            d1, _ = SequenceMechanism([0] * len(g1), g1).compute_delta(params)
            d2, _ = SequenceMechanism([0] * len(g2), g2).compute_delta(params)
            assert abs(math.log(d1) - math.log(d2)) <= params.beta + 1e-9


class TestComputeX:
    def test_scan_minimum(self):
        mech = SequenceMechanism([0, 0, 1, 5], [0, 1, 2, 3])
        value, index = mech._compute_x(0.5)
        expected = min([0 + 3 * 0.5, 0 + 2 * 0.5, 1 + 1 * 0.5, 5 + 0 * 0.5])
        assert value == pytest.approx(expected)
        assert index == 1.0

    def test_lemma7_x_sensitivity_bounded_by_delta_hat(self):
        """|X(P1) - X(P2)| <= Δ̂ for neighboring sequences."""
        rng = np.random.default_rng(1)
        for _ in range(50):
            # random convex nondecreasing H2 with H2_0 = 0
            increments = np.sort(rng.random(7))
            h2 = [0.0]
            for inc in increments:
                h2.append(h2[-1] + float(inc) * 3)
            # neighbor H1 interleaved: H2_i <= H1_i <= H2_{i+1}
            lam = rng.random(len(h2) - 1)
            h1 = [h2[i] + lam[i] * (h2[i + 1] - h2[i]) for i in range(len(h2) - 1)]
            h1[0] = 0.0
            delta_hat = float(rng.random() * 2)
            x1, _ = SequenceMechanism(h1, [0] * len(h1))._compute_x(delta_hat)
            x2, _ = SequenceMechanism(h2, [0] * len(h2))._compute_x(delta_hat)
            assert x1 - 1e-9 <= x2 <= x1 + delta_hat + 1e-9


class TestRun:
    def test_run_produces_result(self):
        params = RecursiveMechanismParams.paper(1.0)
        mech = SequenceMechanism([0, 1, 2, 5], [0, 1, 2, 2])
        result = mech.run(params, rng=0)
        assert isinstance(result, MechanismResult)
        assert result.true_answer == 5
        assert result.delta_hat > 0
        assert result.relative_error is not None

    def test_run_deterministic_given_seed(self):
        params = RecursiveMechanismParams.paper(1.0)
        mech = SequenceMechanism([0, 1, 2, 5], [0, 1, 2, 2])
        r1 = mech.run(params, rng=7)
        r2 = SequenceMechanism([0, 1, 2, 5], [0, 1, 2, 2]).run(params, rng=7)
        assert r1.answer == r2.answer

    def test_sample_answers_reuses_cache(self):
        params = RecursiveMechanismParams.paper(1.0)
        mech = SequenceMechanism([0, 1, 2, 5], [0, 1, 2, 2])
        results = mech.sample_answers(params, trials=20, rng=3)
        assert len(results) == 20
        answers = {r.answer for r in results}
        assert len(answers) > 1  # fresh noise per trial

    def test_delta_hat_bias_upward(self):
        """With μ > 0, Δ̂ >= Δ with high probability (Lemma 6)."""
        params = RecursiveMechanismParams.paper(0.5, node_privacy=True)
        mech = SequenceMechanism([0, 1, 3, 6], [0, 2, 4, 4])
        delta, _ = mech.compute_delta(params)
        rng = np.random.default_rng(5)
        above = sum(mech.noisy_delta(delta, params, rng) >= delta for _ in range(400))
        # failure probability is e^{-mu*eps1/beta}/2 = e^{-2.5}/2 ≈ 0.04
        assert above > 320

    def test_mechanism_result_relative_error_zero_truth(self):
        result = MechanismResult(
            answer=0.0,
            delta=1,
            delta_hat=1,
            x_value=0,
            x_index=0,
            j_star=0,
            params=RecursiveMechanismParams.paper(1.0),
            true_answer=0.0,
        )
        assert result.relative_error == 0.0
        result.answer = 1.0
        assert result.relative_error == float("inf")
