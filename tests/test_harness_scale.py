"""Tests for Scale presets, subsetting, and params helpers."""

import pytest

from repro.core.params import RecursiveMechanismParams, group_privacy_epsilon
from repro.errors import PrivacyParameterError
from repro.experiments.harness import Scale, resolve_scale


class TestScaleSubset:
    def _scale(self, points):
        return Scale("t", 1.0, 1, 1, 1.0, 1.0, sweep_points=points)

    def test_subset_includes_endpoints(self):
        values = list(range(10))
        subset = self._scale(4).subset(values)
        assert subset[0] == 0 and subset[-1] == 9
        assert len(subset) == 4

    def test_subset_noop_when_enough_points(self):
        values = [1, 2, 3]
        assert self._scale(10).subset(values) == values

    def test_subset_short_lists_unchanged(self):
        assert self._scale(2).subset([1, 2]) == [1, 2]
        assert self._scale(2).subset([5]) == [5]

    def test_subset_is_sorted_and_unique(self):
        subset = self._scale(5).subset(list(range(100)))
        assert subset == sorted(set(subset))

    def test_presets_exist(self):
        for name in ("smoke", "default", "full"):
            scale = resolve_scale(name)
            assert scale.trials >= 1
            assert 0 < scale.graph_nodes_factor <= 1

    def test_full_scale_is_paper_scale(self):
        full = resolve_scale("full")
        assert full.graph_nodes_factor == 1.0
        assert full.krelation_factor == 1.0
        assert full.dataset_scale == 1.0


class TestGroupPrivacy:
    def test_linear_degradation(self):
        params = RecursiveMechanismParams.paper(0.5)
        assert group_privacy_epsilon(params, 1) == pytest.approx(0.5)
        assert group_privacy_epsilon(params, 4) == pytest.approx(2.0)

    def test_invalid_group(self):
        params = RecursiveMechanismParams.paper(0.5)
        with pytest.raises(PrivacyParameterError):
            group_privacy_epsilon(params, 0)
