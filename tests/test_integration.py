"""Cross-module integration tests: full pipelines as a user would run them."""

import math

import numpy as np
import pytest

from repro import (
    PROVENANCE,
    Join,
    KRelation,
    Project,
    Rename,
    Select,
    SensitiveKRelation,
    Table,
    Tup,
    Var,
    evaluate_query,
    private_linear_query,
    private_subgraph_count,
    random_graph_with_avg_degree,
    triangle,
)
from repro.core import (
    CountQuery,
    EfficientRecursiveMechanism,
    GeneralRecursiveMechanism,
    RecursiveMechanismParams,
    universal_empirical_sensitivity,
)
from repro.subgraphs import subgraph_krelation


class TestAlgebraToMechanismPipeline:
    """Fig. 2(b) end-to-end: relational query -> provenance -> mechanism."""

    def _common_friend_query(self):
        e1 = Rename(Table("E"), {"src": "u", "dst": "w"})
        e2 = Rename(Table("E"), {"src": "w", "dst": "v"})
        e3 = Rename(Table("E"), {"src": "u", "dst": "v"})
        return Project(
            Select(Join(Join(e1, e2), e3), lambda t: t["u"] < t["v"]),
            ("u", "v"),
        )

    def _edge_table(self, graph):
        table = KRelation({"src", "dst"}, PROVENANCE)
        for u, v in graph.edges():
            annotation = Var(f"v:{u}") & Var(f"v:{v}")
            table.add(Tup(src=u, dst=v), annotation)
            table.add(Tup(src=v, dst=u), annotation)
        return table

    def test_query_output_counts_match_direct_computation(self):
        graph = random_graph_with_avg_degree(30, 6, rng=8)
        output = evaluate_query(
            self._common_friend_query(), {"E": self._edge_table(graph)}
        )
        expected = 0
        for u, v in graph.edges():
            if graph.common_neighbors(u, v):
                expected += 1
        assert len(output) == expected

    def test_mechanism_on_query_output(self):
        graph = random_graph_with_avg_degree(30, 6, rng=8)
        output = evaluate_query(
            self._common_friend_query(), {"E": self._edge_table(graph)}
        )
        participants = [f"v:{node}" for node in graph.nodes()]
        relation = SensitiveKRelation(participants, output).normalized()
        result = private_linear_query(relation, epsilon=2.0, node_privacy=True, rng=0)
        assert result.true_answer == len(output)
        assert math.isfinite(result.answer)

    def test_world_consistency_with_graph_deletion(self):
        """Grounding the query provenance at P-{v} equals re-running the
        query on the graph without v."""
        graph = random_graph_with_avg_degree(20, 5, rng=9)
        output = evaluate_query(
            self._common_friend_query(), {"E": self._edge_table(graph)}
        )
        participants = [f"v:{node}" for node in graph.nodes()]
        relation = SensitiveKRelation(participants, output)
        victim = graph.nodes()[0]
        world = relation.world(set(participants) - {f"v:{victim}"})

        smaller = graph.copy()
        smaller.remove_node(victim)
        reduced_output = evaluate_query(
            self._common_friend_query(), {"E": self._edge_table(smaller)}
        )
        assert {tuple(sorted(dict(t).items())) for t in world} == {
            tuple(sorted(dict(t).items())) for t in reduced_output.support()
        }


class TestSubgraphPipelines:
    def test_node_and_edge_privacy_share_truth(self):
        graph = random_graph_with_avg_degree(35, 7, rng=10)
        node_result = private_subgraph_count(
            graph, triangle(), privacy="node", epsilon=1.0, rng=0
        )
        edge_result = private_subgraph_count(
            graph, triangle(), privacy="edge", epsilon=1.0, rng=0
        )
        assert node_result.true_answer == edge_result.true_answer

    def test_node_privacy_less_accurate_than_edge(self):
        """Node privacy costs accuracy (Sec. 6.1) — compare median errors.

        Note the comparison must be on the final error, not on Δ: with few
        node participants the bounding sequence can decay *faster* than the
        edge one, giving a smaller Δ but a much worse X (mass withdrawal
        kills many matches), so Δ alone is not monotone across privacy
        notions.
        """
        graph = random_graph_with_avg_degree(40, 8, rng=11)
        relation_node = subgraph_krelation(graph, triangle(), privacy="node")
        relation_edge = subgraph_krelation(graph, triangle(), privacy="edge")
        mech_node = EfficientRecursiveMechanism(relation_node)
        mech_edge = EfficientRecursiveMechanism(relation_edge)
        params_node = RecursiveMechanismParams.paper(0.5, node_privacy=True)
        params_edge = RecursiveMechanismParams.paper(0.5)
        rng = np.random.default_rng(0)
        node_errors = sorted(
            mech_node.run(params_node, rng).relative_error for _ in range(15)
        )
        edge_errors = sorted(
            mech_edge.run(params_edge, rng).relative_error for _ in range(15)
        )
        assert node_errors[7] >= 0.5 * edge_errors[7]

    def test_delta_tracks_universal_sensitivity(self):
        """Sec. 5.2: G_|P| <= 2·S·~US, and Δ <= e^β·G_|P| (Lemma 2)."""
        graph = random_graph_with_avg_degree(30, 7, rng=12)
        relation = subgraph_krelation(graph, triangle(), privacy="node")
        mech = EfficientRecursiveMechanism(relation)
        params = RecursiveMechanismParams.paper(0.5, node_privacy=True)
        delta, _ = mech.compute_delta(params)
        us = universal_empirical_sensitivity(CountQuery(), relation)
        # S = 1 for conjunctive DNF annotations
        assert mech.g_entry(mech.num_participants) <= 2 * us + 1e-6
        assert delta <= math.exp(params.beta) * 2 * us + params.theta + 1e-6

    def test_general_and_efficient_agree_end_to_end(self):
        """Same K-relation, same noise seed path lengths — compare Δ."""
        from repro.graphs import Graph

        graph = Graph(edges=[(0, 1), (1, 2), (0, 2), (2, 3), (1, 3)])
        relation = subgraph_krelation(graph, triangle(), privacy="node")
        eff = EfficientRecursiveMechanism(relation)
        gen = GeneralRecursiveMechanism(
            relation.as_sensitive_database(), lambda w: float(len(w))
        )
        params = RecursiveMechanismParams.paper(0.5, node_privacy=True, g=2)
        delta_eff, _ = eff.compute_delta(params)
        delta_gen, _ = gen.compute_delta(params)
        # efficient uses the 2x bounding sequence: its Δ is >= the exact one
        assert delta_eff >= delta_gen - 1e-9

    def test_withdraw_chain_monotone_truth(self):
        """Ancestors have no more tuples — monotonicity end to end."""
        graph = random_graph_with_avg_degree(25, 6, rng=13)
        relation = subgraph_krelation(graph, triangle(), privacy="node")
        counts = [len(relation)]
        current = relation
        for participant in sorted(current.participants)[:5]:
            current = current.withdraw(participant)
            counts.append(len(current))
        assert all(a >= b for a, b in zip(counts, counts[1:]))


class TestDatasetPipeline:
    def test_dataset_to_private_count(self):
        from repro.graphs import load_dataset

        graph = load_dataset("netscience", scale=0.02)
        result = private_subgraph_count(
            graph, triangle(), privacy="edge", epsilon=1.0, rng=0
        )
        assert math.isfinite(result.answer)
        assert result.true_answer >= 0
