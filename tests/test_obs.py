"""Tests for :mod:`repro.obs` — registry, tracing, exposition — and the
serving integration.

The acceptance pins:

* **byte-identity** — released answers are identical with instrumentation
  on or off at the same seed, serially, through a ``workers=2`` pool, and
  over the wire (trace ids derive from seed material, never the clock);
* **histogram semantics** — fixed log buckets follow Prometheus ``le``
  rules (a value equal to a boundary lands in that boundary's bucket),
  so cross-process merges are exact bucket-by-bucket adds;
* **the wire surface** — the v2 ``metrics`` op returns a parseable
  Prometheus text body plus JSON rows with quantiles, ``hello``/``stats``
  carry ``uptime_seconds`` and the ``obs_schema`` version, and
  :meth:`ResultFrame.from_payload` keeps ignoring keys it does not know.
"""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro import PrivateSession, random_graph_with_avg_degree
from repro.obs import (
    OBS_SCHEMA,
    Histogram,
    MetricsRegistry,
    deterministic_trace_id,
    json_payload,
    metrics,
    parse_prometheus_text,
    prometheus_text,
    quantile_from_counts,
    seed_trace_id,
    size_buckets,
    time_buckets,
    tracer,
    validate_span_records,
)
from repro.obs import configure as obs_configure
from repro.service import (
    BackgroundService,
    ResultFrame,
    ServiceClient,
    ServiceRouter,
)
from repro.session import HierarchicalAccountant, SharedCompiledCache
from repro.subgraphs import triangle


@pytest.fixture
def capture_spans():
    """Enable the process tracer with a list sink; restore it after."""
    active = tracer()
    saved = (
        active.enabled,
        active._sink,
        active._slow_ms,
        active._slow_stream,
        active._buffer,
    )
    records = []
    active.configure(sink=records.append, enabled=True)
    try:
        yield records
    finally:
        (
            active.enabled,
            active._sink,
            active._slow_ms,
            active._slow_stream,
            active._buffer,
        ) = saved


def _counter_total(name, **labels):
    return sum(metric.value for _, metric in metrics().find(name, **labels))


def _histogram_count(name, **labels):
    return sum(metric.count for _, metric in metrics().find(name, **labels))


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_get_or_create_is_identity(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_x_total", dataset="a")
        assert registry.counter("repro_x_total", dataset="a") is first
        assert registry.counter("repro_x_total", dataset="b") is not first

    def test_counters_only_go_up(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_x_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_gauge_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("repro_inflight")
        gauge.set(4)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 3.0

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total")
        with pytest.raises(ValueError, match="not a Gauge"):
            registry.gauge("repro_x_total")

    def test_histogram_boundary_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.histogram("repro_h", buckets=[1.0, 2.0])
        with pytest.raises(ValueError, match="different bucket"):
            registry.histogram("repro_h", buckets=[1.0, 4.0])

    def test_default_bucket_shapes(self):
        latencies = time_buckets()
        sizes = size_buckets()
        assert len(latencies) == 40
        assert latencies == tuple(sorted(latencies))
        assert latencies[0] == pytest.approx(1e-6)
        assert sizes == tuple(float(2**k) for k in range(24))


class TestHistogramBuckets:
    def test_le_semantics_at_every_boundary(self):
        """A value equal to a boundary lands in *that* bucket; one just
        above lands in the next — the Prometheus ``le`` contract, at
        every boundary of the default latency schedule."""
        bounds = time_buckets()
        for index, edge in enumerate(bounds):
            exact = Histogram(bounds)
            exact.observe(edge)
            assert exact.counts()[index] == 1, f"boundary {index}"
            above = Histogram(bounds)
            above.observe(edge * (1.0 + 1e-9))
            assert above.counts()[index + 1] == 1, f"boundary {index}"

    def test_underflow_and_overflow(self):
        histogram = Histogram([1.0, 2.0, 4.0])
        histogram.observe(0.25)  # below every boundary -> first bucket
        histogram.observe(100.0)  # above every boundary -> overflow
        assert histogram.counts() == [1, 0, 0, 1]
        assert histogram.count == 2
        assert histogram.sum == pytest.approx(100.25)

    def test_bounds_must_strictly_increase(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram([1.0, 1.0, 2.0])
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram([])

    def test_quantiles_interpolate_and_clamp(self):
        histogram = Histogram([1.0, 2.0, 4.0])
        for value in (0.5, 1.5, 1.5, 3.0):
            histogram.observe(value)
        assert histogram.quantile(0.0) == 0.0
        # p50: rank 2 of 4 falls in the (1, 2] bucket holding 2 samples.
        assert 1.0 <= histogram.quantile(0.5) <= 2.0
        # Overflow quantiles clamp to the largest finite boundary.
        histogram.observe(1000.0)
        assert histogram.quantile(1.0) == 4.0
        triple = histogram.percentiles()
        assert set(triple) == {"p50", "p95", "p99"}

    def test_quantile_from_counts_edge_cases(self):
        assert quantile_from_counts([1.0], [0, 0], 0.5) is None
        with pytest.raises(ValueError, match="quantile"):
            quantile_from_counts([1.0], [1, 0], 1.5)


class TestSnapshotDeltaMerge:
    def test_drain_delta_reports_changes_exactly_once(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total").inc(3)
        registry.gauge("repro_g").set(7)
        registry.histogram("repro_h", buckets=[1.0, 2.0]).observe(1.5)

        delta = registry.drain_delta()
        assert delta["schema"] == OBS_SCHEMA
        by_name = {row["name"]: row for row in delta["metrics"]}
        assert by_name["repro_x_total"]["value"] == 3
        assert by_name["repro_g"]["value"] == 7
        assert by_name["repro_h"]["counts"] == [0, 1, 0]

        # Nothing changed since: the next drain is empty.
        assert registry.drain_delta()["metrics"] == []

        # Only the increment since the last drain ships.
        registry.counter("repro_x_total").inc(2)
        (row,) = registry.drain_delta()["metrics"]
        assert row["name"] == "repro_x_total" and row["value"] == 2

        # The full snapshot still reports cumulative state.
        snap = {row["name"]: row for row in registry.snapshot()["metrics"]}
        assert snap["repro_x_total"]["value"] == 5

    def test_rebaseline_discards_pending_deltas(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total").inc(9)
        registry.rebaseline()
        assert registry.drain_delta()["metrics"] == []
        assert registry.counter("repro_x_total").value == 9

    def test_merge_round_trips_through_json(self):
        """The cross-process contract: a drained delta survives JSON and
        folds into a fresh registry with identical totals."""
        source = MetricsRegistry()
        source.counter("repro_x_total", mode="fork").inc(3)
        source.gauge("repro_g").set(2.5)
        histogram = source.histogram("repro_h", buckets=[1.0, 2.0, 4.0])
        for value in (0.5, 1.5, 8.0):
            histogram.observe(value)

        wire = json.loads(json.dumps(source.drain_delta()))
        target = MetricsRegistry()
        target.merge(wire)
        target.merge(None)  # tolerated: tasks that touched no metric

        assert target.counter("repro_x_total", mode="fork").value == 3
        assert target.gauge("repro_g").value == 2.5
        merged = target.histogram("repro_h", buckets=[1.0, 2.0, 4.0])
        assert merged.counts() == histogram.counts()
        assert merged.sum == pytest.approx(histogram.sum)

    def test_merge_rejects_boundary_mismatch(self):
        source = MetricsRegistry()
        source.histogram("repro_h", buckets=[1.0, 2.0]).observe(1.5)
        payload = source.drain_delta()
        target = MetricsRegistry()
        target.histogram("repro_h", buckets=[1.0, 2.0, 4.0])
        with pytest.raises(ValueError):
            target.merge(payload)

    def test_find_filters_by_label_subset(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", dataset="a", user="u").inc()
        registry.counter("repro_x_total", dataset="b", user="u").inc(2)
        rows = list(registry.find("repro_x_total", dataset="b"))
        assert len(rows) == 1
        assert rows[0][0] == {"dataset": "b", "user": "u"}
        total = sum(m.value for _, m in registry.find("repro_x_total"))
        assert total == 3


# ---------------------------------------------------------------------------
# Trace ids and spans
# ---------------------------------------------------------------------------


class TestTraceIds:
    def test_deterministic_trace_id_is_stable_hex(self):
        first = deterministic_trace_id("seed", 123, "alice")
        assert first == deterministic_trace_id("seed", 123, "alice")
        assert len(first) == 32
        int(first, 16)  # hex
        assert first != deterministic_trace_id("seed", 124, "alice")

    def test_seed_trace_id_from_seed_sequence(self):
        seed = np.random.SeedSequence(entropy=20260801, spawn_key=(3,))
        same = np.random.SeedSequence(entropy=20260801, spawn_key=(3,))
        assert seed_trace_id(seed, "alice") == seed_trace_id(same, "alice")
        assert seed_trace_id(seed, "alice") != seed_trace_id(seed, "bob")
        assert seed_trace_id(seed) != seed_trace_id(
            np.random.SeedSequence(entropy=20260801, spawn_key=(4,))
        )

    def test_seed_trace_id_fallbacks(self):
        assert seed_trace_id(None) is None
        assert seed_trace_id(True) is None  # bools are not seeds
        assert seed_trace_id("nope") is None
        assert seed_trace_id(7) == seed_trace_id(7)


class TestSpans:
    def test_disabled_tracer_yields_none_and_emits_nothing(self):
        active = tracer()
        assert active.enabled is False
        with active.span("router.query") as state:
            assert state is None

    def test_nested_spans_form_a_tree(self, capture_spans):
        active = tracer()
        with active.span("root", trace_id="a" * 32, dataset="alpha"):
            with active.span("child"):
                pass
            with active.span("child"):
                pass
        forest = validate_span_records(capture_spans)
        assert set(forest) == {"a" * 32}
        by_name = {}
        for record in capture_spans:
            by_name.setdefault(record["name"], []).append(record)
        (root,) = by_name["root"]
        assert root["parent"] is None
        assert root["attrs"] == {"dataset": "alpha"}
        children = by_name["child"]
        assert len(children) == 2
        assert all(c["parent"] == root["span"] for c in children)
        # Same name, different birth order -> different deterministic ids.
        assert children[0]["span"] != children[1]["span"]

    def test_parent_context_wins_over_explicit_trace_id(self, capture_spans):
        active = tracer()
        with active.span("root", trace_id="a" * 32):
            with active.span("child", trace_id="b" * 32):
                pass
        assert all(r["trace"] == "a" * 32 for r in capture_spans)

    def test_span_ids_are_deterministic_for_a_given_trace(self, capture_spans):
        active = tracer()

        def run():
            with active.span("root", trace_id="c" * 32):
                with active.span("step"):
                    pass

        run()
        first = list(capture_spans)
        capture_spans.clear()
        run()
        def strip(r):
            return {k: r[k] for k in ("trace", "span", "parent", "name")}

        assert [strip(r) for r in first] == [strip(r) for r in capture_spans]

    def test_worker_buffering_and_absorb(self, capture_spans):
        active = tracer()
        saved_sink = active._sink
        try:
            active.worker_mode()
            with active.span("session.release", trace_id="d" * 32):
                pass
            assert capture_spans == []  # buffered, not sunk
            shipped = active.drain_buffered()
            assert [r["name"] for r in shipped] == ["session.release"]
            assert active.drain_buffered() == []
        finally:
            active._buffer = None
            active.configure(sink=saved_sink)
        active.absorb(shipped)
        assert [r["name"] for r in capture_spans] == ["session.release"]
        validate_span_records(capture_spans)

    def test_slow_query_log_fires_on_slow_roots_only(self, capture_spans):
        active = tracer()
        slow = io.StringIO()
        active.configure(slow_ms=0.0, slow_stream=slow)
        with active.span("router.query", trace_id="e" * 32, dataset="alpha"):
            with active.span("session.prepare"):
                pass
        lines = slow.getvalue().splitlines()
        assert len(lines) == 1  # the child span never hits the slow log
        assert "[slow-query]" in lines[0]
        assert "name=router.query" in lines[0]
        assert "dataset='alpha'" in lines[0]

    def test_configure_trace_log_writes_json_lines(self, tmp_path):
        active = tracer()
        saved = (active.enabled, active._sink, active._slow_ms)
        path = tmp_path / "spans.jsonl"
        try:
            obs_configure(trace_log=str(path))
            with active.span("root", trace_id="f" * 32):
                with active.span("step"):
                    pass
            active._sink.close()
        finally:
            active.enabled, active._sink, active._slow_ms = saved
        records = [json.loads(line) for line in path.read_text().splitlines()]
        forest = validate_span_records(records)
        assert set(forest) == {"f" * 32}
        assert sorted(r["name"] for r in records) == ["root", "step"]


class TestValidateSpanRecords:
    def test_rejects_missing_keys(self):
        with pytest.raises(ValueError, match="missing"):
            validate_span_records([{"trace": "t", "span": "s"}])

    def test_rejects_duplicate_span_ids(self):
        record = {
            "trace": "t",
            "span": "s",
            "parent": None,
            "name": "x",
            "duration_ms": 1.0,
        }
        with pytest.raises(ValueError, match="duplicate"):
            validate_span_records([record, dict(record)])

    def test_rejects_orphan_parents(self):
        record = {
            "trace": "t",
            "span": "s",
            "parent": "ghost",
            "name": "x",
            "duration_ms": 1.0,
        }
        with pytest.raises(ValueError, match="parent"):
            validate_span_records([record])


# ---------------------------------------------------------------------------
# Exposition
# ---------------------------------------------------------------------------


class TestExposition:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", dataset="a").inc(3)
        registry.gauge("repro_inflight").set(2)
        histogram = registry.histogram("repro_h_seconds", buckets=[1.0, 2.0])
        for value in (0.5, 1.5, 9.0):
            histogram.observe(value)
        return registry

    def test_text_round_trips_through_the_parser(self):
        text = prometheus_text(self._registry().snapshot())
        samples = {
            (name, tuple(sorted(labels.items()))): value
            for name, labels, value in parse_prometheus_text(text)
        }
        assert samples[("repro_x_total", (("dataset", "a"),))] == 3
        assert samples[("repro_inflight", ())] == 2
        # Buckets are cumulative and the +Inf bucket equals _count.
        assert samples[("repro_h_seconds_bucket", (("le", "1"),))] == 1
        assert samples[("repro_h_seconds_bucket", (("le", "2"),))] == 2
        inf = samples[("repro_h_seconds_bucket", (("le", "+Inf"),))]
        assert inf == samples[("repro_h_seconds_count", ())] == 3
        assert samples[("repro_h_seconds_sum", ())] == pytest.approx(11.0)
        assert "# TYPE repro_h_seconds histogram" in text

    def test_label_values_escape_and_unescape(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", label='say "hi"\n').inc()
        ((name, labels, value),) = parse_prometheus_text(
            prometheus_text(registry.snapshot())
        )
        assert labels == {"label": 'say "hi"\n'} and value == 1

    def test_parser_rejects_malformed_lines(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_prometheus_text("this is { not a sample\n")

    def test_json_payload_attaches_quantiles(self):
        payload = json_payload(self._registry().snapshot())
        assert payload["schema"] == OBS_SCHEMA
        (row,) = [r for r in payload["metrics"] if r["kind"] == "histogram"]
        assert set(row["quantiles"]) == {"p50", "p95", "p99"}
        assert row["quantiles"]["p50"] is not None


# ---------------------------------------------------------------------------
# Byte-identity: instrumentation must never move a released byte
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def identity_graph():
    return random_graph_with_avg_degree(30, 5.0, rng=6)


def _serial_answers(graph):
    session = PrivateSession(graph, workers=1, rng=42)
    try:
        return [
            session.query(triangle(), privacy="edge", epsilon=0.5).answer
            for _ in range(3)
        ]
    finally:
        session.close()


def _pooled_answers(graph):
    session = PrivateSession(graph, workers=2, rng=42)
    try:
        futures = [
            session.submit(triangle(), privacy="edge", epsilon=0.5) for _ in range(4)
        ]
        return [future.result().answer for future in futures]
    finally:
        session.close()


def _wire_answers(graph):
    router = ServiceRouter(seed=20260808)
    session = PrivateSession(
        graph,
        workers=1,
        rng=7,
        accountant=HierarchicalAccountant(),
        cache=SharedCompiledCache(maxsize=8),
    )
    router.add_dataset("alpha", session, default=True)
    try:
        with BackgroundService(router) as bg:
            with ServiceClient(bg.address, user="alice") as client:
                return [
                    client.query("triangle", epsilon=0.5, privacy="node")["answer"]
                    for _ in range(3)
                ]
    finally:
        session.close()


class TestByteIdentity:
    def test_serial_answers_identical_with_tracing_on(
        self, identity_graph, capture_spans
    ):
        with_tracing = _serial_answers(identity_graph)
        active = tracer()
        active.enabled = False
        without = _serial_answers(identity_graph)
        active.enabled = True
        assert with_tracing == without
        assert any(r["name"] == "session.query" for r in capture_spans)

    def test_pooled_answers_identical_with_tracing_on(
        self, identity_graph, capture_spans
    ):
        with_tracing = _pooled_answers(identity_graph)
        active = tracer()
        active.enabled = False
        without = _pooled_answers(identity_graph)
        active.enabled = True
        assert with_tracing == without
        # Worker-side spans shipped home through the result envelope.
        submits = [r for r in capture_spans if r["name"] == "session.submit"]
        assert submits and all(r["attrs"]["pooled"] for r in submits)

    def test_wire_answers_identical_with_tracing_on(
        self, identity_graph, capture_spans
    ):
        with_tracing = _wire_answers(identity_graph)
        active = tracer()
        active.enabled = False
        without = _wire_answers(identity_graph)
        active.enabled = True
        assert with_tracing == without
        roots = [r for r in capture_spans if r["name"] == "router.query"]
        assert roots and all(r["parent"] is None for r in roots)
        # Root ids derive from the request's seed material: replaying the
        # same seeds yields the same trace ids, in order.
        capture_spans.clear()
        replay = _wire_answers(identity_graph)
        assert replay == with_tracing
        replay_roots = [r for r in capture_spans if r["name"] == "router.query"]
        assert [r["trace"] for r in replay_roots] == [r["trace"] for r in roots]
        validate_span_records(capture_spans)


# ---------------------------------------------------------------------------
# Serving integration: wire op, hello/stats, pool merge, lane gauges
# ---------------------------------------------------------------------------


class TestServingIntegration:
    def _router(self, graph):
        router = ServiceRouter(seed=20260808)
        session = PrivateSession(
            graph,
            workers=1,
            rng=7,
            accountant=HierarchicalAccountant(),
            cache=SharedCompiledCache(maxsize=8),
        )
        router.add_dataset("alpha", session, default=True)
        return router, session

    def test_metrics_wire_op_exposes_live_histograms(self, identity_graph):
        router, session = self._router(identity_graph)
        try:
            with BackgroundService(router) as bg:
                with ServiceClient(bg.address, user="alice") as client:
                    for _ in range(3):
                        client.query("triangle", epsilon=0.5, privacy="node")
                    payload = client.metrics()
                    hello = client.hello()
                    stats = client.stats()
        finally:
            session.close()

        assert payload["schema"] == OBS_SCHEMA
        assert payload["role"] == "primary"
        assert payload["uptime_seconds"] >= 0.0

        rows = {
            (row["name"], row["labels"].get("dataset")): row
            for row in payload["metrics"]
        }
        query_row = rows[("repro_query_seconds", "alpha")]
        assert query_row["count"] >= 3
        assert query_row["quantiles"]["p50"] > 0.0
        assert rows[("repro_admission_wait_seconds", "alpha")]["count"] >= 3
        compile_counts = sum(
            row["count"]
            for row in payload["metrics"]
            if row["name"] == "repro_compile_seconds"
        )
        assert compile_counts >= 3

        # The text body is real exposition: strict-parse it and check the
        # query histogram agrees with the JSON rows.
        samples = parse_prometheus_text(payload["text"])
        counts = {
            (name, labels.get("dataset")): value
            for name, labels, value in samples
            if name == "repro_query_seconds_count"
        }
        assert counts[("repro_query_seconds_count", "alpha")] == query_row["count"]

        # hello/stats carry uptime and the payload schema version.
        for frame in (hello, stats):
            assert frame["obs_schema"] == OBS_SCHEMA
            assert frame["uptime_seconds"] >= 0.0

    def test_lane_gauges_return_to_zero_and_count_grants(self, identity_graph):
        router, session = self._router(identity_graph)
        before = _counter_total("repro_lane_granted_total", dataset="alpha")
        try:
            with BackgroundService(router) as bg:
                with ServiceClient(bg.address, user="alice") as client:
                    for _ in range(2):
                        client.query("triangle", epsilon=0.5, privacy="node")
        finally:
            session.close()
        after = _counter_total("repro_lane_granted_total", dataset="alpha")
        assert after - before == 2
        for _, gauge in metrics().find("repro_lane_inflight", dataset="alpha"):
            assert gauge.value == 0

    def test_lp_solve_histogram_observes_backend_solves(self):
        from repro.boolexpr.expr import And, Var
        from repro.lp import backends as lp_backends
        from repro.relax.encode import EncodedRelation

        before = _histogram_count("repro_lp_solve_seconds", overlay="h")
        relation = EncodedRelation(
            ["p0", "p1", "p2"],
            [(And([Var("p0"), Var("p1")]), 2.0), (Var("p2"), 1.0)],
            lp_backends.default_backend(),
        )
        relation._compiled.solve_h(1.0)
        after = _histogram_count("repro_lp_solve_seconds", overlay="h")
        assert after == before + 1

    def test_pool_tasks_merge_into_parent_registry(self, identity_graph):
        tasks_before = _counter_total("repro_pool_tasks_total")
        releases_before = _histogram_count("repro_release_seconds")
        answers = _pooled_answers(identity_graph)
        assert len(answers) == 4
        assert _counter_total("repro_pool_tasks_total") - tasks_before >= 4
        # Worker-side release timings merged home through the envelope.
        assert _histogram_count("repro_release_seconds") - releases_before >= 4
        for _, gauge in metrics().find("repro_pool_inflight"):
            assert gauge.value == 0

    def test_result_frame_tolerates_obs_era_keys(self):
        frame = ResultFrame(
            answer=1.5,
            label=None,
            epsilon=0.5,
            user="alice",
            mechanism="recursive",
            query="triangle/node",
            status="released",
            index=0,
            cache_hit=True,
            seed=7,
            version=None,
            lp_backend="dense",
            dataset="alpha",
        )
        payload = frame.to_payload()
        payload.update(obs_schema=OBS_SCHEMA, trace="f" * 32, uptime_seconds=1.0)
        assert ResultFrame.from_payload(payload) == frame


class TestObsCli:
    def test_obs_command_scrapes_text_json_and_snapshot(
        self, identity_graph, tmp_path, capsys
    ):
        from repro.cli import main

        router = ServiceRouter(seed=20260808)
        session = PrivateSession(
            identity_graph,
            workers=1,
            rng=7,
            accountant=HierarchicalAccountant(),
            cache=SharedCompiledCache(maxsize=8),
        )
        router.add_dataset("alpha", session, default=True)
        snapshot_path = tmp_path / "metrics-snapshot.json"
        try:
            with BackgroundService(router) as bg:
                with ServiceClient(bg.address, user="alice") as client:
                    client.query("triangle", epsilon=0.5, privacy="node")
                host, port = bg.address
                address = f"{host}:{port}"
                assert main(["obs", address]) == 0
                text = capsys.readouterr().out
                assert main(
                    ["obs", address, "--json", "--output", str(snapshot_path)]
                ) == 0
                json_out = capsys.readouterr().out
        finally:
            session.close()

        samples = parse_prometheus_text(text)
        assert any(name == "repro_query_seconds_count" for name, _, _ in samples)
        payload = json.loads(json_out)
        assert payload["schema"] == OBS_SCHEMA
        assert "text" not in payload
        archived = json.loads(snapshot_path.read_text())
        assert archived["schema"] == OBS_SCHEMA
        parse_prometheus_text(archived["text"])

    def test_obs_command_reports_connection_errors(self, capsys):
        from repro.cli import main

        assert main(["obs", "127.0.0.1:9"]) == 2
        assert capsys.readouterr().err
