"""Failure injection and complexity-contract tests.

The mechanism must fail loudly — never release a junk answer — when its
substrate misbehaves (solver failures, invalid intermediate values), and
its query complexity must match the paper's contracts (few G-entries per
Δ search, two H-entries per X).
"""

import math

import numpy as np
import pytest

from repro.boolexpr import parse
from repro.core import (
    EfficientRecursiveMechanism,
    RecursiveMechanismParams,
    SensitiveKRelation,
)
from repro.errors import LPError, MechanismError
from repro.graphs import random_graph_with_avg_degree
from repro.lp import LPSolution, ScipyBackend
from repro.subgraphs import subgraph_krelation, triangle


class FailingBackend:
    """A backend that reports infeasibility for every program."""

    def solve(self, lp):
        return LPSolution("infeasible", float("nan"), np.zeros(0), "injected")


class TruncatedSolutionBackend:
    """A backend that claims optimality but returns no variable values."""

    def solve(self, lp):
        return LPSolution("optimal", 1.0, np.zeros(0), "truncated")


class CorruptingBackend:
    """A backend that returns wrong (optimal-looking) objective values."""

    def __init__(self, inner=None, offset=-100.0):
        self.inner = inner or ScipyBackend()
        self.offset = offset

    def solve(self, lp):
        solution = self.inner.solve(lp)
        if solution.is_optimal:
            solution.objective += self.offset
        return solution


@pytest.fixture
def relation():
    return SensitiveKRelation(
        ["a", "b", "c"],
        [("t1", parse("a & b")), ("t2", parse("b & c")), ("t3", parse("a | c"))],
    )


class TestSolverFailures:
    def test_infeasible_solver_raises_not_releases(self, relation):
        mechanism = EfficientRecursiveMechanism(relation, backend=FailingBackend())
        params = RecursiveMechanismParams.paper(1.0)
        with pytest.raises(LPError):
            mechanism.run(params, rng=0)

    def test_truncated_solution_raises_lperror_not_indexerror(self, relation):
        """solve_x_relaxation reads x positionally per participant; an
        "optimal" solution without values must fail loudly, not with an
        opaque IndexError."""
        mechanism = EfficientRecursiveMechanism(
            relation, backend=TruncatedSolutionBackend()
        )
        with pytest.raises(LPError, match="variable values"):
            mechanism._compute_x(0.5)

    def test_iteration_limited_solver_cause_surfaced(self, relation):
        """An LP stopped on the iteration budget must name the real cause
        in the raised error rather than a bare \"error\"."""
        backend = ScipyBackend(max_iterations=0, options={"presolve": False})
        mechanism = EfficientRecursiveMechanism(relation, backend=backend)
        with pytest.raises(LPError, match="iteration_limit"):
            mechanism.h_entry(2)

    def test_corrupted_objective_detected_by_convexity_guard(self, relation):
        """A solver returning too-low X values trips the Eq. 20 consistency
        check instead of silently biasing the release."""
        mechanism = EfficientRecursiveMechanism(relation)
        # corrupt only the H entries used by _compute_x via a hostile cache
        mechanism._h_cache = {0: -500.0, 1: -500.0, 2: -500.0, 3: -500.0}
        with pytest.raises(MechanismError):
            mechanism._compute_x(0.5)


class TestComplexityContracts:
    def test_delta_search_touches_logarithmic_g_entries(self):
        graph = random_graph_with_avg_degree(60, 8, rng=0)
        relation = subgraph_krelation(graph, triangle(), privacy="node")
        mechanism = EfficientRecursiveMechanism(relation)
        params = RecursiveMechanismParams.paper(0.5, node_privacy=True)
        mechanism.compute_delta(params)
        touched = len(mechanism._g_cache)
        g_final = mechanism.g_entry(mechanism.num_participants)
        # Sec. 5.3: O(log(ln(G)/beta)) entries; generous constant
        bound = 4 + 2 * math.log2(max(2.0, 1 + math.log(max(g_final, 2)) / params.beta))
        assert touched <= bound

    def test_x_touches_constant_h_entries_per_run(self, relation):
        mechanism = EfficientRecursiveMechanism(relation)
        params = RecursiveMechanismParams.paper(1.0)
        mechanism.run(params, rng=0)
        first = len(mechanism._h_cache)
        mechanism.run(params, rng=1)
        mechanism.run(params, rng=2)
        # each extra run adds at most 2 new H entries (floor/ceil of i')
        assert len(mechanism._h_cache) <= first + 4

    def test_lp_size_linear_in_annotation_length(self):
        graph = random_graph_with_avg_degree(40, 8, rng=1)
        relation = subgraph_krelation(graph, triangle(), privacy="node")
        mechanism = EfficientRecursiveMechanism(relation)
        length = relation.total_annotation_length()
        assert mechanism.lp_size <= length + relation.num_participants + 1

    def test_trial_cost_independent_of_trial_count(self, relation):
        """sample_answers reuses Δ: G entries stay fixed across trials."""
        mechanism = EfficientRecursiveMechanism(relation)
        params = RecursiveMechanismParams.paper(1.0)
        mechanism.sample_answers(params, trials=3, rng=0)
        g_after_three = len(mechanism._g_cache)
        mechanism.sample_answers(params, trials=10, rng=1)
        assert len(mechanism._g_cache) == g_after_three


class TestValidationGuards:
    def test_zero_epsilon_everywhere(self, relation):
        from repro.errors import PrivacyParameterError

        with pytest.raises(PrivacyParameterError):
            RecursiveMechanismParams.paper(0.0)

    def test_answer_never_uses_unknown_weight_sign(self):
        from repro.core.queries import WeightedQuery
        from repro.errors import MechanismError

        relation = SensitiveKRelation(["a"], [("t", parse("a"))])
        with pytest.raises(MechanismError):
            EfficientRecursiveMechanism(relation, query=WeightedQuery(lambda t: -2.0))

    def test_mechanism_diagnostics_populated(self, relation):
        mechanism = EfficientRecursiveMechanism(relation)
        result = mechanism.run(RecursiveMechanismParams.paper(1.0), rng=0)
        assert result.diagnostics["num_participants"] == 3.0
        assert result.seconds > 0
        assert result.j_star >= 0
