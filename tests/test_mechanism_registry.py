"""Tests for the unified mechanism registry and the shared result base."""

import math

import numpy as np
import pytest

from repro import mechanisms, random_graph_with_avg_degree, triangle
from repro.baselines.common import BaselineResult
from repro.core import EfficientRecursiveMechanism, RecursiveMechanismParams
from repro.core.framework import MechanismResult
from repro.errors import MechanismError, PrivacyParameterError
from repro.experiments.mechanisms import make_runner
from repro.mechanisms import QuerySpec
from repro.results import ResultBase
from repro.subgraphs import subgraph_krelation


@pytest.fixture(scope="module")
def graph():
    return random_graph_with_avg_degree(30, 6, rng=1)


class TestRegistry:
    def test_available_names(self):
        names = mechanisms.available()
        for expected in ("recursive", "laplace", "smooth", "rhms", "pinq"):
            assert expected in names

    def test_aliases_resolve(self):
        assert mechanisms.get("local-sensitivity") is mechanisms.get("smooth")
        assert mechanisms.get("pinq-restricted") is mechanisms.get("pinq")

    def test_unknown_name_lists_available(self):
        with pytest.raises(MechanismError, match="available"):
            mechanisms.get("magic")

    def test_describe_rows(self):
        rows = mechanisms.describe()
        assert {row["mechanism"] for row in rows} == set(mechanisms.available())
        recursive = next(r for r in rows if r["mechanism"] == "recursive")
        assert recursive["privacy"] == "node/edge"


class TestUniformRunSignature:
    def test_every_mechanism_runs_uniformly(self, graph):
        for name in ("recursive", "smooth", "rhms", "pinq"):
            mech = mechanisms.get(name)(graph)
            result = mech.run("triangle", 1.0, rng=7)
            assert isinstance(result, ResultBase)
            assert math.isfinite(result.answer)
            assert result.true_answer == 44.0
            assert result.relative_error >= 0.0

    def test_laplace_needs_certified_sensitivity(self, graph):
        unbounded = mechanisms.get("laplace")(graph)
        with pytest.raises(MechanismError, match="unrestricted joins"):
            unbounded.run("triangle", 1.0, rng=0)
        bounded = mechanisms.get("laplace")(graph, global_sensitivity=28.0)
        result = bounded.run("triangle", 1.0, rng=0)
        assert result.noise_scale == 28.0

    def test_recursive_supports_both_privacy_models(self, graph):
        mech = mechanisms.get("recursive")(graph)
        node = mech.run(triangle(), 1.0, rng=5, privacy="node")
        edge = mech.run(triangle(), 1.0, rng=5, privacy="edge")
        assert node.params.mu == 1.0
        assert edge.params.mu == 0.5

    def test_baselines_reject_node_privacy(self, graph):
        for name in ("laplace", "smooth", "rhms", "pinq"):
            with pytest.raises(PrivacyParameterError, match="edge"):
                mechanisms.get(name)(graph).run("triangle", 1.0, privacy="node")

    def test_epsilon_validated_uniformly(self, graph):
        for name in ("recursive", "smooth", "rhms", "pinq"):
            with pytest.raises(ValueError):
                mechanisms.get(name)(graph).run("triangle", 0.0, rng=0)
            with pytest.raises(ValueError):
                mechanisms.get(name)(graph).run("triangle", float("nan"), rng=0)


class TestQuerySpec:
    def test_of_accepts_names_and_patterns(self):
        by_name = QuerySpec.of("2-star", privacy="edge")
        by_pattern = QuerySpec.of(triangle(), privacy="node")
        assert by_name.pattern.name == "2-star"
        assert by_pattern.node_privacy

    def test_cache_key_semantic_for_unconstrained_patterns(self):
        a = QuerySpec.of(triangle(), privacy="edge")
        b = QuerySpec.of("triangle", privacy="edge")
        assert a.cache_key() == b.cache_key()
        c = QuerySpec.of(triangle(), privacy="node")
        assert a.cache_key() != c.cache_key()

    def test_invalid_privacy_rejected(self):
        with pytest.raises(PrivacyParameterError):
            QuerySpec.of(triangle(), privacy="both")

    def test_unknown_query_name_rejected(self):
        with pytest.raises(MechanismError):
            QuerySpec.of("dodecahedron")


class TestExperimentDispatch:
    def test_make_runner_matches_direct_mechanism(self, graph):
        """The registry-dispatched runner pins the pre-redesign path."""
        relation = subgraph_krelation(graph, triangle(), privacy="node")
        params = RecursiveMechanismParams.paper(1.0, node_privacy=True)
        direct = EfficientRecursiveMechanism(relation).run(
            params, np.random.default_rng(3)
        )
        run_once, truth = make_runner("recursive-node", graph, "triangle", 1.0)
        assert run_once(np.random.default_rng(3)) == direct.answer
        assert truth == 44.0

    def test_make_runner_all_mechanisms(self, graph):
        for name in ("recursive-edge", "local-sensitivity", "rhms"):
            run_once, truth = make_runner(name, graph, "2-star", 1.0)
            assert math.isfinite(run_once(np.random.default_rng(0)))
            assert truth > 0

    def test_make_runner_unknown_mechanism(self, graph):
        with pytest.raises(MechanismError):
            make_runner("magic", graph, "triangle", 1.0)


class TestSharedResultBase:
    def test_both_result_types_inherit(self):
        assert issubclass(MechanismResult, ResultBase)
        assert issubclass(BaselineResult, ResultBase)

    def test_error_properties_shared(self):
        baseline = BaselineResult(
            answer=12.0, true_answer=10.0, noise_scale=1.0, mechanism="x"
        )
        assert baseline.absolute_error == 2.0
        assert baseline.relative_error == pytest.approx(0.2)
        zero_truth = BaselineResult(
            answer=1.0, true_answer=0.0, noise_scale=1.0, mechanism="x"
        )
        assert zero_truth.relative_error == float("inf")

    def test_mechanism_result_unknown_truth(self):
        params = RecursiveMechanismParams.paper(1.0)
        result = MechanismResult(
            answer=5.0,
            delta=1.0,
            delta_hat=1.0,
            x_value=5.0,
            x_index=0.0,
            j_star=0,
            params=params,
            true_answer=None,
        )
        assert result.absolute_error is None
        assert result.relative_error is None
