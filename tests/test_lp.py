"""Tests for the LP layer: model builder and both backends."""

import numpy as np
import pytest

from repro.errors import LPError
from repro.lp import LinearProgram, ScipyBackend, SimplexBackend


class TestModel:
    def test_variable_bounds(self):
        lp = LinearProgram()
        x = lp.add_variable(lb=1.0, ub=2.0)
        assert lp.bounds()[x] == (1.0, 2.0)

    def test_bad_bounds_rejected(self):
        lp = LinearProgram()
        with pytest.raises(LPError):
            lp.add_variable(lb=2.0, ub=1.0)

    def test_bad_sense_rejected(self):
        lp = LinearProgram()
        x = lp.add_variable()
        with pytest.raises(LPError):
            lp.add_constraint({x: 1.0}, "!=", 0.0)

    def test_unknown_variable_in_constraint(self):
        lp = LinearProgram()
        with pytest.raises(LPError):
            lp.add_constraint({0: 1.0}, "<=", 1.0)

    def test_unknown_variable_in_objective(self):
        lp = LinearProgram()
        with pytest.raises(LPError):
            lp.set_objective({3: 1.0})

    def test_objective_vector(self):
        lp = LinearProgram()
        x = lp.add_variable()
        y = lp.add_variable()
        lp.set_objective({y: 2.0})
        assert list(lp.objective_vector()) == [0.0, 2.0]

    def test_add_variables_bulk(self):
        lp = LinearProgram()
        indices = lp.add_variables(5, lb=0.0, ub=1.0)
        assert indices == [0, 1, 2, 3, 4]
        assert lp.num_variables == 5


def _solve_both(lp):
    return ScipyBackend().solve(lp), SimplexBackend().solve(lp)


class TestBackends:
    def test_trivial_empty(self, any_backend):
        lp = LinearProgram()
        solution = any_backend.solve(lp)
        assert solution.is_optimal
        assert solution.objective == 0.0

    def test_simple_minimum(self, any_backend):
        lp = LinearProgram()
        x = lp.add_variable(0, 10)
        y = lp.add_variable(0, 10)
        lp.add_constraint({x: 1, y: 1}, ">=", 4)
        lp.set_objective({x: 1, y: 2})
        solution = any_backend.solve(lp)
        assert solution.is_optimal
        assert solution.objective == pytest.approx(4.0)
        assert solution.x[x] == pytest.approx(4.0)

    def test_equality_constraint(self, any_backend):
        lp = LinearProgram()
        x = lp.add_variable(0, 1)
        y = lp.add_variable(0, 1)
        lp.add_constraint({x: 1, y: 1}, "==", 1.2)
        lp.set_objective({x: 3, y: 1})
        solution = any_backend.solve(lp)
        assert solution.objective == pytest.approx(0.2 * 3 + 1.0)

    def test_objective_constant(self, any_backend):
        lp = LinearProgram()
        x = lp.add_variable(0, 1)
        lp.set_objective({x: 1}, constant=7.0)
        solution = any_backend.solve(lp)
        assert solution.objective == pytest.approx(7.0)

    def test_infeasible(self, any_backend):
        lp = LinearProgram()
        x = lp.add_variable(0, 1)
        lp.add_constraint({x: 1}, ">=", 2.0)
        lp.set_objective({x: 1})
        assert any_backend.solve(lp).status == "infeasible"

    def test_unbounded(self, any_backend):
        lp = LinearProgram()
        x = lp.add_variable(0, None)
        lp.set_objective({x: -1})
        assert any_backend.solve(lp).status == "unbounded"

    def test_nonzero_lower_bounds(self, any_backend):
        lp = LinearProgram()
        x = lp.add_variable(lb=2.0, ub=5.0)
        lp.set_objective({x: 1})
        solution = any_backend.solve(lp)
        assert solution.objective == pytest.approx(2.0)
        assert solution.x[x] == pytest.approx(2.0)

    def test_negative_rhs_normalization(self, any_backend):
        lp = LinearProgram()
        x = lp.add_variable(0, 10)
        lp.add_constraint({x: -1}, "<=", -3.0)  # x >= 3
        lp.set_objective({x: 1})
        assert any_backend.solve(lp).objective == pytest.approx(3.0)

    def test_redundant_equality_rows(self, any_backend):
        lp = LinearProgram()
        x = lp.add_variable(0, 10)
        y = lp.add_variable(0, 10)
        lp.add_constraint({x: 1, y: 1}, "==", 4)
        lp.add_constraint({x: 2, y: 2}, "==", 8)  # redundant
        lp.set_objective({x: 1, y: 3})
        assert any_backend.solve(lp).objective == pytest.approx(4.0)

    def test_backends_agree_on_random_lps(self):
        rng = np.random.default_rng(42)
        for trial in range(25):
            lp = LinearProgram()
            n = int(rng.integers(2, 6))
            variables = [
                lp.add_variable(0.0, float(rng.uniform(0.5, 3))) for _ in range(n)
            ]
            for _ in range(int(rng.integers(1, 5))):
                coeffs = {
                    v: float(rng.uniform(-2, 2))
                    for v in rng.choice(variables, size=min(n, 3), replace=False)
                }
                sense = ["<=", ">="][int(rng.integers(2))]
                lp.add_constraint(coeffs, sense, float(rng.uniform(-1, 3)))
            lp.set_objective({v: float(rng.uniform(-1, 2)) for v in variables})
            s1, s2 = _solve_both(lp)
            assert s1.status == s2.status, f"trial {trial}"
            if s1.is_optimal:
                assert s1.objective == pytest.approx(s2.objective, abs=1e-6), (
                    f"trial {trial}"
                )

    def test_simplex_iteration_limit(self):
        backend = SimplexBackend(max_iterations=1)
        lp = LinearProgram()
        x = lp.add_variable(0, 10)
        y = lp.add_variable(0, 10)
        lp.add_constraint({x: 1, y: 2}, ">=", 3)
        lp.add_constraint({x: 2, y: 1}, ">=", 3)
        lp.set_objective({x: 1, y: 1})
        with pytest.raises(LPError):
            backend.solve(lp)

    def test_adaptive_method_selection(self):
        backend = ScipyBackend(method="adaptive", ipm_threshold=2)
        small = LinearProgram()
        small.add_variable(0, 1)
        assert backend._resolve_method(small) == "highs"
        big = LinearProgram()
        big.add_variables(5, 0, 1)
        assert backend._resolve_method(big) == "highs-ipm"
        # the array entry point resolves from a plain variable count
        assert backend._resolve_method(1) == "highs"
        assert backend._resolve_method(5) == "highs-ipm"


def _dense_random_lp(seed=0, num_variables=40, num_rows=30):
    """A feasible, bounded LP that HiGHS cannot finish in one iteration."""
    rng = np.random.default_rng(seed)
    lp = LinearProgram()
    variables = lp.add_variables(num_variables, lb=0.0, ub=1.0)
    for _ in range(num_rows):
        coeffs = {
            v: float(c)
            for v, c in zip(variables, rng.uniform(-1, 1, size=num_variables))
        }
        lp.add_constraint(coeffs, "<=", float(rng.uniform(0.5, 1.5)))
    lp.set_objective(
        {v: float(c) for v, c in zip(variables, rng.uniform(-1, 1, num_variables))}
    )
    return lp


class TestScipyIterationLimit:
    def test_limit_reported_as_iteration_limit(self):
        """Hitting HiGHS's maxiter must surface as a distinct status with
        the solver message attached — not a bare "error" with nan only."""
        backend = ScipyBackend(
            method="highs", max_iterations=1, options={"presolve": False}
        )
        solution = backend.solve(_dense_random_lp())
        assert solution.status == "iteration_limit"
        assert not solution.is_optimal
        assert np.isnan(solution.objective)
        assert "iteration" in solution.message.lower()

    def test_same_program_solves_without_limit(self):
        solution = ScipyBackend(method="highs").solve(_dense_random_lp())
        assert solution.is_optimal

    def test_unlimited_backend_keeps_default_options(self):
        backend = ScipyBackend()
        assert backend._solver_options() is None
        limited = ScipyBackend(max_iterations=7, options={"presolve": False})
        assert limited._solver_options() == {"maxiter": 7, "presolve": False}
