"""Tests for the positive Boolean expression AST."""

import pytest

from repro.boolexpr import (
    FALSE,
    TRUE,
    And,
    Or,
    Var,
    all_vars,
    and_all,
    or_all,
)
from repro.errors import ExpressionError


class TestConstants:
    def test_true_evaluates_true(self):
        assert TRUE.evaluate({}) is True

    def test_false_evaluates_false(self):
        assert FALSE.evaluate({}) is False

    def test_constants_have_no_variables(self):
        assert TRUE.variables() == frozenset()
        assert FALSE.variables() == frozenset()

    def test_constants_are_singleton_like(self):
        assert TRUE == TRUE and FALSE == FALSE
        assert TRUE != FALSE

    def test_str(self):
        assert str(TRUE) == "True"
        assert str(FALSE) == "False"

    def test_substitute_is_identity(self):
        assert TRUE.substitute({"a": FALSE}) == TRUE


class TestVar:
    def test_variables(self):
        assert Var("x").variables() == frozenset({"x"})

    def test_evaluate_defaults_to_false(self):
        assert Var("x").evaluate({}) is False
        assert Var("x").evaluate({"x": True}) is True

    def test_empty_name_rejected(self):
        with pytest.raises(ExpressionError):
            Var("")

    def test_non_string_name_rejected(self):
        with pytest.raises(ExpressionError):
            Var(3)

    def test_equality_and_hash(self):
        assert Var("x") == Var("x")
        assert hash(Var("x")) == hash(Var("x"))
        assert Var("x") != Var("y")

    def test_substitute(self):
        assert Var("x").substitute({"x": TRUE}) == TRUE
        assert Var("x").substitute({"y": TRUE}) == Var("x")

    def test_counts(self):
        v = Var("x")
        assert v.leaf_count() == 1
        assert v.node_count() == 1
        assert v.occurrences("x") == 1
        assert v.occurrences("y") == 0


class TestAndOr:
    def test_and_evaluates(self, abc_vars):
        a, b, c = abc_vars
        expr = And((a, b, c))
        assert expr.evaluate({"a": True, "b": True, "c": True}) is True
        assert expr.evaluate({"a": True, "b": True}) is False

    def test_or_evaluates(self, abc_vars):
        a, b, c = abc_vars
        expr = Or((a, b, c))
        assert expr.evaluate({"c": True}) is True
        assert expr.evaluate({}) is False

    def test_and_flattens_nested_and(self, abc_vars):
        a, b, c = abc_vars
        assert And((And((a, b)), c)) == And((a, b, c))

    def test_or_flattens_nested_or(self, abc_vars):
        a, b, c = abc_vars
        assert Or((Or((a, b)), c)) == Or((a, b, c))

    def test_and_does_not_flatten_or(self, abc_vars):
        a, b, c = abc_vars
        expr = And((Or((a, b)), c))
        assert len(expr.children) == 2

    def test_identity_true_dropped_from_and(self, abc_vars):
        a, b, _ = abc_vars
        assert And((a, TRUE, b)) == And((a, b))

    def test_identity_false_dropped_from_or(self, abc_vars):
        a, b, _ = abc_vars
        assert Or((a, FALSE, b)) == Or((a, b))

    def test_annihilator_false_in_and(self, abc_vars):
        a, b, _ = abc_vars
        assert And((a, FALSE, b)) == FALSE

    def test_annihilator_true_in_or(self, abc_vars):
        a, b, _ = abc_vars
        assert Or((a, TRUE, b)) == TRUE

    def test_empty_and_is_true(self):
        assert And(()) == TRUE

    def test_empty_or_is_false(self):
        assert Or(()) == FALSE

    def test_singleton_collapses(self, abc_vars):
        a, _, _ = abc_vars
        assert And((a,)) == a
        assert Or((a,)) == a

    def test_idempotence_not_applied(self, abc_vars):
        """a ∧ a must NOT simplify to a — that would change φ."""
        a, _, _ = abc_vars
        expr = And((a, a))
        assert expr != a
        assert expr.leaf_count() == 2

    def test_operator_sugar(self, abc_vars):
        a, b, c = abc_vars
        assert (a & b) == And((a, b))
        assert (a | b) == Or((a, b))
        assert (a & b & c) == And((a, b, c))

    def test_variables_union(self, abc_vars):
        a, b, c = abc_vars
        assert ((a & b) | c).variables() == {"a", "b", "c"}

    def test_counts(self, abc_vars):
        a, b, c = abc_vars
        expr = (a & b) | (a & c)
        assert expr.leaf_count() == 4
        assert expr.node_count() == 7  # 4 leaves + 2 Ands + 1 Or
        assert expr.occurrences("a") == 2
        assert expr.occurrences("b") == 1

    def test_substitute_rebuilds(self, abc_vars):
        a, b, c = abc_vars
        expr = (a & b) | c
        assert expr.substitute({"a": TRUE}) == Or((b, c))
        assert expr.substitute({"c": FALSE}) == And((a, b))

    def test_structural_equality_is_ordered(self, abc_vars):
        a, b, _ = abc_vars
        assert And((a, b)) != And((b, a))  # syntax trees, not canonical forms

    def test_hash_consistency(self, abc_vars):
        a, b, _ = abc_vars
        assert hash(And((a, b))) == hash(And((a, b)))

    def test_negation_rejected(self, abc_vars):
        a, _, _ = abc_vars
        with pytest.raises(ExpressionError):
            ~a

    def test_non_expr_child_rejected(self, abc_vars):
        a, _, _ = abc_vars
        with pytest.raises(ExpressionError):
            And((a, "b"))

    def test_iter_nodes_covers_tree(self, abc_vars):
        a, b, c = abc_vars
        expr = (a & b) | c
        kinds = [type(node).__name__ for node in expr.iter_nodes()]
        assert kinds.count("Var") == 3
        assert kinds.count("And") == 1
        assert kinds.count("Or") == 1


class TestHelpers:
    def test_and_all_or_all(self, abc_vars):
        a, b, c = abc_vars
        assert and_all([a, b, c]) == And((a, b, c))
        assert or_all([a, b, c]) == Or((a, b, c))
        assert and_all([]) == TRUE
        assert or_all([]) == FALSE

    def test_all_vars(self):
        assert all_vars(["x", "y"]) == (Var("x"), Var("y"))
