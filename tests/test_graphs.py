"""Tests for the graph substrate: Graph, generators, IO, datasets."""

import math

import pytest

from repro.errors import DatasetError, GraphError
from repro.graphs import (
    DATASETS,
    Graph,
    erdos_renyi,
    gnm_random_graph,
    load_dataset,
    preferential_attachment,
    random_graph_with_avg_degree,
    read_edge_list,
    watts_strogatz,
    write_edge_list,
)


class TestGraph:
    def test_add_edge_creates_nodes(self):
        g = Graph()
        g.add_edge(1, 2)
        assert g.num_nodes == 2
        assert g.num_edges == 1
        assert g.has_edge(2, 1)  # undirected

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            Graph().add_edge(1, 1)

    def test_parallel_edges_collapse(self):
        g = Graph(edges=[(1, 2), (2, 1), (1, 2)])
        assert g.num_edges == 1

    def test_degrees(self):
        g = Graph(edges=[(1, 2), (1, 3), (1, 4)])
        assert g.degree(1) == 3
        assert g.max_degree() == 3
        assert g.average_degree() == pytest.approx(6 / 4)

    def test_remove_node_removes_incident_edges(self):
        g = Graph(edges=[(1, 2), (2, 3), (1, 3)])
        g.remove_node(2)
        assert g.num_nodes == 2
        assert g.num_edges == 1
        assert g.has_edge(1, 3)

    def test_remove_edge(self):
        g = Graph(edges=[(1, 2), (2, 3)])
        g.remove_edge(1, 2)
        assert g.num_edges == 1
        with pytest.raises(GraphError):
            g.remove_edge(1, 2)

    def test_unknown_node_errors(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.degree(9)
        with pytest.raises(GraphError):
            g.neighbors(9)
        with pytest.raises(GraphError):
            g.remove_node(9)

    def test_common_neighbors(self):
        g = Graph(edges=[(1, 3), (2, 3), (1, 4), (2, 4), (1, 2)])
        assert g.common_neighbors(1, 2) == {3, 4}
        assert g.max_common_neighbors() == 2

    def test_subgraph(self):
        g = Graph(edges=[(1, 2), (2, 3), (3, 4)])
        sub = g.subgraph({1, 2, 3})
        assert sub.num_nodes == 3
        assert sub.num_edges == 2
        with pytest.raises(GraphError):
            g.subgraph({99})

    def test_copy_independent(self):
        g = Graph(edges=[(1, 2)])
        clone = g.copy()
        clone.add_edge(2, 3)
        assert g.num_edges == 1

    def test_deterministic_ordering(self):
        g = Graph(edges=[(3, 1), (2, 1)])
        assert g.nodes() == [1, 2, 3]
        assert g.edges() == [(1, 2), (1, 3)]

    def test_equality(self):
        assert Graph(edges=[(1, 2)]) == Graph(edges=[(2, 1)])
        assert Graph(edges=[(1, 2)]) != Graph(edges=[(1, 3)])

    def test_edges_dedup_survives_equal_reprs(self):
        """Distinct nodes sharing a repr must not double-emit their edge.

        Regression: the old repr-tie branch emitted both orientations,
        double-counting edges in every edges()-dependent statistic."""

        class Twin:
            def __repr__(self):
                return "twin"

        u, v = Twin(), Twin()
        g = Graph(edges=[(u, v), (u, "x"), (v, "x")])
        edges = g.edges()
        assert len(edges) == g.num_edges == 3
        assert len({frozenset({a, b}) for a, b in edges}) == 3
        # each statistic derived from edges() sees every edge once
        assert g.max_common_neighbors() == 1


class TestMutationConsistency:
    """Property tests: mutate, then re-query every derived structure.

    The mutation paths (``remove_node``/``remove_edge``) feed the
    dynamic-graph subsystem, so adjacency, the rank-based edge dedup in
    ``edges()``, and every statistic derived from them must stay mutually
    consistent through arbitrary insert/delete interleavings.
    """

    @staticmethod
    def _assert_consistent(g, ref_nodes, ref_edges):
        assert set(g.nodes()) == ref_nodes
        edges = g.edges()
        assert len(edges) == len(ref_edges) == g.num_edges
        assert {frozenset(e) for e in edges} == {frozenset(e) for e in ref_edges}
        degrees = g.degrees()
        assert set(degrees) == ref_nodes
        for node in ref_nodes:
            expected = sum(1 for e in ref_edges if node in e)
            assert degrees[node] == g.degree(node) == expected
            assert g.neighbors(node) == {
                (b if a == node else a) for a, b in ref_edges if node in (a, b)
            }
        for u, v in ref_edges:
            assert g.has_edge(u, v) and g.has_edge(v, u)

    def test_randomized_mutation_streams(self):
        import random

        rng = random.Random(2024)
        for _trial in range(25):
            g = Graph()
            ref_nodes, ref_edges = set(), set()
            for _step in range(80):
                op = rng.random()
                if op < 0.45:
                    u, v = rng.sample(range(14), 2)
                    g.add_edge(u, v)
                    ref_nodes |= {u, v}
                    ref_edges.add((min(u, v), max(u, v)))
                elif op < 0.6:
                    n = rng.randrange(14)
                    g.add_node(n)
                    ref_nodes.add(n)
                elif op < 0.8 and ref_edges:
                    e = rng.choice(sorted(ref_edges))
                    g.remove_edge(*e)
                    ref_edges.discard(e)
                elif op >= 0.8 and ref_nodes:
                    n = rng.choice(sorted(ref_nodes))
                    removed = g.remove_node(n)
                    assert {frozenset(e) for e in removed} == {
                        frozenset(e) for e in ref_edges if n in e
                    }
                    ref_nodes.discard(n)
                    ref_edges = {e for e in ref_edges if n not in e}
                self._assert_consistent(g, ref_nodes, ref_edges)

    def test_remove_node_returns_incident_edges_deterministically(self):
        g = Graph(edges=[(1, 5), (1, 3), (1, 9), (3, 5)])
        assert g.remove_node(1) == [(1, 3), (1, 5), (1, 9)]
        assert g.remove_node(9) == []

    def test_mutations_with_equal_repr_nodes_stay_deduped(self):
        class Twin:
            def __repr__(self):
                return "twin"

        u, v = Twin(), Twin()
        g = Graph(edges=[(u, v), (u, "x"), (v, "x"), ("x", "y")])
        g.remove_edge(u, v)
        assert g.num_edges == len(g.edges()) == 3
        removed = g.remove_node(u)
        assert removed == [(u, "x")]
        assert g.num_edges == len(g.edges()) == 2
        assert g.degrees()["x"] == 2

    def test_remove_then_requery_statistics(self):
        g = Graph(edges=[(0, 1), (1, 2), (0, 2), (2, 3)])
        assert g.max_common_neighbors() == 1
        g.remove_edge(0, 2)
        assert g.max_common_neighbors() == 0
        assert g.average_degree() == pytest.approx(2 * 3 / 4)
        g.remove_node(1)
        assert g.max_degree() == 1
        assert g.common_neighbors(2, 3) == set()


class TestGenerators:
    def test_erdos_renyi_determinism(self):
        g1 = erdos_renyi(30, 0.2, rng=5)
        g2 = erdos_renyi(30, 0.2, rng=5)
        assert g1 == g2

    def test_erdos_renyi_extremes(self):
        assert erdos_renyi(10, 0.0, rng=0).num_edges == 0
        assert erdos_renyi(10, 1.0, rng=0).num_edges == 45

    def test_erdos_renyi_invalid(self):
        with pytest.raises(GraphError):
            erdos_renyi(-1, 0.5)
        with pytest.raises(GraphError):
            erdos_renyi(5, 1.5)

    def test_avg_degree_parameterization(self):
        """The paper's model: p = avgdeg/(|V|-1)."""
        g = random_graph_with_avg_degree(300, 10, rng=1)
        assert g.average_degree() == pytest.approx(10, rel=0.25)

    def test_avg_degree_tiny_graphs(self):
        assert random_graph_with_avg_degree(1, 10).num_nodes == 1
        assert random_graph_with_avg_degree(0, 10).num_nodes == 0

    def test_gnm_exact_edge_count(self):
        g = gnm_random_graph(40, 100, rng=2)
        assert g.num_edges == 100
        assert g.num_nodes == 40

    def test_gnm_dense_regime(self):
        g = gnm_random_graph(10, 40, rng=2)  # > half of 45
        assert g.num_edges == 40

    def test_gnm_too_many_edges(self):
        with pytest.raises(GraphError):
            gnm_random_graph(5, 11)

    def test_preferential_attachment_shape(self):
        g = preferential_attachment(120, 3, rng=3)
        assert g.num_nodes == 120
        # heavy tail: max degree well above the median
        degrees = sorted(g.degrees().values())
        assert degrees[-1] > 3 * degrees[len(degrees) // 2]

    def test_preferential_attachment_closure_adds_triangles(self):
        from repro.subgraphs import count_triangles

        flat = preferential_attachment(150, 3, rng=4, closure_probability=0.0)
        closed = preferential_attachment(150, 3, rng=4, closure_probability=0.8)
        assert count_triangles(closed) > count_triangles(flat)

    def test_preferential_attachment_invalid(self):
        with pytest.raises(GraphError):
            preferential_attachment(0, 2)
        with pytest.raises(GraphError):
            preferential_attachment(10, 0)

    def test_watts_strogatz(self):
        g = watts_strogatz(50, 4, 0.1, rng=6)
        assert g.num_nodes == 50
        assert g.num_edges == 100  # rewiring preserves edge count

    def test_watts_strogatz_invalid(self):
        with pytest.raises(GraphError):
            watts_strogatz(2, 2, 0.1)
        with pytest.raises(GraphError):
            watts_strogatz(10, 3, 0.1)  # odd k
        with pytest.raises(GraphError):
            watts_strogatz(10, 4, 1.5)


class TestIO:
    def test_roundtrip(self, tmp_path):
        g = erdos_renyi(20, 0.3, rng=7)
        path = tmp_path / "graph.txt"
        write_edge_list(g, path)
        assert read_edge_list(path) == g

    def test_comments_skipped_lenient_mode_tolerates_junk(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("# comment\n% other\n1 2\n3 3\n2 4\n1 2\n")
        g = read_edge_list(path, strict=False)
        assert g.num_edges == 2

    def test_strict_rejects_self_loop_with_line_number(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("# comment\n1 2\n3 3\n")
        with pytest.raises(GraphError, match=r"graph\.txt:3: self-loop"):
            read_edge_list(path)

    def test_strict_rejects_duplicates_either_orientation(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("1 2\n2 4\n2 1\n")
        with pytest.raises(
            GraphError, match=r":3: duplicate edge.*first seen on line 1"
        ):
            read_edge_list(path)

    def test_strict_reports_every_problem_at_once(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("1 2\n5\n3 3\n1 2\n")
        with pytest.raises(GraphError) as excinfo:
            read_edge_list(path)
        message = str(excinfo.value)
        assert "3 problems" in message
        assert ":2: expected 'u v'" in message
        assert ":3: self-loop" in message
        assert ":4: duplicate edge" in message

    def test_missing_file(self, tmp_path):
        with pytest.raises(GraphError):
            read_edge_list(tmp_path / "absent.txt")

    def test_malformed_line_raises_even_lenient(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1\n")
        with pytest.raises(GraphError, match=r"bad\.txt:1"):
            read_edge_list(path, strict=False)

    def test_string_labels(self, tmp_path):
        path = tmp_path / "labels.txt"
        path.write_text("alice bob\nbob carol\n")
        g = read_edge_list(path)
        assert g.has_edge("alice", "bob")


class TestDatasets:
    def test_registry_matches_paper_fig6(self):
        assert DATASETS["ca-GrQc"].num_nodes == 5242
        assert DATASETS["ca-GrQc"].num_edges == 14496
        assert DATASETS["ca-GrQc"].paper_triangles == 48260
        assert DATASETS["power"].num_nodes == 4941
        assert len(DATASETS) == 7

    def test_load_scaled(self):
        g = load_dataset("1138_bus", scale=0.1)
        assert abs(g.num_nodes - 114) <= 2

    def test_load_deterministic(self):
        assert load_dataset("power", scale=0.05) == load_dataset("power", scale=0.05)

    def test_unknown_dataset(self):
        with pytest.raises(DatasetError):
            load_dataset("facebook")

    def test_bad_scale(self):
        with pytest.raises(DatasetError):
            load_dataset("power", scale=0.0)

    def test_collaboration_standins_are_triangle_rich(self):
        from repro.subgraphs import count_triangles

        collab = load_dataset("ca-GrQc", scale=0.05)
        grid = load_dataset("power", scale=0.05)
        density_collab = count_triangles(collab) / max(collab.num_edges, 1)
        density_grid = count_triangles(grid) / max(grid.num_edges, 1)
        assert density_collab > density_grid
