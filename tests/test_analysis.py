"""Self-tests for :mod:`repro.analysis` — the invariant linter.

Three layers of pinning:

* **corpus** — every rule flags exactly the ``# expect:``-marked lines
  of its ``tests/corpus/<rule>/bad.py`` and stays silent on
  ``good.py`` (the near-misses);
* **framework** — pragma binding and hygiene, baseline round-trip and
  staleness, the registry contract, parse-error reporting, and the CLI
  surface (``--list-rules``, ``--explain``, ``--format json``, exit
  codes);
* **the tree itself** — ``src/`` is clean against the committed
  baseline (no unexplained findings, no stale entries), and every
  suppression pragma in ``src/`` names the test that pins its
  invariant dynamically.
"""

from __future__ import annotations

import json
import re
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    Rule,
    all_rules,
    apply_baseline,
    available,
    describe,
    get,
    lint_paths,
    load_baseline,
    register,
    render_json,
    render_text,
    write_baseline,
)
from repro.analysis.baseline import DEFAULT_BASELINE
from repro.analysis.core import PARSE_RULE_ID, SourceModule
from repro.analysis.corpus import corpus_files, corpus_root, expected_lines
from repro.cli import main
from repro.errors import AnalysisError

REPO = Path(__file__).resolve().parents[1]
CORPUS = REPO / "tests" / "corpus"
SRC = REPO / "src"

RULE_IDS = sorted(available())


def lint_snippet(tmp_path, code, name="snippet.py", rules=None):
    path = tmp_path / name
    path.write_text(textwrap.dedent(code), encoding="utf-8")
    return lint_paths([path], rules=rules, root=tmp_path)


# ---------------------------------------------------------------------------
# corpus: every rule's true positives and near-misses
# ---------------------------------------------------------------------------


class TestCorpus:
    def test_every_rule_has_corpus(self):
        for rule_id in RULE_IDS:
            files = corpus_files(rule_id, CORPUS)
            assert set(files) == {"bad", "good"}, (
                f"rule {rule_id} needs tests/corpus/{rule_id}/bad.py "
                "and good.py"
            )

    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_bad_corpus_flags_exactly_the_marked_lines(self, rule_id):
        bad = CORPUS / rule_id / "bad.py"
        report = lint_paths([bad], root=REPO)
        actual = {}
        for finding in report.active:
            actual.setdefault(finding.line, set()).add(finding.rule)
        expected = {line: set(rules) for line, rules in expected_lines(bad).items()}
        assert actual == expected
        assert any(rule_id in rules for rules in expected.values()), (
            f"bad.py for {rule_id} must contain at least one "
            f"`# expect: {rule_id}` true positive"
        )

    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_good_corpus_is_silent(self, rule_id):
        good = CORPUS / rule_id / "good.py"
        report = lint_paths([good], root=REPO)
        assert [f.to_dict() for f in report.active] == []


# ---------------------------------------------------------------------------
# framework: pragmas
# ---------------------------------------------------------------------------


class TestPragmas:
    def test_same_line_pragma_suppresses_and_records_reason(self, tmp_path):
        report = lint_snippet(tmp_path, """\
            import numpy as np

            def draw():
                return np.random.default_rng()  # repro: allow(rng-determinism) -- pinned by tests/test_analysis.py
        """)
        assert report.active == []
        (finding,) = report.suppressed
        assert finding.rule == "rng-determinism"
        assert "tests/test_analysis.py" in finding.reason

    def test_standalone_pragma_skips_continuation_comments(self, tmp_path):
        report = lint_snippet(tmp_path, """\
            import numpy as np

            def draw():
                # repro: allow(rng-determinism) — deliberate OS entropy;
                # the seeded path is pinned by tests/test_analysis.py
                return np.random.default_rng()
        """)
        assert report.active == []
        assert len(report.suppressed) == 1

    @pytest.mark.parametrize("separator", ["—", "–", "--", ":"])
    def test_reason_separator_variants(self, tmp_path, separator):
        report = lint_snippet(tmp_path, f"""\
            import numpy as np

            def draw():
                return np.random.default_rng()  # repro: allow(rng-determinism) {separator} why not
        """)
        assert report.active == []
        assert report.suppressed[0].reason == "why not"

    def test_pragma_for_other_rule_does_not_suppress(self, tmp_path):
        report = lint_snippet(tmp_path, """\
            import numpy as np

            def draw():
                return np.random.default_rng()  # repro: allow(iter-order) — wrong rule
        """)
        rules = {finding.rule for finding in report.active}
        # The finding survives AND the mismatched pragma reads as unused.
        assert rules == {"rng-determinism", "pragma"}

    def test_docstring_pragma_syntax_is_not_a_pragma(self, tmp_path):
        report = lint_snippet(tmp_path, '''\
            """Docs may show ``# repro: allow(rng-determinism) — reason``."""

            def nothing():
                return 0
        ''')
        assert report.findings == []


# ---------------------------------------------------------------------------
# framework: baseline
# ---------------------------------------------------------------------------


class TestBaseline:
    def test_round_trip_suppresses_known_findings(self, tmp_path):
        path = tmp_path / "offender.py"
        path.write_text(
            "import numpy as np\nRNG = np.random.default_rng()\n",
            encoding="utf-8",
        )
        baseline = tmp_path / "baseline.json"
        report = lint_paths([path], root=tmp_path)
        assert len(report.active) == 1
        write_baseline(report, baseline)

        fresh = lint_paths([path], root=tmp_path)
        apply_baseline(fresh, baseline)
        assert fresh.active == []
        assert fresh.baselined == 1
        assert fresh.stale_baseline == []

    def test_baseline_survives_line_drift_but_not_edits(self, tmp_path):
        path = tmp_path / "offender.py"
        path.write_text(
            "import numpy as np\nRNG = np.random.default_rng()\n",
            encoding="utf-8",
        )
        baseline = tmp_path / "baseline.json"
        write_baseline(lint_paths([path], root=tmp_path), baseline)

        # Drift: new lines above move the finding; fingerprint holds.
        path.write_text(
            "import numpy as np\n\n\nRNG = np.random.default_rng()\n",
            encoding="utf-8",
        )
        drifted = lint_paths([path], root=tmp_path)
        apply_baseline(drifted, baseline)
        assert drifted.active == []

        # Edit: the offending line changes; the old entry goes stale.
        path.write_text(
            "import numpy as np\nGEN = np.random.default_rng()\n",
            encoding="utf-8",
        )
        edited = lint_paths([path], root=tmp_path)
        apply_baseline(edited, baseline)
        assert len(edited.active) == 1
        assert len(edited.stale_baseline) == 1

    def test_stale_entry_is_reported(self, tmp_path):
        path = tmp_path / "clean.py"
        path.write_text("VALUE = 1\n", encoding="utf-8")
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                {
                    "version": 1,
                    "findings": [
                        {
                            "path": "clean.py",
                            "rule": "rng-determinism",
                            "snippet": "gone = np.random.default_rng()",
                        }
                    ],
                }
            ),
            encoding="utf-8",
        )
        report = lint_paths([path], root=tmp_path)
        apply_baseline(report, baseline)
        assert len(report.stale_baseline) == 1
        assert "no longer occurs" in render_text(report)

    def test_malformed_baseline_raises(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text("[]", encoding="utf-8")
        with pytest.raises(AnalysisError):
            load_baseline(baseline)


# ---------------------------------------------------------------------------
# framework: registry, parse errors, reporting
# ---------------------------------------------------------------------------


class TestFramework:
    def test_registry_has_the_documented_rules(self):
        assert {"rng-determinism", "iter-order", "fork-safety",
                "budget-two-phase", "async-blocking",
                "pragma"} <= set(available())

    def test_every_rule_carries_title_and_rationale(self):
        for rule in all_rules():
            assert rule.title, rule.id
            assert rule.rationale, rule.id

    def test_duplicate_registration_rejected(self):
        class Duplicate(Rule):
            id = "rng-determinism"

        with pytest.raises(AnalysisError, match="already registered"):
            register(Duplicate)

    def test_unknown_rule_lists_available(self):
        with pytest.raises(AnalysisError, match="rng-determinism"):
            get("no-such-rule")

    def test_parse_error_becomes_a_finding(self, tmp_path):
        report = lint_snippet(tmp_path, "def broken(:\n")
        (finding,) = report.findings
        assert finding.rule == PARSE_RULE_ID
        assert not finding.suppressed

    def test_json_report_shape(self, tmp_path):
        report = lint_snippet(tmp_path, """\
            import numpy as np
            RNG = np.random.default_rng()
        """)
        payload = json.loads(render_json(report))
        assert payload["summary"]["active"] == 1
        (entry,) = [f for f in payload["findings"]
                    if f["rule"] == "rng-determinism"]
        assert entry["snippet"] == "RNG = np.random.default_rng()"

    def test_describe_rows_match_registry(self):
        assert [row["rule"] for row in describe()] == list(available())


# ---------------------------------------------------------------------------
# the accounting walk accepts the codebase's canonical session shape
# ---------------------------------------------------------------------------


class TestAccountingWalk:
    def test_session_release_shape_is_clean(self, tmp_path):
        report = lint_snippet(tmp_path, """\
            def release(self, prepared, epsilon, label, user, params, rng):
                reservation = self.accountant.reserve(
                    epsilon, label=label, user=user)
                try:
                    generator = self._generator_for(rng)
                    result = prepared.release(epsilon, generator,
                                              params=params)
                except BaseException:
                    reservation.rollback()
                    raise
                entry = self._entry(result)
                reservation.commit(entry)
                return result
        """, rules=["budget-two-phase"])
        assert report.findings == []

    def test_rebinding_a_held_reservation_is_flagged(self, tmp_path):
        report = lint_snippet(tmp_path, """\
            def double_reserve(accountant):
                reservation = accountant.reserve(0.5)
                reservation = accountant.reserve(0.5)
                reservation.commit(None)
        """, rules=["budget-two-phase"])
        assert any("re-bound" in f.message for f in report.findings)


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestCli:
    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULE_IDS:
            assert rule_id in out

    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_explain_sources_the_corpus(self, capsys, rule_id):
        assert main(["lint", "--explain", rule_id]) == 0
        out = capsys.readouterr().out
        rule = get(rule_id)()
        assert rule.rationale.split()[0] in out
        # Single source of truth: the printed example IS the corpus file.
        bad = (CORPUS / rule_id / "bad.py").read_text(encoding="utf-8")
        marked = next(line for line in bad.splitlines() if "# expect:" in line)
        assert marked.strip() in out

    def test_explain_unknown_rule_fails_with_usage_code(self, capsys):
        assert main(["lint", "--explain", "no-such-rule"]) == 2
        assert "no-such-rule" in capsys.readouterr().err

    def test_findings_exit_one_and_clean_exits_zero(self, capsys):
        bad = str(CORPUS / "rng-determinism" / "bad.py")
        good = str(CORPUS / "rng-determinism" / "good.py")
        assert main(["lint", bad, "--no-baseline"]) == 1
        assert main(["lint", good, "--no-baseline"]) == 0
        capsys.readouterr()

    def test_rule_filter_restricts_findings(self, capsys):
        bad = str(CORPUS / "rng-determinism" / "bad.py")
        assert main(["lint", bad, "--no-baseline", "--rule", "iter-order"]) == 0
        capsys.readouterr()

    def test_unknown_rule_filter_is_a_usage_error(self, capsys):
        assert main(["lint", "--rule", "bogus"]) == 2
        capsys.readouterr()

    def test_json_format_and_output_file(self, tmp_path, capsys):
        bad = str(CORPUS / "rng-determinism" / "bad.py")
        out_file = tmp_path / "report.json"
        argv = ["lint", bad, "--no-baseline", "--format", "json"]
        assert main(argv + ["--output", str(out_file)]) == 1
        stdout_payload = json.loads(capsys.readouterr().out)
        file_payload = json.loads(out_file.read_text(encoding="utf-8"))
        assert stdout_payload == file_payload
        assert stdout_payload["summary"]["active"] > 0

    def test_write_baseline_then_clean(self, tmp_path, monkeypatch, capsys):
        offender = tmp_path / "offender.py"
        offender.write_text(
            "import numpy as np\nRNG = np.random.default_rng()\n",
            encoding="utf-8",
        )
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "offender.py"]) == 1
        assert main(["lint", "offender.py", "--write-baseline"]) == 0
        assert (tmp_path / DEFAULT_BASELINE).exists()
        assert main(["lint", "offender.py"]) == 0
        # Fixing the offense turns the entry stale: the gate fails again.
        offender.write_text("RNG = None\n", encoding="utf-8")
        assert main(["lint", "offender.py"]) == 1
        capsys.readouterr()


# ---------------------------------------------------------------------------
# the tree itself
# ---------------------------------------------------------------------------


class TestTreeIsClean:
    def test_src_matches_committed_baseline_exactly(self):
        report = lint_paths([SRC], root=REPO)
        apply_baseline(report, REPO / DEFAULT_BASELINE)
        assert [f.to_dict() for f in report.active] == [], (
            "new lint findings in src/ — fix them or add a "
            "# repro: allow(...) pragma naming the pinning test"
        )
        assert report.stale_baseline == [], (
            "stale baseline entries — regenerate lint-baseline.json "
            "with: python -m repro lint src --write-baseline"
        )

    def test_committed_baseline_is_empty(self):
        # PR 9 lands with every finding fixed or pragma'd; keep it that
        # way (a non-empty baseline needs a justified entry per finding).
        payload = json.loads((REPO / DEFAULT_BASELINE).read_text(encoding="utf-8"))
        assert payload == {"version": 1, "findings": []}

    def test_every_src_pragma_reason_names_a_pinning_test(self):
        pattern = re.compile(r"tests/test_\w+\.py")
        for path in sorted(SRC.rglob("*.py")):
            text = path.read_text(encoding="utf-8")
            module = SourceModule(path.as_posix(), text)
            for pragma in module.pragmas:
                # A standalone pragma may carry its reason across the
                # continuation comment lines above the suppressed line.
                stop = min(pragma.target, len(module.lines) + 1)
                block = " ".join(
                    module.lines[line - 1].strip()
                    for line in range(pragma.line, stop)
                ) or pragma.reason
                assert pattern.search(block or pragma.reason), (
                    f"{path}:{pragma.line}: pragma reason must name the "
                    "test file pinning the invariant (tests/test_*.py)"
                )

    def test_corpus_root_resolves_inside_the_repo(self):
        assert corpus_root() == CORPUS
