"""Tests for the network serving layer: protocol, service, client, CLI.

The acceptance pins:

* every answer released over the wire is **byte-identical** to the
  equivalent in-process :class:`~repro.session.PrivateSession` release at
  the same seed;
* N concurrent clients hammering one service leave a ledger whose
  ``fsum`` equals exactly the sum of granted ε, with per-tenant refusals
  independent of cross-tenant interleaving;
* the audit stream replays the ledger bit-for-bit.
"""

from __future__ import annotations

import json
import math
import socket
import threading

import numpy as np
import pytest

from repro import PrivateSession, random_graph_with_avg_degree
from repro.errors import ProtocolError, ServiceError, ServiceOverloaded
from repro.service import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    BackgroundService,
    PrivateQueryService,
    ServiceClient,
    parse_address,
    request_seed,
    seed_from_wire,
    seed_to_wire,
)
from repro.service.protocol import decode_frame, encode_frame
from repro.session import (
    BudgetExhausted,
    HierarchicalAccountant,
    SharedCompiledCache,
)
from repro.validation import validate_service_request

SERVICE_SEED = 20260729


@pytest.fixture(scope="module")
def graph():
    return random_graph_with_avg_degree(30, 5.0, rng=1)


def _service_session(graph, budget=None, default_user_budget=None, workers=1, rng=7):
    accountant = HierarchicalAccountant(budget, default_user_budget=default_user_budget)
    return PrivateSession(
        graph,
        workers=workers,
        rng=rng,
        accountant=accountant,
        cache=SharedCompiledCache(maxsize=8),
    )


class TestProtocol:
    def test_frame_round_trip(self):
        frame = {"v": 1, "op": "query", "epsilon": 0.5, "user": "alice"}
        assert decode_frame(encode_frame(frame)) == frame

    def test_decode_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            decode_frame(b"not json\n")
        with pytest.raises(ProtocolError):
            decode_frame(b"[1, 2]\n")
        with pytest.raises(ProtocolError):
            decode_frame(b"x" * (MAX_FRAME_BYTES + 1))

    def test_seed_wire_round_trip(self):
        seq = np.random.SeedSequence(entropy=99, spawn_key=(3, 1))
        back = seed_from_wire(seed_to_wire(seq))
        assert back.entropy == 99 and back.spawn_key == (3, 1)
        assert seed_from_wire(seed_to_wire(17)) == 17
        assert seed_to_wire(None) is None and seed_from_wire(None) is None

    def test_request_seed_is_pure_and_tenant_separated(self):
        a0 = request_seed(5, "alice", 0)
        assert a0.spawn_key == request_seed(5, "alice", 0).spawn_key
        assert a0.spawn_key != request_seed(5, "bob", 0).spawn_key
        assert a0.spawn_key != request_seed(5, "alice", 1).spawn_key
        # ... and actually drives a generator deterministically
        x = np.random.default_rng(a0).standard_normal()
        y = np.random.default_rng(request_seed(5, "alice", 0)).standard_normal()
        assert x == y

    def test_parse_address_forms(self):
        assert parse_address("tcp://10.0.0.1:8732") == ("10.0.0.1", 8732)
        assert parse_address("localhost:99") == ("localhost", 99)
        assert parse_address(("h", 1)) == ("h", 1)
        with pytest.raises(ServiceError):
            parse_address("no-port")

    def test_options_must_not_shadow_named_fields(self):
        with pytest.raises(ValueError, match="options"):
            validate_service_request(
                {
                    "v": 1,
                    "op": "query",
                    "query": "triangle",
                    "epsilon": 0.5,
                    "options": {"user": "mallory"},
                }
            )

    def test_validate_request_per_field_errors(self):
        with pytest.raises(ValueError, match="op: required"):
            validate_service_request({"v": 1})
        with pytest.raises(ValueError, match="epsilon: must be"):
            validate_service_request(
                {"v": 1, "op": "query", "query": "triangle", "epsilon": "x"}
            )
        with pytest.raises(ValueError, match="frobnicate: unknown key"):
            validate_service_request(
                {
                    "v": 1,
                    "op": "query",
                    "query": "triangle",
                    "epsilon": 0.5,
                    "frobnicate": True,
                }
            )
        with pytest.raises(ValueError, match="query: required"):
            validate_service_request({"v": 1, "op": "query", "epsilon": 0.5})


class TestServiceEndToEnd:
    def test_answers_byte_identical_to_in_process_session(self, graph):
        """The acceptance pin: wire answers == in-process answers."""
        workload = [
            ("alice", "triangle", "node", 0.4),
            ("bob", "triangle", "edge", 0.3),
            ("alice", "2-star", "edge", 0.2),
            ("bob", "triangle", "edge", 0.3),
        ]
        session = _service_session(graph, budget=4.0)
        remote = {}
        with BackgroundService(session, seed=SERVICE_SEED) as bg:
            with ServiceClient(bg.address) as client:
                for i, (user, query, privacy, eps) in enumerate(workload):
                    result = client.query(
                        query, epsilon=eps, privacy=privacy, user=user
                    )
                    remote[i] = result["answer"]
        session.close()

        # Re-derive every answer from a fresh in-process session using the
        # service's deterministic per-tenant seed scheme.
        reference = PrivateSession(graph, workers=1)
        counts: dict = {}
        for i, (user, query, privacy, eps) in enumerate(workload):
            index = counts.get(user, 0)
            counts[user] = index + 1
            expected = reference.query(
                query,
                epsilon=eps,
                privacy=privacy,
                rng=request_seed(SERVICE_SEED, user, index),
            )
            assert remote[i] == expected.answer, (i, user, query)
        reference.close()

    def test_explicit_int_seed_matches_in_process(self, graph):
        session = _service_session(graph)
        with BackgroundService(session) as bg:
            with ServiceClient(bg.address) as client:
                result = client.query(
                    "triangle", epsilon=0.5, privacy="edge", seed=1234
                )
        session.close()
        expected = PrivateSession(graph).query(
            "triangle", privacy="edge", epsilon=0.5, rng=1234
        )
        assert result["answer"] == expected.answer

    def test_per_user_sub_budgets_enforced_with_tenant_in_error(self, graph):
        session = _service_session(graph, budget=5.0, default_user_budget=0.7)
        with BackgroundService(session) as bg:
            with ServiceClient(bg.address, user="alice") as client:
                client.query("triangle", epsilon=0.5, privacy="edge")
                with pytest.raises(BudgetExhausted) as excinfo:
                    client.query("triangle", epsilon=0.5, privacy="edge")
                assert excinfo.value.user == "alice"
                # bob still has head room under the global cap
                client.query("triangle", epsilon=0.5, privacy="edge", user="bob")
                budget = client.budget(user="alice")
        assert budget["user"]["spent"] == 0.5
        assert session.accountant.user_spent("alice") == 0.5
        assert session.accountant.user_spent("bob") == 0.5
        session.close()

    def test_budget_and_hello_and_ping(self, graph):
        session = _service_session(graph, budget=1.0)
        with BackgroundService(session, name="t") as bg:
            with ServiceClient(bg.address) as client:
                hello = client.hello()
                assert hello["protocol"] == PROTOCOL_VERSION
                assert hello["multi_tenant"] is True
                assert "recursive" in hello["mechanisms"]
                assert client.ping()["pong"] is True
                client.query("triangle", epsilon=0.25, privacy="edge")
                snapshot = client.budget()
        assert snapshot["budget"] == 1.0
        assert snapshot["spent"] == 0.25
        assert snapshot["remaining"] == 0.75
        session.close()

    def test_overload_refusal_is_429_like(self, graph):
        session = _service_session(graph)
        with BackgroundService(session, max_pending=0) as bg:
            with ServiceClient(bg.address) as client:
                with pytest.raises(ServiceOverloaded):
                    client.query("triangle", epsilon=0.5, privacy="edge")
                # non-query ops still served under backpressure
                assert client.ping()["pong"] is True
        # a refused query reserved and spent nothing
        assert len(session.accountant.ledger) == 0
        session.close()

    def test_bad_requests_do_not_kill_the_connection(self, graph):
        session = _service_session(graph)
        with BackgroundService(session) as bg:
            with ServiceClient(bg.address) as client:
                with pytest.raises(ValueError, match="unknown mechanism"):
                    client.query(
                        "triangle", epsilon=0.5, privacy="edge", mechanism="nope"
                    )
                with pytest.raises(ValueError, match="epsilon"):
                    client.query("triangle", epsilon=-1, privacy="edge")
                # same connection keeps serving
                assert client.query("triangle", epsilon=0.5,
                                    privacy="edge")["status"] == "released"
        # the two rejected queries never touched the ledger
        assert [e.status for e in session.accountant.ledger] == ["released"]
        session.close()

    def test_unsupported_version_and_malformed_frames(self, graph):
        session = _service_session(graph)
        with BackgroundService(session) as bg:
            host, port = bg.address
            with socket.create_connection((host, port), timeout=10) as sock:
                file = sock.makefile("rb")
                sock.sendall(encode_frame({"v": 99, "op": "ping", "id": 1}))
                frame = json.loads(file.readline())
                assert frame["ok"] is False
                assert frame["error"]["code"] == "unsupported_version"
                sock.sendall(b"this is not json\n")
                frame = json.loads(file.readline())
                assert frame["ok"] is False
                assert frame["error"]["code"] == "bad_request"
                # connection still alive
                sock.sendall(
                    encode_frame({"v": PROTOCOL_VERSION, "op": "ping", "id": 2})
                )
                assert json.loads(file.readline())["ok"] is True
        session.close()

    def test_global_cap_refusal_carries_no_tenant(self, graph):
        """A refusal by the *shared* cap must not blame the requester."""
        session = _service_session(graph, budget=0.5)
        with BackgroundService(session) as bg:
            with ServiceClient(bg.address, user="alice") as client:
                client.query("triangle", epsilon=0.4, privacy="edge")
                with pytest.raises(BudgetExhausted) as excinfo:
                    client.query("triangle", epsilon=0.4, privacy="edge")
        assert excinfo.value.user is None  # same as the in-process API
        session.close()

    def test_large_frames_within_protocol_bound_are_served(self, graph):
        """Frames over asyncio's 64 KiB default (but under the protocol's
        1 MiB bound) must be answered, not dropped."""
        session = _service_session(graph)
        with BackgroundService(session) as bg:
            with ServiceClient(bg.address) as client:
                big = "x" * (100 * 1024)
                with pytest.raises(ValueError, match="label"):
                    # 100 KB frame round-trips; it fails *validation*
                    # (label type), proving the server parsed it.
                    client.query(
                        "triangle", epsilon=0.5, privacy="edge", label={"huge": big}
                    )
                assert client.ping()["pong"] is True
        session.close()

    def test_oversized_frame_is_refused_and_connection_dropped(self, graph):
        session = _service_session(graph)
        with BackgroundService(session) as bg:
            host, port = bg.address
            with socket.create_connection((host, port), timeout=30) as sock:
                file = sock.makefile("rb")
                sock.sendall(b'{"pad": "' + b"x" * (MAX_FRAME_BYTES + 16) + b'"}\n')
                frame = json.loads(file.readline())
                assert frame["ok"] is False
                assert "exceeds" in frame["error"]["message"]
                assert file.readline() == b""  # server closed the stream
        session.close()

    def test_audit_stream_replays_ledger(self, graph):
        session = _service_session(graph, budget=2.0)
        with BackgroundService(session, seed=3) as bg:
            with ServiceClient(bg.address, user="alice") as client:
                client.query("triangle", epsilon=0.5, privacy="edge")
                client.query("triangle", epsilon=0.25, privacy="edge", user="bob")
                audit = client.audit(replay=True)
                alice_only = client.audit(user="alice")
        assert audit["count"] == 2 and audit["matched"] == 2
        assert all(e["matches"] for e in audit["entries"])
        assert [e["entry"]["user"] for e in audit["entries"]] == \
            ["alice", "bob"]
        assert audit["spent"] == 0.75
        assert alice_only["count"] == 1
        assert alice_only["entries"][0]["entry"]["user"] == "alice"
        session.close()


class TestConcurrentClients:
    USERS = [f"user{i}" for i in range(5)]
    EPS = 0.3
    PER_USER_CAP = 0.7  # grants 2 x 0.3, refuses the third
    ATTEMPTS = 3

    def _hammer(self, address, user, outcomes, errors):
        try:
            with ServiceClient(address, user=user, timeout=120.0) as client:
                for _ in range(self.ATTEMPTS):
                    try:
                        result = client.query(
                            "triangle", epsilon=self.EPS, privacy="edge"
                        )
                        outcomes[user].append(("ok", result["answer"]))
                    except BudgetExhausted as refusal:
                        outcomes[user].append(("refused", refusal.user))
        except BaseException as error:  # surface thread failures
            errors.append((user, error))

    def test_hammering_ledger_exact_and_deterministic(self, graph):
        """N concurrent clients: ledger sums exactly, refusals and answers
        are independent of interleaving."""
        session = _service_session(
            graph, budget=10.0, default_user_budget=self.PER_USER_CAP
        )
        outcomes = {user: [] for user in self.USERS}
        errors: list = []
        with BackgroundService(session, seed=SERVICE_SEED) as bg:
            threads = [
                threading.Thread(
                    target=self._hammer, args=(bg.address, user, outcomes, errors)
                )
                for user in self.USERS
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=300)
        assert not errors, errors
        assert all(not t.is_alive() for t in threads)

        # Refusals deterministic: every user gets exactly 2 grants then a
        # refusal naming that user, regardless of interleaving.
        for user in self.USERS:
            kinds = [kind for kind, _ in outcomes[user]]
            assert kinds == ["ok", "ok", "refused"], (user, kinds)
            assert outcomes[user][2][1] == user

        # Ledger total is exactly the fsum of granted epsilon.
        granted = [self.EPS] * (2 * len(self.USERS))
        assert session.accountant.spent == math.fsum(granted)
        assert len(session.accountant.ledger) == len(granted)
        assert session.accountant.reserved == 0.0

        # Answers byte-identical to the serial in-process path.
        reference = PrivateSession(graph, workers=1)
        for user in self.USERS:
            for index in range(2):
                expected = reference.query(
                    "triangle",
                    privacy="edge",
                    epsilon=self.EPS,
                    rng=request_seed(SERVICE_SEED, user, index),
                )
                assert outcomes[user][index][1] == expected.answer
        reference.close()

        # And the whole ledger replays bit-for-bit.
        assert session.verify_ledger()
        session.close()


class TestSharedCacheAcrossSessions:
    def test_two_sessions_share_one_compiled_relation(self, graph):
        cache = SharedCompiledCache(maxsize=4)
        s1 = PrivateSession(graph, cache=cache)
        s2 = PrivateSession(graph, cache=cache)
        a = s1.query("triangle", privacy="edge", epsilon=0.5, rng=3)
        b = s2.query("triangle", privacy="edge", epsilon=0.5, rng=3)
        assert a.answer == b.answer
        info = cache.info()
        assert info.misses == 1 and info.hits == 1 and info.size == 1
        s1.close()
        s2.close()

    def test_different_datasets_never_share_entries(self, graph):
        """A shared cache must key on the dataset: sessions over
        different graphs must not exchange compiled programs."""
        other = random_graph_with_avg_degree(30, 5.0, rng=99)
        cache = SharedCompiledCache(maxsize=8)
        s1 = PrivateSession(graph, cache=cache)
        s2 = PrivateSession(other, cache=cache)
        a = s1.query("triangle", privacy="edge", epsilon=0.5, rng=3)
        b = s2.query("triangle", privacy="edge", epsilon=0.5, rng=3)
        assert cache.info().misses == 2 and cache.info().hits == 0
        assert a.true_answer != b.true_answer  # genuinely different graphs
        # each session's answer equals its own private-cache run
        fresh = PrivateSession(other).query(
            "triangle", privacy="edge", epsilon=0.5, rng=3
        )
        assert b.answer == fresh.answer
        s1.close()
        s2.close()

    def test_lru_eviction_respects_bound(self, graph):
        cache = SharedCompiledCache(maxsize=2)
        session = PrivateSession(graph, cache=cache)
        session.query("triangle", privacy="edge", epsilon=0.1, rng=1)
        session.query("2-star", privacy="edge", epsilon=0.1, rng=1)
        session.query("triangle", privacy="edge", epsilon=0.1, rng=1)  # hit
        session.query("3-star", privacy="edge", epsilon=0.1, rng=1)
        info = cache.info()
        assert info.size == 2 and info.evictions == 1
        # 2-star was the LRU entry and got evicted; triangle survived
        session.query("triangle", privacy="edge", epsilon=0.1, rng=1)
        assert cache.info().hits == 2
        session.query("2-star", privacy="edge", epsilon=0.1, rng=1)
        assert cache.info().misses == 4  # recompiled after eviction
        session.close()


class TestRemoteBatchCLI:
    SPEC = {
        "seed": 11,
        "queries": [
            {"query": "triangle", "privacy": "node", "epsilon": 0.5, "user": "alice"},
            # an explicit-seed item must not shift the derived stream
            {
                "query": "triangle",
                "privacy": "edge",
                "epsilon": 0.25,
                "user": "carol",
                "seed": 77,
                "label": "pinned",
            },
            {"query": "triangle", "privacy": "node", "epsilon": 0.25, "user": "bob"},
            {
                "query": "triangle",
                "privacy": "node",
                "epsilon": 0.5,
                "user": "alice",
                "label": "over",
            },
        ],
    }

    def test_remote_batch_matches_local_batch(self, graph, tmp_path, capsys):
        """`repro batch --remote` answers == local `repro batch` answers."""
        from repro.cli import main

        local_spec = dict(self.SPEC)
        local_spec["graph"] = {"nodes": 30, "avgdeg": 5, "seed": 1}
        local_spec["budget"] = 1.0
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(local_spec))
        assert main(["batch", str(path)]) == 0
        local_out = capsys.readouterr().out

        session = _service_session(graph, budget=1.0, rng=11)
        with BackgroundService(session) as bg:
            host, port = bg.address
            remote_path = tmp_path / "remote_spec.json"
            remote_path.write_text(json.dumps(self.SPEC))
            code = main(
                ["batch", str(remote_path), "--remote", f"{host}:{port}", "--audit-log"]
            )
        session.close()
        assert code == 0
        remote_out = capsys.readouterr().out

        def answers(text):
            rows = {}
            for line in text.splitlines():
                parts = line.split()
                if parts and parts[0] in ("q0", "pinned", "q2", "over"):
                    rows[parts[0]] = parts[-1]
            return rows

        local_rows, remote_rows = answers(local_out), answers(remote_out)
        assert set(local_rows) == {"q0", "pinned", "q2", "over"}
        assert local_rows == remote_rows
        assert local_rows["over"] == "-"  # refused in both runs
        assert '"matches": true' in remote_out


class TestServiceConstruction:
    def test_rejects_non_session(self):
        with pytest.raises(TypeError):
            PrivateQueryService(object())

    def test_rejects_bad_max_pending(self, graph):
        session = PrivateSession(graph)
        with pytest.raises(ValueError):
            PrivateQueryService(session, max_pending=-1)
        session.close()

    def test_serve_parser_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args([
            "serve", "--nodes", "40", "--epsilon", "2.0",
            "--user-epsilon", "0.5", "--port", "0",
            "--user-budget", "alice=1.0",
        ])
        assert args.command == "serve"
        assert args.epsilon == 2.0
        assert args.user_budget == ["alice=1.0"]
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--epsilon", "-1"])
