"""Documentation contract: every public item carries a docstring.

Walks the whole ``repro`` package and asserts that every module, public
class, public function and public method is documented.  This enforces the
"doc comments on every public item" deliverable mechanically.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

EXEMPT_METHOD_NAMES = {
    # dunder/protocol methods whose semantics are standard
    "__init__", "__repr__", "__str__", "__eq__", "__hash__", "__len__",
    "__iter__", "__contains__", "__getitem__", "__call__", "__and__",
    "__or__", "__rand__", "__ror__", "__invert__", "__new__",
    "__post_init__",
}


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


ALL_MODULES = list(_iter_modules())


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_module_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_public_items_documented(module):
    undocumented = []
    for name, item in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(item) or inspect.isfunction(item)):
            continue
        if getattr(item, "__module__", None) != module.__name__:
            continue  # re-export; checked at its home module
        if not (item.__doc__ and item.__doc__.strip()):
            undocumented.append(name)
            continue
        if inspect.isclass(item):
            for method_name, method in vars(item).items():
                if method_name.startswith("_"):
                    continue
                if method_name in EXEMPT_METHOD_NAMES:
                    continue
                if not inspect.isfunction(method):
                    continue
                if method.__doc__ and method.__doc__.strip():
                    continue
                # overriding a documented base method inherits its contract
                inherited = any(
                    (getattr(base, method_name, None) is not None)
                    and getattr(base, method_name).__doc__
                    for base in item.__mro__[1:]
                )
                if not inherited:
                    undocumented.append(f"{name}.{method_name}")
    assert not undocumented, (
        f"{module.__name__}: missing docstrings on {undocumented}"
    )
