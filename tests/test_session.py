"""Tests for the session serving layer: accountant, cache, futures, replay."""

import json

import numpy as np
import pytest

from repro import (
    PrivateSession,
    RecursiveMechanismParams,
    private_subgraph_count,
    random_graph_with_avg_degree,
    triangle,
)
from repro.core import EfficientRecursiveMechanism
from repro.core.queries import WeightedQuery
from repro.errors import PrivacyParameterError, SessionError
from repro.session import (
    BudgetAccountant,
    BudgetExhausted,
    HierarchicalAccountant,
    LedgerEntry,
    SharedCompiledCache,
)
from repro.subgraphs import k_star, subgraph_krelation


@pytest.fixture(scope="module")
def graph():
    return random_graph_with_avg_degree(30, 6, rng=1)


def _double_weight(_tup) -> float:
    return 2.0


def _entry(label, epsilon):
    return LedgerEntry(0, label, "recursive", "triangle/node", epsilon)


class TestBudgetAccountant:
    def test_sequential_composition_sums_exactly(self):
        accountant = BudgetAccountant(1.0)
        for i in range(4):
            accountant.charge(_entry(f"q{i}", 0.25))
        assert accountant.spent == 1.0
        assert accountant.remaining == 0.0
        assert len(accountant) == 4

    def test_exhausted_at_cap(self):
        accountant = BudgetAccountant(1.0)
        accountant.charge(_entry("a", 0.75))
        with pytest.raises(BudgetExhausted):
            accountant.charge(_entry("b", 0.5))
        # the refused charge spent nothing
        assert accountant.spent == 0.75
        accountant.charge(_entry("c", 0.25))  # exact fit still allowed
        assert accountant.remaining == 0.0

    def test_unlimited_still_ledgered(self):
        accountant = BudgetAccountant(None)
        for _ in range(3):
            accountant.charge(_entry("q", 100.0))
        assert accountant.remaining is None
        assert accountant.spent == 300.0
        assert len(accountant.ledger) == 3

    def test_invalid_budget_and_epsilon(self):
        with pytest.raises(ValueError):
            BudgetAccountant(0.0)
        with pytest.raises(ValueError):
            BudgetAccountant(1.0).charge(_entry("q", -1.0))
        with pytest.raises(ValueError):
            BudgetAccountant(1.0).charge(_entry("q", float("nan")))

    def test_budget_exhausted_is_value_error(self):
        assert issubclass(BudgetExhausted, ValueError)

    def test_audit_log_is_json_serializable(self):
        accountant = BudgetAccountant(1.0)
        accountant.charge(_entry("q", 0.5))
        text = json.dumps(accountant.audit_log())
        assert '"epsilon": 0.5' in text


class TestReservations:
    def test_reserve_holds_budget_until_commit(self):
        accountant = BudgetAccountant(1.0)
        reservation = accountant.reserve(0.6, label="a")
        assert accountant.reserved == 0.6
        assert accountant.remaining == pytest.approx(0.4)
        assert accountant.spent == 0.0  # held, not yet spent
        with pytest.raises(BudgetExhausted):
            accountant.reserve(0.5, label="b")  # hold counts against cap
        reservation.commit(_entry("a", 0.6))
        assert accountant.spent == 0.6
        assert accountant.reserved == 0.0

    def test_rollback_releases_the_hold(self):
        accountant = BudgetAccountant(1.0)
        reservation = accountant.reserve(0.9)
        reservation.rollback()
        assert accountant.reserved == 0.0
        accountant.reserve(0.9)  # fits again

    def test_commit_requires_matching_epsilon_and_is_single_shot(self):
        accountant = BudgetAccountant(1.0)
        reservation = accountant.reserve(0.5)
        with pytest.raises(ValueError, match="holds eps"):
            reservation.commit(_entry("q", 0.25))
        reservation.commit(_entry("q", 0.5))
        with pytest.raises(ValueError, match="already"):
            reservation.commit(_entry("q", 0.5))
        with pytest.raises(ValueError, match="already"):
            reservation.rollback()


class TestHierarchicalAccountant:
    def test_user_sub_budgets_partition_the_global_cap(self):
        accountant = HierarchicalAccountant(1.0, default_user_budget=0.6)
        accountant.charge(LedgerEntry(0, "a0", "recursive", "t/n", 0.5, user="alice"))
        with pytest.raises(BudgetExhausted) as excinfo:
            accountant.check(0.2, label="a1", user="alice")
        assert excinfo.value.user == "alice"
        assert "alice" in str(excinfo.value)
        # bob's own sub-budget is fresh; the global cap has 0.5 left
        accountant.charge(LedgerEntry(0, "b0", "recursive", "t/n", 0.5, user="bob"))
        # now the *global* cap binds for everyone, carrying no tenant
        with pytest.raises(BudgetExhausted) as excinfo:
            accountant.check(0.1, label="c0", user="carol")
        assert excinfo.value.user is None

    def test_explicit_user_budgets_override_default(self):
        accountant = HierarchicalAccountant(
            10.0, default_user_budget=1.0, user_budgets={"vip": 5.0}
        )
        assert accountant.user_budget("vip") == 5.0
        assert accountant.user_budget("anyone") == 1.0
        accountant.set_user_budget("anyone", 2.0)
        assert accountant.user_budget("anyone") == 2.0

    def test_anonymous_releases_only_hit_the_global_cap(self):
        accountant = HierarchicalAccountant(1.0, default_user_budget=0.1)
        accountant.charge(_entry("q", 0.9))  # user=None
        assert accountant.user_remaining(None) is None
        assert accountant.spent == 0.9

    def test_per_user_accounting_is_exact(self):
        accountant = HierarchicalAccountant(None, default_user_budget=1.0)
        for _ in range(10):
            accountant.charge(LedgerEntry(0, "q", "m", "t", 0.1, user="u"))
        assert accountant.user_spent("u") == pytest.approx(1.0)
        assert not accountant.can_afford(0.1, user="u")
        assert accountant.users() == ("u",)

    def test_session_mounts_hierarchical_accountant(self, graph):
        accountant = HierarchicalAccountant(2.0, default_user_budget=0.5)
        session = PrivateSession(graph, accountant=accountant)
        session.query(triangle(), privacy="edge", epsilon=0.5, rng=1, user="alice")
        with pytest.raises(BudgetExhausted) as excinfo:
            session.query(triangle(), privacy="edge", epsilon=0.5, rng=1, user="alice")
        assert excinfo.value.user == "alice"
        session.query(triangle(), privacy="edge", epsilon=0.5, rng=1, user="bob")
        assert session.ledger[0].user == "alice"
        assert session.ledger[1].user == "bob"
        assert accountant.user_spent("alice") == 0.5
        # failed queries roll their reservation back
        with pytest.raises(Exception):
            session.query(
                triangle(),
                privacy="edge",
                epsilon=0.4,
                rng=1,
                user="bob",
                mechanism="nope",
            )
        assert accountant.reserved == 0.0
        assert accountant.user_spent("bob") == 0.5
        session.close()

    def test_session_rejects_budget_and_accountant_together(self, graph):
        with pytest.raises(SessionError):
            PrivateSession(graph, budget=1.0, accountant=BudgetAccountant(1.0))
        with pytest.raises(SessionError):
            PrivateSession(graph, accountant="not an accountant")
        with pytest.raises(SessionError):
            PrivateSession(graph, cache="not a cache")


class TestSharedCompiledCacheUnit:
    def test_lru_order_and_eviction_counters(self):
        cache = SharedCompiledCache(maxsize=2)
        cache.get_or_build(("a",), lambda: "A")
        cache.get_or_build(("b",), lambda: "B")
        cache.get_or_build(("a",), lambda: "A2")  # hit refreshes a
        cache.get_or_build(("c",), lambda: "C")   # evicts b (LRU)
        assert ("b",) not in cache and ("a",) in cache
        info = cache.info()
        assert (info.hits, info.misses, info.size, info.evictions,
                info.maxsize) == (1, 3, 2, 1, 2)

    def test_resize_evicts_down(self):
        cache = SharedCompiledCache(maxsize=None)
        for key in range(4):
            cache.get_or_build((key,), lambda: key)
        cache.resize(1)
        assert len(cache) == 1 and (3,) in cache
        with pytest.raises(ValueError):
            cache.resize(0)
        with pytest.raises(ValueError):
            SharedCompiledCache(maxsize=-3)

    def test_thread_safe_builds_build_once(self):
        import threading

        cache = SharedCompiledCache(maxsize=8)
        builds = []

        def build():
            builds.append(1)
            return "value"

        threads = [
            threading.Thread(target=lambda: cache.get_or_build(("k",), build))
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(builds) == 1
        assert cache.info().hits == 7


class TestSessionQueries:
    def test_wrapper_byte_identical_to_direct_mechanism_path(self, graph):
        """Pin: the session-routed wrapper equals the pre-redesign path."""
        for privacy in ("node", "edge"):
            relation = subgraph_krelation(graph, triangle(), privacy=privacy)
            params = RecursiveMechanismParams.paper(
                1.0, node_privacy=(privacy == "node")
            )
            direct = EfficientRecursiveMechanism(relation).run(params, 5)
            wrapped = private_subgraph_count(
                graph, triangle(), privacy=privacy, epsilon=1.0, rng=5
            )
            assert wrapped.answer == direct.answer
            assert wrapped.delta == direct.delta
            assert wrapped.x_value == direct.x_value

    @pytest.mark.parametrize("workers", [1, 2])
    def test_cache_hit_byte_identical_to_cold(self, graph, workers):
        session = PrivateSession(graph, workers=workers)
        cold = session.query(triangle(), privacy="edge", epsilon=1.0, rng=5)
        assert session.cache_info().misses == 1
        warm = session.query(triangle(), privacy="edge", epsilon=1.0, rng=5)
        info = session.cache_info()
        assert info.hits == 1 and info.misses == 1 and info.size == 1
        assert warm.answer == cold.answer
        # and both equal a completely fresh session's cold answer
        fresh = PrivateSession(graph, workers=workers).query(
            triangle(), privacy="edge", epsilon=1.0, rng=5
        )
        assert fresh.answer == cold.answer
        session.close()

    def test_equivalent_pattern_objects_share_cache_slot(self, graph):
        session = PrivateSession(graph)
        session.query(triangle(), privacy="edge", epsilon=0.5, rng=1)
        session.query("triangle", privacy="edge", epsilon=0.5, rng=1)
        session.query(triangle(), privacy="edge", epsilon=0.5, rng=1)
        info = session.cache_info()
        assert info.misses == 1 and info.hits == 2

    def test_distinct_specs_get_distinct_slots(self, graph):
        session = PrivateSession(graph)
        session.query(triangle(), privacy="edge", epsilon=0.5, rng=1)
        session.query(triangle(), privacy="node", epsilon=0.5, rng=1)
        session.query(k_star(2), privacy="edge", epsilon=0.5, rng=1)
        session.query(
            triangle(), privacy="edge", epsilon=0.5, rng=1, mechanism="smooth"
        )
        assert session.cache_info().misses == 4

    def test_budget_cap_enforced(self, graph):
        session = PrivateSession(graph, budget=1.0)
        session.query(triangle(), privacy="edge", epsilon=0.6, rng=1)
        with pytest.raises(BudgetExhausted):
            session.query(triangle(), privacy="edge", epsilon=0.6, rng=1)
        # refused query spends nothing; a smaller one still fits
        session.query(triangle(), privacy="edge", epsilon=0.4, rng=1)
        assert session.spent == pytest.approx(1.0)

    def test_relation_session_linear_queries(self, graph):
        relation = subgraph_krelation(graph, triangle(), privacy="edge")
        session = PrivateSession(relation, budget=2.0)
        count = session.query(None, epsilon=0.5, rng=3)
        assert count.true_answer == 44.0
        doubled = session.query(
            WeightedQuery(_double_weight, name="double"), epsilon=0.5, rng=3
        )
        assert doubled.true_answer == 88.0
        # distinct weights are distinct cache slots; repeats hit
        session.query(None, epsilon=0.5, rng=4)
        info = session.cache_info()
        assert info.misses == 2 and info.hits == 1
        session.close()

    def test_session_rejects_bad_data_and_closed_use(self, graph):
        with pytest.raises(SessionError):
            PrivateSession([1, 2, 3])
        session = PrivateSession(graph)
        session.close()
        with pytest.raises(SessionError):
            session.query(triangle(), epsilon=0.5)

    def test_missing_epsilon_rejected(self, graph):
        session = PrivateSession(graph)
        with pytest.raises(SessionError):
            session.query(triangle())


class TestValidation:
    def test_epsilon_validated_at_every_entry_point(self, graph):
        for bad in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(ValueError):
                private_subgraph_count(graph, triangle(), epsilon=bad, rng=0)
            with pytest.raises(ValueError):
                PrivateSession(graph).query(triangle(), epsilon=bad)
        with pytest.raises(ValueError):
            PrivateSession(graph, budget=-2.0)

    def test_epsilon_error_is_privacy_parameter_error(self, graph):
        with pytest.raises(PrivacyParameterError):
            private_subgraph_count(graph, triangle(), epsilon=-1, rng=0)

    def test_workers_validated(self, graph):
        with pytest.raises(ValueError):
            PrivateSession(graph, workers=0)
        with pytest.raises(ValueError):
            private_subgraph_count(graph, triangle(), epsilon=1.0, workers=-2)


class TestLedgerAndReplay:
    def test_ledger_replay_matches_released_answers(self, graph):
        session = PrivateSession(graph, budget=3.0, rng=11)
        session.query(triangle(), privacy="edge", epsilon=0.5)
        session.query(triangle(), privacy="edge", epsilon=0.5, rng=42)
        session.query(k_star(2), privacy="edge", epsilon=0.5, mechanism="smooth")
        records = session.replay()
        assert len(records) == 3
        assert all(record.matches for record in records)
        assert session.verify_ledger()
        # replay spends no budget
        assert session.spent == pytest.approx(1.5)

    def test_generator_rng_not_replayable_but_ledgered(self, graph):
        session = PrivateSession(graph)
        session.query(
            triangle(), privacy="edge", epsilon=0.5, rng=np.random.default_rng(0)
        )
        (record,) = session.replay()
        assert record.matches is None
        assert session.ledger[0].epsilon == 0.5

    def test_ledger_records_metadata(self, graph):
        session = PrivateSession(graph, budget=1.0, rng=3)
        session.query(triangle(), privacy="node", epsilon=0.5, label="tri")
        entry = session.ledger[0]
        assert entry.label == "tri"
        assert entry.mechanism == "recursive"
        assert entry.query == "triangle/node"
        assert entry.status == "released"
        assert entry.cache_hit is False
        assert json.dumps(session.audit_log())


class TestSubmitFutures:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_submit_released_answers_identical_any_worker_count(self, graph, workers):
        session = PrivateSession(graph, workers=workers, rng=42)
        futures = [
            session.submit(triangle(), privacy="edge", epsilon=0.25) for _ in range(4)
        ]
        answers = [future.result().answer for future in futures]
        reference = PrivateSession(graph, workers=1, rng=42)
        expected = [
            reference.submit(triangle(), privacy="edge", epsilon=0.25).result().answer
            for _ in range(4)
        ]
        assert answers == expected
        # ledger entries completed with answers recorded
        assert [e.status for e in session.ledger] == ["released"] * 4
        assert [e.answer for e in session.ledger] == answers
        session.close()
        reference.close()

    def test_submit_charges_budget_upfront(self, graph):
        session = PrivateSession(graph, budget=0.5, workers=1, rng=0)
        session.submit(triangle(), privacy="edge", epsilon=0.5)
        with pytest.raises(BudgetExhausted):
            session.submit(triangle(), privacy="edge", epsilon=0.1)
        session.close()

    def test_submit_with_int_seed_matches_query(self, graph):
        session = PrivateSession(graph, workers=1)
        submitted = session.submit(
            triangle(), privacy="edge", epsilon=0.5, rng=9
        ).result()
        queried = session.query(triangle(), privacy="edge", epsilon=0.5, rng=9)
        assert submitted.answer == queried.answer
        session.close()

    def test_submit_rejects_generator_rng(self, graph):
        session = PrivateSession(graph, workers=1)
        with pytest.raises(SessionError):
            session.submit(
                triangle(), privacy="edge", epsilon=0.5, rng=np.random.default_rng(0)
            )

    def test_new_spec_after_fork_compiles_in_workers(self, graph):
        """A spec first submitted after the pool forked must not block the
        submitter on a parent-side compile the workers would repeat."""
        session = PrivateSession(graph, workers=2, rng=9)
        first = session.submit(triangle(), privacy="edge", epsilon=0.5)
        second = session.submit(k_star(2), privacy="edge", epsilon=0.5)
        assert first.result().answer != second.result().answer
        # only the pre-fork spec was compiled in the parent...
        assert session.cache_info().size == 1
        # ...and replay still reproduces both (compiling lazily on demand)
        assert session.verify_ledger()
        session.close()

    def test_pool_fanout_replay(self, graph):
        """Replay also covers answers computed in forked workers."""
        session = PrivateSession(graph, workers=2, rng=5)
        futures = [
            session.submit(triangle(), privacy="edge", epsilon=0.25) for _ in range(3)
        ]
        for future in futures:
            future.result()
        assert session.verify_ledger()
        session.close()


class TestSessionContextManager:
    def test_context_manager_closes(self, graph):
        with PrivateSession(graph, budget=1.0) as session:
            session.query(triangle(), privacy="edge", epsilon=0.5, rng=1)
        with pytest.raises(SessionError):
            session.query(triangle(), privacy="edge", epsilon=0.1)
        # ledger still readable after close
        assert len(session.ledger) == 1
