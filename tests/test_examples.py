"""Smoke tests for the example scripts.

Every example must at least compile and expose a ``main()``; the fast ones
are executed end-to-end (output captured).  The slower comparison examples
are exercised by the benchmark suite at scale instead.
"""

import importlib.util
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))
FAST_EXAMPLES = ["quickstart.py", "serving_session.py", "sql_common_friends.py"]


def _load(name: str):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{name[:-3]}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_expected_examples_present(self):
        assert set(FAST_EXAMPLES) <= set(ALL_EXAMPLES)
        assert len(ALL_EXAMPLES) >= 5

    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_compiles_and_has_main(self, name):
        source = (EXAMPLES_DIR / name).read_text()
        compile(source, name, "exec")
        assert "def main()" in source
        assert '__name__ == "__main__"' in source

    @pytest.mark.parametrize("name", FAST_EXAMPLES)
    def test_fast_examples_run(self, name, capsys):
        module = _load(name)
        module.main()
        out = capsys.readouterr().out
        assert len(out.splitlines()) >= 3

    def test_quickstart_reports_both_privacy_levels(self, capsys):
        _load("quickstart.py").main()
        out = capsys.readouterr().out
        assert "node-DP" in out and "edge-DP" in out
