"""Seeded golden regression tests.

These pin exact end-to-end outputs for fixed seeds so that refactors which
accidentally change the noise path, the Δ grid, or the LP objective are
caught immediately.  The values depend only on (a) numpy's Generator bit
stream, which is stability-guaranteed per algorithm, and (b) LP *objective
values* (not vertex choices), which are deterministic for these instances.

If a deliberate behavior change invalidates them, re-record via the
commands in each docstring — and say so in the changelog.
"""

import pytest

from repro import (
    k_star,
    private_subgraph_count,
    random_graph_with_avg_degree,
    triangle,
)


@pytest.fixture(scope="module")
def graph():
    return random_graph_with_avg_degree(30, 6, rng=1)


class TestGoldenOutputs:
    def test_triangle_edge_privacy(self, graph):
        result = private_subgraph_count(
            graph, triangle(), privacy="edge", epsilon=1.0, rng=5
        )
        assert result.true_answer == 44.0
        assert result.delta == pytest.approx(3.320116922736548, abs=1e-9)
        assert result.x_value == pytest.approx(44.0, abs=1e-6)
        assert result.answer == pytest.approx(59.26618548349654, abs=1e-6)

    def test_triangle_node_privacy(self, graph):
        result = private_subgraph_count(
            graph, triangle(), privacy="node", epsilon=1.0, rng=5
        )
        assert result.true_answer == 44.0
        # Δ = e^{jβ}θ with j = 5, β = 0.2: exactly e
        assert result.delta == pytest.approx(2.718281828459045, abs=1e-9)
        assert result.x_value == pytest.approx(41.76876068390463, abs=1e-6)
        assert result.answer == pytest.approx(62.37595561689136, abs=1e-6)

    def test_2star_edge_privacy(self, graph):
        result = private_subgraph_count(
            graph, k_star(2), privacy="edge", epsilon=1.0, rng=9
        )
        assert result.true_answer == 548.0
        assert result.delta == pytest.approx(16.444646771097055, abs=1e-9)
        assert result.answer == pytest.approx(496.3065645091851, abs=1e-6)

    def test_graph_is_stable(self, graph):
        """The generator's bit stream itself (guards rng refactors)."""
        assert graph.num_nodes == 30
        assert graph.num_edges == 92
        assert graph.degree(0) == 5
