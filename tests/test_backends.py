"""The solver-backend registry: discovery, selection, and identity plumbing.

Pins the registry contract introduced with the pluggable-backend refactor:

* **registry** — ``backends.get``/``create``/``resolve`` honour names and
  aliases, reject unknown names with the list of registered backends, and
  report unavailable backends (gurobi without gurobipy) with an actionable
  message naming the missing module and the fallback;
* **selection** — ``REPRO_LP_BACKEND`` overrides the measured-preference
  auto-detect order, and the CLI ``--lp-backend`` knob validates eagerly;
* **identity** — the chosen backend's ``cache_token`` flows into session
  cache keys, ``lp_backend`` into audit-ledger entries and the service
  ``hello`` frame;
* **statuses** — one canonical status vocabulary shared by every backend.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import LPError
from repro.graphs import random_graph_with_avg_degree
from repro.lp import ScipyBackend, backends, status
from repro.lp.backends import BACKEND_ENV, PersistentModel, SolverBackend
from repro.session import PrivateSession
from repro.subgraphs import triangle

AVAILABLE = tuple(backends.available())

try:  # pragma: no cover - exercised only where gurobipy is installed
    import gurobipy  # noqa: F401

    HAS_GUROBIPY = True
except ImportError:
    HAS_GUROBIPY = False


@pytest.fixture
def graph():
    return random_graph_with_avg_degree(24, 4.0, rng=2)


class TestRegistry:
    def test_builtin_backends_registered(self):
        names = backends.registered()
        assert {"scipy", "highs", "gurobi"} <= set(names)
        assert names == sorted(names)

    def test_scipy_always_available(self):
        assert "scipy" in AVAILABLE

    def test_get_resolves_aliases(self):
        assert backends.get("linprog") is backends.get("scipy")
        assert backends.get("persistent") is backends.get("highs")
        assert backends.get("grb") is backends.get("gurobi")
        assert backends.get("HIGHS") is backends.get("highs")  # case-blind

    def test_unknown_name_lists_registry(self):
        with pytest.raises(LPError, match="unknown LP backend 'nope'") as exc:
            backends.get("nope")
        message = str(exc.value)
        for name in ("scipy", "highs", "gurobi"):
            assert name in message

    def test_resolve_caches_one_instance_per_name(self):
        assert backends.resolve("scipy") is backends.resolve("scipy")
        # create() stays uncached so callers can pass constructor kwargs
        assert backends.create("scipy") is not backends.create("scipy")

    def test_describe_rows_carry_capabilities(self):
        rows = {row["name"]: row for row in backends.describe()}
        assert rows["scipy"]["available"] is True
        assert rows["scipy"]["supports_persistent"] is False
        assert rows["scipy"]["supports_multi_rhs"] is False
        assert rows["gurobi"]["preference"] == 20
        # sorted by preference, best-first
        preferences = [row["preference"] for row in backends.describe()]
        assert preferences == sorted(preferences, reverse=True)

    @pytest.mark.skipif(HAS_GUROBIPY, reason="gurobipy installed here")
    def test_gurobi_degrades_cleanly_when_missing(self):
        rows = {row["name"]: row for row in backends.describe()}
        assert rows["gurobi"]["available"] is False
        assert "gurobipy" in rows["gurobi"]["reason"]
        with pytest.raises(LPError) as exc:
            backends.create("gurobi")
        message = str(exc.value)
        assert "[lp-backend gurobi]" in message
        assert "gurobipy" in message  # names the missing module
        assert BACKEND_ENV in message  # names the fallback knob

    def test_env_var_overrides_preference_order(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "scipy")
        assert backends.default_backend().name == "scipy"
        monkeypatch.setenv(BACKEND_ENV, "no-such-backend")
        with pytest.raises(LPError, match="no-such-backend"):
            backends.default_backend()

    def test_default_backend_prefers_measured_order(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        default = backends.default_backend()
        best = max(
            (backends.get(name) for name in AVAILABLE),
            key=lambda cls: cls.preference,
        )
        assert default.name == best.name

    def test_resolve_accepts_none_name_and_instance(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert backends.resolve(None).name == backends.default_backend().name
        assert backends.resolve("scipy").name == "scipy"
        explicit = ScipyBackend(method="highs-ds")
        assert backends.resolve(explicit) is explicit
        with pytest.raises(LPError, match="not an LP backend"):
            backends.resolve(object())

    def test_cache_tokens_distinguish_backends_and_options(self):
        tokens = {backends.create(name).cache_token for name in AVAILABLE}
        assert len(tokens) == len(AVAILABLE)
        assert (
            ScipyBackend(method="highs-ds").cache_token
            != ScipyBackend(method="highs-ipm").cache_token
        )


class TestBackendContract:
    def test_capability_flags_exposed(self):
        for name in AVAILABLE:
            backend = backends.create(name)
            for flag in (
                "supports_persistent",
                "supports_multi_rhs",
                "supports_warm_start",
            ):
                assert isinstance(getattr(backend, flag), bool)

    def test_abstract_backend_rejects_persistent_build(self):
        backend = SolverBackend()
        with pytest.raises(LPError, match=r"\[lp-backend abstract\]"):
            backend.build_persistent(None, None, None, None, None, None)

    def test_persistent_model_fork_guard(self):
        import os

        model = PersistentModel.__new__(PersistentModel)
        model._owner_pid = os.getpid() + 1
        with pytest.raises(LPError, match="fork"):
            model._assert_owner()

    def test_non_persistent_backend_builds_no_models(self, graph):
        from repro.core.efficient import EfficientRecursiveMechanism
        from repro.subgraphs import subgraph_krelation

        relation = subgraph_krelation(graph, triangle(), privacy="edge")
        program = EfficientRecursiveMechanism(
            relation, backend="scipy"
        )._encoded._compiled
        assert program._h_model is None
        program.solve_h(1.0)
        # scipy path never builds persistent models
        assert program._h_model is None


class TestStatusVocabulary:
    def test_canonical_accepts_all_constants(self):
        for name in status.CANONICAL_STATUSES:
            assert status.canonical(name) == name

    def test_canonical_rejects_foreign_spellings(self):
        for bad in ("Optimal", "kOptimal", "solved", ""):
            with pytest.raises(ValueError, match="status"):
                status.canonical(bad)

    def test_linprog_map_covers_scipy_codes(self):
        assert status.LINPROG_STATUS[0] == status.OPTIMAL
        assert status.LINPROG_STATUS[2] == status.INFEASIBLE
        assert status.LINPROG_STATUS[3] == status.UNBOUNDED
        assert set(status.LINPROG_STATUS.values()) <= set(status.CANONICAL_STATUSES)


class TestEngineProbeCaching:
    def test_probe_is_cached(self):
        from repro.lp import highs_engine

        assert highs_engine._probe() is highs_engine._probe()

    def test_require_engine_message_names_backend_and_fallback(self, monkeypatch):
        from repro.lp import highs_engine

        monkeypatch.setattr(
            highs_engine, "_PROBE", (False, "No module named '_highspy'")
        )
        with pytest.raises(LPError) as exc:
            highs_engine.require_engine("highs")
        message = str(exc.value)
        assert "[lp-backend highs]" in message
        assert "_highspy" in message
        assert "REPRO_LP_BACKEND=scipy" in message


class TestSessionIdentity:
    def test_session_resolves_backend_eagerly(self, graph):
        session = PrivateSession(graph, backend="scipy")
        assert session.lp_backend == "scipy"
        default = PrivateSession(graph)
        assert default.lp_backend in AVAILABLE

    def test_ledger_entries_record_backend(self, graph):
        session = PrivateSession(graph, backend="scipy", budget=2.0)
        session.query(triangle(), privacy="edge", epsilon=0.5, rng=1)
        entry = session.ledger[-1]
        assert entry.extra["lp_backend"] == "scipy"
        assert entry.to_dict()["lp_backend"] == "scipy"

    def test_backend_identity_partitions_cache_keys(self, graph):
        if len(AVAILABLE) < 2:
            pytest.skip("only one backend available")
        first, second = AVAILABLE[:2]
        session_a = PrivateSession(graph, backend=first)
        session_b = PrivateSession(graph, backend=second)
        *_, key_a = session_a._resolve_spec(triangle(), "edge", "recursive", None, {})
        *_, key_b = session_b._resolve_spec(triangle(), "edge", "recursive", None, {})
        assert key_a != key_b

    def test_cross_backend_released_answers_identical(self, graph):
        answers = set()
        for name in AVAILABLE:
            session = PrivateSession(graph, backend=name)
            result = session.query(triangle(), privacy="node", epsilon=0.5, rng=42)
            answers.add(result.answer)
        assert len(answers) == 1


class TestServiceIdentity:
    def test_hello_frame_reports_backend(self, graph):
        from repro.service.service import PrivateQueryService

        service = PrivateQueryService(
            PrivateSession(graph, backend="scipy", name="svc")
        )
        frame = service._op_hello({})
        assert frame["lp_backend"] == "scipy"


class TestCliKnob:
    def test_count_accepts_lp_backend(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["count", "--lp-backend", "scipy"])
        assert args.lp_backend == "scipy"

    def test_unknown_backend_rejected_at_parse_time(self, capsys):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["count", "--lp-backend", "nope"])
        assert "registered backends" in capsys.readouterr().err

    def test_batch_serve_fig_accept_lp_backend(self):
        from repro.cli import build_parser

        parser = build_parser()
        assert (
            parser.parse_args(
                ["batch", "queries.json", "--lp-backend", "scipy"]
            ).lp_backend
            == "scipy"
        )
        assert (
            parser.parse_args(["serve", "--lp-backend", "scipy"]).lp_backend == "scipy"
        )
        assert (
            parser.parse_args(
                ["fig", "fig5", "--lp-backend", "scipy"]
            ).lp_backend
            == "scipy"
        )


class TestMeasuredPreferences:
    """load_preferences: a BENCH_backends.json ranks the auto-detect."""

    @pytest.fixture(autouse=True)
    def _clean(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        monkeypatch.delenv(backends.PREFERENCES_ENV, raising=False)
        backends.clear_preferences()
        yield
        backends.clear_preferences()

    def _bench_file(self, tmp_path, timings):
        path = tmp_path / "BENCH_backends.json"
        path.write_text(
            json.dumps(
                {
                    "fig5": {
                        name: {"wall_seconds": seconds}
                        for name, seconds in timings.items()
                    }
                }
            )
        )
        return path

    def test_measured_fastest_available_wins(self, tmp_path):
        slowest = {name: 100.0 + index for index, name in enumerate(AVAILABLE)}
        slowest["scipy"] = 0.01  # scipy is always available
        installed = backends.load_preferences(self._bench_file(tmp_path, slowest))
        assert installed["scipy"] == 0.01
        assert backends.default_backend().name == "scipy"

    def test_env_backend_still_overrides_measured(self, tmp_path, monkeypatch):
        other = next((n for n in AVAILABLE if n != "scipy"), "scipy")
        backends.load_preferences(
            self._bench_file(tmp_path, {"scipy": 0.01, other: 99.0})
        )
        monkeypatch.setenv(BACKEND_ENV, other)
        assert backends.default_backend().name == other

    def test_unavailable_timings_fall_back_to_static(self, tmp_path):
        static_choice = backends.default_backend().name
        backends.load_preferences(self._bench_file(tmp_path, {"no-such-solver": 0.001}))
        assert backends.default_backend().name == static_choice

    def test_env_path_is_loaded_lazily_once(self, tmp_path, monkeypatch):
        slowest = {name: 100.0 for name in AVAILABLE}
        slowest["scipy"] = 0.01
        path = self._bench_file(tmp_path, slowest)
        monkeypatch.setenv(backends.PREFERENCES_ENV, str(path))
        backends.clear_preferences()  # re-arm the one-shot env check
        assert backends.default_backend().name == "scipy"

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(LPError, match="not found"):
            backends.load_preferences(tmp_path / "absent.json")

    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(LPError, match="not valid JSON"):
            backends.load_preferences(path)

    def test_missing_fig5_raises(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"default_backend": "scipy"}))
        with pytest.raises(LPError, match="no 'fig5' timing object"):
            backends.load_preferences(path)

    def test_nonpositive_timings_rejected(self, tmp_path):
        path = self._bench_file(tmp_path, {"scipy": 0.0, "highs": -1.0})
        with pytest.raises(LPError, match="no positive"):
            backends.load_preferences(path)

    def test_cli_preferences_flag_loads_eagerly(self, tmp_path, monkeypatch):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["count", "--lp-preferences", str(tmp_path / "absent.json")]
        )
        assert args.lp_preferences == str(tmp_path / "absent.json")
