"""Erratum: Eq. 19's bounding sequence is not recursive for disjunctions.

During this reproduction, property-based testing surfaced a counterexample
to the paper's Theorem 4 claim that the Eq. 19 sequence ``G`` is a
recursive sequence (the claim's proof says "the same as the proof for H",
but the H argument does not transfer: the ``max_p`` over participants can
*increase* when a fresh participant's row couples several tuples).

Counterexample (documented in DESIGN.md §6):

    P2 = {p0..p4},  tuples  t0 : p0 ∨ p1,   t1 : p0 ∨ p2,   q ≡ 1
    P1 = P2 - {p0}  (so t0 : p1, t1 : p2)

    G_3(P2) = 4/3  >  G_3(P1) = 1         (Def. 17 requires ≤)

and consequently ``ln Δ`` moves by 2β between these neighbors, i.e. the
Lemma-1 sensitivity bound — and with it the ε1 budget accounting — fails
by a factor of 2 on this instance (the factor is unbounded in general:
chain one shared variable across T tuples).

For *conjunctive* annotations (every subgraph-counting relation) the
property does hold — tuples containing the withdrawn participant have
φ = 0 whenever its coordinate is 0, so the fresh row vanishes at the
embedded minimizer — which is why the paper's flagship results are
unaffected.  The library's ``bounding="uniform"`` mode (``Ĝ = 2·S̄·H``)
restores soundness for arbitrary annotations.

These tests pin down the erratum so it cannot be silently "fixed" into
unfaithfulness, and verify both repair paths.
"""

import math

import pytest

from repro.boolexpr import parse
from repro.core import EfficientRecursiveMechanism, SensitiveKRelation
from repro.core.params import RecursiveMechanismParams


@pytest.fixture
def counterexample():
    full = SensitiveKRelation(
        ["p0", "p1", "p2", "p3", "p4"],
        [("t0", parse("p0 | p1")), ("t1", parse("p0 | p2"))],
    )
    return full, full.withdraw("p0")


class TestEq19Violation:
    def test_g_values_match_hand_computation(self, counterexample):
        full, less = counterexample
        mech_full = EfficientRecursiveMechanism(full, bounding="paper")
        mech_less = EfficientRecursiveMechanism(less, bounding="paper")
        # hand-derived: minimizer puts f0=f1=f2=1/3 (full) / f1=f2=1/2 (less)
        assert mech_full.g_entry(3) == pytest.approx(4.0 / 3.0, abs=1e-6)
        assert mech_less.g_entry(3) == pytest.approx(1.0, abs=1e-6)

    def test_def17_violated_by_paper_g(self, counterexample):
        full, less = counterexample
        mech_full = EfficientRecursiveMechanism(full, bounding="paper")
        mech_less = EfficientRecursiveMechanism(less, bounding="paper")
        # Def. 17 requires G_i(P2) <= G_i(P1); here it FAILS at i = 3.
        assert mech_full.g_entry(3) > mech_less.g_entry(3) + 0.3

    def test_lemma1_violated_by_paper_g(self, counterexample):
        full, less = counterexample
        params = RecursiveMechanismParams(epsilon1=0.25, epsilon2=0.25, beta=0.1)
        delta_full, _ = EfficientRecursiveMechanism(
            full, bounding="paper"
        ).compute_delta(params)
        delta_less, _ = EfficientRecursiveMechanism(
            less, bounding="paper"
        ).compute_delta(params)
        gap = abs(math.log(delta_full) - math.log(delta_less))
        assert gap == pytest.approx(2 * params.beta, abs=1e-9)  # 2x the bound

    def test_violation_grows_with_coupling(self):
        """Chaining one shared variable across T tuples grows the ratio."""
        for t_count, min_ratio in ((2, 1.3), (4, 1.5)):
            participants = ["hub"] + [f"q{i}" for i in range(t_count)] + [
                f"spare{i}" for i in range(t_count)
            ]
            full = SensitiveKRelation(
                participants,
                [(f"t{i}", parse(f"hub | q{i}")) for i in range(t_count)],
            )
            less = full.withdraw("hub")
            i = t_count + 1  # spares full, one unit spread over the q's
            g_full = EfficientRecursiveMechanism(full, bounding="paper").g_entry(i)
            g_less = EfficientRecursiveMechanism(less, bounding="paper").g_entry(i)
            assert g_full >= min_ratio * g_less


class TestRepairs:
    def test_uniform_mode_restores_def17(self, counterexample):
        full, less = counterexample
        mech_full = EfficientRecursiveMechanism(full, bounding="uniform", s_bar=1.0)
        mech_less = EfficientRecursiveMechanism(less, bounding="uniform", s_bar=1.0)
        for i in range(less.num_participants + 1):
            assert mech_full.g_entry(i) <= mech_less.g_entry(i) + 1e-9
            assert mech_less.g_entry(i) <= mech_full.g_entry(i + 1) + 1e-9

    def test_uniform_mode_restores_lemma1(self, counterexample):
        full, less = counterexample
        params = RecursiveMechanismParams(epsilon1=0.25, epsilon2=0.25, beta=0.1)
        delta_full, _ = EfficientRecursiveMechanism(
            full, bounding="uniform", s_bar=1.0
        ).compute_delta(params)
        delta_less, _ = EfficientRecursiveMechanism(
            less, bounding="uniform", s_bar=1.0
        ).compute_delta(params)
        assert abs(math.log(delta_full) - math.log(delta_less)) <= params.beta + 1e-9

    def test_uniform_g_is_2bounding(self, counterexample):
        """Ĝ must still satisfy Def. 18 (g = 2) so Theorem 1 applies."""
        full, _ = counterexample
        mech = EfficientRecursiveMechanism(full, bounding="uniform", s_bar=1.0)
        n = mech.num_participants
        h = [mech.h_entry(i) for i in range(n + 1)]
        g = [mech.g_entry(i) for i in range(n + 1)]
        for i in range(n + 1):
            for j in range(i, n + 1):
                k = n - (n - j) // 2
                assert h[j] <= h[i] + (n - i) * g[k] + 1e-7

    def test_auto_mode_selects_safely(self, counterexample):
        full, _ = counterexample
        assert EfficientRecursiveMechanism(full).bounding == "uniform"
        conj = SensitiveKRelation(["a", "b"], [("t", parse("a & b"))])
        assert EfficientRecursiveMechanism(conj).bounding == "paper"

    def test_invalid_bounding_rejected(self, counterexample):
        from repro.errors import MechanismError

        full, _ = counterexample
        with pytest.raises(MechanismError):
            EfficientRecursiveMechanism(full, bounding="magic")
