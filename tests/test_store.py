"""Tests for the columnar occurrence store (repro/store/).

The store lives or dies by one pin: **columnar == dict == from-scratch**.
For randomized insert/delete streams the columnar backend must hold
exactly the occurrences a full re-enumeration produces, in exactly the
dict oracle's canonical order, and a session over it must release
answers byte-identical to the dict path at the same seeds.  On top of
that pin: the array fast path into the φ-epigraph encoder must produce
the very same LP as the legacy annotation tree-walk, and the table /
interner primitives must honor their insertion-order and tombstone
contracts.
"""

import random

import numpy as np
import pytest

from repro import PrivateSession, VersionedGraph, random_graph_with_avg_degree
from repro.errors import GraphError, LPError
from repro.graphs import Graph
from repro.lp import backends as lp_backends
from repro.relax.encode import EncodedRelation
from repro.store import ConjunctiveKRelation
from repro.store.backend import resolve_store
from repro.store.columnar import ColumnarOccurrenceTable
from repro.store.interning import InternTable
from repro.subgraphs import k_star, path_pattern, triangle
from repro.subgraphs.patterns import cycle_pattern

#: The four seed patterns of the parity pin, plus a 5-node pattern that
#: exercises the generic matcher and a wider occurrence row.
SEED_PATTERNS = [triangle(), k_star(2), path_pattern(3), cycle_pattern(4)]
FIVE_NODE_PATTERN = cycle_pattern(5)


def _occ_signature(occurrences):
    """Order-sensitive signature of an occurrence sequence."""
    return [
        (tuple(sorted(map(repr, occ.nodes))), tuple(sorted(map(repr, occ.edges))),)
        for occ in occurrences
    ]


def _paired_graphs(n=36, rng_seed=7):
    base = random_graph_with_avg_degree(n, 5, rng=rng_seed)
    return (
        VersionedGraph(base.copy(), store="columnar"),
        VersionedGraph(base.copy(), store="dict"),
    )


def _toggle_stream(graphs, steps, rng_seed=13, universe=40):
    """Yield after each identical toggle applied to every graph."""
    rng = random.Random(rng_seed)
    reference = graphs[0]
    done = 0
    while done < steps:
        u, v = rng.randrange(universe), rng.randrange(universe)
        if u == v:
            continue
        action = "remove_edge" if reference.has_edge(u, v) else "add_edge"
        for graph in graphs:
            getattr(graph, action)(u, v)
        done += 1
        yield done


class TestStoreOracleParity:
    """Randomized insert/delete property pin: store == dict == scratch."""

    @pytest.mark.parametrize(
        "pattern", SEED_PATTERNS + [FIVE_NODE_PATTERN],
        ids=lambda p: p.name,
    )
    def test_randomized_stream_matches_oracle(self, pattern):
        columnar, oracle = _paired_graphs()
        for graph in (columnar, oracle):
            graph.maintainer.register(pattern)
        assert _occ_signature(columnar.maintainer.occurrences(pattern)) == \
            _occ_signature(oracle.maintainer.occurrences(pattern))
        for step in _toggle_stream((columnar, oracle), steps=90):
            if step % 15 == 0 or step == 90:
                # canonical order parity against the dict oracle ...
                assert _occ_signature(
                    columnar.maintainer.occurrences(pattern)
                ) == _occ_signature(oracle.maintainer.occurrences(pattern))
                # ... and both match a from-scratch re-enumeration
                assert columnar.maintainer.verify(pattern)
                assert oracle.maintainer.verify(pattern)

    def test_released_answers_byte_identical(self):
        for privacy in ("edge", "node"):
            columnar, oracle = _paired_graphs(n=30, rng_seed=11)
            sessions = [PrivateSession(graph, rng=5) for graph in (columnar, oracle)]

            def released(pattern, seed):
                return [
                    session.query(
                        pattern, privacy=privacy, epsilon=0.8,
                        rng=np.random.default_rng(seed),
                    ).answer
                    for session in sessions
                ]

            fresh = released(triangle(), 101)
            assert fresh[0] == fresh[1]
            for _ in _toggle_stream(
                (columnar, oracle), steps=40, rng_seed=29, universe=30
            ):
                pass
            for pattern, seed in ((triangle(), 202), (cycle_pattern(4), 303)):
                updated = released(pattern, seed)
                assert updated[0] == updated[1], (
                    f"{pattern.name}/{privacy} diverged after updates"
                )
            # the columnar lane must match a cold session on the final
            # graph, not merely the dict lane (both could drift together)
            scratch = PrivateSession(
                VersionedGraph(columnar.checkout(columnar.version), store="dict"), rng=5
            )
            assert scratch.query(
                triangle(), privacy=privacy, epsilon=0.8,
                rng=np.random.default_rng(202),
            ).answer == released(triangle(), 202)[0]
            for session in sessions + [scratch]:
                session.close()

    def test_fast_path_gating(self):
        columnar, oracle = _paired_graphs()
        pattern = triangle()
        for graph in (columnar, oracle):
            graph.maintainer.register(pattern)
        relation = columnar.relation_for(pattern, "edge")
        assert isinstance(relation, ConjunctiveKRelation)
        assert relation.matrix.shape[1] == 3  # triangle → 3 edge vars
        # the dict oracle never takes the array fast path ...
        assert oracle.relation_for(pattern, "edge") is None
        # ... and unknown privacy notions fall back to the legacy path
        assert columnar.maintainer.relation_for(pattern, "weighted") is None


class TestEncoderIdentity:
    """from_conjunctions must build the same LP as the legacy tree walk."""

    @pytest.mark.parametrize(
        "pattern,privacy",
        [(triangle(), "edge"), (triangle(), "node"),
         (k_star(2), "edge"), (cycle_pattern(4), "node")],
        ids=lambda value: getattr(value, "name", value),
    )
    def test_arrays_match_legacy_tree_walk(self, pattern, privacy):
        graph = VersionedGraph(
            random_graph_with_avg_degree(28, 5, rng=3), store="columnar"
        )
        graph.maintainer.register(pattern)
        relation = graph.relation_for(pattern, privacy)
        assert isinstance(relation, ConjunctiveKRelation)
        backend = lp_backends.resolve(None)

        fast = EncodedRelation.from_conjunctions(
            relation.sorted_participants, relation.matrix, backend
        )
        annotated = [(annotation, 1.0) for _, annotation in relation.items()]
        legacy = EncodedRelation(sorted(relation.participants), annotated, backend)

        assert fast.participants == legacy.participants
        for name in (
            "_ub_rows", "_ub_cols", "_ub_vals", "_ub_rhs", "_root_vars", "_root_weights"
        ):
            np.testing.assert_array_equal(
                getattr(fast, name), getattr(legacy, name), err_msg=name
            )
        assert list(fast._g_rows) == list(legacy._g_rows)
        assert fast._g_rows == legacy._g_rows
        assert fast.total_weight == legacy.total_weight
        assert fast.max_phi_sensitivity == legacy.max_phi_sensitivity

    def test_duplicate_participants_rejected(self):
        backend = lp_backends.resolve(None)
        with pytest.raises(LPError, match="duplicate participant names"):
            EncodedRelation.from_conjunctions(
                ["a", "b", "a"], np.zeros((0, 2), dtype=np.int64), backend
            )

    def test_matrix_bounds_checked(self):
        backend = lp_backends.resolve(None)
        with pytest.raises(LPError):
            EncodedRelation.from_conjunctions(
                ["a", "b"], np.array([[0, 5]], dtype=np.int64), backend
            )


class TestSortedOccurrencesCache:
    """Satellite: sorted_occurrences() is one cached immutable tuple."""

    @pytest.mark.parametrize("store", ["columnar", "dict"])
    def test_cached_until_mutation(self, store):
        graph = VersionedGraph(random_graph_with_avg_degree(24, 5, rng=9), store=store)
        pattern = triangle()
        graph.maintainer.register(pattern)
        first = graph.maintainer.occurrences(pattern)
        assert isinstance(first, tuple)
        assert graph.maintainer.occurrences(pattern) is first  # cache hit
        graph.add_edge("x", "y")  # no triangle touched, but a mutation
        again = graph.maintainer.occurrences(pattern)
        assert _occ_signature(again) == _occ_signature(first)
        assert graph.maintainer.occurrences(pattern) is again


class TestColumnarTable:
    """Unit contracts of the structured-array table itself."""

    def _table(self):
        return ColumnarOccurrenceTable(num_nodes=3, num_edges=3)

    def test_insert_dedup_and_tombstones(self):
        table = self._table()
        row_a = (np.array([1, 2, 3]), np.array([10, 11, 12]))
        row_b = (np.array([1, 2, 4]), np.array([10, 11, 13]))
        assert table.insert(*row_a) and table.insert(*row_b)
        assert not table.insert(*row_a)  # identity = edge-id tuple
        assert len(table) == 2
        assert table.drop_edge(13) == 1
        assert len(table) == 1 and table.num_rows == 2
        assert table.insert(*row_b)  # tombstoned rows may be re-added
        assert table.rows_for_edge(10).tolist() == [0, 2]

    def test_extend_keeps_first_copy_in_input_order(self):
        table = self._table()
        nodes = np.array([[1, 2, 3], [4, 5, 6], [1, 2, 3]])
        edges = np.array([[10, 11, 12], [20, 21, 22], [10, 11, 12]])
        assert table.extend(nodes, edges) == 2
        assert table.edge_columns(table.alive_rows()).tolist() == [
            [10, 11, 12], [20, 21, 22]
        ]
        # a second extend deduplicates against rows already alive
        assert table.extend(nodes[:1], edges[:1]) == 0

    def test_canonical_order_breaks_ties_by_insertion(self):
        table = self._table()
        table.insert(np.array([1, 2, 3]), np.array([5, 7, 9]))
        table.insert(np.array([1, 2, 4]), np.array([0, 2, 4]))
        table.insert(np.array([2, 3, 4]), np.array([1, 3, 6]))
        # edge ids 0/1, 2/3 and 4/6 collide to the same repr rank, so
        # rows 1 and 2 tie on the canonical key and keep insertion order
        ranks = np.array([0, 0, 1, 1, 2, 9, 2, 10, 0, 11], dtype=np.int64)
        assert table.canonical_order(ranks).tolist() == [1, 2, 0]
        assert table.canonical_order(ranks) is table.canonical_order(ranks)
        table.drop_edge(9)
        assert table.canonical_order(ranks).tolist() == [1, 2]

    def test_clear_and_info_counters(self):
        table = self._table()
        table.insert(np.array([1, 2, 3]), np.array([10, 11, 12]))
        info = table.info()
        assert info["rows"] == info["alive"] == 1
        table.clear()
        assert len(table) == 0 and table.info()["alive"] == 0


class TestInternTable:
    def test_round_trip_and_presence(self):
        interner = InternTable()
        node = interner.add_node("a")
        assert interner.node_label(node) == "a"
        assert interner.node_id("a") == node
        edge = interner.add_edge("a", "b")
        assert edge == interner.add_edge("b", "a")  # orientation-free
        assert interner.present_edge_ids().tolist() == [edge]
        interner.drop_edge("a", "b")
        assert interner.present_edge_ids().size == 0
        # ids are stable across presence flips (append-only interning)
        assert interner.add_edge("a", "b") == edge

    def test_counts_match_and_sync(self):
        interner = InternTable()
        graph = Graph(edges=[(1, 2), (2, 3)])
        assert not interner.counts_match(graph)
        interner.sync(graph)
        assert interner.counts_match(graph)


class TestResolveStore:
    def test_argument_wins_then_env_then_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_OCC_STORE", raising=False)
        assert resolve_store(None) == "columnar"
        assert resolve_store("dict") == "dict"
        monkeypatch.setenv("REPRO_OCC_STORE", "dict")
        assert resolve_store(None) == "dict"
        with pytest.raises(GraphError):
            resolve_store("lsm")

    def test_backend_info_names_store(self):
        graph = VersionedGraph(Graph(edges=[(1, 2), (2, 3), (1, 3)]), store="columnar")
        graph.maintainer.register(triangle())
        (row,) = graph.maintainer.info()
        assert row["store"] == "columnar"
        assert row["store_alive"] == 1
        assert {"store_rows", "store_tail_rows", "store_index_rebuilds"} <= set(row)


class TestMaintenanceInfoSurface:
    """Satellite: maintenance counters ride the session/service stats."""

    def test_session_maintenance_info(self):
        graph = VersionedGraph(Graph(edges=[(1, 2), (2, 3), (1, 3)]))
        session = PrivateSession(graph, rng=1)
        session.query(
            triangle(), privacy="edge", epsilon=1.0, rng=np.random.default_rng(4)
        )
        graph.add_edge(3, 4)
        rows = session.maintenance_info()
        assert rows and rows[0]["pattern"] == "triangle"
        assert rows[0]["deltas_applied"] == 1
        assert rows[0]["store"] == "columnar"
        session.close()

    def test_static_session_has_no_maintenance(self):
        session = PrivateSession(Graph(edges=[(1, 2)]), rng=1)
        assert session.maintenance_info() is None
        session.close()
