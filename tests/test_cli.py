"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_count_defaults(self):
        args = build_parser().parse_args(["count"])
        assert args.query == "triangle"
        assert args.privacy == "node"

    def test_fig_choices(self):
        args = build_parser().parse_args(["fig", "fig4a"])
        assert args.name == "fig4a"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig", "fig99"])


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "ca-GrQc" in out
        assert "48260" in out

    def test_count_random_graph(self, capsys):
        code = main(
            [
                "count",
                "--nodes",
                "24",
                "--avgdeg",
                "5",
                "--privacy",
                "edge",
                "--epsilon",
                "2",
                "--seed",
                "3",
                "--show-true",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "edge-DP triangle count" in out
        assert "true count" in out

    def test_count_dataset(self, capsys):
        code = main(
            [
                "count",
                "--dataset",
                "1138_bus",
                "--dataset-scale",
                "0.02",
                "--privacy",
                "edge",
                "--seed",
                "1",
            ]
        )
        assert code == 0
        assert "graph:" in capsys.readouterr().out

    def test_count_edge_list(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n0 2\n2 3\n")
        code = main(["count", "--edge-list", str(path), "--privacy", "edge"])
        assert code == 0
        assert "4 nodes" in capsys.readouterr().out

    def test_audit_passes(self, capsys):
        code = main(
            [
                "audit",
                "--nodes",
                "14",
                "--avgdeg",
                "5",
                "--trials",
                "500",
                "--epsilon",
                "1.0",
                "--seed",
                "0",
            ]
        )
        out = capsys.readouterr().out
        assert "empirical epsilon" in out
        assert code == 0

    def test_fig9_smoke(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "smoke")
        code = main(["fig", "fig9", "--scale", "smoke"])
        assert code == 0
        out = capsys.readouterr().out
        assert "3-DNF" in out and "3-CNF" in out

    def test_invalid_epsilon_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["count", "--epsilon", "-1"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["count", "--epsilon", "nan"])

    def test_invalid_workers_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["count", "--workers", "0"])


class TestBatchCommand:
    SPEC = {
        "graph": {"nodes": 30, "avgdeg": 6, "seed": 1},
        "budget": 1.5,
        "seed": 7,
        "queries": [
            {"query": "triangle", "privacy": "node", "epsilon": 0.5},
            {
                "query": "triangle",
                "privacy": "node",
                "epsilon": 0.5,
                "label": "tri-again",
            },
            {
                "query": "2-star",
                "privacy": "edge",
                "epsilon": 0.5,
                "mechanism": "smooth",
            },
            {
                "query": "2-star",
                "privacy": "edge",
                "epsilon": 0.5,
                "mechanism": "rhms",
                "label": "over-budget",
            },
        ],
    }

    def test_batch_workload(self, tmp_path, capsys):
        import json

        path = tmp_path / "spec.json"
        path.write_text(json.dumps(self.SPEC))
        code = main(["batch", str(path)])
        assert code == 0
        captured = capsys.readouterr()
        out = captured.out
        assert "batch workload" in out
        assert "tri-again" in out
        assert "refused" in out  # the over-budget query was refused
        assert "budget spent: eps=1.5" in out
        # the repeated triangle query hit the compiled-relation cache
        assert "1 hits" in out

    def test_batch_audit_log(self, tmp_path, capsys):
        import json

        spec = {
            "graph": {"nodes": 20, "avgdeg": 4, "seed": 2},
            "seed": 3,
            "queries": [{"query": "triangle", "privacy": "edge", "epsilon": 1.0}],
        }
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec))
        code = main(["batch", str(path), "--audit-log"])
        assert code == 0
        out = capsys.readouterr().out
        assert '"status": "released"' in out

    def test_batch_empty_spec_fails(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        path.write_text("{}")
        assert main(["batch", str(path)]) == 2

    def test_batch_rejects_unknown_and_mistyped_fields(self, tmp_path, capsys):
        import json

        spec = {
            "graph": {"nodes": "twenty", "avgdeg": 4},
            "budgit": 1.0,  # typo'd top-level key
            "queries": [
                {"query": "triangle", "epsilon": "a lot", "privacy": "both"},
                {"query": "triangle", "epsilon": 0.5, "mechansim": "smooth"},
            ],
        }
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec))
        assert main(["batch", str(path)]) == 2
        err = capsys.readouterr().err
        # one clear line per offending field, each naming its path
        assert "budgit: unknown key" in err
        assert "graph.nodes: must be a positive integer" in err
        assert "queries[0].epsilon: must be a positive finite number" in err
        assert 'queries[0].privacy: must be "node" or "edge"' in err
        assert "queries[1].mechansim: unknown key" in err
        assert "Traceback" not in err

    def test_batch_rejects_non_object_spec(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        path.write_text("[1, 2, 3]")
        assert main(["batch", str(path)]) == 2
        assert "must be a JSON object" in capsys.readouterr().err

    def test_batch_per_user_rows(self, tmp_path, capsys):
        import json

        spec = {
            "graph": {"nodes": 20, "avgdeg": 4, "seed": 2},
            "seed": 3,
            "queries": [
                {
                    "query": "triangle",
                    "privacy": "edge",
                    "epsilon": 0.5,
                    "user": "alice",
                },
            ],
        }
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec))
        assert main(["batch", str(path), "--audit-log"]) == 0
        out = capsys.readouterr().out
        assert "alice" in out
        assert '"user": "alice"' in out

    def test_batch_malformed_item_does_not_abort_workload(self, tmp_path, capsys):
        import json

        spec = {
            "graph": {"nodes": 20, "avgdeg": 4, "seed": 2},
            "seed": 3,
            "queries": [
                {"query": "triangel", "epsilon": 0.5},      # typo'd query
                {"privacy": "edge", "epsilon": 0.5},        # missing query
                {"query": "triangle", "privacy": "edge", "epsilon": 0.5},
            ],
        }
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec))
        code = main(["batch", str(path)])
        assert code == 1  # malformed items reported, workload not aborted
        out = capsys.readouterr().out
        assert out.count("invalid") >= 2
        assert "released" in out  # the valid query still ran
