"""Paper-fidelity tests: exact reproduction of the paper's worked examples.

Fig. 2 of the paper shows, for a concrete 6-node social network, the exact
K-relations produced by two queries under node and edge privacy.  These
tests rebuild both tables through the library and compare against the
figure, expression by expression.
"""

import pytest

from repro.algebra import PROVENANCE, KRelation, Tup
from repro.algebra.query import Join, Project, Rename, Select, Table
from repro.boolexpr import parse, truth_equivalent
from repro.core import SensitiveKRelation
from repro.relax import phi_equivalent
from repro.subgraphs import enumerate_triangles, subgraph_krelation, triangle


@pytest.fixture
def fig2_graph(paper_graph):
    """The Fig. 2 network: triangles abc, bcd, cde (edge ef dangling)."""
    return paper_graph


class TestFig2aTriangles:
    """Fig. 2(a): 'how many triangles in a social network'."""

    def test_triangle_set(self, fig2_graph):
        triangles = {
            "".join(sorted(occ.nodes)) for occ in enumerate_triangles(fig2_graph)
        }
        assert triangles == {"abc", "bcd", "cde"}

    def test_node_privacy_annotations(self, fig2_graph):
        relation = subgraph_krelation(fig2_graph, triangle(), privacy="node")
        annotations = {"".join(sorted(occ.nodes)): ann for occ, ann in relation.items()}
        expected = {
            "abc": "v:a & v:b & v:c",
            "bcd": "v:b & v:c & v:d",
            "cde": "v:c & v:d & v:e",
        }
        for key, text in expected.items():
            assert phi_equivalent(annotations[key], parse(text)), key

    def test_edge_privacy_annotations(self, fig2_graph):
        relation = subgraph_krelation(fig2_graph, triangle(), privacy="edge")
        annotations = {"".join(sorted(occ.nodes)): ann for occ, ann in relation.items()}
        # paper: abc -> e_ab ∧ e_ac ∧ e_bc and so on
        expected = {
            "abc": "e:a-b & e:a-c & e:b-c",
            "bcd": "e:b-c & e:b-d & e:c-d",
            "cde": "e:c-d & e:c-e & e:d-e",
        }
        for key, text in expected.items():
            assert phi_equivalent(annotations[key], parse(text)), key


class TestFig2bCommonFriends:
    """Fig. 2(b): 'how many pairs of friends that have a common friend'."""

    #: the paper's node-privacy annotation table (variables = node names)
    PAPER_NODE_TABLE = {
        ("a", "b"): "a & b & c",
        ("a", "c"): "a & c & b",
        ("b", "c"): "b & c & (a | d)",
        ("b", "d"): "b & d & c",
        ("c", "d"): "c & d & (b | e)",
        ("c", "e"): "c & e & d",
        ("d", "e"): "d & e & c",
    }

    def _run_query(self, graph):
        table = KRelation({"src", "dst"}, PROVENANCE)
        for u, v in graph.edges():
            annotation = parse(f"{u} & {v}")
            table.add(Tup(src=u, dst=v), annotation)
            table.add(Tup(src=v, dst=u), annotation)
        e1 = Rename(Table("E"), {"src": "u", "dst": "w"})
        e2 = Rename(Table("E"), {"src": "w", "dst": "v"})
        e3 = Rename(Table("E"), {"src": "u", "dst": "v"})
        query = Project(
            Select(Join(Join(e1, e2), e3), lambda t: t["u"] < t["v"]),
            ("u", "v"),
        )
        return query.evaluate({"E": table})

    def test_support_matches_paper(self, fig2_graph):
        output = self._run_query(fig2_graph)
        pairs = {(t["u"], t["v"]) for t in output.support()}
        assert pairs == set(self.PAPER_NODE_TABLE)

    def test_annotations_truth_equivalent_to_paper(self, fig2_graph):
        """The algebra's raw annotations repeat variables (u appears in e1
        and e3), so they are not φ-identical to the figure's — but they
        must denote the same monotone Boolean functions."""
        output = self._run_query(fig2_graph)
        for (u, v), text in self.PAPER_NODE_TABLE.items():
            annotation = output.annotation(Tup(u=u, v=v))
            assert truth_equivalent(annotation, parse(text)), (u, v)

    def test_normalized_annotations_phi_equivalent_to_paper_dnf(self, fig2_graph):
        """After minimal-DNF normalization the annotations equal the
        paper's expressions up to φ (the paper table is already minimal
        up to distributing the final conjunct)."""
        from repro.boolexpr import minimal_dnf

        output = self._run_query(fig2_graph)
        participants = list("abcdef")
        relation = SensitiveKRelation(participants, output).normalized()
        annotations = {(t["u"], t["v"]): ann for t, ann in relation.items()}
        for (u, v), text in self.PAPER_NODE_TABLE.items():
            assert annotations[(u, v)] == minimal_dnf(parse(text)), (u, v)

    def test_mechanism_answer_on_fig2b(self, fig2_graph):
        from repro.core import private_linear_query

        output = self._run_query(fig2_graph)
        relation = SensitiveKRelation(list("abcdef"), output).normalized()
        result = private_linear_query(relation, epsilon=4.0, node_privacy=True, rng=0)
        assert result.true_answer == 7.0


class TestFig3PhiSensitivities:
    """Fig. 3's three example rows — already covered in the boolexpr tests,
    re-checked here against the exact figure for completeness."""

    def test_all_rows(self):
        from repro.boolexpr import phi_sensitivities

        rows = [
            ("a & b & c", {"a": 1, "b": 1, "c": 1}),
            ("(a | b) & (a | c) & (b | d)", {"a": 2, "b": 2, "c": 1, "d": 1}),
            ("(a & b) | (a & c) | (b & d)", {"a": 1, "b": 1, "c": 1, "d": 1}),
        ]
        for text, expected in rows:
            assert phi_sensitivities(parse(text)) == expected, text


class TestFig6Registry:
    """Fig. 6's first three rows (sizes and counts) — exact values."""

    def test_table_rows(self):
        from repro.graphs import DATASETS

        fig6 = {
            "netscience": (1589, 2742, 3764),
            "power": (4941, 6594, 651),
            "1138_bus": (1138, 2596, 128),
            "bcspwr10": (5300, 13571, 721),
            "gemat12": (4929, 33111, 592),
            "ca-GrQc": (5242, 14496, 48260),
            "ca-HepTh": (9877, 25998, 28339),
        }
        for name, (v, e, tri) in fig6.items():
            spec = DATASETS[name]
            assert (spec.num_nodes, spec.num_edges, spec.paper_triangles) == (
                v, e, tri,
            ), name
