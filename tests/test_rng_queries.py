"""Tests for the rng utilities and the query objects."""

import math

import numpy as np
import pytest

from repro.algebra import Tup
from repro.core.queries import (
    CountQuery,
    SumQuery,
    WeightedQuery,
    decompose_signed,
)
from repro.errors import MechanismError, PrivacyParameterError
from repro.rng import ensure_rng, laplace, laplace_array, split_rng


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        assert ensure_rng(5).random() == ensure_rng(5).random()

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert ensure_rng(generator) is generator

    def test_invalid_type(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")


class TestSplitRng:
    def test_children_independent_and_reproducible(self):
        kids1 = split_rng(3, 4)
        kids2 = split_rng(3, 4)
        assert len(kids1) == 4
        values1 = [k.random() for k in kids1]
        values2 = [k.random() for k in kids2]
        assert values1 == values2
        assert len(set(values1)) == 4


class TestLaplace:
    def test_zero_scale_is_degenerate(self):
        assert laplace(0.0) == 0.0
        assert list(laplace_array(0.0, 5)) == [0.0] * 5

    def test_negative_scale_rejected(self):
        with pytest.raises(PrivacyParameterError):
            laplace(-1.0)
        with pytest.raises(PrivacyParameterError):
            laplace_array(-1.0, 3)

    def test_distribution_moments(self):
        samples = laplace_array(2.0, 40_000, rng=0)
        assert abs(float(np.mean(samples))) < 0.1
        # Var(Lap(b)) = 2 b^2 = 8
        assert float(np.var(samples)) == pytest.approx(8.0, rel=0.1)

    def test_reproducible(self):
        assert laplace(1.0, rng=9) == laplace(1.0, rng=9)


class TestQueries:
    def test_count_query(self):
        q = CountQuery()
        assert q("anything") == 1.0
        assert q.total(["a", "b", "c"]) == 3.0

    def test_sum_query(self):
        q = SumQuery("value")
        assert q(Tup(value=2.5)) == 2.5
        assert q.total([Tup(value=1), Tup(value=4)]) == 5.0

    def test_weighted_query(self):
        q = WeightedQuery(lambda t: len(t), name="len")
        assert q("abc") == 3.0
        assert "len" in repr(q)

    def test_negative_weight_rejected_at_call(self):
        q = WeightedQuery(lambda t: -1.0)
        with pytest.raises(MechanismError):
            q("t")

    def test_decompose_signed(self):
        positive, negative = decompose_signed(lambda t: t)
        assert positive(3.0) == 3.0 and negative(3.0) == 0.0
        assert positive(-2.0) == 0.0 and negative(-2.0) == 2.0
        # recomposition
        for value in (-5.0, 0.0, 7.5):
            assert positive(value) - negative(value) == value

    def test_decomposed_parts_run_through_mechanism(self):
        """Answer a signed query as the difference of two releases."""
        from repro.boolexpr import parse
        from repro.core import (
            EfficientRecursiveMechanism,
            RecursiveMechanismParams,
            SensitiveKRelation,
        )

        values = {"t0": 2.0, "t1": -3.0, "t2": 5.0}
        relation = SensitiveKRelation(
            ["a", "b"],
            [("t0", parse("a & b")), ("t1", parse("a | b")), ("t2", parse("b"))],
        )
        positive, negative = decompose_signed(lambda t: values[t])
        params = RecursiveMechanismParams.paper(2.0)
        pos_mech = EfficientRecursiveMechanism(relation, query=positive)
        neg_mech = EfficientRecursiveMechanism(relation, query=negative)
        assert pos_mech.true_answer() == 7.0
        assert neg_mech.true_answer() == 3.0
        answer = (
            pos_mech.run(params, rng=0).answer - neg_mech.run(params, rng=1).answer
        )
        assert math.isfinite(answer)
