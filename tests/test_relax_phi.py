"""Tests for numeric φ evaluation and φ-equivalence (Def. 19)."""

import math

import pytest

from repro.boolexpr import FALSE, TRUE, And, Or, Var, parse
from repro.errors import ExpressionError
from repro.relax import phi, phi_equivalent, phi_on_vector, phi_star


class TestPhiEvaluation:
    def test_constants(self):
        assert phi(TRUE, {}) == 1.0
        assert phi(FALSE, {}) == 0.0

    def test_variable(self):
        assert phi(Var("a"), {"a": 0.3}) == 0.3

    def test_missing_variable_is_zero(self):
        assert phi(Var("a"), {}) == 0.0

    def test_and_is_lukasiewicz(self):
        expr = parse("a & b")
        assert phi(expr, {"a": 0.7, "b": 0.6}) == pytest.approx(0.3)
        assert phi(expr, {"a": 0.4, "b": 0.5}) == 0.0

    def test_or_is_max(self):
        expr = parse("a | b")
        assert phi(expr, {"a": 0.7, "b": 0.6}) == pytest.approx(0.7)

    def test_nary_and_matches_binary_nesting(self):
        """Associativity: max(0, Σ - (m-1)) equals nested binary form."""
        flat = And((Var("a"), Var("b"), Var("c")))
        def nested_value(f):
            return max(0.0, max(0.0, f["a"] + f["b"] - 1) + f["c"] - 1)
        for f in ({"a": 0.9, "b": 0.8, "c": 0.7}, {"a": 0.5, "b": 0.5, "c": 0.5}):
            assert phi(flat, f) == pytest.approx(nested_value(f))

    def test_out_of_range_rejected(self):
        with pytest.raises(ExpressionError):
            phi(Var("a"), {"a": 1.5})
        with pytest.raises(ExpressionError):
            phi(Var("a"), {"a": -0.1})

    def test_phi_on_vector(self):
        expr = parse("a & b")
        assert phi_on_vector(expr, ["a", "b"], [0.9, 0.9]) == pytest.approx(0.8)

    def test_sec24_rewriting_counterexample(self):
        """(b1∨b2)∧(b1∨b3) cannot be rewritten to b1∨(b2∧b3): φ differs."""
        left = parse("(b1 | b2) & (b1 | b3)")
        right = parse("b1 | (b2 & b3)")
        f = {"b1": 0.5, "b2": 0.5, "b3": 0.5}
        assert phi(left, f) == 0.0
        assert phi(right, f) == 0.5


class TestPhiStar:
    def test_at_zero(self):
        expr = parse("a & b")
        assert phi_star(expr, {"a": 0.0, "b": 0.0}) == pytest.approx(0.0)

    def test_at_one(self):
        expr = parse("a & b")
        assert phi_star(expr, {"a": 1.0, "b": 1.0}) == pytest.approx(1.0)

    def test_values_above_one_truncated_by_psi(self):
        """ψ clips inputs at 1, and φ* respects truncated linearity."""
        expr = parse("a & b")
        base = {"a": 0.25, "b": 0.0}
        assert phi_star(expr, base) == pytest.approx(0.25)
        scaled = {"a": 2.5, "b": 0.0}  # 10 × base
        assert phi_star(expr, scaled) == pytest.approx(
            min(1.0, 10 * phi_star(expr, base))
        )


class TestPhiEquivalence:
    def test_identical(self):
        expr = parse("(a & b) | c")
        assert phi_equivalent(expr, expr)

    def test_invariant_transformations_hold(self):
        """The four Sec. 5.2 invariants produce φ-equivalent expressions."""
        a, b, c = Var("a"), Var("b"), Var("c")
        pairs = [
            (And((a, TRUE)), a),  # identity
            (Or((a, FALSE)), a),
            (And((a, FALSE)), FALSE),  # annihilator
            (Or((a, TRUE)), TRUE),
            (And((And((a, b)), c)), And((a, And((b, c))))),  # associativity
            (Or((Or((a, b)), c)), Or((a, Or((b, c))))),
            # distributivity of ∧ over ∨
            (parse("a & (b | c)"), parse("(a & b) | (a & c)")),
        ]
        for left, right in pairs:
            assert phi_equivalent(left, right)

    def test_truth_equal_but_phi_different(self):
        assert not phi_equivalent(
            parse("(b1 | b2) & (b1 | b3)"), parse("b1 | (b2 & b3)")
        )

    def test_idempotence_not_phi_equivalent(self):
        assert not phi_equivalent(parse("a & a"), Var("a"))

    def test_or_idempotence_is_phi_equivalent(self):
        """max(x, x) = x, so a∨a ~ a (unlike ∧)."""
        assert phi_equivalent(parse("a | a"), Var("a"))

    def test_constants(self):
        assert phi_equivalent(TRUE, TRUE)
        assert not phi_equivalent(TRUE, FALSE)

    def test_commutativity_is_phi_equivalent(self):
        assert phi_equivalent(parse("a & b"), parse("b & a"))
        assert phi_equivalent(parse("a | b"), parse("b | a"))
