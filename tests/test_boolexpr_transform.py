"""Tests for restriction, DNF expansion, and the canonical minimal DNF."""

import pytest

from repro.boolexpr import (
    FALSE,
    TRUE,
    And,
    Or,
    Var,
    expand_dnf,
    is_conjunction_of_vars,
    is_dnf,
    minimal_dnf,
    parse,
    restrict,
    restrict_false,
    truth_equivalent,
)
from repro.boolexpr.transform import clauses_to_expr, dnf_clauses
from repro.relax import phi, phi_equivalent


class TestRestrict:
    def test_restrict_to_false_prunes(self):
        expr = parse("(a & b) | c")
        assert restrict(expr, {"a": False}) == Var("c")

    def test_restrict_to_true_simplifies(self):
        expr = parse("(a & b) | c")
        assert restrict(expr, {"a": True}) == Or((Var("b"), Var("c")))

    def test_restrict_all_false_gives_false(self):
        expr = parse("a & b & c")
        assert restrict_false(expr, "a") == FALSE

    def test_restrict_false_multiple(self):
        expr = parse("(a & b) | (c & d)")
        assert restrict_false(expr, "a", "c") == FALSE

    def test_restrict_is_paper_substitution(self):
        """restrict(k, {p: False}) equals k|p→False up to φ."""
        expr = parse("(a | b) & (a | c)")
        reduced = restrict(expr, {"a": False})
        assert phi_equivalent(reduced, parse("b & c"))

    def test_restrict_missing_var_noop(self):
        expr = parse("a & b")
        assert restrict(expr, {"z": False}) == expr


class TestExpandDnf:
    def test_already_dnf_unchanged_semantics(self):
        expr = parse("(a & b) | c")
        assert phi_equivalent(expand_dnf(expr), expr)

    def test_cnf_expansion(self):
        expr = parse("(a | b) & (c | d)")
        expanded = expand_dnf(expr)
        assert is_dnf(expanded)
        assert truth_equivalent(expanded, expr)

    def test_expansion_preserves_phi_exactly(self):
        """Distributivity is a φ-invariant transformation (Sec. 5.2)."""
        cases = [
            "(a | b) & (a | c)",
            "(a | b) & (c | d) & (e | f)",
            "a & ((b | c) & (d | e))",
            "(a & b) | ((c | d) & e)",
        ]
        for text in cases:
            expr = parse(text)
            expanded = expand_dnf(expr)
            assert is_dnf(expanded)
            assert phi_equivalent(expr, expanded), text

    def test_duplicate_literals_preserved(self):
        """(a|b)&(a|c) expands with an a∧a clause; dedup would change φ."""
        expr = parse("(a | b) & (a | c)")
        expanded = expand_dnf(expr)
        f = {"a": 0.5, "b": 0.0, "c": 0.0}
        # φ of the a∧a clause at a=0.5 is 0, so the whole DNF stays 0
        assert phi(expanded, f) == phi(expr, f) == 0.0

    def test_constants(self):
        assert expand_dnf(TRUE) == TRUE
        assert expand_dnf(FALSE) == FALSE


class TestMinimalDnf:
    def test_paper_equivalence_example(self):
        """(b1∨b2)∧(b1∨b3) and b1∨(b2∧b3) share the minimal DNF."""
        left = minimal_dnf(parse("(b1 | b2) & (b1 | b3)"))
        right = minimal_dnf(parse("b1 | (b2 & b3)"))
        assert left == right

    def test_absorption_removed(self):
        expr = parse("a | (a & b)")
        assert minimal_dnf(expr) == Var("a")

    def test_duplicates_removed(self):
        expr = And((Var("a"), Var("a")))
        assert minimal_dnf(expr) == Var("a")

    def test_canonical_across_orderings(self):
        e1 = minimal_dnf(parse("(a & b) | (c & d)"))
        e2 = minimal_dnf(parse("(d & c) | (b & a)"))
        assert e1 == e2

    def test_truth_preserved(self):
        for text in ["(a | b) & (c | d)", "a & (b | c)", "(a & b) | (b & c) | (c & a)"]:
            expr = parse(text)
            assert truth_equivalent(expr, minimal_dnf(expr))

    def test_constants(self):
        assert minimal_dnf(TRUE) == TRUE
        assert minimal_dnf(FALSE) == FALSE
        assert minimal_dnf(parse("a | True")) == TRUE

    def test_result_is_dnf_with_sensitivity_one(self):
        from repro.boolexpr import phi_sensitivities

        expr = minimal_dnf(parse("(a | b) & (a | c) & (b | d)"))
        assert is_dnf(expr)
        sens = phi_sensitivities(expr)
        assert all(value <= 1 for value in sens.values())


class TestDnfHelpers:
    def test_dnf_clauses(self):
        clauses = dnf_clauses(parse("(a & b) | c"))
        assert frozenset({"a", "b"}) in clauses
        assert frozenset({"c"}) in clauses

    def test_clauses_to_expr_roundtrip(self):
        expr = clauses_to_expr([("a", "b"), ("c",)])
        assert truth_equivalent(expr, parse("(a & b) | c"))

    def test_is_conjunction_of_vars(self):
        assert is_conjunction_of_vars(parse("a & b & c"))
        assert is_conjunction_of_vars(Var("a"))
        assert not is_conjunction_of_vars(parse("a | b"))
        assert not is_conjunction_of_vars(parse("a & (b | c)"))

    def test_is_dnf(self):
        assert is_dnf(parse("(a & b) | (c & d)"))
        assert is_dnf(parse("a | b"))
        assert is_dnf(TRUE)
        assert not is_dnf(parse("(a | b) & c"))
