"""Tests for the general (Sec. 4.2) and efficient (Sec. 5) implementations.

The central cross-check: on small instances, the efficient LP-based H must
*equal* the general subset-enumeration H (both compute the same minimum for
conjunctive DNF annotations), and the efficient G must be a valid bounding
sequence sandwiched by Theorem 4.
"""

import math

import numpy as np
import pytest

from repro.boolexpr import Var, parse
from repro.core import (
    EfficientRecursiveMechanism,
    GeneralRecursiveMechanism,
    RecursiveMechanismParams,
    SensitiveKRelation,
    private_linear_query,
)
from repro.errors import SensitiveModelError
from repro.graphs import Graph
from repro.subgraphs import subgraph_krelation, triangle


def count_query(world) -> float:
    return float(len(world))


@pytest.fixture
def small_relation():
    return SensitiveKRelation(
        ["a", "b", "c", "d"],
        [
            ("t1", parse("a & b")),
            ("t2", parse("b & c")),
            ("t3", parse("(a & d) | (c & d)")),
        ],
    )


class TestGeneralMechanism:
    def test_h_is_recursive_sequence(self, small_relation):
        gen = GeneralRecursiveMechanism(
            small_relation.as_sensitive_database(), count_query
        )
        h = gen.h_sequence()
        assert h[0] == 0.0
        # within one database, H must be nondecreasing and convex (Lemma 10)
        assert all(a <= b + 1e-12 for a, b in zip(h, h[1:]))

    def test_recursive_monotonicity_across_neighbors(self, small_relation):
        gen_full = GeneralRecursiveMechanism(
            small_relation.as_sensitive_database(), count_query
        )
        reduced = small_relation.withdraw("a")
        gen_small = GeneralRecursiveMechanism(
            reduced.as_sensitive_database(), count_query
        )
        h_full, h_small = gen_full.h_sequence(), gen_small.h_sequence()
        g_full, g_small = gen_full.g_sequence(), gen_small.g_sequence()
        for i in range(len(h_small)):
            assert h_full[i] <= h_small[i] + 1e-12
            assert h_small[i] <= h_full[i + 1] + 1e-12
            assert g_full[i] <= g_small[i] + 1e-12
            assert g_small[i] <= g_full[i + 1] + 1e-12

    def test_bounding_sequence_property(self, small_relation):
        """Def. 18 with g = 1: H_j <= H_i + (|P|-i) G_j."""
        gen = GeneralRecursiveMechanism(
            small_relation.as_sensitive_database(), count_query
        )
        h, g = gen.h_sequence(), gen.g_sequence()
        n = len(h) - 1
        for i in range(n + 1):
            for j in range(i, n + 1):
                assert h[j] <= h[i] + (n - i) * g[j] + 1e-9

    def test_g_final_is_global_empirical_sensitivity(self, small_relation):
        from repro.core import global_empirical_sensitivity

        gen = GeneralRecursiveMechanism(
            small_relation.as_sensitive_database(), count_query
        )
        assert gen.global_empirical_sensitivity() == pytest.approx(
            global_empirical_sensitivity(
                count_query, small_relation.as_sensitive_database()
            )
        )

    def test_rejects_nonmonotonic_query(self):
        rel = SensitiveKRelation(["a", "b"], [("t", parse("a & b"))])

        def bad_query(world):
            return 1.0 if len(world) == 0 else 0.0  # q(M(∅)) != 0

        with pytest.raises(SensitiveModelError):
            GeneralRecursiveMechanism(rel.as_sensitive_database(), bad_query)

    def test_rejects_too_many_participants(self):
        rel = SensitiveKRelation([f"p{i}" for i in range(20)], [("t", Var("p0"))])
        with pytest.raises(SensitiveModelError):
            GeneralRecursiveMechanism(rel.as_sensitive_database(), count_query)

    def test_run_end_to_end(self, small_relation):
        gen = GeneralRecursiveMechanism(
            small_relation.as_sensitive_database(), count_query
        )
        params = RecursiveMechanismParams.paper(1.0)
        result = gen.run(params, rng=0)
        assert result.true_answer == 3.0
        assert math.isfinite(result.answer)


class TestEfficientVsGeneral:
    def test_h_matches_on_triangle_graph(self):
        g = Graph(edges=[(0, 1), (1, 2), (0, 2), (2, 3), (1, 3), (3, 4), (2, 4)])
        rel = subgraph_krelation(g, triangle(), privacy="node")
        eff = EfficientRecursiveMechanism(rel)
        gen = GeneralRecursiveMechanism(rel.as_sensitive_database(), count_query)
        n = eff.num_participants
        for i in range(n + 1):
            assert eff.h_entry(i) == pytest.approx(gen.h_entry(i), abs=1e-6)

    def test_h_matches_on_mixed_annotations(self, small_relation):
        """H_i(LP) <= H_i(general): the relaxation can only go lower, and
        for these instances equality holds at the integer points."""
        eff = EfficientRecursiveMechanism(small_relation)
        gen = GeneralRecursiveMechanism(
            small_relation.as_sensitive_database(), count_query
        )
        n = eff.num_participants
        for i in range(n + 1):
            assert eff.h_entry(i) <= gen.h_entry(i) + 1e-6

    def test_efficient_g_is_2bounding(self, small_relation):
        """Theorem 4: H_j <= H_i + (|P|-i)·G_k, k = |P| - floor((|P|-j)/2)."""
        eff = EfficientRecursiveMechanism(small_relation)
        n = eff.num_participants
        h = [eff.h_entry(i) for i in range(n + 1)]
        g = [eff.g_entry(i) for i in range(n + 1)]
        for i in range(n + 1):
            for j in range(i, n + 1):
                k = n - (n - j) // 2
                assert h[j] <= h[i] + (n - i) * g[k] + 1e-7

    def test_true_answer_is_h_n(self, small_relation):
        eff = EfficientRecursiveMechanism(small_relation)
        assert eff.true_answer() == pytest.approx(
            eff.h_entry(eff.num_participants), abs=1e-6
        )

    def test_x_candidates_match_full_scan(self, small_relation):
        eff = EfficientRecursiveMechanism(small_relation)
        n = eff.num_participants
        for delta_hat in (0.01, 0.2, 0.7, 2.0, 10.0):
            x_fast, _ = eff._compute_x(delta_hat)
            x_scan = min(eff.h_entry(i) + (n - i) * delta_hat for i in range(n + 1))
            assert x_fast == pytest.approx(x_scan, abs=1e-6)


class TestEfficientMechanism:
    def test_normalize_option(self):
        rel = SensitiveKRelation(["a", "b", "c"], [("t", parse("(a | b) & (a | c)"))])
        eff = EfficientRecursiveMechanism(rel, normalize=True)
        assert eff.true_answer() == pytest.approx(1.0)

    def test_weighted_query(self):
        from repro.core.queries import WeightedQuery

        rel = SensitiveKRelation(["a", "b"], [("t1", parse("a & b")), ("t2", Var("a"))])
        eff = EfficientRecursiveMechanism(rel, query=WeightedQuery(lambda t: 3.0))
        assert eff.true_answer() == pytest.approx(6.0)

    def test_lp_size_reported(self, small_relation):
        eff = EfficientRecursiveMechanism(small_relation)
        assert eff.lp_size >= small_relation.num_participants

    def test_private_linear_query_wrapper(self, small_relation):
        result = private_linear_query(small_relation, epsilon=1.0, rng=0)
        assert result.true_answer == pytest.approx(3.0)
        assert math.isfinite(result.answer)

    def test_answers_concentrate_around_truth(self):
        """With a generous ε the answer distribution centers on the truth."""
        g = Graph(edges=[(i, j) for i in range(8) for j in range(i + 1, 8)])
        rel = subgraph_krelation(g, triangle(), privacy="edge")
        eff = EfficientRecursiveMechanism(rel)
        params = RecursiveMechanismParams.paper(4.0)
        rng = np.random.default_rng(11)
        answers = [eff.run(params, rng).answer for _ in range(40)]
        truth = eff.true_answer()
        median = sorted(answers)[len(answers) // 2]
        assert abs(median - truth) / truth < 0.5

    def test_empty_relation_run(self):
        rel = SensitiveKRelation(["a", "b"], [])
        result = private_linear_query(rel, epsilon=1.0, rng=0)
        assert result.true_answer == 0.0
