"""A budgeted analytics workload with auditing.

A realistic deployment releases several statistics of the same sensitive
graph under one global privacy budget, and wants an empirical check that
the implementation honors its guarantee.  This example:

1. runs three subgraph statistics through a :class:`PrivacyAccountant`
   (sequential composition) until the ε budget is exhausted;
2. shows the budget gate rejecting an over-budget query;
3. audits the mechanism empirically across a worst-case single-node
   withdrawal.

Run:  python examples/budgeted_workload.py
"""

from repro import k_star, random_graph_with_avg_degree, triangle
from repro.core import EfficientRecursiveMechanism, RecursiveMechanismParams
from repro.core.accountant import BudgetExceededError, PrivacyAccountant
from repro.core.params import group_privacy_epsilon
from repro.experiments.privacy_audit import audit_krelation_withdrawal
from repro.subgraphs import k_triangle, subgraph_krelation


def main():
    graph = random_graph_with_avg_degree(50, 7, rng=31)
    accountant = PrivacyAccountant(total_epsilon=1.5)
    print(
        f"graph: {graph.num_nodes} nodes; total budget eps = "
        f"{accountant.total_epsilon}\n"
    )

    workload = [
        ("triangles", triangle(), 0.6),
        ("2-stars", k_star(2), 0.6),
        ("2-triangles", k_triangle(2), 0.6),  # this one exceeds the budget
    ]
    for label, pattern, epsilon in workload:
        relation = subgraph_krelation(graph, pattern, privacy="node")
        mechanism = EfficientRecursiveMechanism(relation)
        params = RecursiveMechanismParams.paper(epsilon, node_privacy=True)
        try:
            result = accountant.run(mechanism, params, rng=7, label=label)
        except BudgetExceededError as error:
            print(f"{label:12s} REFUSED: {error}")
            continue
        print(
            f"{label:12s} released {result.answer:9.1f}  "
            f"(true {result.true_answer:6.0f}, spent eps={epsilon})"
        )

    print(f"\nledger: {accountant.ledger}")
    print(f"remaining budget: eps = {accountant.remaining:.2f}")

    # group privacy: a user controlling 3 sockpuppet accounts
    params = RecursiveMechanismParams.paper(0.6, node_privacy=True)
    print(
        f"\nguarantee for 3-node colluding groups: "
        f"eps = {group_privacy_epsilon(params, 3):.2f}"
    )

    # empirical audit of the released guarantee
    small = random_graph_with_avg_degree(18, 5, rng=2)
    relation = subgraph_krelation(small, triangle(), privacy="node")
    report = audit_krelation_withdrawal(
        relation,
        RecursiveMechanismParams.paper(1.0, node_privacy=True),
        trials=800,
        rng=0,
    )
    print(
        f"\nempirical audit: claimed eps={report.claimed_epsilon:.2f}, "
        f"measured {report.empirical_epsilon:.2f} -> "
        f"{'PASS' if report.passed else 'FAIL'}"
    )


if __name__ == "__main__":
    main()
