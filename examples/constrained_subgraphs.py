"""Constrained subgraph counting (Sec. 1.1's "arbitrary constraints").

When nodes/edges carry attributes, the paper's mechanism supports
constraints on any part of the query subgraph — each constrained match is
still one tuple in the K-relation, so privacy and utility guarantees are
unchanged.  Here: count triangles of mutual followers in which *all three
accounts are verified*, and cross-group 2-stars whose center is an admin.

Run:  python examples/constrained_subgraphs.py
"""

import numpy as np

from repro import (
    Pattern,
    random_graph_with_avg_degree,
)
from repro.core import private_linear_query
from repro.subgraphs import enumerate_subgraphs, subgraph_krelation


def main():
    rng = np.random.default_rng(5)
    graph = random_graph_with_avg_degree(90, 8, rng=rng)

    # attach attributes: ~60% verified accounts, ~10% admins
    verified = {node: bool(rng.random() < 0.6) for node in graph.nodes()}
    admin = {node: bool(rng.random() < 0.1) for node in graph.nodes()}
    node_data = {
        node: {"verified": verified[node], "admin": admin[node]}
        for node in graph.nodes()
    }

    # Pattern 1: all-verified triangles
    verified_triangle = Pattern(
        [(0, 1), (1, 2), (0, 2)],
        name="verified-triangle",
        node_constraints={
            i: (lambda data: bool(data and data["verified"])) for i in range(3)
        },
    )
    matches = list(enumerate_subgraphs(graph, verified_triangle, node_data=node_data))
    print(f"verified triangles (true): {len(matches)}")
    relation = subgraph_krelation(
        graph, verified_triangle, privacy="node", occurrences=matches
    )
    result = private_linear_query(relation, epsilon=1.0, node_privacy=True, rng=1)
    print(
        f"node-DP released count:    {result.answer:.1f} "
        f"(error {result.relative_error:.2%})\n"
    )

    # Pattern 2: 2-stars centered at an admin (pattern node 0 is the center)
    admin_star = Pattern(
        [(0, 1), (0, 2)],
        name="admin-2-star",
        node_constraints={0: lambda data: bool(data and data["admin"])},
    )
    matches = list(enumerate_subgraphs(graph, admin_star, node_data=node_data))
    print(f"admin-centered 2-stars (true): {len(matches)}")
    relation = subgraph_krelation(
        graph, admin_star, privacy="edge", occurrences=matches
    )
    result = private_linear_query(relation, epsilon=1.0, rng=2)
    print(
        f"edge-DP released count:        {result.answer:.1f} "
        f"(error {result.relative_error:.2%})"
    )
    print(
        "\nNo prior work supports such constraints: the local-sensitivity\n"
        "baselines are hard-wired to unconstrained k-stars/k-triangles."
    )


if __name__ == "__main__":
    main()
