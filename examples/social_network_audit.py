"""Scenario: a privacy-preserving network-statistics release.

A platform wants to publish three statistics of its friendship graph —
triangle count, 2-star count (pairs of friendships sharing a person), and
2-triangle count — and must decide which mechanism to use.  This example
runs the paper's full comparison (Fig. 1 / Fig. 4 in miniature): the
recursive mechanism under node and edge privacy against the
local-sensitivity baselines and RHMS.

Run:  python examples/social_network_audit.py
"""

import numpy as np

from repro import random_graph_with_avg_degree
from repro.experiments import format_table, make_runner, run_mechanism_trials
from repro.experiments.mechanisms import MECHANISM_NAMES, true_count


def main():
    graph = random_graph_with_avg_degree(80, 10, rng=99)
    epsilon, trials = 0.5, 15
    print(
        f"auditing a network with {graph.num_nodes} users / "
        f"{graph.num_edges} friendships at eps={epsilon}\n"
    )

    rows = []
    for query in ("triangle", "2-star", "2-triangle"):
        row = {"query": query, "true_count": true_count(graph, query)}
        for mechanism in MECHANISM_NAMES:
            run_once, truth = make_runner(mechanism, graph, query, epsilon)
            row[mechanism] = run_mechanism_trials(
                run_once, truth, trials, rng=np.random.default_rng(0)
            )
        rows.append(row)

    print(
        format_table(
            rows,
            ["query", "true_count", *MECHANISM_NAMES],
            title="median relative error per mechanism "
            "(recursive-node is the only node-DP column)",
        )
    )
    print(
        "\nReading the table: only the recursive mechanism offers *node*"
        "\nprivacy at all; under edge privacy it is competitive with or"
        "\nbetter than the specialized baselines, while RHMS is unusable"
        "\nfor multi-edge patterns (its noise grows exponentially in the"
        "\npattern's edge count)."
    )


if __name__ == "__main__":
    main()
