"""Serving private queries to many tenants over the network.

The deployable shape of the serving stack (:mod:`repro.service`):

1. one :class:`repro.service.PrivateQueryService` fronts a
   :class:`repro.PrivateSession` behind a newline-delimited JSON wire
   protocol (stdlib asyncio TCP — here on an ephemeral localhost port);
2. a :class:`repro.session.HierarchicalAccountant` partitions the global
   ε cap into per-user sub-budgets — a tenant that exhausts their quota
   is refused *by name* while others keep querying;
3. the process-wide shared compiled-relation cache means every tenant
   asking the same pattern reuses one compiled LP (watch the hit
   counters climb across *different* users);
4. answers are deterministic: the service derives each tenant's request
   seeds from its own seed root, so a seeded server is end-to-end
   reproducible — and the streamed audit log replays every release
   bit-for-bit.

Run:  python examples/serving_network.py
"""

from repro import PrivateSession, random_graph_with_avg_degree
from repro.service import BackgroundService, ServiceClient
from repro.session import (
    BudgetExhausted,
    HierarchicalAccountant,
    SharedCompiledCache,
)


def main():
    graph = random_graph_with_avg_degree(60, 7, rng=31)

    # 1-2: a multi-tenant session: global cap 3.0, each tenant gets 1.0
    accountant = HierarchicalAccountant(3.0, default_user_budget=1.0)
    cache = SharedCompiledCache(maxsize=32)
    session = PrivateSession(
        graph, rng=7, accountant=accountant, cache=cache, name="network-demo"
    )

    with BackgroundService(session, seed=2026) as bg:
        host, port = bg.address
        print(
            f"serving {graph.num_nodes}-node graph on {host}:{port} "
            f"(global eps=3.0, per-user eps=1.0)\n"
        )

        # two tenants, two independent connections
        alice = ServiceClient(bg.address, user="alice")
        bob = ServiceClient(bg.address, user="bob")

        workload = [
            (alice, "triangle", "node", 0.5),
            (bob, "triangle", "node", 0.5),   # same pattern: cache hit
            (alice, "2-star", "edge", 0.5),
            (bob, "triangle", "edge", 0.5),
            (alice, "triangle", "edge", 0.25),  # alice is over quota now
        ]
        for client, query, privacy, epsilon in workload:
            user = "alice" if client is alice else "bob"
            try:
                result = client.query(query, epsilon=epsilon, privacy=privacy)
            except BudgetExhausted as error:
                print(
                    f"{user:6s} {query:9s} REFUSED "
                    f"(tenant={error.user}): budget exhausted"
                )
                continue
            print(
                f"{user:6s} {query:9s} released {result['answer']:10.1f} "
                f"(eps={epsilon}, cache_hit={result['cache_hit']})"
            )

        # 3: cross-tenant compiled-relation reuse
        info = cache.info()
        print(
            f"\nshared compiled-relation cache: {info.hits} hits, "
            f"{info.misses} misses, {info.size} entries"
        )

        # per-tenant accounting over the wire
        budget = alice.budget()
        print(f"global: spent eps={budget['spent']:g} of {budget['budget']:g}")
        for user, row in sorted(budget.get("users", {}).items()):
            print(
                f"  {user}: spent={row['spent']:g}, " f"remaining={row['remaining']:g}"
            )

        # 4: the streamed audit log replays every release bit-for-bit
        audit = alice.audit(replay=True)
        print(
            f"\naudit replay over the wire: {audit['matched']}/"
            f"{audit['count']} entries reproduced bit-for-bit -> "
            f"{'PASS' if audit['matched'] == audit['count'] else 'FAIL'}"
        )

        alice.close()
        bob.close()
    session.close()


if __name__ == "__main__":
    main()
