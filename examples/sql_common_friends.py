"""Fig. 2(b) end-to-end: a relational query with unrestricted joins.

"How many pairs of friends have a common friend?" — as SQL:

    SELECT COUNT(DISTINCT e1.u, e2.v)
    FROM   E e1 JOIN E e2 ON e1.w = e2.w JOIN E e3
    WHERE  e1.u = e3.u AND e2.v = e3.v AND e1.u <> e2.v

One person participates in unboundedly many output rows, so the query's
global sensitivity is infinite and no Laplace-style mechanism applies.
This example builds the provenance-annotated output table through the
positive relational algebra layer (annotations propagate automatically and
safely), converts it into a sensitive K-relation under node privacy, and
releases the count with the recursive mechanism.

Run:  python examples/sql_common_friends.py
"""

from repro import (
    PROVENANCE,
    Join,
    KRelation,
    Project,
    Rename,
    Select,
    SensitiveKRelation,
    Table,
    Tup,
    Var,
    evaluate_query,
    private_linear_query,
    random_graph_with_avg_degree,
)


def edge_table_node_privacy(graph) -> KRelation:
    """The symmetric friendship table, annotated per Fig. 2(b) (node DP).

    A row (u, v) exists iff both endpoints participate: annotation u ∧ v.
    """
    table = KRelation({"src", "dst"}, PROVENANCE)
    for u, v in graph.edges():
        annotation = Var(f"v:{u}") & Var(f"v:{v}")
        table.add(Tup(src=u, dst=v), annotation)
        table.add(Tup(src=v, dst=u), annotation)
    return table


def main():
    graph = random_graph_with_avg_degree(60, 6, rng=21)
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges")

    # Positive relational algebra: e1(u,w) ⋈ e2(w,v) ⋈ e3(u,v), u < v.
    e1 = Rename(Table("E"), {"src": "u", "dst": "w"})
    e2 = Rename(Table("E"), {"src": "w", "dst": "v"})
    e3 = Rename(Table("E"), {"src": "u", "dst": "v"})
    query = Project(
        Select(Join(Join(e1, e2), e3), lambda t: repr(t["u"]) < repr(t["v"])),
        ("u", "v"),
    )
    output = evaluate_query(query, {"E": edge_table_node_privacy(graph)})
    print(f"output table: {len(output)} friend pairs with a common friend")

    sample_tup, sample_annotation = next(iter(output.items()))
    print(f"example provenance: {dict(sample_tup)} <- {sample_annotation}")

    # The projection builds the (u∧v∧w1) ∨ (u∧v∧w2) ∨ ... disjunctions of
    # Fig. 2(b) automatically — a safe annotation by construction.  The raw
    # join provenance repeats variables (u appears in e1 and e3), which
    # inflates the φ-sensitivity; normalizing to canonical minimal DNF
    # (the paper's recommended discipline, S <= 1) tightens the error.
    participants = [f"v:{node}" for node in graph.nodes()]
    relation = SensitiveKRelation(participants, output).normalized()

    result = private_linear_query(relation, epsilon=1.0, node_privacy=True, rng=3)
    print(f"\ntrue answer:            {result.true_answer:.0f}")
    print(f"node-DP released count: {result.answer:.1f}")
    print(f"relative error:         {result.relative_error:.2%}")
    print(
        "\nNote: the same pipeline answers ANY positive relational algebra "
        "query —\nthe mechanism never sees the graph, only the annotated "
        "output table.\nOne-call form: SensitiveKRelation.from_query(query, "
        "{'E': table}, participants)."
    )


if __name__ == "__main__":
    main()
