"""General K-relation workloads (Sec. 6.2): beyond graphs.

The mechanism answers *any* nonnegative linear query on a sensitive
K-relation.  This example mirrors the paper's Fig. 8/9 workloads — random
3-DNF K-relations ("a union of many join results") and 3-CNF K-relations
("a join of many unions") — and shows two things the paper highlights:

* the error tracks the universal empirical sensitivity ~US/ε, and
* weighted linear queries (q(t) != 1) work identically.

Run:  python examples/krelation_workloads.py
"""

import numpy as np

from repro.core import (
    EfficientRecursiveMechanism,
    RecursiveMechanismParams,
    WeightedQuery,
    universal_empirical_sensitivity,
)
from repro.core.queries import CountQuery
from repro.experiments import format_table, median_relative_error
from repro.krand import random_cnf_krelation, random_dnf_krelation


def main():
    epsilon, trials = 0.5, 15
    params = RecursiveMechanismParams.paper(epsilon)
    rows = []
    for kind, generate in (
        ("3-DNF", random_dnf_krelation),
        ("3-CNF", random_cnf_krelation),
    ):
        for clauses in (1, 3, 6):
            relation = generate(150, clauses, rng=17)
            # bounding="paper" matches the paper's Fig. 8 mechanism; the
            # default "auto" would pick the sound-but-looser alternative for
            # these disjunctive annotations (see DESIGN.md §6).
            mechanism = EfficientRecursiveMechanism(relation, bounding="paper")
            rng = np.random.default_rng(0)
            answers = [mechanism.run(params, rng).answer for _ in range(trials)]
            us = universal_empirical_sensitivity(CountQuery(), relation)
            rows.append(
                {
                    "kind": kind,
                    "clauses": clauses,
                    "true": mechanism.true_answer(),
                    "median_rel_error": median_relative_error(
                        answers, mechanism.true_answer()
                    ),
                    "US/(eps*q)": us / (epsilon * mechanism.true_answer()),
                }
            )
    print(
        format_table(
            rows,
            ["kind", "clauses", "true", "median_rel_error", "US/(eps*q)"],
            title="counting query on random K-relations (error tracks ~US/eps)",
        )
    )

    # A weighted query: each tuple carries a monetary value to aggregate.
    relation = random_dnf_krelation(120, 3, rng=23)
    values = {tup: float(i % 7 + 1) for i, (tup, _) in enumerate(relation.items())}
    query = WeightedQuery(lambda t: values[t], name="revenue")
    mechanism = EfficientRecursiveMechanism(relation, query=query, bounding="paper")
    result = mechanism.run(params, rng=4)
    print(f"\nweighted sum (true):    {result.true_answer:.1f}")
    print(
        f"weighted sum (eps-DP):  {result.answer:.1f} "
        f"(error {result.relative_error:.2%})"
    )


if __name__ == "__main__":
    main()
