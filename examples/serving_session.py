"""Serving many private queries from one budget-accounted session.

A deployment answers a stream of private queries over one sensitive
graph.  A :class:`repro.PrivateSession` gives that workload:

1. a hard privacy-budget cap (sequential composition) with per-query
   ledger entries and an over-budget refusal;
2. a compiled-relation cache — repeated queries skip the re-encode and
   LP re-compile (watch the hit counters);
3. mechanism-registry dispatch: the paper's recursive mechanism and the
   baseline zoo behind one ``mechanism="..."`` name;
4. future-based fan-out (``session.submit``) over one shared
   fork-after-compile worker pool, byte-identical to serial execution;
5. a replayable audit log verifying the ledger reproduces every
   released answer.

Run:  python examples/serving_session.py
"""

from repro import PrivateSession, random_graph_with_avg_degree, triangle
from repro.session import BudgetExhausted


def main():
    graph = random_graph_with_avg_degree(60, 7, rng=31)
    session = PrivateSession(graph, budget=2.5, rng=7, name="serving-demo")
    print(
        f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges; "
        f"budget eps = {session.budget}\n"
    )

    # 1-2: a query stream — repeats are answered from the compiled cache
    workload = [
        ("triangles@node", triangle(), "node", "recursive", 0.5),
        ("triangles@node again", triangle(), "node", "recursive", 0.5),
        ("2-stars@edge", "2-star", "edge", "recursive", 0.5),
        ("2-stars smooth", "2-star", "edge", "smooth", 0.5),
        ("triangles rhms", "triangle", "edge", "rhms", 0.5),
        ("over budget", triangle(), "node", "recursive", 0.5),
    ]
    for label, query, privacy, mechanism, epsilon in workload:
        try:
            result = session.query(
                query,
                privacy=privacy,
                epsilon=epsilon,
                mechanism=mechanism,
                label=label,
            )
        except BudgetExhausted as error:
            print(f"{label:22s} REFUSED: {error}")
            continue
        print(
            f"{label:22s} released {result.answer:10.1f}  "
            f"(true {result.true_answer:7.0f}, eps={epsilon})"
        )

    info = session.cache_info()
    print(
        f"\ncompiled-relation cache: {info.hits} hits, "
        f"{info.misses} misses, {info.size} entries"
    )
    print(f"budget: spent eps={session.spent:g}, " f"remaining {session.remaining:g}")

    # 5: replay the audit log and verify the released answers
    replayed = session.replay()
    matches = sum(1 for record in replayed if record.matches)
    print(
        f"audit replay: {matches}/{len(replayed)} ledger entries "
        f"reproduced bit-for-bit -> "
        f"{'PASS' if session.verify_ledger() else 'FAIL'}"
    )
    session.close()

    # 4: the same stream as futures over a shared worker pool
    with PrivateSession(graph, budget=2.0, workers=2, rng=7) as fanout:
        futures = [
            fanout.submit(
                triangle(), privacy="edge", epsilon=0.25, label=f"concurrent-{i}"
            )
            for i in range(8)
        ]
        answers = [f.result().answer for f in futures]
    spread = max(answers) - min(answers)
    print(
        f"\nconcurrent fan-out: {len(answers)} releases, "
        f"answers in [{min(answers):.1f}, {min(answers) + spread:.1f}]"
    )


if __name__ == "__main__":
    main()
