"""Quickstart: node-differentially-private triangle counting.

The headline capability of the paper: release the number of triangles in a
social network such that the output distribution is almost unchanged when
any single *person* (node, with all incident edges) is removed — something
no prior mechanism could do with usable accuracy.

Run:  python examples/quickstart.py
"""

from repro import (
    RecursiveMechanismParams,
    private_subgraph_count,
    random_graph_with_avg_degree,
    triangle,
)


def main():
    # A synthetic social network: 120 people, ~8 friends each.
    graph = random_graph_with_avg_degree(120, 8, rng=42)
    print(f"social network: {graph.num_nodes} people, {graph.num_edges} friendships")

    # One call: enumerate triangles, build the annotated K-relation,
    # run the recursive mechanism with the paper's parameter settings.
    result = private_subgraph_count(
        graph, triangle(), privacy="node", epsilon=1.0, rng=7
    )
    print(f"true triangle count:      {result.true_answer:.0f}")
    print(f"node-DP released count:   {result.answer:.1f}")
    print(f"relative error:           {result.relative_error:.2%}")
    print(
        f"privacy guarantee:        "
        f"{result.params.epsilon:.2f}-differential privacy (node)"
    )

    # Edge privacy is weaker but more accurate — the trade-off is the
    # user's choice (Sec. 1.1 of the paper).
    result_edge = private_subgraph_count(
        graph, triangle(), privacy="edge", epsilon=1.0, rng=7
    )
    print(f"\nedge-DP released count:   {result_edge.answer:.1f}")
    print(f"relative error:           {result_edge.relative_error:.2%}")

    # Everything is parameterizable; e.g. a tighter budget with custom split.
    params = RecursiveMechanismParams(
        epsilon1=0.2, epsilon2=0.3, beta=0.1, theta=1.0, mu=1.0, g=2
    )
    result_tight = private_subgraph_count(
        graph, triangle(), privacy="node", params=params, rng=7
    )
    print(
        f"\nwith eps=0.5 (custom):    {result_tight.answer:.1f} "
        f"(error {result_tight.relative_error:.2%})"
    )


if __name__ == "__main__":
    main()
