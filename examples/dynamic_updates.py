"""Serving private queries over a graph that changes underneath you.

The dynamic-graph subsystem (:mod:`repro.dynamic`) end to end:

1. wrap the data in a :class:`repro.VersionedGraph` — an append-only
   update log, a monotone version counter, and incrementally maintained
   occurrence relations (delta-joins instead of re-enumeration);
2. query through a :class:`repro.PrivateSession` as usual — cache keys
   carry the graph version, so a compiled LP from a superseded version
   is never served to a new query, while same-version repeats stay warm;
3. mutate with :meth:`PrivateSession.apply_update` — the deltas land in
   the audit ledger, and ``session.replay()`` re-verifies every released
   answer against the exact version it saw;
4. over the wire, the same thing is the admin-gated v1 op ``update``
   (``repro serve --updates``), serialized with admissions so each
   remote query deterministically sees exactly one version.

Run:  python examples/dynamic_updates.py
"""

from repro import PrivateSession, VersionedGraph, random_graph_with_avg_degree
from repro.service import BackgroundService, ServiceClient
from repro.session import HierarchicalAccountant, SharedCompiledCache


def main():
    graph = VersionedGraph(random_graph_with_avg_degree(50, 6, rng=13))

    # 1-3: in-process — query, mutate, query again, then audit the lot.
    with PrivateSession(graph, budget=3.0, rng=7, name="dynamic-demo") as s:
        before = s.query("triangle", privacy="node", epsilon=0.5)
        print(f"v{s.graph_version}: triangle/node answer {before.answer:.2f}")

        outcome = s.apply_update(
            [
                {"action": "add_edge", "u": 0, "v": 1},
                {"action": "add_edge", "u": 1, "v": 2},
                {"action": "remove_node", "node": 9},
            ]
        )
        print(f"applied {outcome.applied} deltas -> version {outcome.version}")

        after = s.query("triangle", privacy="node", epsilon=0.5)
        print(f"v{s.graph_version}: triangle/node answer {after.answer:.2f}")
        warm = s.query("triangle", privacy="node", epsilon=0.5)
        info = s.cache_info()
        print(
            f"cache: {info.hits} hits / {info.misses} misses "
            f"(same-version repeat stayed warm: {warm.answer:.2f})"
        )

        assert s.verify_ledger(), "replay must verify across mutations"
        print("audit replay verified every answer at its own version")
        maintenance = graph.maintainer.info()
        for row in maintenance:
            print(
                f"  maintained {row['pattern']}: {row['occurrences']} "
                f"occurrences, {row['deltas_applied']} deltas, "
                f"{row['rebuilds']} rebuilds"
            )

    # 4: the same updates over the wire, admin-gated by a token.
    graph2 = VersionedGraph(random_graph_with_avg_degree(50, 6, rng=13))
    session = PrivateSession(
        graph2,
        rng=7,
        accountant=HierarchicalAccountant(3.0),
        cache=SharedCompiledCache(maxsize=16),
        name="dynamic-wire",
    )
    with BackgroundService(
        session, seed=2026, updates=True, update_token="demo-token"
    ) as bg:
        with ServiceClient(bg.address, user="alice") as client:
            first = client.query("triangle", epsilon=0.5, privacy="node")
            print(f"wire v{first['version']}: answer {first['answer']:.2f}")
            outcome = client.update(
                [{"action": "add_edge", "u": 0, "v": 1}], token="demo-token"
            )
            second = client.query("triangle", epsilon=0.5, privacy="node")
            print(
                f"wire v{second['version']}: answer {second['answer']:.2f} "
                f"(update took the graph to version {outcome['version']})"
            )
            audit = client.audit(replay=True)
            released = [
                e for e in audit["entries"] if e["entry"]["status"] == "released"
            ]
            assert all(e["matches"] for e in released)
            print(
                f"wire audit: {audit['count']} entries, "
                f"{audit['matched']} replay-verified"
            )
    session.close()


if __name__ == "__main__":
    main()
