# Developer conveniences; CI runs the same commands (see
# .github/workflows/ci.yml).

.PHONY: lint format test baseline

# Style (ruff, skipped where not installed) plus the repo's own
# invariant linter — rng determinism, iteration order, fork safety,
# two-phase budget accounting, async hygiene (README "Static analysis").
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check . && ruff format --check .; \
	else \
		echo "ruff not installed; skipping style checks"; \
	fi
	PYTHONPATH=src python -m repro lint src

format:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff format .; \
	else \
		echo "ruff not installed; nothing to format"; \
	fi

test:
	PYTHONPATH=src python -m pytest -x -q

# Regenerate lint-baseline.json from the current findings.  Only for
# adopting a new rule over legacy code — new findings should be fixed
# or pragma-annotated, not baselined.
baseline:
	PYTHONPATH=src python -m repro lint src --write-baseline
