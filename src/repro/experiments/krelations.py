"""Fig. 8 / Fig. 9: the mechanism on random 3-DNF / 3-CNF K-relations.

Fig. 8 sweeps the number of clauses per annotation (1..10) at fixed
``|supp(R)| = 1000``; Fig. 9 sweeps ``|supp(R)|`` (up to 1000) at fixed
3 clauses.  Each point reports the mechanism's median relative error, the
reference quantity ``~US_q / (ε · q(P,R))`` (the paper's dotted curve —
the relative error an absolute error of exactly ``~US/ε`` would give) and
the running time.  ``q(t) = 1`` and ``|P| = |supp(R)|`` as in Sec. 6.2.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from ..core.efficient import EfficientRecursiveMechanism
from ..core.params import RecursiveMechanismParams
from ..core.queries import CountQuery
from ..core.sensitivity import universal_empirical_sensitivity
from ..krand.generators import random_cnf_krelation, random_dnf_krelation
from ..rng import RngLike, ensure_rng
from .harness import Scale, median_relative_error, resolve_scale

__all__ = ["krelation_point", "fig8_clause_sweep", "fig9_size_sweep"]

PAPER_CLAUSE_SWEEP = (1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
PAPER_SIZE_SWEEP = (100, 200, 400, 600, 800, 1000)
PAPER_RELATION_SIZE = 1000
PAPER_CLAUSES = 3


def krelation_point(
    kind: str,
    size: int,
    clauses: int,
    epsilon: float,
    trials: int,
    rng: RngLike = 0,
) -> Dict[str, float]:
    """Run the mechanism on one random K-relation; return all Fig. 8/9 stats."""
    generator = ensure_rng(rng)
    if kind == "dnf":
        relation = random_dnf_krelation(size, clauses, rng=generator)
    elif kind == "cnf":
        relation = random_cnf_krelation(size, clauses, rng=generator)
    else:
        raise ValueError(f"kind must be 'dnf' or 'cnf', got {kind!r}")

    params = RecursiveMechanismParams.paper(epsilon)
    start = time.perf_counter()
    # bounding="paper" reproduces the paper's Eq. 19 exactly (Fig. 8/9 used
    # it); see DESIGN.md §6 for the privacy erratum on disjunctive
    # annotations and the sound "uniform" alternative.
    mechanism = EfficientRecursiveMechanism(relation, bounding="paper")
    results = mechanism.sample_answers(params, trials, generator)
    seconds = time.perf_counter() - start

    truth = mechanism.true_answer()
    error = median_relative_error([r.answer for r in results], truth)
    us = universal_empirical_sensitivity(CountQuery(), relation)
    reference = us / (epsilon * truth) if truth else float("inf")
    return {
        "size": float(size),
        "clauses": float(clauses),
        "true_answer": truth,
        "median_relative_error": error,
        "us_reference": reference,
        "universal_sensitivity": us,
        "seconds": seconds,
    }


def fig8_clause_sweep(
    kinds: Sequence[str] = ("dnf", "cnf"),
    clause_counts: Sequence[int] = PAPER_CLAUSE_SWEEP,
    epsilon: float = 0.5,
    scale: Optional[Scale] = None,
    rng: RngLike = 0,
) -> Dict[str, List[Dict[str, float]]]:
    """Fig. 8: error/time vs clauses per expression at fixed |supp(R)|."""
    scale = scale or resolve_scale()
    size = max(20, int(round(PAPER_RELATION_SIZE * scale.krelation_factor)))
    generator = ensure_rng(rng)
    return {
        kind: [
            krelation_point(kind, size, c, epsilon, scale.trials, generator)
            for c in scale.subset(clause_counts)
        ]
        for kind in kinds
    }


def fig9_size_sweep(
    kinds: Sequence[str] = ("dnf", "cnf"),
    sizes: Sequence[int] = PAPER_SIZE_SWEEP,
    epsilon: float = 0.5,
    scale: Optional[Scale] = None,
    rng: RngLike = 0,
) -> Dict[str, List[Dict[str, float]]]:
    """Fig. 9: error/time vs |supp(R)| at 3 clauses per expression."""
    scale = scale or resolve_scale()
    generator = ensure_rng(rng)
    scaled_sizes = [max(20, int(round(s * scale.krelation_factor))) for s in sizes]
    return {
        kind: [
            krelation_point(kind, s, PAPER_CLAUSES, epsilon, scale.trials, generator)
            for s in scale.subset(scaled_sizes)
        ]
        for kind in kinds
    }
