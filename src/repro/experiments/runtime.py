"""Fig. 5: running time of the recursive mechanism vs graph size.

The paper times the mechanism for triangle / 2-star / 2-triangle counting
under node and edge privacy on random graphs with avgdeg = 10, |V| up to
200.  We separate the three cost components the paper discusses:

* match enumeration + K-relation construction (the paper excludes this
  from its reported cost, "we do not take account of the time needed for
  generating ... the list of matched subgraphs" — reported separately);
* the Δ computation (binary search over G-entries — per database);
* one mechanism release (the X LP plus noise — per query answer).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.efficient import EfficientRecursiveMechanism
from ..core.params import RecursiveMechanismParams
from ..graphs.generators import random_graph_with_avg_degree
from ..rng import RngLike, ensure_rng, spawn_seed_sequences
from ..subgraphs.annotate import subgraph_krelation
from .harness import ParallelHarness, Scale, resolve_scale
from .mechanisms import parse_query
from .synthetic import PAPER_NODE_SWEEP

__all__ = ["runtime_point", "fig5_runtime_sweep"]


def runtime_point(
    num_nodes: int,
    avgdeg: float,
    query: str,
    privacy: str,
    epsilon: float = 0.5,
    rng: RngLike = 0,
) -> Dict[str, float]:
    """Timing breakdown for one configuration (seconds)."""
    generator = ensure_rng(rng)
    graph = random_graph_with_avg_degree(num_nodes, avgdeg, generator)

    start = time.perf_counter()
    relation = subgraph_krelation(graph, parse_query(query), privacy=privacy)
    build_seconds = time.perf_counter() - start

    params = RecursiveMechanismParams.paper(epsilon, node_privacy=(privacy == "node"))
    start = time.perf_counter()
    mechanism = EfficientRecursiveMechanism(relation)
    encode_seconds = time.perf_counter() - start

    start = time.perf_counter()
    mechanism.compute_delta(params)
    delta_seconds = time.perf_counter() - start

    start = time.perf_counter()
    result = mechanism.run(params, generator)
    release_seconds = time.perf_counter() - start

    # A small H-profile sweep through the batched entry point — the same
    # compiled structure answers every index, so this prices "several H
    # entries over one encoding" separately from a single release.
    # Interior indices only: the endpoints are closed forms that never
    # touch a solver (some quartiles may still be warm from the X step).
    n = mechanism.num_participants
    profile_indices = sorted(
        {min(max(1, k * n // 4), n) for k in (1, 2, 3)} if n > 0 else set()
    )
    start = time.perf_counter()
    mechanism.h_entries(profile_indices)
    h_profile_seconds = time.perf_counter() - start

    return {
        "nodes": float(num_nodes),
        "tuples": float(len(relation)),
        "lp_size": float(mechanism.lp_size),
        "build_seconds": build_seconds,
        "encode_seconds": encode_seconds,
        "delta_seconds": delta_seconds,
        "release_seconds": release_seconds,
        "h_profile_seconds": h_profile_seconds,
        "mechanism_seconds": delta_seconds + release_seconds,
        "true_answer": float(result.true_answer),
        # the released (noisy) answer — deterministic at a fixed seed, so
        # serial-vs-parallel sweeps can be compared byte-for-byte
        "answer": float(result.answer),
    }


def _runtime_task(_payload, task) -> Dict[str, float]:
    """Worker-side grid point for the parallel Fig. 5 sweep."""
    num_nodes, avgdeg, query, privacy, epsilon, seed_sequence = task
    return runtime_point(
        num_nodes,
        avgdeg,
        query,
        privacy,
        epsilon,
        rng=np.random.default_rng(seed_sequence),
    )


def fig5_runtime_sweep(
    queries: Sequence[str] = ("triangle", "2-star", "2-triangle"),
    privacies: Sequence[str] = ("node", "edge"),
    avgdeg: float = 10.0,
    epsilon: float = 0.5,
    scale: Optional[Scale] = None,
    rng: RngLike = 0,
    workers: Optional[int] = None,
) -> Dict[str, List[Dict[str, float]]]:
    """Fig. 5: mechanism running time for the six query/privacy combos.

    Returns ``{"<query>/<privacy>": [runtime_point dict per node count]}``.

    ``workers=None`` (default) keeps the historical serial behavior (one
    generator threaded through the grid).  An explicit ``workers`` shards
    the (query × privacy × size) grid across a worker pool with one
    spawned seed sequence per grid point, assigned in grid order — so the
    graphs built, the relations encoded, and the released answers are
    byte-identical between ``workers=1`` and ``workers=k`` at a fixed
    seed, and per-point timings remain comparable (each point is still
    one process's wall-clock work).
    """
    scale = scale or resolve_scale()
    nodes = sorted(
        {
            max(16, int(round(v * scale.graph_nodes_factor)))
            for v in scale.subset(PAPER_NODE_SWEEP)
        }
    )
    combos = [(query, privacy) for query in queries for privacy in privacies]
    out: Dict[str, List[Dict[str, float]]] = {}
    if workers is None:
        generator = ensure_rng(rng)
        for query, privacy in combos:
            out[f"{query}/{privacy}"] = [
                runtime_point(n, avgdeg, query, privacy, epsilon, generator)
                for n in nodes
            ]
        return out
    grid = [(query, privacy, n) for query, privacy in combos for n in nodes]
    seeds = spawn_seed_sequences(rng, len(grid))
    tasks = [
        (n, avgdeg, query, privacy, epsilon, seed)
        for (query, privacy, n), seed in zip(grid, seeds)
    ]
    points = ParallelHarness(workers).map(_runtime_task, tasks)
    for (query, privacy, _n), point in zip(grid, points):
        out.setdefault(f"{query}/{privacy}", []).append(point)
    return out
