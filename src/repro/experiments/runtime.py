"""Fig. 5: running time of the recursive mechanism vs graph size.

The paper times the mechanism for triangle / 2-star / 2-triangle counting
under node and edge privacy on random graphs with avgdeg = 10, |V| up to
200.  We separate the three cost components the paper discusses:

* match enumeration + K-relation construction (the paper excludes this
  from its reported cost, "we do not take account of the time needed for
  generating ... the list of matched subgraphs" — reported separately);
* the Δ computation (binary search over G-entries — per database);
* one mechanism release (the X LP plus noise — per query answer).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from ..core.efficient import EfficientRecursiveMechanism
from ..core.params import RecursiveMechanismParams
from ..graphs.generators import random_graph_with_avg_degree
from ..rng import RngLike, ensure_rng
from ..subgraphs.annotate import subgraph_krelation
from .harness import Scale, resolve_scale
from .mechanisms import parse_query
from .synthetic import PAPER_NODE_SWEEP

__all__ = ["runtime_point", "fig5_runtime_sweep"]


def runtime_point(
    num_nodes: int,
    avgdeg: float,
    query: str,
    privacy: str,
    epsilon: float = 0.5,
    rng: RngLike = 0,
) -> Dict[str, float]:
    """Timing breakdown for one configuration (seconds)."""
    generator = ensure_rng(rng)
    graph = random_graph_with_avg_degree(num_nodes, avgdeg, generator)

    start = time.perf_counter()
    relation = subgraph_krelation(graph, parse_query(query), privacy=privacy)
    build_seconds = time.perf_counter() - start

    params = RecursiveMechanismParams.paper(epsilon, node_privacy=(privacy == "node"))
    start = time.perf_counter()
    mechanism = EfficientRecursiveMechanism(relation)
    encode_seconds = time.perf_counter() - start

    start = time.perf_counter()
    mechanism.compute_delta(params)
    delta_seconds = time.perf_counter() - start

    start = time.perf_counter()
    result = mechanism.run(params, generator)
    release_seconds = time.perf_counter() - start

    # A small H-profile sweep through the batched entry point — the same
    # compiled structure answers every index, so this prices "several H
    # entries over one encoding" separately from a single release.
    # Interior indices only: the endpoints are closed forms that never
    # touch a solver (some quartiles may still be warm from the X step).
    n = mechanism.num_participants
    profile_indices = sorted(
        {min(max(1, k * n // 4), n) for k in (1, 2, 3)} if n > 0 else set()
    )
    start = time.perf_counter()
    mechanism.h_entries(profile_indices)
    h_profile_seconds = time.perf_counter() - start

    return {
        "nodes": float(num_nodes),
        "tuples": float(len(relation)),
        "lp_size": float(mechanism.lp_size),
        "build_seconds": build_seconds,
        "encode_seconds": encode_seconds,
        "delta_seconds": delta_seconds,
        "release_seconds": release_seconds,
        "h_profile_seconds": h_profile_seconds,
        "mechanism_seconds": delta_seconds + release_seconds,
        "true_answer": float(result.true_answer),
    }


def fig5_runtime_sweep(
    queries: Sequence[str] = ("triangle", "2-star", "2-triangle"),
    privacies: Sequence[str] = ("node", "edge"),
    avgdeg: float = 10.0,
    epsilon: float = 0.5,
    scale: Optional[Scale] = None,
    rng: RngLike = 0,
) -> Dict[str, List[Dict[str, float]]]:
    """Fig. 5: mechanism running time for the six query/privacy combos.

    Returns ``{"<query>/<privacy>": [runtime_point dict per node count]}``.
    """
    scale = scale or resolve_scale()
    nodes = sorted(
        {
            max(16, int(round(v * scale.graph_nodes_factor)))
            for v in scale.subset(PAPER_NODE_SWEEP)
        }
    )
    generator = ensure_rng(rng)
    out: Dict[str, List[Dict[str, float]]] = {}
    for query in queries:
        for privacy in privacies:
            key = f"{query}/{privacy}"
            out[key] = [
                runtime_point(n, avgdeg, query, privacy, epsilon, generator)
                for n in nodes
            ]
    return out
