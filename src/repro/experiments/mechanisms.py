"""Uniform mechanism runners for the comparison experiments.

A *runner* is a closure ``rng -> private answer`` with all per-graph
precomputation (match enumeration, K-relation encoding, smooth-sensitivity
statistics) hoisted out, so trial loops measure only what the paper's
accuracy figures measure.  :func:`make_runner` builds one for any
``(mechanism, query, graph)`` combination used in Fig. 4/7:

* ``recursive-node`` / ``recursive-edge`` — the paper's mechanism;
* ``local-sensitivity`` — NRS07 for triangles, Karwa et al. for k-stars
  (ε-DP) and k-triangles ((ε,δ)-DP), matching the "local sensitivity
  mechanisms" curve;
* ``rhms`` — the RHMS output perturbation.
"""

from __future__ import annotations

import re
from typing import Callable, Tuple

from ..baselines.kstar_karwa import KarwaKStarMechanism
from ..baselines.ktriangle_karwa import KarwaKTriangleMechanism
from ..baselines.rhms import RHMSMechanism
from ..baselines.triangles_nrs import NRSTriangleMechanism
from ..core.efficient import EfficientRecursiveMechanism
from ..core.params import RecursiveMechanismParams
from ..errors import MechanismError
from ..graphs.graph import Graph
from ..subgraphs.annotate import subgraph_krelation
from ..subgraphs.counting import count_k_stars, count_k_triangles, count_triangles
from ..subgraphs.patterns import Pattern, k_star, k_triangle, triangle

__all__ = ["MECHANISM_NAMES", "QUERY_NAMES", "parse_query", "true_count", "make_runner"]

MECHANISM_NAMES = ("recursive-node", "recursive-edge", "local-sensitivity", "rhms")
QUERY_NAMES = ("triangle", "2-star", "2-triangle")


def parse_query(query: str) -> Pattern:
    """``"triangle"``, ``"k-star"`` or ``"k-triangle"`` to a Pattern."""
    if query == "triangle":
        return triangle()
    match = re.fullmatch(r"(\d+)-star", query)
    if match:
        return k_star(int(match.group(1)))
    match = re.fullmatch(r"(\d+)-triangle", query)
    if match:
        return k_triangle(int(match.group(1)))
    raise MechanismError(f"unknown query {query!r}")


def true_count(graph: Graph, query: str) -> float:
    """Exact count via the closed-form/specialized counters."""
    if query == "triangle":
        return float(count_triangles(graph))
    match = re.fullmatch(r"(\d+)-star", query)
    if match:
        return float(count_k_stars(graph, int(match.group(1))))
    match = re.fullmatch(r"(\d+)-triangle", query)
    if match:
        return float(count_k_triangles(graph, int(match.group(1))))
    raise MechanismError(f"unknown query {query!r}")


def make_runner(
    mechanism: str,
    graph: Graph,
    query: str,
    epsilon: float,
    delta: float = 0.1,
) -> Tuple[Callable[[object], float], float]:
    """Build ``(run_once(rng) -> answer, true_answer)`` for one config.

    Parameters follow the paper's Sec. 6 defaults: ``delta`` is used only
    by the (ε,δ)-DP k-triangle baseline (δ = 0.1 in the paper).
    """
    truth = true_count(graph, query)

    if mechanism in ("recursive-node", "recursive-edge"):
        privacy = "node" if mechanism.endswith("node") else "edge"
        relation = subgraph_krelation(graph, parse_query(query), privacy=privacy)
        params = RecursiveMechanismParams.paper(
            epsilon, node_privacy=(privacy == "node")
        )
        mech = EfficientRecursiveMechanism(relation)

        def run_recursive(rng) -> float:
            return mech.run(params, rng).answer

        return run_recursive, truth

    if mechanism == "local-sensitivity":
        if query == "triangle":
            nrs = NRSTriangleMechanism(graph)
            return (lambda rng: nrs.run(epsilon, rng).answer), truth
        star = re.fullmatch(r"(\d+)-star", query)
        if star:
            karwa_star = KarwaKStarMechanism(graph, int(star.group(1)))
            return (lambda rng: karwa_star.run(epsilon, rng).answer), truth
        ktri = re.fullmatch(r"(\d+)-triangle", query)
        if ktri:
            karwa_tri = KarwaKTriangleMechanism(graph, int(ktri.group(1)))
            return (lambda rng: karwa_tri.run(epsilon, delta, rng).answer), truth
        raise MechanismError(f"no local-sensitivity baseline for {query!r}")

    if mechanism == "rhms":
        rhms = RHMSMechanism(graph, parse_query(query), truth)
        return (lambda rng: rhms.run(epsilon, rng).answer), truth

    raise MechanismError(
        f"unknown mechanism {mechanism!r}; choose from {MECHANISM_NAMES}"
    )
