"""Uniform mechanism runners for the comparison experiments.

A *runner* is a closure ``rng -> private answer`` with all per-graph
precomputation (match enumeration, K-relation encoding, smooth-sensitivity
statistics) hoisted out, so trial loops measure only what the paper's
accuracy figures measure.  :func:`make_runner` builds one for any
``(mechanism, query, graph)`` combination used in Fig. 4/7 by dispatching
through the unified mechanism registry (:mod:`repro.mechanisms`) — the
experiment names map onto registry entries:

* ``recursive-node`` / ``recursive-edge`` — ``"recursive"`` under node /
  edge privacy (the paper's mechanism);
* ``local-sensitivity`` — ``"smooth"``: NRS07 for triangles, Karwa et al.
  for k-stars (ε-DP) and k-triangles ((ε,δ)-DP), matching the "local
  sensitivity mechanisms" curve;
* ``rhms`` — ``"rhms"``, the RHMS output perturbation;
* ``pinq-restricted`` — ``"pinq"``, the restricted-join Laplace row.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, Tuple

from ..errors import MechanismError
from ..graphs.graph import Graph
from ..mechanisms import QuerySpec
from ..mechanisms import get as get_mechanism
from ..mechanisms import resolve_pattern
from ..subgraphs.counting import count_k_stars, count_k_triangles, count_triangles
from ..subgraphs.patterns import Pattern

__all__ = ["MECHANISM_NAMES", "QUERY_NAMES", "parse_query", "true_count", "make_runner"]

MECHANISM_NAMES = ("recursive-node", "recursive-edge", "local-sensitivity", "rhms")
QUERY_NAMES = ("triangle", "2-star", "2-triangle")

#: experiment name -> (registry name, privacy model)
EXPERIMENT_MECHANISMS: Dict[str, Tuple[str, str]] = {
    "recursive-node": ("recursive", "node"),
    "recursive-edge": ("recursive", "edge"),
    "local-sensitivity": ("smooth", "edge"),
    "rhms": ("rhms", "edge"),
    "pinq-restricted": ("pinq", "edge"),
}


def parse_query(query: str) -> Pattern:
    """``"triangle"``, ``"k-star"`` or ``"k-triangle"`` to a Pattern."""
    return resolve_pattern(query)


def true_count(graph: Graph, query: str) -> float:
    """Exact count via the closed-form/specialized counters."""
    if query == "triangle":
        return float(count_triangles(graph))
    match = re.fullmatch(r"(\d+)-star", query)
    if match:
        return float(count_k_stars(graph, int(match.group(1))))
    match = re.fullmatch(r"(\d+)-triangle", query)
    if match:
        return float(count_k_triangles(graph, int(match.group(1))))
    raise MechanismError(f"unknown query {query!r}")


def make_runner(
    mechanism: str,
    graph: Graph,
    query: str,
    epsilon: float,
    delta: float = 0.1,
) -> Tuple[Callable[[object], float], float]:
    """Build ``(run_once(rng) -> answer, true_answer)`` for one config.

    Parameters follow the paper's Sec. 6 defaults: ``delta`` is used only
    by the (ε,δ)-DP k-triangle baseline (δ = 0.1 in the paper).  The
    mechanism is resolved through :func:`repro.mechanisms.get` and
    prepared once; the returned closure only releases.
    """
    try:
        registry_name, privacy = EXPERIMENT_MECHANISMS[mechanism]
    except KeyError:
        raise MechanismError(
            f"unknown mechanism {mechanism!r}; choose from "
            f"{tuple(EXPERIMENT_MECHANISMS)}"
        ) from None
    options = {"delta": delta} if registry_name == "smooth" else {}
    mech = get_mechanism(registry_name)(graph, **options)
    prepared = mech.prepare(QuerySpec.of(parse_query(query), privacy=privacy))

    def run_once(rng) -> float:
        return prepared.release(epsilon, rng).answer

    return run_once, prepared.true_answer
