"""Fig. 1: the mechanism-comparison table, measured empirically.

Fig. 1 of the paper is an analytic table of error/time guarantees.  This
module regenerates its *measurable* content: for each query class it runs
every applicable mechanism on a fixed reference graph and reports the
median relative error and time, plus the structural quantities the
guarantees are stated in (``~US``, ``~GS``-proxy, LS-based noise scales),
so the table's ordering ("our mechanism beats X on Y") can be checked
against measurements.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from ..core.efficient import EfficientRecursiveMechanism
from ..core.params import RecursiveMechanismParams
from ..core.queries import CountQuery
from ..core.sensitivity import universal_empirical_sensitivity
from ..graphs.generators import random_graph_with_avg_degree
from ..rng import RngLike, ensure_rng
from ..subgraphs.annotate import subgraph_krelation
from .harness import Scale, resolve_scale, run_mechanism_trials
from .mechanisms import make_runner, parse_query

__all__ = ["fig1_comparison_table"]


def fig1_comparison_table(
    num_nodes: int = 200,
    avgdeg: float = 10.0,
    epsilon: float = 0.5,
    queries: Sequence[str] = ("triangle", "2-star", "2-triangle"),
    scale: Optional[Scale] = None,
    rng: RngLike = 0,
    workers: Optional[int] = None,
) -> List[Dict[str, object]]:
    """One row per (query, mechanism): measured error, time and structure.

    ``workers=None`` keeps the historical serial trial loops.  An
    explicit ``workers`` shards each mechanism's trial repetitions across
    a pool forked *after* that mechanism's per-graph precomputation (the
    K-relation encoding, smooth-sensitivity statistics), with
    deterministic per-trial seed spawning — ``workers=1`` and
    ``workers=k`` report identical errors at a fixed seed.
    """
    scale = scale or resolve_scale()
    n = max(16, int(round(num_nodes * scale.graph_nodes_factor)))
    generator = ensure_rng(rng)
    graph = random_graph_with_avg_degree(n, avgdeg, generator)
    rows: List[Dict[str, object]] = []
    for query in queries:
        # structural quantities for the guarantee columns
        relation_node = subgraph_krelation(graph, parse_query(query), privacy="node")
        relation_edge = subgraph_krelation(graph, parse_query(query), privacy="edge")
        us_node = universal_empirical_sensitivity(CountQuery(), relation_node)
        us_edge = universal_empirical_sensitivity(CountQuery(), relation_edge)

        # the Fig. 1 "[9,11]" row: PINQ-style restricted joins clip heavily
        from ..baselines.pinq import PINQStyleLaplace

        pinq = PINQStyleLaplace(relation_edge, max_tuples_per_participant=1)
        start = time.perf_counter()
        if workers is None:
            pinq_errors = [
                pinq.run(epsilon, generator).relative_error
                for _ in range(scale.trials)
            ]
            pinq_errors.sort()
            pinq_median = pinq_errors[len(pinq_errors) // 2]
        else:
            pinq_median = run_mechanism_trials(
                lambda trial_rng: pinq.run(epsilon, trial_rng).answer,
                pinq.true_answer,
                scale.trials,
                rng=generator,
                workers=workers,
            )
        rows.append(
            {
                "query": query,
                "mechanism": "pinq-restricted",
                "median_relative_error": pinq_median,
                "seconds": time.perf_counter() - start,
                "true_answer": pinq.true_answer,
                "US_node": us_node,
                "US_edge": us_edge,
                "privacy": "edge-DP (clipped)",
            }
        )

        for mechanism in ("recursive-node", "recursive-edge", "local-sensitivity", "rhms"):
            start = time.perf_counter()
            run_once, truth = make_runner(mechanism, graph, query, epsilon)
            error = run_mechanism_trials(
                run_once, truth, scale.trials, generator, workers=workers
            )
            seconds = time.perf_counter() - start
            rows.append(
                {
                    "query": query,
                    "mechanism": mechanism,
                    "median_relative_error": error,
                    "seconds": seconds,
                    "true_answer": truth,
                    "US_node": us_node,
                    "US_edge": us_edge,
                    "privacy": (
                        "node-DP" if mechanism == "recursive-node"
                        else "(eps,delta)-edge-DP" if mechanism == "local-sensitivity" and query.endswith("-triangle") and query != "triangle"
                        else "adversarial" if mechanism == "rhms"
                        else "edge-DP"
                    ),
                }
            )
    return rows
