"""Fig. 1: the mechanism-comparison table, measured empirically.

Fig. 1 of the paper is an analytic table of error/time guarantees.  This
module regenerates its *measurable* content: for each query class it runs
every applicable mechanism on a fixed reference graph and reports the
median relative error and time, plus the structural quantities the
guarantees are stated in (``~US``, ``~GS``-proxy, LS-based noise scales),
so the table's ordering ("our mechanism beats X on Y") can be checked
against measurements.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from ..core.queries import CountQuery
from ..core.sensitivity import universal_empirical_sensitivity
from ..errors import MechanismError
from ..graphs.generators import random_graph_with_avg_degree
from ..mechanisms import QuerySpec
from ..mechanisms import get as get_mechanism
from ..rng import RngLike, ensure_rng
from ..subgraphs.annotate import subgraph_krelation
from .harness import Scale, resolve_scale, run_mechanism_trials
from .mechanisms import EXPERIMENT_MECHANISMS, make_runner, parse_query

__all__ = ["fig1_comparison_table"]

#: Fig. 1 rows in paper order; all dispatch through the registry.
FIG1_MECHANISMS = (
    "pinq-restricted",
    "recursive-node",
    "recursive-edge",
    "local-sensitivity",
    "rhms",
)


def _privacy_label(mechanism: str, query: str) -> str:
    """The guarantee column of Fig. 1 for one (mechanism, query) cell."""
    if mechanism == "pinq-restricted":
        return "edge-DP (clipped)"
    if mechanism == "recursive-node":
        return "node-DP"
    if mechanism == "rhms":
        return "adversarial"
    if (
        mechanism == "local-sensitivity"
        and query.endswith("-triangle")
        and query != "triangle"
    ):
        return "(eps,delta)-edge-DP"
    return "edge-DP"


def fig1_comparison_table(
    num_nodes: int = 200,
    avgdeg: float = 10.0,
    epsilon: float = 0.5,
    queries: Sequence[str] = ("triangle", "2-star", "2-triangle"),
    scale: Optional[Scale] = None,
    rng: RngLike = 0,
    workers: Optional[int] = None,
    mechanisms: Sequence[str] = FIG1_MECHANISMS,
) -> List[Dict[str, object]]:
    """One row per (query, mechanism): measured error, time and structure.

    ``mechanisms`` selects the rows by experiment name (each resolving to
    a registry entry, see
    :data:`repro.experiments.mechanisms.EXPERIMENT_MECHANISMS`).

    ``workers=None`` keeps the historical serial trial loops.  An
    explicit ``workers`` shards each mechanism's trial repetitions across
    a pool forked *after* that mechanism's per-graph precomputation (the
    K-relation encoding, smooth-sensitivity statistics), with
    deterministic per-trial seed spawning — ``workers=1`` and
    ``workers=k`` report identical errors at a fixed seed.
    """
    unknown = [name for name in mechanisms if name not in EXPERIMENT_MECHANISMS]
    if unknown:
        raise MechanismError(
            f"unknown mechanisms {unknown}; choose from "
            f"{sorted(EXPERIMENT_MECHANISMS)}"
        )
    scale = scale or resolve_scale()
    n = max(16, int(round(num_nodes * scale.graph_nodes_factor)))
    generator = ensure_rng(rng)
    graph = random_graph_with_avg_degree(n, avgdeg, generator)
    rows: List[Dict[str, object]] = []
    for query in queries:
        # structural quantities for the guarantee columns
        relation_node = subgraph_krelation(graph, parse_query(query), privacy="node")
        relation_edge = subgraph_krelation(graph, parse_query(query), privacy="edge")
        us_node = universal_empirical_sensitivity(CountQuery(), relation_node)
        us_edge = universal_empirical_sensitivity(CountQuery(), relation_edge)

        for mechanism in mechanisms:
            start = time.perf_counter()
            if mechanism == "pinq-restricted":
                # the Fig. 1 "[9,11]" row: restricted joins clip heavily.
                # The edge K-relation is already built above — hand it to
                # the registry entry directly instead of re-enumerating.
                registry_name, privacy = EXPERIMENT_MECHANISMS[mechanism]
                prepared = get_mechanism(registry_name)(
                    relation_edge, bound=1
                ).prepare(QuerySpec.of(None, privacy=privacy))
                truth = prepared.true_answer
                start = time.perf_counter()  # time trials, not prepare
                if workers is None:
                    errors = sorted(
                        prepared.release(epsilon, generator).relative_error
                        for _ in range(scale.trials)
                    )
                    error = errors[len(errors) // 2]
                else:
                    error = run_mechanism_trials(
                        lambda trial_rng: prepared.release(epsilon, trial_rng).answer,
                        truth,
                        scale.trials,
                        rng=generator,
                        workers=workers,
                    )
            else:
                run_once, truth = make_runner(mechanism, graph, query, epsilon)
                error = run_mechanism_trials(
                    run_once, truth, scale.trials, generator, workers=workers
                )
            rows.append(
                {
                    "query": query,
                    "mechanism": mechanism,
                    "median_relative_error": error,
                    "seconds": time.perf_counter() - start,
                    "true_answer": truth,
                    "US_node": us_node,
                    "US_edge": us_edge,
                    "privacy": _privacy_label(mechanism, query),
                }
            )
    return rows
