"""Experiment harness reproducing the paper's evaluation (Sec. 6).

Every figure/table of the paper maps to one module here and one benchmark
in ``benchmarks/``:

* Fig. 4(a)/(b)/(c) — :mod:`~repro.experiments.synthetic` (accuracy of four
  mechanisms on random graphs, sweeping |V|, average degree, and ε);
* Fig. 5 — :mod:`~repro.experiments.runtime` (running time of the recursive
  mechanism);
* Fig. 6 / Fig. 7 — :mod:`~repro.experiments.real_graphs` (dataset table and
  triangle-counting accuracy on the dataset stand-ins);
* Fig. 8 / Fig. 9 — :mod:`~repro.experiments.krelations` (random 3-DNF /
  3-CNF K-relations, sweeping expression length and relation size);
* Fig. 1 — :mod:`~repro.experiments.comparison` (the guarantee/measured
  comparison table).

The accuracy metric is the paper's: **median relative error** over repeated
runs.  All experiments take a scale preset (``smoke``/``default``/``full``)
so the benchmark suite stays laptop-fast while ``full`` reproduces the
paper's exact sizes.
"""

from .harness import (
    ParallelHarness,
    Scale,
    aggregate_median,
    median_relative_error,
    resolve_scale,
    run_mechanism_trials,
)
from .mechanisms import MECHANISM_NAMES, make_runner
from .reporting import format_series, format_table

__all__ = [
    "median_relative_error",
    "aggregate_median",
    "run_mechanism_trials",
    "ParallelHarness",
    "Scale",
    "resolve_scale",
    "MECHANISM_NAMES",
    "make_runner",
    "format_table",
    "format_series",
]
