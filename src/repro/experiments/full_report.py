"""One-shot regeneration of the paper's whole evaluation section.

:func:`generate_report` runs every figure at a chosen scale and renders a
single text report — the programmatic equivalent of running the complete
benchmark suite, usable from the CLI (``python -m repro fig all``) or from
notebooks.  Figures can be cherry-picked and are computed lazily, so a
partial report is cheap.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

from ..rng import RngLike
from .harness import Scale, resolve_scale
from .reporting import format_series, format_table

__all__ = ["FIGURES", "generate_report"]


def _render_fig4(name: str, fn, scale: Scale, rng) -> str:
    result = fn(scale=scale, rng=rng)
    (x_name, x_values), = result.pop("_x").items()
    sections = [
        format_series(x_name, x_values, series, title=f"{name} — {query}")
        for query, series in result.items()
    ]
    return "\n\n".join(sections)


def _fig1(scale: Scale, rng) -> str:
    from .comparison import fig1_comparison_table

    return format_table(
        fig1_comparison_table(scale=scale, rng=rng),
        ["query", "mechanism", "privacy", "median_relative_error", "seconds"],
        title="Fig 1 — measured comparison",
    )


def _fig4a(scale: Scale, rng) -> str:
    from .synthetic import fig4a_nodes_sweep

    return _render_fig4("Fig 4(a)", fig4a_nodes_sweep, scale, rng)


def _fig4b(scale: Scale, rng) -> str:
    from .synthetic import fig4b_avgdeg_sweep

    return _render_fig4("Fig 4(b)", fig4b_avgdeg_sweep, scale, rng)


def _fig4c(scale: Scale, rng) -> str:
    from .synthetic import fig4c_epsilon_sweep

    return _render_fig4("Fig 4(c)", fig4c_epsilon_sweep, scale, rng)


def _fig5(scale: Scale, rng) -> str:
    from .runtime import fig5_runtime_sweep

    sections = []
    for combo, rows in fig5_runtime_sweep(scale=scale, rng=rng).items():
        sections.append(
            format_table(
                rows,
                [
                    "nodes",
                    "tuples",
                    "delta_seconds",
                    "release_seconds",
                    "mechanism_seconds",
                ],
                title=f"Fig 5 — {combo}",
            )
        )
    return "\n\n".join(sections)


def _fig6(scale: Scale, rng) -> str:
    from .real_graphs import fig6_dataset_table

    return format_table(
        fig6_dataset_table(scale=scale, rng=rng),
        [
            "dataset",
            "V",
            "E",
            "triangles",
            "node_seconds",
            "edge_seconds",
            "paper_V",
            "paper_E",
            "paper_triangles",
        ],
        title="Fig 6 — dataset stand-ins",
    )


def _fig7(scale: Scale, rng) -> str:
    from .real_graphs import fig7_accuracy_table

    return format_table(
        fig7_accuracy_table(scale=scale, rng=rng),
        ["dataset", "recursive-node", "recursive-edge", "local-sensitivity", "rhms"],
        title="Fig 7 — triangle counting accuracy",
    )


def _fig8(scale: Scale, rng) -> str:
    from .krelations import fig8_clause_sweep

    sections = []
    for kind, rows in fig8_clause_sweep(scale=scale, rng=rng).items():
        sections.append(
            format_table(
                rows,
                ["clauses", "median_relative_error", "us_reference", "seconds"],
                title=f"Fig 8 — 3-{kind.upper()}",
            )
        )
    return "\n\n".join(sections)


def _fig9(scale: Scale, rng) -> str:
    from .krelations import fig9_size_sweep

    sections = []
    for kind, rows in fig9_size_sweep(scale=scale, rng=rng).items():
        sections.append(
            format_table(
                rows,
                ["size", "median_relative_error", "us_reference", "seconds"],
                title=f"Fig 9 — 3-{kind.upper()}",
            )
        )
    return "\n\n".join(sections)


FIGURES: Dict[str, Callable[[Scale, RngLike], str]] = {
    "fig1": _fig1,
    "fig4a": _fig4a,
    "fig4b": _fig4b,
    "fig4c": _fig4c,
    "fig5": _fig5,
    "fig6": _fig6,
    "fig7": _fig7,
    "fig8": _fig8,
    "fig9": _fig9,
}


def _registry_section() -> str:
    """The live mechanism-registry table (what the figures dispatch through)."""
    from ..mechanisms import describe

    return format_table(
        describe(),
        ["mechanism", "aliases", "privacy", "summary"],
        title="Mechanism registry (repro.mechanisms)",
    )


def generate_report(
    figures: Optional[Sequence[str]] = None,
    scale: Optional[Scale] = None,
    rng: RngLike = 2024,
) -> str:
    """Render the selected figures (default: all) into one report string.

    Every mechanism column in the figures is dispatched through the
    unified registry (:mod:`repro.mechanisms`); the report header includes
    the live registry table so a rendered report records exactly which
    mechanisms (and privacy models) it measured.
    """
    scale = scale or resolve_scale()
    names = list(figures) if figures else list(FIGURES)
    unknown = [n for n in names if n not in FIGURES]
    if unknown:
        raise ValueError(f"unknown figures {unknown}; choose from {sorted(FIGURES)}")
    header = (
        f"Recursive mechanism — reproduction report (scale={scale.name})\n" + "=" * 64
    )
    sections = [header, _registry_section()]
    for name in names:
        sections.append(FIGURES[name](scale, rng))
    return "\n\n".join(sections)
