"""Trial running, accuracy aggregation, scale presets, and the
fork-after-compile experiment sharder (:class:`ParallelHarness`)."""

from __future__ import annotations

import os
import statistics
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..parallel.pool import map_tasks, resolve_workers
from ..rng import RngLike, ensure_rng, spawn_seed_sequences

__all__ = [
    "median_relative_error",
    "aggregate_median",
    "run_mechanism_trials",
    "ParallelHarness",
    "Scale",
    "resolve_scale",
]


def median_relative_error(answers: Sequence[float], true_answer: float) -> float:
    """The paper's accuracy metric (Sec. 6).

    Median over trials of ``|answer - truth| / truth``.  A zero truth with
    any nonzero answer yields ``inf`` (and 0 if all answers are 0) —
    configurations with zero true count are reported as such rather than
    silently skipped.
    """
    if not answers:
        raise ValueError("no answers to aggregate")
    if true_answer == 0:
        errors = [0.0 if a == 0 else float("inf") for a in answers]
    else:
        errors = [abs(a - true_answer) / abs(true_answer) for a in answers]
    return float(statistics.median(errors))


def aggregate_median(values: Sequence[float]) -> float:
    """Median across per-graph results (used when several graphs per point)."""
    if not values:
        raise ValueError("no values to aggregate")
    return float(statistics.median(values))


def run_mechanism_trials(
    run_once: Callable[[object], float],
    true_answer: float,
    trials: int,
    rng: RngLike = None,
    workers: Optional[int] = None,
) -> float:
    """Run ``run_once(generator) -> answer`` repeatedly; median rel. error.

    ``workers=None`` (default) keeps the historical serial behavior: one
    generator threaded through every trial.  An explicit ``workers``
    switches to the deterministic sharded scheme of
    :meth:`ParallelHarness.run_trials` — each repetition gets its own
    spawned seed sequence, and ``workers=1`` releases byte-identical
    answers to ``workers=k`` at a fixed seed.  Pass the *prebuilt*
    ``run_once`` closure (mechanism already compiled): the pool forks
    after compilation, so workers inherit the compiled LP structure
    copy-on-write.
    """
    if workers is None:
        generator = ensure_rng(rng)
        answers = [float(run_once(generator)) for _ in range(trials)]
    else:
        answers = ParallelHarness(workers).run_trials(run_once, trials, rng=rng)
    return median_relative_error(answers, true_answer)


def _trial_task(run_once: Callable[[object], float], seed_sequence) -> float:
    """Worker-side single repetition for :meth:`ParallelHarness.run_trials`."""
    return float(run_once(np.random.default_rng(seed_sequence)))


class ParallelHarness:
    """Shards experiment workloads across a fork-after-compile pool.

    The harness owns the two invariants every parallel experiment path
    shares: workers are forked only *after* the payload (a compiled
    mechanism closure, or nothing for self-contained grid tasks) exists,
    so they inherit it copy-on-write; and randomness is assigned
    per-task up front through :func:`repro.rng.spawn_seed_sequences`, so
    results are a function of the base seed and task order only — never
    of scheduling.  ``workers=1`` (or a platform without ``fork``) runs
    every task in-process with byte-identical results.
    """

    def __init__(self, workers: Optional[int] = None):
        #: resolved worker count (argument > ``$REPRO_WORKERS`` > CPUs)
        self.workers = resolve_workers(workers)

    def map(self, fn: Callable, tasks: Sequence, payload=None) -> list:
        """``[fn(payload, task) for task in tasks]`` across the pool."""
        return map_tasks(fn, tasks, payload=payload, workers=self.workers)

    def run_trials(
        self, run_once: Callable[[object], float], trials: int, rng: RngLike = None
    ) -> List[float]:
        """``trials`` repetitions of ``run_once`` with per-trial seeds."""
        seeds = spawn_seed_sequences(rng, trials)
        return self.map(_trial_task, seeds, payload=run_once)


@dataclass(frozen=True)
class Scale:
    """A benchmark scale preset.

    ``graph_nodes_factor`` multiplies the paper's |V| sweeps; ``trials`` is
    the number of noise draws per configuration; ``graphs_per_point`` the
    number of random graphs aggregated per sweep point;
    ``krelation_factor`` scales |supp(R)| for Fig. 8/9;
    ``dataset_scale`` shrinks the Fig. 6/7 dataset stand-ins;
    ``sweep_points`` caps how many x-axis points of each paper sweep are
    evaluated (evenly spaced, endpoints always included).
    """

    name: str
    graph_nodes_factor: float
    trials: int
    graphs_per_point: int
    krelation_factor: float
    dataset_scale: float
    sweep_points: int

    def subset(self, values: Sequence) -> list:
        """Evenly spaced subset of a paper sweep, endpoints included.

        An empty sweep is always a caller bug (typically an unknown sweep
        or scale name produced no values upstream); silently returning
        ``[]`` used to make whole figure sections vanish mid-sweep, so it
        raises instead.
        """
        values = list(values)
        if not values:
            raise ValueError(
                f"scale {self.name!r}: cannot subset an empty sweep — "
                "check the sweep/scale name upstream; known scale presets "
                f"are {sorted(_SCALES)}"
            )
        if self.sweep_points >= len(values) or len(values) <= 2:
            return values
        k = max(2, self.sweep_points)
        indices = sorted({round(i * (len(values) - 1) / (k - 1)) for i in range(k)})
        return [values[i] for i in indices]


_SCALES = {
    "smoke": Scale("smoke", 0.15, 5, 1, 0.05, 0.02, sweep_points=3),
    "default": Scale("default", 0.2, 7, 1, 0.1, 0.03, sweep_points=4),
    "full": Scale("full", 1.0, 25, 3, 1.0, 1.0, sweep_points=99),
}


def resolve_scale(name: Optional[str] = None) -> Scale:
    """Pick a scale preset: argument > ``$REPRO_BENCH_SCALE`` > default."""
    if name is None:
        name = os.environ.get("REPRO_BENCH_SCALE", "default")
    if name not in _SCALES:
        raise ValueError(f"unknown scale {name!r}; choose from {sorted(_SCALES)}")
    return _SCALES[name]
