"""Fig. 6 / Fig. 7: triangle counting on the real-dataset stand-ins.

Fig. 6 tabulates ``|V|``, ``|E|``, the triangle count and the recursive
mechanism's running time (node and edge privacy) per dataset; Fig. 7
compares the median relative error of the four mechanisms for triangle
counting on the same graphs.  The graphs are synthetic stand-ins with the
paper's |V|/|E| (see :mod:`repro.graphs.datasets` and DESIGN.md §4);
``scale.dataset_scale`` shrinks them for laptop-fast benchmark runs.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from ..core.efficient import EfficientRecursiveMechanism
from ..core.params import RecursiveMechanismParams
from ..graphs.datasets import DATASETS, load_dataset
from ..rng import RngLike, ensure_rng
from ..subgraphs.annotate import subgraph_krelation
from ..subgraphs.counting import count_triangles
from ..subgraphs.patterns import triangle
from .harness import Scale, resolve_scale, run_mechanism_trials
from .mechanisms import MECHANISM_NAMES, make_runner

__all__ = ["fig6_dataset_table", "fig7_accuracy_table", "DEFAULT_DATASETS"]

DEFAULT_DATASETS = tuple(DATASETS)


def fig6_dataset_table(
    datasets: Sequence[str] = DEFAULT_DATASETS,
    epsilon: float = 0.5,
    scale: Optional[Scale] = None,
    rng: RngLike = 0,
) -> List[Dict[str, object]]:
    """Fig. 6: per-dataset sizes, triangle counts and mechanism runtimes."""
    scale = scale or resolve_scale()
    generator = ensure_rng(rng)
    rows: List[Dict[str, object]] = []
    for name in datasets:
        spec = DATASETS[name]
        graph = load_dataset(name, scale=scale.dataset_scale)
        triangles = count_triangles(graph)
        row: Dict[str, object] = {
            "dataset": name,
            "V": graph.num_nodes,
            "E": graph.num_edges,
            "triangles": triangles,
            "paper_V": spec.num_nodes,
            "paper_E": spec.num_edges,
            "paper_triangles": spec.paper_triangles,
        }
        for privacy in ("node", "edge"):
            relation = subgraph_krelation(graph, triangle(), privacy=privacy)
            params = RecursiveMechanismParams.paper(
                epsilon, node_privacy=(privacy == "node")
            )
            start = time.perf_counter()
            mechanism = EfficientRecursiveMechanism(relation)
            mechanism.run(params, generator)
            row[f"{privacy}_seconds"] = time.perf_counter() - start
        rows.append(row)
    return rows


def fig7_accuracy_table(
    datasets: Sequence[str] = DEFAULT_DATASETS,
    mechanisms: Sequence[str] = MECHANISM_NAMES,
    epsilon: float = 0.5,
    scale: Optional[Scale] = None,
    rng: RngLike = 0,
) -> List[Dict[str, object]]:
    """Fig. 7: median relative error of each mechanism per dataset."""
    scale = scale or resolve_scale()
    generator = ensure_rng(rng)
    rows: List[Dict[str, object]] = []
    for name in datasets:
        graph = load_dataset(name, scale=scale.dataset_scale)
        row: Dict[str, object] = {"dataset": name}
        for mechanism in mechanisms:
            run_once, truth = make_runner(mechanism, graph, "triangle", epsilon)
            row[mechanism] = run_mechanism_trials(
                run_once, truth, scale.trials, generator
            )
        rows.append(row)
    return rows
