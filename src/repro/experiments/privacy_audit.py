"""Empirical differential-privacy auditing.

A differentially private mechanism must satisfy, for every pair of
neighboring databases and every output set S,
``Pr[A(D) ∈ S] ≤ e^ε · Pr[A(D') ∈ S] + δ``.  This module estimates the
*empirical privacy loss* of a mechanism by running it many times on a
sensitive K-relation and on a neighbor (one participant withdrawn),
histogramming the outputs on a common grid, and reporting the largest
one-sided log-ratio after a small-count correction.

This cannot *prove* privacy (no finite test can), but it is a strong
regression check: an implementation bug that breaks the Δ̂ / X̂ sensitivity
analysis shows up as an audited loss far above ε.  Used by the test suite
and exposed for library users.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..core.efficient import EfficientRecursiveMechanism
from ..core.params import RecursiveMechanismParams
from ..core.sensitive import SensitiveKRelation
from ..rng import RngLike, ensure_rng

__all__ = ["AuditReport", "audit_mechanism_pair", "audit_krelation_withdrawal"]


@dataclass
class AuditReport:
    """Result of an empirical privacy audit."""

    empirical_epsilon: float
    claimed_epsilon: float
    trials: int
    bins: int
    worst_bin: int

    @property
    def estimation_slack(self) -> float:
        """Allowed overshoot from finite-sample histogram error.

        Per-bin log-ratio noise scales like ``sqrt(bins/trials)``; tail
        bins are systematically lopsided under a quantile grid, so a
        constant floor is added.  The auditor is a regression tripwire for
        gross privacy bugs (wrong noise scale, broken sensitivity), not a
        certifier of the exact ε.
        """
        return 3.0 * math.sqrt(self.bins / max(self.trials, 1)) + 0.1

    @property
    def passed(self) -> bool:
        """Whether the estimate is within the claim plus estimation slack."""
        return self.empirical_epsilon <= self.claimed_epsilon + self.estimation_slack


def audit_mechanism_pair(
    sample_d: Callable[[np.random.Generator], float],
    sample_d_prime: Callable[[np.random.Generator], float],
    claimed_epsilon: float,
    trials: int = 2000,
    bins: int = 24,
    rng: RngLike = 0,
) -> AuditReport:
    """Estimate the privacy loss between two output distributions.

    ``sample_d`` / ``sample_d_prime`` draw one mechanism output on the two
    neighboring databases.  Outputs are binned on a common quantile-based
    grid; the report's ``empirical_epsilon`` is the largest absolute
    log-ratio of (Laplace-smoothed) bin masses.
    """
    generator = ensure_rng(rng)
    a = np.array([sample_d(generator) for _ in range(trials)])
    b = np.array([sample_d_prime(generator) for _ in range(trials)])
    combined = np.concatenate([a, b])
    # quantile grid keeps every bin populated in at least one sample
    edges = np.unique(np.quantile(combined, np.linspace(0, 1, bins + 1)))
    if len(edges) < 3:
        return AuditReport(0.0, claimed_epsilon, trials, bins, -1)
    counts_a, _ = np.histogram(a, bins=edges)
    counts_b, _ = np.histogram(b, bins=edges)
    # add-one smoothing avoids infinite ratios from empty bins
    pa = (counts_a + 1.0) / (counts_a.sum() + len(counts_a))
    pb = (counts_b + 1.0) / (counts_b.sum() + len(counts_b))
    log_ratios = np.abs(np.log(pa) - np.log(pb))
    worst = int(np.argmax(log_ratios))
    return AuditReport(
        empirical_epsilon=float(log_ratios[worst]),
        claimed_epsilon=claimed_epsilon,
        trials=trials,
        bins=len(edges) - 1,
        worst_bin=worst,
    )


def audit_krelation_withdrawal(
    relation: SensitiveKRelation,
    params: RecursiveMechanismParams,
    participant: Optional[str] = None,
    trials: int = 2000,
    bins: int = 24,
    rng: RngLike = 0,
) -> AuditReport:
    """Audit the efficient mechanism across one participant withdrawal.

    Builds the mechanism for ``relation`` and for
    ``relation.withdraw(participant)`` (default: the participant with the
    largest impact — the adversarially hardest neighbor) and compares the
    output distributions.
    """
    if participant is None:
        from ..core.queries import CountQuery
        from ..core.sensitivity import universal_empirical_sensitivity

        query = CountQuery()
        participant = max(
            relation.participants,
            key=lambda p: (universal_empirical_sensitivity(query, relation, p), p),
        )
    mech_full = EfficientRecursiveMechanism(relation)
    mech_less = EfficientRecursiveMechanism(relation.withdraw(participant))
    return audit_mechanism_pair(
        lambda g: mech_full.run(params, g).answer,
        lambda g: mech_less.run(params, g).answer,
        claimed_epsilon=params.epsilon,
        trials=trials,
        bins=bins,
        rng=rng,
    )
