"""Fig. 4: accuracy comparison on random graphs.

The paper sweeps three knobs, holding the others at ε = 0.5, |V| = 200,
avgdeg = 10:

* **(a)** number of nodes ∈ {20, 40, ..., 200};
* **(b)** average degree ∈ {2, 4, ..., 16};
* **(c)** ε ∈ {0.1, ..., 0.5};

for the three queries (triangle, 2-star, 2-triangle) and four mechanisms
(recursive node/edge privacy, local-sensitivity, RHMS), reporting median
relative error over repeated runs on several random graphs per point.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..graphs.generators import random_graph_with_avg_degree
from ..rng import RngLike, ensure_rng, split_rng
from .harness import Scale, aggregate_median, resolve_scale, run_mechanism_trials
from .mechanisms import MECHANISM_NAMES, QUERY_NAMES, make_runner

__all__ = [
    "accuracy_point",
    "fig4a_nodes_sweep",
    "fig4b_avgdeg_sweep",
    "fig4c_epsilon_sweep",
    "PAPER_NODE_SWEEP",
    "PAPER_AVGDEG_SWEEP",
    "PAPER_EPSILON_SWEEP",
]

PAPER_NODE_SWEEP = (20, 40, 60, 80, 100, 120, 140, 160, 180, 200)
PAPER_AVGDEG_SWEEP = (2, 4, 6, 8, 10, 12, 14, 16)
PAPER_EPSILON_SWEEP = (0.1, 0.2, 0.3, 0.4, 0.5)


def accuracy_point(
    num_nodes: int,
    avgdeg: float,
    query: str,
    mechanism: str,
    epsilon: float,
    scale: Scale,
    rng: RngLike = None,
) -> float:
    """Median relative error for one (graph config, query, mechanism) point.

    Aggregates the per-graph median over ``scale.graphs_per_point`` random
    graphs, each with ``scale.trials`` noise draws — the paper's "generate
    several different graphs by random, run every mechanism many times".
    """
    generator = ensure_rng(rng)
    graph_rngs = split_rng(generator, scale.graphs_per_point)
    per_graph: List[float] = []
    for graph_rng in graph_rngs:
        graph = random_graph_with_avg_degree(num_nodes, avgdeg, graph_rng)
        run_once, truth = make_runner(mechanism, graph, query, epsilon)
        per_graph.append(run_mechanism_trials(run_once, truth, scale.trials, graph_rng))
    return aggregate_median(per_graph)


def _scaled_nodes(scale: Scale, values: Sequence[int]) -> List[int]:
    scaled = [max(16, int(round(v * scale.graph_nodes_factor))) for v in values]
    return sorted(set(scaled))


def fig4a_nodes_sweep(
    queries: Sequence[str] = QUERY_NAMES,
    mechanisms: Sequence[str] = MECHANISM_NAMES,
    epsilon: float = 0.5,
    avgdeg: float = 10.0,
    scale: Optional[Scale] = None,
    rng: RngLike = 0,
) -> Dict[str, Dict[str, List[float]]]:
    """Fig. 4(a): error vs number of nodes.

    Returns ``{query: {mechanism: [error per node count]}}`` along with the
    node counts used under ``result["_nodes"]``-style metadata left to the
    caller (the benchmark prints them via the reporting module).
    """
    scale = scale or resolve_scale()
    nodes = _scaled_nodes(scale, scale.subset(PAPER_NODE_SWEEP))
    generator = ensure_rng(rng)
    out: Dict[str, Dict[str, List[float]]] = {
        "_x": {"nodes": [float(n) for n in nodes]}
    }
    for query in queries:
        out[query] = {}
        for mechanism in mechanisms:
            errors = []
            for n in nodes:
                errors.append(
                    accuracy_point(
                        n, avgdeg, query, mechanism, epsilon, scale, generator
                    )
                )
            out[query][mechanism] = errors
    return out


def fig4b_avgdeg_sweep(
    queries: Sequence[str] = QUERY_NAMES,
    mechanisms: Sequence[str] = MECHANISM_NAMES,
    epsilon: float = 0.5,
    num_nodes: int = 200,
    scale: Optional[Scale] = None,
    rng: RngLike = 0,
) -> Dict[str, Dict[str, List[float]]]:
    """Fig. 4(b): error vs average degree at fixed |V|."""
    scale = scale or resolve_scale()
    n = max(16, int(round(num_nodes * scale.graph_nodes_factor)))
    generator = ensure_rng(rng)
    out: Dict[str, Dict[str, List[float]]] = {
        "_x": {"avgdeg": [float(d) for d in scale.subset(PAPER_AVGDEG_SWEEP)]}
    }
    for query in queries:
        out[query] = {}
        for mechanism in mechanisms:
            errors = []
            for avgdeg in scale.subset(PAPER_AVGDEG_SWEEP):
                errors.append(
                    accuracy_point(
                        n, avgdeg, query, mechanism, epsilon, scale, generator
                    )
                )
            out[query][mechanism] = errors
    return out


def fig4c_epsilon_sweep(
    queries: Sequence[str] = QUERY_NAMES,
    mechanisms: Sequence[str] = MECHANISM_NAMES,
    num_nodes: int = 200,
    avgdeg: float = 10.0,
    scale: Optional[Scale] = None,
    rng: RngLike = 0,
) -> Dict[str, Dict[str, List[float]]]:
    """Fig. 4(c): error vs ε at fixed |V| and average degree."""
    scale = scale or resolve_scale()
    n = max(16, int(round(num_nodes * scale.graph_nodes_factor)))
    generator = ensure_rng(rng)
    out: Dict[str, Dict[str, List[float]]] = {
        "_x": {"epsilon": list(scale.subset(PAPER_EPSILON_SWEEP))}
    }
    for query in queries:
        out[query] = {}
        for mechanism in mechanisms:
            errors = []
            for epsilon in scale.subset(PAPER_EPSILON_SWEEP):
                errors.append(
                    accuracy_point(
                        n, avgdeg, query, mechanism, epsilon, scale, generator
                    )
                )
            out[query][mechanism] = errors
    return out
