"""Plain-text rendering of experiment results.

The paper's figures are log-scale line plots; a terminal reproduction
prints the same series as aligned tables so "who wins, by what factor,
where the crossovers fall" is readable at a glance.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Sequence

__all__ = ["format_table", "format_series", "format_value"]


def format_value(value, precision: int = 4) -> str:
    """Compact numeric formatting: scientific for extremes, inf-safe."""
    if value is None:
        return "-"
    if isinstance(value, str):
        return value
    value = float(value)
    if math.isinf(value):
        return "inf"
    if math.isnan(value):
        return "nan"
    if value == int(value) and abs(value) < 10**12:
        return str(int(value))
    if value != 0 and (abs(value) >= 10**6 or abs(value) < 10**-precision):
        return f"{value:.2e}"
    return f"{value:.{precision}g}"


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str],
    title: str = "",
) -> str:
    """Fixed-width table from a list of dict rows."""
    rendered: List[List[str]] = [[str(c) for c in columns]]
    for row in rows:
        rendered.append([format_value(row.get(c)) for c in columns])
    widths = [max(len(r[i]) for r in rendered) for i in range(len(columns))]
    lines = []
    if title:
        lines.append(title)
    header, *body = rendered
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_name: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    title: str = "",
) -> str:
    """One row per x value, one column per named series (a figure's lines)."""
    rows = []
    for index, x in enumerate(x_values):
        row: Dict[str, object] = {x_name: x}
        for name, values in series.items():
            row[name] = values[index] if index < len(values) else None
        rows.append(row)
    return format_table(rows, [x_name, *series.keys()], title=title)
