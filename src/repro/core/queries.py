"""Query objects: monotonic queries and nonnegative linear queries.

A *linear query* ``q = q+ ∘ q*`` (Def. 11) first derives a finite tuple set
from the database and then sums a nonnegative per-tuple weight ``q+``
(Def. 12).  In this package the derivation step lives in the sensitive
K-relation (its annotations already describe ``q*`` applied to every world),
so a :class:`LinearQuery` is just the weight function.

Weights must be nonnegative; a signed linear function should be decomposed
as ``q+ = max(0, q+) - max(0, -q+)`` and each part answered separately
(Sec. 3.2) — :func:`decompose_signed` does this.
"""

from __future__ import annotations

from typing import Callable, Tuple

from ..errors import MechanismError

__all__ = ["LinearQuery", "CountQuery", "SumQuery", "WeightedQuery", "decompose_signed"]


class LinearQuery:
    """A nonnegative per-tuple weight ``q+``.

    Subclasses implement :meth:`weight`; the base class adds the summed
    evaluation over tuple collections and validation.
    """

    def weight(self, tup) -> float:
        """The raw (unvalidated) weight ``q+(t)``."""
        raise NotImplementedError

    def __call__(self, tup) -> float:
        value = float(self.weight(tup))
        if value < 0:
            raise MechanismError(
                f"linear query produced negative weight {value} for {tup!r}; "
                "decompose signed queries with decompose_signed()"
            )
        return value

    def total(self, tuples) -> float:
        """``q+(T) = Σ_{t∈T} q+(t)``."""
        return float(sum(self(tup) for tup in tuples))


class CountQuery(LinearQuery):
    """``q(t) = 1`` — the counting query (e.g. subgraph counting)."""

    def weight(self, tup) -> float:
        return 1.0

    def __repr__(self) -> str:
        return "CountQuery()"


class WeightedQuery(LinearQuery):
    """An arbitrary nonnegative weight given by a Python callable."""

    def __init__(self, fn: Callable[[object], float], name: str = "weighted"):
        self._fn = fn
        self.name = name

    def weight(self, tup) -> float:
        return float(self._fn(tup))

    def __repr__(self) -> str:
        return f"WeightedQuery({self.name})"


class SumQuery(LinearQuery):
    """Sum of a nonnegative numeric attribute of relational tuples."""

    def __init__(self, attribute: str):
        self.attribute = attribute

    def weight(self, tup) -> float:
        return float(tup[self.attribute])

    def __repr__(self) -> str:
        return f"SumQuery({self.attribute!r})"


def decompose_signed(fn: Callable[[object], float]) -> Tuple[LinearQuery, LinearQuery]:
    """Split a signed weight into its positive and negative parts.

    Returns ``(q_pos, q_neg)`` with ``fn(t) = q_pos(t) - q_neg(t)`` and both
    parts nonnegative; answer each with its own privacy budget and subtract.
    """
    positive = WeightedQuery(lambda t: max(0.0, float(fn(t))), name="positive-part")
    negative = WeightedQuery(lambda t: max(0.0, -float(fn(t))), name="negative-part")
    return positive, negative
