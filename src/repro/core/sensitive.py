"""Sensitive databases and sensitive K-relations (Def. 5–7, 13–14).

A *sensitive database* is a pair ``(P, M)``: a finite participant set and a
content map ``M : 2^P → D`` describing what the database would contain for
every participant subset.  Two sensitive databases are *neighboring* when one
is obtained from the other by a single participant withdrawing (Def. 6), and
``(P1, M1) ⪯ (P2, M2)`` (*ancestor*, Def. 7) when ``P1 ⊆ P2`` and the
content maps agree on subsets of ``P1``.

A *sensitive K-relation* ``(P, R)`` specializes the content map to a
provenance-annotated relation: each tuple carries a positive Boolean
expression over ``P`` giving its condition of presence.  Neighboring for
K-relations (Def. 14) compares annotations up to φ-equivalence after the
``p → False`` substitution.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..algebra.krelation import KRelation
from ..algebra.semiring import PROVENANCE
from ..algebra.tuples import Tup
from ..boolexpr.expr import FALSE, TRUE, Expr
from ..boolexpr.transform import minimal_dnf, restrict
from ..errors import AnnotationError, SensitiveModelError
from ..relax.phi import phi_equivalent

__all__ = [
    "SensitiveDatabase",
    "SensitiveKRelation",
    "are_neighboring_databases",
    "are_neighboring_krelations",
]


class SensitiveDatabase:
    """The general ``(P, M)`` model (Def. 5).

    Parameters
    ----------
    participants:
        The participant identifiers ``P``.
    content_fn:
        ``M`` — maps a frozenset ``P' ⊆ P`` to the database content for
        that subset.  Must be deterministic and defined on every subset.

    The class never materializes all ``2^|P|`` contents; callers (e.g. the
    general mechanism) decide which subsets to visit.
    """

    def __init__(
        self,
        participants: Iterable[str],
        content_fn: Callable[[FrozenSet[str]], object],
    ):
        self.participants: FrozenSet[str] = frozenset(participants)
        self._content_fn = content_fn

    def content(self, subset: Optional[Iterable[str]] = None):
        """``M(P')``; defaults to the full participant set."""
        if subset is None:
            subset = self.participants
        subset = frozenset(subset)
        extra = subset - self.participants
        if extra:
            raise SensitiveModelError(f"unknown participants {sorted(extra)}")
        return self._content_fn(subset)

    def restrict(self, subset: Iterable[str]) -> "SensitiveDatabase":
        """The ancestor ``(P', M|P')`` for ``P' ⊆ P`` (Def. 7)."""
        subset = frozenset(subset)
        extra = subset - self.participants
        if extra:
            raise SensitiveModelError(f"unknown participants {sorted(extra)}")
        return SensitiveDatabase(subset, self._content_fn)

    def without(self, participant: str) -> "SensitiveDatabase":
        """The neighbor where ``participant`` withdraws (Def. 6)."""
        if participant not in self.participants:
            raise SensitiveModelError(f"{participant!r} is not a participant")
        return self.restrict(self.participants - {participant})

    def __len__(self) -> int:
        return len(self.participants)

    def __repr__(self) -> str:
        return f"SensitiveDatabase(|P|={len(self.participants)})"


def are_neighboring_databases(
    d1: SensitiveDatabase, d2: SensitiveDatabase, subsets_to_check: int = 64
) -> bool:
    """Check Def. 6 (probabilistically for large ``P``).

    Verifies the symmetric difference of participant sets has size one and
    that the content maps agree on subsets of the intersection.  For small
    intersections all subsets are checked; otherwise a deterministic sample
    of ``subsets_to_check`` subsets (all singletons plus prefixes) is used.
    """
    p1, p2 = d1.participants, d2.participants
    if len(p1 - p2) + len(p2 - p1) != 1:
        return False
    shared = p1 & p2
    ordered = sorted(shared)
    candidates: List[FrozenSet[str]] = [frozenset()]
    if len(ordered) <= 6:
        import itertools

        for r in range(1, len(ordered) + 1):
            candidates.extend(frozenset(c) for c in itertools.combinations(ordered, r))
    else:
        candidates.extend(frozenset((p,)) for p in ordered)
        for cut in range(1, min(len(ordered), subsets_to_check)):
            candidates.append(frozenset(ordered[:cut]))
        candidates.append(frozenset(ordered))
    return all(d1.content(s) == d2.content(s) for s in candidates)


class SensitiveKRelation:
    """A sensitive relation represented as a c-table / K-relation (Sec. 3.2).

    Parameters
    ----------
    participants:
        All participants ``P`` — a superset of the variables appearing in
        the annotations (participants contributing no tuple are legal and
        affect the mechanism's ``H_i``/``G_i`` indices).
    relation:
        Either a provenance-semiring :class:`~repro.algebra.KRelation` or an
        iterable of ``(tuple, annotation)`` pairs.  ``tuple`` may be any
        hashable value when not using the relational layer.
    validate:
        When True (default), enforce the model invariants: annotations are
        positive expressions over ``P``; no tuple is annotated ``TRUE``
        (such a tuple would be present in ``M(∅)``, violating the
        monotonic-query requirement ``q(D0) = 0``); ``FALSE`` annotations
        are dropped (zero of the semiring).
    """

    def __init__(self, participants: Iterable[str], relation, validate: bool = True):
        self.participants: FrozenSet[str] = frozenset(participants)
        pairs: List[Tuple[object, Expr]] = []
        if isinstance(relation, KRelation):
            items: Iterable[Tuple[object, Expr]] = relation.items()
        else:
            items = relation
        for tup, annotation in items:
            if not isinstance(annotation, Expr):
                raise AnnotationError(
                    f"annotation for {tup!r} is not a positive Boolean expression"
                )
            if annotation == FALSE:
                continue
            if validate:
                if annotation == TRUE:
                    raise AnnotationError(
                        f"tuple {tup!r} is annotated TRUE: it would be present "
                        "with zero participants, violating q(D0) = 0"
                    )
                extra = annotation.variables() - self.participants
                if extra:
                    raise AnnotationError(
                        f"annotation of {tup!r} references "
                        f"non-participants {sorted(extra)}"
                    )
            pairs.append((tup, annotation))
        self._pairs: Tuple[Tuple[object, Expr], ...] = tuple(pairs)

    @classmethod
    def from_query(
        cls,
        query,
        tables,
        participants: Iterable[str],
        normalize: bool = True,
    ) -> "SensitiveKRelation":
        """Evaluate a positive RA query and wrap its output table.

        Parameters
        ----------
        query:
            A :class:`repro.algebra.Query` over provenance-annotated base
            tables.
        tables:
            ``name -> KRelation`` base-table assignment (provenance
            semiring; annotations over ``participants``).
        participants:
            The full participant set ``P``.
        normalize:
            Rewrite output annotations to canonical minimal DNF (the
            paper's safe-annotation discipline, ``S ≤ 1``); set False to
            keep the raw algebra provenance (still safe, possibly with
            repeated variables from self-joins and hence larger
            φ-sensitivity).

        This is the "SQL query → differentially private aggregate"
        pipeline of Sec. 1 in one call::

            relation = SensitiveKRelation.from_query(query, {"E": edges}, P)
            result = private_linear_query(relation, epsilon=1.0,
                                          node_privacy=True)
        """
        output = query.evaluate(tables)
        relation = cls(participants, output)
        if normalize:
            relation = relation.normalized()
        return relation

    # -- basic views ---------------------------------------------------------
    def items(self) -> Tuple[Tuple[object, Expr], ...]:
        """The ``(tuple, annotation)`` pairs of the support."""
        return self._pairs

    def support(self) -> Tuple[object, ...]:
        """``supp(R)`` — the tuples, in insertion order."""
        return tuple(tup for tup, _ in self._pairs)

    def annotations(self) -> Tuple[Expr, ...]:
        """The annotations, aligned with :meth:`support`."""
        return tuple(annotation for _, annotation in self._pairs)

    def __len__(self) -> int:
        return len(self._pairs)

    @property
    def num_participants(self) -> int:
        return len(self.participants)

    def total_annotation_length(self) -> int:
        """``L`` — total length of all annotations (Sec. 5.3)."""
        return sum(annotation.leaf_count() for _, annotation in self._pairs)

    # -- worlds ---------------------------------------------------------------
    def world(self, subset: Iterable[str]) -> FrozenSet[object]:
        """``M(P')``: the tuples present when only ``subset`` participates."""
        subset = frozenset(subset)
        extra = subset - self.participants
        if extra:
            raise SensitiveModelError(f"unknown participants {sorted(extra)}")
        assignment = {p: True for p in subset}
        return frozenset(
            tup for tup, annotation in self._pairs if annotation.evaluate(assignment)
        )

    def as_sensitive_database(self) -> SensitiveDatabase:
        """View as a general sensitive database mapping subsets to worlds."""
        return SensitiveDatabase(self.participants, self.world)

    # -- restriction (participant withdrawal) ------------------------------------
    def withdraw(self, *names: str) -> "SensitiveKRelation":
        """The neighbor/ancestor where ``names`` withdraw their data.

        Annotations are rewritten by ``k|p→False`` followed by the
        φ-invariant identity/annihilator folding; tuples whose annotation
        collapses to ``FALSE`` disappear.  By construction the result is
        neighboring with ``self`` (Def. 14) when a single name is given.
        """
        for name in names:
            if name not in self.participants:
                raise SensitiveModelError(f"{name!r} is not a participant")
        removed = set(names)
        new_pairs = []
        for tup, annotation in self._pairs:
            new_annotation = restrict(annotation, {name: False for name in removed})
            if new_annotation == FALSE:
                continue
            new_pairs.append((tup, new_annotation))
        return SensitiveKRelation(
            self.participants - removed, new_pairs, validate=False
        )

    def normalized(self) -> "SensitiveKRelation":
        """Rewrite every annotation into canonical minimal DNF.

        This is the paper's "always expand into disjunctive normal form"
        discipline: the result has φ-sensitivity ``S ≤ 1`` and canonical
        annotations (truth-table equivalent inputs become identical), at the
        cost of a possibly exponential expansion for deeply nested CNF-like
        annotations.
        """
        return SensitiveKRelation(
            self.participants,
            [(tup, minimal_dnf(annotation)) for tup, annotation in self._pairs],
            validate=False,
        )

    def __repr__(self) -> str:
        return (
            f"SensitiveKRelation(|P|={len(self.participants)}, "
            f"|supp(R)|={len(self._pairs)}, L={self.total_annotation_length()})"
        )


def are_neighboring_krelations(r1: SensitiveKRelation, r2: SensitiveKRelation) -> bool:
    """Def. 14: neighboring sensitive K-relations up to φ-equivalence.

    ``(P1, R1)`` and ``(P2, R2)`` with ``P2 = P1 ∪ {p}`` are neighboring if
    ``R1(t) ~ R2(t)|p→False`` for every tuple, where ``~`` is φ-equivalence
    (Def. 19).  The check is symmetric in its arguments.
    """
    if (
        len(r2.participants - r1.participants) == 1
        and r1.participants <= r2.participants
    ):
        smaller, larger = r1, r2
    elif (
        len(r1.participants - r2.participants) == 1
        and r2.participants <= r1.participants
    ):
        smaller, larger = r2, r1
    else:
        return False
    (p,) = tuple(larger.participants - smaller.participants)
    reduced: Dict[object, Expr] = {}
    for tup, annotation in larger.items():
        restricted = restrict(annotation, {p: False})
        if restricted != FALSE:
            reduced[tup] = restricted
    small = dict(smaller.items())
    if set(reduced) != set(small):
        return False
    return all(phi_equivalent(reduced[tup], small[tup]) for tup in reduced)
