"""Sequential-composition privacy budget accounting.

Differential privacy composes additively over sequential releases on the
same database: running an ε₁-DP and then an ε₂-DP mechanism is
(ε₁+ε₂)-DP.  :class:`PrivacyAccountant` tracks a total budget and gates
mechanism runs on it, so a workload of several statistics (e.g. triangle,
2-star and 2-triangle counts of the same graph) carries an explicit global
guarantee.

The recursive mechanism itself is internally a sequential composition of
its Δ̂ release (ε₁) and X̂ release (ε₂); the accountant charges the total
``params.epsilon`` per run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..errors import PrivacyParameterError
from ..rng import RngLike
from .framework import MechanismResult, RecursiveMechanismBase
from .params import RecursiveMechanismParams

__all__ = ["PrivacyAccountant", "BudgetExceededError"]


class BudgetExceededError(PrivacyParameterError):
    """Raised when a release would exceed the remaining privacy budget."""


@dataclass
class PrivacyAccountant:
    """A simple sequential-composition (pure ε) accountant.

    >>> accountant = PrivacyAccountant(total_epsilon=1.0)
    >>> accountant.charge(0.4, label="triangles")
    >>> accountant.remaining
    0.6
    """

    total_epsilon: float
    total_delta: float = 0.0
    _spent_epsilon: float = field(default=0.0, init=False)
    _spent_delta: float = field(default=0.0, init=False)
    _ledger: List[Tuple[str, float, float]] = field(default_factory=list, init=False)

    def __post_init__(self):
        if self.total_epsilon <= 0:
            raise PrivacyParameterError(
                f"total epsilon must be positive, got {self.total_epsilon}"
            )
        if self.total_delta < 0:
            raise PrivacyParameterError(
                f"total delta must be nonnegative, got {self.total_delta}"
            )

    # -- bookkeeping ---------------------------------------------------------
    @property
    def spent(self) -> float:
        return self._spent_epsilon

    @property
    def remaining(self) -> float:
        return self.total_epsilon - self._spent_epsilon

    @property
    def ledger(self) -> List[Tuple[str, float, float]]:
        """``(label, epsilon, delta)`` per charged release."""
        return list(self._ledger)

    def can_afford(self, epsilon: float, delta: float = 0.0) -> bool:
        """Whether a further ``(ε, δ)`` release fits the remaining budget."""
        return (
            self._spent_epsilon + epsilon <= self.total_epsilon + 1e-12
            and self._spent_delta + delta <= self.total_delta + 1e-12
        )

    def charge(
        self, epsilon: float, delta: float = 0.0, label: str = "release"
    ) -> None:
        """Record a release; raises :class:`BudgetExceededError` if over."""
        if epsilon <= 0:
            raise PrivacyParameterError(f"epsilon must be positive, got {epsilon}")
        if not self.can_afford(epsilon, delta):
            raise BudgetExceededError(
                f"release {label!r} (eps={epsilon}, delta={delta}) exceeds the "
                f"remaining budget (eps={self.remaining:.6g}, "
                f"delta={self.total_delta - self._spent_delta:.6g})"
            )
        self._spent_epsilon += epsilon
        self._spent_delta += delta
        self._ledger.append((label, epsilon, delta))

    # -- gated mechanism execution -----------------------------------------------
    def run(
        self,
        mechanism: RecursiveMechanismBase,
        params: RecursiveMechanismParams,
        rng: RngLike = None,
        label: str = "recursive-mechanism",
    ) -> MechanismResult:
        """Charge ``params.epsilon`` and run the mechanism (atomic: the
        budget is only charged if the run succeeds)."""
        if not self.can_afford(params.epsilon):
            raise BudgetExceededError(
                f"release {label!r} needs eps={params.epsilon} but only "
                f"{self.remaining:.6g} remains"
            )
        result = mechanism.run(params, rng)
        self.charge(params.epsilon, label=label)
        return result
