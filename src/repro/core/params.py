"""Mechanism parameters and the Theorem-1 accuracy bound.

The recursive mechanism spends its privacy budget in two parts:
``ε1`` on releasing the noisy bound ``Δ̂`` and ``ε2`` on releasing the noisy
answer ``X̂`` (total ``ε1 + ε2``).  The remaining knobs:

* ``β`` — the grid step of Eq. 11 (``ln Δ`` has global sensitivity ≤ β,
  Lemma 1);
* ``θ`` — the floor of the Δ grid;
* ``μ`` — the upward bias applied to Δ̂ so that ``Δ̂ ≥ Δ`` except with
  probability ``e^{-μ ε1/β}/2`` (Lemma 6);
* ``g`` — the bounding-sequence slack (1 for the general implementation,
  2 for the efficient one, Thm. 4).

The paper's experiments use ``θ = 1``, ``β = ε/5``, ``μ = 0.5`` (edge
privacy) or ``μ = 1`` (node privacy); :meth:`RecursiveMechanismParams.paper`
reproduces those choices with an even ``ε1 = ε2 = ε/2`` split.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import PrivacyParameterError

__all__ = [
    "RecursiveMechanismParams",
    "theorem1_error_bound",
    "group_privacy_epsilon",
]


@dataclass(frozen=True)
class RecursiveMechanismParams:
    """Immutable parameter bundle for the recursive mechanism."""

    epsilon1: float
    epsilon2: float
    beta: float
    theta: float = 1.0
    mu: float = 0.5
    g: int = 1

    def __post_init__(self):
        if self.epsilon1 <= 0 or self.epsilon2 <= 0:
            raise PrivacyParameterError(
                f"epsilon1 and epsilon2 must be positive, got "
                f"{self.epsilon1}, {self.epsilon2}"
            )
        if self.beta <= 0:
            raise PrivacyParameterError(f"beta must be positive, got {self.beta}")
        if self.theta <= 0:
            raise PrivacyParameterError(f"theta must be positive, got {self.theta}")
        if self.mu <= 0:
            raise PrivacyParameterError(f"mu must be positive, got {self.mu}")
        if self.g < 1:
            raise PrivacyParameterError(f"g must be >= 1, got {self.g}")

    @property
    def epsilon(self) -> float:
        """The total privacy budget ``ε = ε1 + ε2``."""
        return self.epsilon1 + self.epsilon2

    @classmethod
    def paper(
        cls,
        epsilon: float,
        node_privacy: bool = False,
        g: int = 2,
        split: float = 0.5,
    ) -> "RecursiveMechanismParams":
        """The experimental settings of Sec. 6.

        ``θ = 1``, ``β = ε/5``, ``μ = 1`` for node privacy else ``0.5``;
        ``ε`` is split ``split : 1-split`` between ε1 and ε2.
        """
        if epsilon <= 0:
            raise PrivacyParameterError(f"epsilon must be positive, got {epsilon}")
        if not 0 < split < 1:
            raise PrivacyParameterError(f"split must be in (0,1), got {split}")
        return cls(
            epsilon1=split * epsilon,
            epsilon2=(1.0 - split) * epsilon,
            beta=epsilon / 5.0,
            theta=1.0,
            mu=1.0 if node_privacy else 0.5,
            g=g,
        )

    def failure_probability(self, c: float) -> float:
        """Theorem 1's failure probability ``e^{-μ ε1/β} + e^{-c}``."""
        return math.exp(-self.mu * self.epsilon1 / self.beta) + math.exp(-c)


def group_privacy_epsilon(params: RecursiveMechanismParams, group_size: int) -> float:
    """The guarantee against coordinated withdrawal of ``k`` participants.

    Pure ε-differential privacy degrades linearly under group privacy: an
    ε-DP mechanism is (k·ε)-DP for groups of ``k`` neighbors (a chain of
    ``k`` single withdrawals).  Useful when one real-world entity
    contributes several participants (e.g. one person controlling several
    accounts = several graph nodes).
    """
    if group_size < 1:
        raise PrivacyParameterError(f"group size must be >= 1, got {group_size}")
    return group_size * params.epsilon


def theorem1_error_bound(
    params: RecursiveMechanismParams, g_final: float, c: float = 3.0
) -> float:
    """The Theorem-1 error bound for a database with ``G_{|P|} = g_final``.

    With probability at least ``1 - e^{-μ ε1/β} - e^{-c}`` the mechanism's
    error is at most::

        e^{2μ} Δ* c / ε2  +  g ⌈ln(Δ*/θ)/β⌉ G_{|P|}

    where ``Δ* = max(θ, e^β G_{|P|})``.
    """
    if c <= 0:
        raise PrivacyParameterError(f"c must be positive, got {c}")
    delta_star = max(params.theta, math.exp(params.beta) * g_final)
    log_term = (
        math.ceil(math.log(delta_star / params.theta) / params.beta)
        if delta_star > params.theta
        else 0
    )
    return (
        math.exp(2 * params.mu) * delta_star * c / params.epsilon2
        + params.g * log_term * g_final
    )
