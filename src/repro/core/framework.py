"""The recursive mechanism skeleton (Sec. 4.1).

Both implementations share the same three steps, differing only in how they
evaluate entries of the recursive sequence ``H`` and its g-bounding sequence
``G``:

1. ``Δ = min{ e^{iβ}θ : G_{|P|-i} ≤ e^{iβ}θ }``  (Eq. 11).  ``ln Δ`` has
   global sensitivity ≤ β (Lemma 1), so releasing
   ``Δ̂ = e^{μ+Y}·Δ`` with ``Y ~ Lap(β/ε1)`` is ε1-differentially private
   (Lemma 4).
2. ``X = min_i { H_i + (|P|-i)·Δ̂ }``  (Eq. 12); for any fixed ``Δ̂ ≥ 0``,
   ``X`` has global sensitivity ≤ Δ̂ (Lemma 7).
3. Release ``X̂ = X + Lap(Δ̂/ε2)`` — ε2-differentially private, giving
   ``(ε1+ε2)``-differential privacy overall (Theorem 1).

Because ``G_i`` is nondecreasing in ``i``, ``G_{|P|-j} - e^{jβ}θ`` is
nonincreasing in ``j`` and the minimal feasible ``j`` is found by binary
search over ``O(log)`` G-entries (Sec. 5.3).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import MechanismError
from ..parallel.pool import map_tasks
from ..results import ResultBase
from ..rng import RngLike, ensure_rng, laplace, spawn_seed_sequences
from .params import RecursiveMechanismParams

__all__ = ["MechanismResult", "RecursiveMechanismBase"]


def _index_key(i):
    """Cache key for a sequence index: int when integral, else float.

    Integral floats must share the slot with int callers, and genuine
    fractional indices (``solve_h``/``solve_g`` support them) must not be
    truncated onto their floor's entry.
    """
    return int(i) if float(i) == int(i) else float(i)


@dataclass
class MechanismResult(ResultBase):
    """Everything the mechanism run produced.

    Only :attr:`answer` is differentially private output; the remaining
    fields are diagnostics for experiments (they must not be released to an
    untrusted party — in particular :attr:`delta` and :attr:`x_value` are
    the *pre-noise* intermediates).  Error accounting
    (``absolute_error`` / ``relative_error``) comes from
    :class:`~repro.results.ResultBase`.
    """

    answer: float
    delta: float
    delta_hat: float
    x_value: float
    x_index: float
    j_star: int
    params: RecursiveMechanismParams
    true_answer: Optional[float] = None
    seconds: float = 0.0
    diagnostics: Dict[str, float] = field(default_factory=dict)


class RecursiveMechanismBase:
    """Shared Δ/X machinery; subclasses provide the sequence entries.

    Subclasses implement :meth:`_h_entry` and :meth:`_g_entry` (both are
    cached here) and may override :meth:`_compute_x` when they can do better
    than scanning every index (the efficient mechanism solves one LP and
    two H-entries instead).
    """

    def __init__(self):
        self._h_cache: Dict[int, float] = {}
        self._g_cache: Dict[int, float] = {}
        # (i, threshold) -> bool, for Δ searches that probe the predicate
        # G_i <= threshold without materializing the exact entry
        self._g_pred_cache: Dict[Tuple[int, float], bool] = {}

    # -- to be provided by implementations --------------------------------------
    @property
    def num_participants(self) -> int:
        raise NotImplementedError

    def _h_entry(self, i: int) -> float:
        raise NotImplementedError

    def _h_entries(self, indices) -> list:
        """Batch hook for ``H``; the default evaluates pointwise.

        An implementation whose solver offers a genuinely batched solve
        can override this; today every backend solves sequentially."""
        return [self._h_entry(i) for i in indices]

    def _g_entry(self, i: int) -> float:
        raise NotImplementedError

    def true_answer(self) -> Optional[float]:
        """``H_{|P|}`` when known exactly (for diagnostics), else None."""
        return None

    # -- cached access ------------------------------------------------------------
    def h_entry(self, i: int) -> float:
        """Cached ``H_i``."""
        if i not in self._h_cache:
            self._h_cache[i] = float(self._h_entry(i))
        return self._h_cache[i]

    def h_entries(self, indices) -> list:
        """Cached batched ``H`` — the misses go through :meth:`_h_entries`
        in one round trip (the batched entry point used by the X step and
        the runtime harness)."""
        wanted = [_index_key(i) for i in indices]
        missing: list = []
        for i in wanted:
            if i not in self._h_cache and i not in missing:
                missing.append(i)
        if missing:
            values = self._h_entries(missing)
            if len(values) != len(missing):
                raise MechanismError(
                    f"batched H solve returned {len(values)} values "
                    f"for {len(missing)} indices"
                )
            for i, value in zip(missing, values):
                self._h_cache[i] = float(value)
        return [self._h_cache[i] for i in wanted]

    def g_entry(self, i: int) -> float:
        """Cached ``G_i``."""
        if i not in self._g_cache:
            self._g_cache[i] = float(self._g_entry(i))
        return self._g_cache[i]

    def g_entry_leq(self, i: int, threshold: float) -> bool:
        """The monotone predicate ``G_i ≤ threshold`` — all the Δ search
        consumes.  The default compares the (cached) exact entry;
        implementations with a cheaper exact threshold test override
        :meth:`_g_predicate`."""
        index = _index_key(i)
        if index in self._g_cache:
            return self._g_cache[index] <= threshold
        key = (index, float(threshold))
        if key not in self._g_pred_cache:
            self._g_pred_cache[key] = bool(self._g_predicate(i, threshold))
        return self._g_pred_cache[key]

    def _g_predicate(self, i: int, threshold: float) -> bool:
        """Predicate hook; the default evaluates the exact entry."""
        return self.g_entry(i) <= threshold

    # -- step 1: Δ -----------------------------------------------------------------
    def compute_delta(self, params: RecursiveMechanismParams) -> Tuple[float, int]:
        """Eq. 11 via binary search; returns ``(Δ, j*)``.

        ``j*`` is the minimal ``j`` with ``G_{|P|-j} ≤ e^{jβ}θ``; Lemma 3
        guarantees ``j* = ln(Δ/θ)/β`` and Sec. 5.3 bounds it by
        ``1 + ln(G_{|P|}/θ)/β``, which we use to clip the search range so
        only ``O(log(ln(G)/β))`` G-entries are evaluated.
        """
        n = self.num_participants
        if n == 0:
            return params.theta, 0

        def feasible(j: int) -> bool:
            return self.g_entry_leq(n - j, math.exp(j * params.beta) * params.theta)

        g_full = self.g_entry(n)
        if g_full <= params.theta:
            return params.theta, 0
        j_max = 1 + int(math.ceil(math.log(g_full / params.theta) / params.beta))
        hi = min(n, j_max)
        # Defensive: the analytic bound always satisfies the predicate when
        # hi == j_max; if hi was clipped to n then G_0 = 0 makes it feasible.
        if not feasible(hi):
            raise MechanismError(
                "internal error: upper end of Δ search is infeasible "
                f"(j={hi}, G={self.g_entry(n - hi)})"
            )
        lo = 0
        while lo < hi:
            mid = (lo + hi) // 2
            if feasible(mid):
                hi = mid
            else:
                lo = mid + 1
        return math.exp(lo * params.beta) * params.theta, lo

    # -- step 2: Δ̂ ------------------------------------------------------------------
    @staticmethod
    def noisy_delta(
        delta: float, params: RecursiveMechanismParams, rng: RngLike = None
    ) -> float:
        """``Δ̂ = e^{μ+Y} Δ`` with ``Y ~ Lap(β/ε1)`` (ε1-DP, Lemma 4)."""
        y = laplace(params.beta / params.epsilon1, rng)
        return math.exp(params.mu + y) * delta

    # -- step 3: X and the release -----------------------------------------------------
    def _compute_x(self, delta_hat: float) -> Tuple[float, float]:
        """Eq. 12 by full scan; returns ``(X, argmin index)``.

        Subclasses with cheap fractional minimization override this.
        """
        n = self.num_participants
        best = (math.inf, 0.0)
        values = self.h_entries(range(n + 1))
        for i, h_value in enumerate(values):
            value = h_value + (n - i) * delta_hat
            if value < best[0]:
                best = (value, float(i))
        return best

    def run(
        self, params: RecursiveMechanismParams, rng: RngLike = None
    ) -> MechanismResult:
        """Execute the full ``(ε1+ε2)``-differentially private release."""
        generator = ensure_rng(rng)
        start = time.perf_counter()
        delta, j_star = self.compute_delta(params)
        delta_hat = self.noisy_delta(delta, params, generator)
        x_value, x_index = self._compute_x(delta_hat)
        answer = x_value + laplace(delta_hat / params.epsilon2, generator)
        seconds = time.perf_counter() - start
        return MechanismResult(
            answer=answer,
            delta=delta,
            delta_hat=delta_hat,
            x_value=x_value,
            x_index=x_index,
            j_star=j_star,
            params=params,
            true_answer=self.true_answer(),
            seconds=seconds,
            diagnostics={
                "num_participants": float(self.num_participants),
                "h_entries_evaluated": float(len(self._h_cache)),
                "g_entries_evaluated": float(len(self._g_cache)),
                "g_predicates_evaluated": float(len(self._g_pred_cache)),
            },
        )

    def sample_answers(
        self,
        params: RecursiveMechanismParams,
        trials: int,
        rng: RngLike = None,
        workers: Optional[int] = None,
    ) -> list:
        """Run the mechanism ``trials`` times (sequence entries are cached).

        Δ is deterministic given the database, so repeated trials only pay
        for fresh noise and the (cached after first use) X entries.

        ``workers=None`` (default) keeps the historical behavior: one
        generator threaded sequentially through the trials.  An explicit
        ``workers`` switches to the deterministic parallel scheme — every
        trial gets its own spawned seed sequence up front, and the trials
        are sharded across processes forked *after* this mechanism (and
        its compiled program) was built.  ``workers=1`` runs the same
        scheme in-process, so serial and parallel runs release
        byte-identical answers at a fixed seed.  Worker-side cache warmth
        stays in the workers; the parent's entry caches are unchanged.
        """
        if workers is None:
            generator = ensure_rng(rng)
            return [self.run(params, generator) for _ in range(trials)]
        seeds = spawn_seed_sequences(rng, trials)
        return map_tasks(
            _sample_trial,
            [(params, seed) for seed in seeds],
            payload=self,
            workers=workers,
        )


def _sample_trial(mechanism: "RecursiveMechanismBase", task) -> MechanismResult:
    """Worker-side single trial for :meth:`sample_answers`."""
    params, seed_sequence = task
    return mechanism.run(params, np.random.default_rng(seed_sequence))
