"""The efficient recursive mechanism for sensitive K-relations (Sec. 5).

``H_i`` (Eq. 16) and the 2-bounding ``G_i`` (Eq. 19) are evaluated as linear
programs over the φ-epigraph encoding (:mod:`repro.relax.encode`).  The
Δ search touches ``O(log(ln G/β))`` G-entries (Sec. 5.3); the X step solves
the continuous relaxation Eq. 20 as a single LP and then uses convexity of
``H`` (Lemma 10) to restrict the integer argmin to ``{⌊i'⌋, ⌈i'⌉}``.

Overall cost is a polynomial of the total annotation length ``L`` — this is
the mechanism that makes node-differentially-private subgraph counting
practical (Theorem 6).
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

from ..errors import MechanismError
from ..relax.encode import EncodedRelation
from ..rng import RngLike
from .framework import MechanismResult, RecursiveMechanismBase
from .params import RecursiveMechanismParams
from .queries import CountQuery, LinearQuery
from .sensitive import SensitiveKRelation

__all__ = ["EfficientRecursiveMechanism", "private_linear_query"]


class EfficientRecursiveMechanism(RecursiveMechanismBase):
    """LP-based recursive mechanism for a nonnegative linear query.

    Parameters
    ----------
    relation:
        The sensitive K-relation ``(P, R)``.
    query:
        The nonnegative per-tuple weight ``q+`` (default: counting).
    backend:
        LP backend; defaults to SciPy/HiGHS.
    normalize:
        If True, rewrite all annotations to canonical minimal DNF before
        encoding (guarantees ``S ≤ 1`` and safe annotations for hand-built
        relations; algebra-produced annotations are already safe, and for
        subgraph-counting relations they are already DNF).
    bounding:
        Which bounding sequence to use for the Δ computation:

        * ``"paper"`` — Eq. 19 exactly.  **Erratum** (DESIGN.md §6): for
          annotations containing disjunctions this sequence can violate
          Def. 17, inflating the effective ε1 by a data-dependent factor;
          for conjunctive annotations (all subgraph counting) it is sound
          and much tighter.
        * ``"uniform"`` — the sound ``Ĝ_i = 2·S̄·H_i`` sequence: valid for
          arbitrary annotations, looser on conjunctive ones.
        * ``"auto"`` (default) — ``"paper"`` when every annotation is a
          conjunction of variables, ``"uniform"`` otherwise.
    """

    def __init__(
        self,
        relation: SensitiveKRelation,
        query: Optional[LinearQuery] = None,
        backend=None,
        normalize: bool = False,
        bounding: str = "auto",
        s_bar=None,
    ):
        super().__init__()
        if bounding not in ("paper", "uniform", "auto"):
            raise MechanismError(
                f"bounding must be 'paper', 'uniform' or 'auto', got {bounding!r}"
            )
        if normalize:
            relation = relation.normalized()
        self.relation = relation
        self.query = query or CountQuery()
        annotated = [
            (annotation, self.query(tup)) for tup, annotation in relation.items()
        ]
        if backend is None:
            from ..lp import DEFAULT_BACKEND

            backend = DEFAULT_BACKEND
        self._encoded = EncodedRelation(
            sorted(relation.participants), annotated, backend
        )
        if bounding == "auto":
            from ..boolexpr.transform import is_conjunction_of_vars

            bounding = (
                "paper"
                if all(
                    is_conjunction_of_vars(annotation)
                    for _, annotation in relation.items()
                )
                else "uniform"
            )
        self.bounding = bounding
        #: query-level φ-sensitivity cap for the "uniform" bounding mode;
        #: falls back to the max over the current annotations (see
        #: EncodedRelation.solve_g_uniform for the neighbor-consistency
        #: caveat — pass the query-derived constant for strict ε-DP).
        self.s_bar = s_bar

    # -- framework plumbing -------------------------------------------------------
    @property
    def num_participants(self) -> int:
        return self._encoded.num_participants

    def _h_entry(self, i: int) -> float:
        return self._encoded.solve_h(i)

    def _g_entry(self, i: int) -> float:
        if self.bounding == "uniform":
            return self._encoded.solve_g_uniform(i, s_bar=self.s_bar)
        return self._encoded.solve_g(i)

    def true_answer(self) -> float:
        """``q(supp(R)) = H_{|P|}`` (Theorem 3) without solving an LP."""
        return self._encoded.true_answer()

    def _compute_x(self, delta_hat: float) -> Tuple[float, float]:
        """Eq. 12 via Eq. 20: one LP plus at most two cached H-entries."""
        n = self.num_participants
        relaxed_value, i_prime = self._encoded.solve_x_relaxation(delta_hat)
        candidates = sorted(
            {
                max(0, min(n, int(math.floor(i_prime)))),
                max(0, min(n, int(math.ceil(i_prime)))),
                max(0, min(n, int(round(i_prime)))),
            }
        )
        best_value = math.inf
        best_index = float(candidates[0])
        for i in candidates:
            value = self.h_entry(i) + (n - i) * delta_hat
            if value < best_value:
                best_value = value
                best_index = float(i)
        # The integer optimum can never beat the continuous relaxation.
        if best_value < relaxed_value - 1e-6 * max(1.0, abs(relaxed_value)):
            raise MechanismError(
                "convexity violation in X computation: integer value "
                f"{best_value} below relaxed value {relaxed_value}"
            )
        return best_value, best_index

    # -- diagnostics ---------------------------------------------------------------
    @property
    def lp_size(self) -> int:
        """Number of LP variables in the encoding (``O(L)``, Sec. 5.3)."""
        return self._encoded.num_lp_variables


def private_linear_query(
    relation: SensitiveKRelation,
    epsilon: float,
    query: Optional[LinearQuery] = None,
    node_privacy: bool = False,
    rng: RngLike = None,
    backend=None,
    params: Optional[RecursiveMechanismParams] = None,
) -> MechanismResult:
    """One-call convenience wrapper: build the mechanism and run it once.

    Uses the paper's experimental parameter settings
    (:meth:`RecursiveMechanismParams.paper`) unless ``params`` is given.
    """
    if params is None:
        params = RecursiveMechanismParams.paper(epsilon, node_privacy=node_privacy)
    mechanism = EfficientRecursiveMechanism(relation, query=query, backend=backend)
    return mechanism.run(params, rng)
