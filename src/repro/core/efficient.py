"""The efficient recursive mechanism for sensitive K-relations (Sec. 5).

``H_i`` (Eq. 16) and the 2-bounding ``G_i`` (Eq. 19) are evaluated as linear
programs over the φ-epigraph encoding (:mod:`repro.relax.encode`).  The
Δ search touches ``O(log(ln G/β))`` G-entries (Sec. 5.3); the X step solves
the continuous relaxation Eq. 20 as a single LP and then uses convexity of
``H`` (Lemma 10) to restrict the integer argmin to ``{⌊i'⌋, ⌈i'⌉}``.

Overall cost is a polynomial of the total annotation length ``L`` — this is
the mechanism that makes node-differentially-private subgraph counting
practical (Theorem 6).
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

from ..errors import MechanismError
from ..relax.encode import EncodedRelation
from ..rng import RngLike
from .framework import MechanismResult, RecursiveMechanismBase, _index_key
from .params import RecursiveMechanismParams
from .queries import CountQuery, LinearQuery
from .sensitive import SensitiveKRelation

__all__ = ["EfficientRecursiveMechanism", "private_linear_query"]


def _convex_upper(known, i):
    """Chord upper bound on a convex sequence at ``i`` from exact points.

    ``known`` is a sorted list of ``(index, value)`` pairs.  Returns None
    when ``i`` is not bracketed (cannot happen once 0 and |P| are seeded).
    """
    left = right = None
    for index, value in known:
        if index <= i:
            left = (index, value)
        if index >= i and right is None:
            right = (index, value)
    if left is None or right is None:
        return None
    (il, gl), (ir, gr) = left, right
    if il == ir:
        return gl
    return gl + (i - il) * (gr - gl) / (ir - il)


def _convex_lower(known, i):
    """Secant lower bound on a convex nondecreasing sequence at ``i``.

    Combines monotonicity (the largest exact value left of ``i``) with
    outward secant extrapolation: slopes of a convex function increase,
    so the slope of the segment right of ``i`` is at least the chord
    slope of any segment further right, and symmetrically on the left.
    """
    best = 0.0
    below = [(index, value) for index, value in known if index <= i]
    above = [(index, value) for index, value in known if index >= i]
    if below:
        best = max(best, below[-1][1])  # monotone in i
        if len(below) >= 2:
            (i0, g0), (i1, g1) = below[-2], below[-1]
            if i1 > i0:
                best = max(best, g1 + (i - i1) * (g1 - g0) / (i1 - i0))
    if len(above) >= 2:
        (i1, g1), (i2, g2) = above[0], above[1]
        if i2 > i1:
            best = max(best, g1 - (i1 - i) * (g2 - g1) / (i2 - i1))
    return best


class EfficientRecursiveMechanism(RecursiveMechanismBase):
    """LP-based recursive mechanism for a nonnegative linear query.

    Parameters
    ----------
    relation:
        The sensitive K-relation ``(P, R)``.
    query:
        The nonnegative per-tuple weight ``q+`` (default: counting).
    backend:
        LP backend; defaults to SciPy/HiGHS.
    normalize:
        If True, rewrite all annotations to canonical minimal DNF before
        encoding (guarantees ``S ≤ 1`` and safe annotations for hand-built
        relations; algebra-produced annotations are already safe, and for
        subgraph-counting relations they are already DNF).
    compiled:
        Route solves through the one-time-assembled
        :class:`~repro.lp.compiled.CompiledProgram` when the backend
        supports it (default).  ``False`` forces the legacy
        clone-and-rebuild LP path (ablations / equivalence tests).
    workers:
        Worker processes for the parallel solve paths: batched H entries
        fan across a pool forked after compilation, and undecided Δ
        probes race their two formulations in separate processes
        (first decided wins).  The default ``1`` stays fully in-process;
        ``None`` resolves ``$REPRO_WORKERS`` / CPU count
        (:func:`repro.parallel.pool.resolve_workers`).  Released answers
        are byte-identical for any worker count at a fixed seed.
    bounding:
        Which bounding sequence to use for the Δ computation:

        * ``"paper"`` — Eq. 19 exactly.  **Erratum** (DESIGN.md §6): for
          annotations containing disjunctions this sequence can violate
          Def. 17, inflating the effective ε1 by a data-dependent factor;
          for conjunctive annotations (all subgraph counting) it is sound
          and much tighter.
        * ``"uniform"`` — the sound ``Ĝ_i = 2·S̄·H_i`` sequence: valid for
          arbitrary annotations, looser on conjunctive ones.
        * ``"auto"`` (default) — ``"paper"`` when every annotation is a
          conjunction of variables, ``"uniform"`` otherwise.
    """

    def __init__(
        self,
        relation: SensitiveKRelation,
        query: Optional[LinearQuery] = None,
        backend=None,
        normalize: bool = False,
        bounding: str = "auto",
        s_bar=None,
        compiled: bool = True,
        workers: Optional[int] = 1,
    ):
        super().__init__()
        from ..parallel.pool import resolve_workers

        self.workers = resolve_workers(workers)
        if bounding not in ("paper", "uniform", "auto"):
            raise MechanismError(
                f"bounding must be 'paper', 'uniform' or 'auto', got {bounding!r}"
            )
        if normalize:
            relation = relation.normalized()
        self.relation = relation
        self.query = query or CountQuery()
        from ..lp.backends import resolve as resolve_backend
        from ..store.relation import ConjunctiveKRelation

        backend = resolve_backend(backend)
        if (isinstance(relation, ConjunctiveKRelation)
                and type(self.query) is CountQuery):
            # Columnar-store relations arrive as a participant-index
            # matrix; encode it without ever materializing per-occurrence
            # annotation objects.  Every annotation is by construction a
            # conjunction of distinct variables, so "auto" bounding is
            # "paper" with no inspection pass.
            self._encoded = EncodedRelation.from_conjunctions(
                relation.sorted_participants,
                relation.matrix,
                backend,
                compiled=compiled,
            )
            if bounding == "auto":
                bounding = "paper"
        else:
            annotated = [
                (annotation, self.query(tup)) for tup, annotation in relation.items()
            ]
            self._encoded = EncodedRelation(
                sorted(relation.participants),
                annotated,
                backend,
                compiled=compiled,
            )
            if bounding == "auto":
                from ..boolexpr.transform import is_conjunction_of_vars

                bounding = (
                    "paper"
                    if all(
                        is_conjunction_of_vars(annotation)
                        for _, annotation in relation.items()
                    )
                    else "uniform"
                )
        self.bounding = bounding
        #: query-level φ-sensitivity cap for the "uniform" bounding mode;
        #: falls back to the max over the current annotations (see
        #: EncodedRelation.solve_g_uniform for the neighbor-consistency
        #: caveat — pass the query-derived constant for strict ε-DP).
        self.s_bar = s_bar

    # -- framework plumbing -------------------------------------------------------
    @property
    def num_participants(self) -> int:
        return self._encoded.num_participants

    def _h_entry(self, i: int) -> float:
        return self._encoded.solve_h(i)

    def _h_entries(self, indices) -> list:
        # route the framework's batched cache misses through the encoded
        # relation's entry point; with workers > 1 the misses fan across
        # a pool forked after compilation
        return self._encoded.solve_h_many(indices, workers=self.workers)

    def _g_entry(self, i: int) -> float:
        if self.bounding == "uniform":
            return self._encoded.solve_g_uniform(i, s_bar=self.s_bar)
        return self._encoded.solve_g(i)

    def _g_predicate(self, i: int, threshold: float) -> bool:
        """``G_i ≤ threshold`` via a cost cascade, exact at every step.

        1. ``G`` is convex and nondecreasing in ``i`` (the LP value as a
           function of the mass RHS), so chords between known exact
           entries upper-bound it and outward secants lower-bound it —
           both decide the predicate with no LP at all.
        2. Otherwise a feasibility probe (z pinned at ``threshold/2``)
           races the exact min-max solve under doubling iteration budgets
           (``CompiledProgram.solve_g_decide``) — whichever formulation
           is cheap on this structure wins.
        3. Every exact entry that does get computed (endpoints are closed
           forms, race wins are returned) permanently tightens the bounds
           for later probes.
        """
        if self.bounding == "uniform":
            # Ĝ = 2·S̄·H — one (cheap) H solve; keep the exact entry cached
            return self.g_entry(i) <= threshold
        # endpoints are closed forms — seed the bound cache for free
        self.g_entry(0)
        self.g_entry(self.num_participants)
        known = sorted(self._g_cache.items())
        upper = _convex_upper(known, i)
        if upper is not None and upper <= threshold:
            return True
        if _convex_lower(known, i) > threshold:
            return False
        decided, value = self._encoded.g_decide(i, threshold, workers=self.workers)
        if value is not None:
            # the exact strand won the race — keep the entry so it
            # tightens the convexity bounds for later probes
            self._g_cache[_index_key(i)] = float(value)
        return decided

    def true_answer(self) -> float:
        """``q(supp(R)) = H_{|P|}`` (Theorem 3) without solving an LP."""
        return self._encoded.true_answer()

    def _compute_x(self, delta_hat: float) -> Tuple[float, float]:
        """Eq. 12 via Eq. 20: one LP plus at most two cached H-entries."""
        n = self.num_participants
        relaxed_value, i_prime = self._encoded.solve_x_relaxation(delta_hat)
        candidates = sorted(
            {
                max(0, min(n, int(math.floor(i_prime)))),
                max(0, min(n, int(math.ceil(i_prime)))),
                max(0, min(n, int(round(i_prime)))),
            }
        )
        best_value = math.inf
        best_index = float(candidates[0])
        for i, h_value in zip(candidates, self.h_entries(candidates)):
            value = h_value + (n - i) * delta_hat
            if value < best_value:
                best_value = value
                best_index = float(i)
        # The integer optimum can never beat the continuous relaxation.
        # The slack term scales with |P|: solver feasibility tolerance
        # (~1e-7 per coefficient) accumulates across the n-term mass row,
        # so million-participant LPs legitimately over-shoot by ~1e-4.
        slack = 1e-6 * max(1.0, abs(relaxed_value)) + 1e-9 * n
        if best_value < relaxed_value - slack:
            raise MechanismError(
                "convexity violation in X computation: integer value "
                f"{best_value} below relaxed value {relaxed_value}"
            )
        return best_value, best_index

    # -- diagnostics ---------------------------------------------------------------
    @property
    def lp_size(self) -> int:
        """Number of LP variables in the encoding (``O(L)``, Sec. 5.3)."""
        return self._encoded.num_lp_variables

    @property
    def is_compiled(self) -> bool:
        """Whether solves go through the compiled array fast path."""
        return self._encoded.is_compiled


def private_linear_query(
    relation: SensitiveKRelation,
    epsilon: float,
    query: Optional[LinearQuery] = None,
    node_privacy: bool = False,
    rng: RngLike = None,
    backend=None,
    params: Optional[RecursiveMechanismParams] = None,
    workers: Optional[int] = 1,
) -> MechanismResult:
    """One-call convenience wrapper: build the mechanism and run it once.

    Uses the paper's experimental parameter settings
    (:meth:`RecursiveMechanismParams.paper`) unless ``params`` is given.
    ``workers`` is forwarded to :class:`EfficientRecursiveMechanism`.

    A thin wrapper over a one-query
    :class:`~repro.session.PrivateSession`; answers are byte-identical to
    the direct mechanism path at a fixed seed.  For several queries of one
    relation, hold a session yourself — repeats reuse the compiled LP.
    """
    from ..session import PrivateSession

    session = PrivateSession(relation, backend=backend, workers=workers)
    return session.query(
        query,
        epsilon=epsilon,
        privacy="node" if node_privacy else "edge",
        rng=rng,
        params=params,
    )
