"""The recursive mechanism — the paper's primary contribution.

Layering:

* :mod:`~repro.core.sensitive` — the sensitive database/relation models
  (Def. 5–7, 13–14): participants plus a content map over participant
  subsets, and the K-relation specialization.
* :mod:`~repro.core.queries` — monotonic real-valued queries and
  nonnegative linear queries (Def. 8, 11, 12).
* :mod:`~repro.core.sensitivity` — empirical sensitivity notions
  (Def. 9, 10, 15, 16): local, global, impact, universal.
* :mod:`~repro.core.params` — mechanism parameters and the Theorem-1
  error bound.
* :mod:`~repro.core.framework` — the three-step mechanism skeleton
  (Δ of Eq. 11, Δ̂, X of Eq. 12, X̂) shared by both implementations.
* :mod:`~repro.core.general` — the general but inefficient implementation
  (Sec. 4.2; exponential in ``|P|``, used on small instances and as the
  test oracle).
* :mod:`~repro.core.efficient` — the efficient implementation for linear
  queries on sensitive K-relations (Sec. 5; polynomial via LP).
"""

from .efficient import EfficientRecursiveMechanism, private_linear_query
from .framework import MechanismResult, RecursiveMechanismBase
from .general import GeneralRecursiveMechanism
from .params import RecursiveMechanismParams, theorem1_error_bound
from .queries import CountQuery, LinearQuery, SumQuery, WeightedQuery
from .sensitive import (
    SensitiveDatabase,
    SensitiveKRelation,
    are_neighboring_databases,
    are_neighboring_krelations,
)
from .sensitivity import (
    global_empirical_sensitivity,
    impact,
    local_empirical_sensitivity,
    universal_empirical_sensitivity,
)

__all__ = [
    "SensitiveDatabase",
    "SensitiveKRelation",
    "are_neighboring_databases",
    "are_neighboring_krelations",
    "LinearQuery",
    "CountQuery",
    "SumQuery",
    "WeightedQuery",
    "local_empirical_sensitivity",
    "global_empirical_sensitivity",
    "impact",
    "universal_empirical_sensitivity",
    "RecursiveMechanismParams",
    "theorem1_error_bound",
    "MechanismResult",
    "RecursiveMechanismBase",
    "GeneralRecursiveMechanism",
    "EfficientRecursiveMechanism",
    "private_linear_query",
]
