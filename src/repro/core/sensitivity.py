"""Empirical sensitivity (Def. 9, 10, 15, 16).

These notions replace global/local sensitivity when a participant's impact
on the query answer is unbounded over the database class but finite for any
*actual* database content:

* local empirical sensitivity ``~LS_q(P, M)``: the largest change when one
  current participant withdraws;
* global empirical sensitivity ``~GS_q(P, M)``: the maximum of ``~LS`` over
  all ancestors — the quantity that bounds the general mechanism's error;
* impact ``impact(p, R)``: the tuples whose annotation changes (up to
  φ-equivalence) when ``p`` opts out of a K-relation;
* universal empirical sensitivity ``~US_q(P, R)``: the largest total query
  weight of any one participant's impact set — the quantity that bounds the
  efficient mechanism's error.

``~LS ≤ ~GS ≤ GS`` and, for subgraph counting, ``~US = ~GS = ~LS``.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, FrozenSet, List

from ..boolexpr.expr import FALSE, Expr
from ..boolexpr.transform import restrict
from ..errors import SensitiveModelError
from ..relax.phi import phi_equivalent
from .queries import LinearQuery
from .sensitive import SensitiveDatabase, SensitiveKRelation

__all__ = [
    "local_empirical_sensitivity",
    "global_empirical_sensitivity",
    "impact",
    "universal_empirical_sensitivity",
]

#: refuse subset enumeration beyond this many participants
MAX_EXACT_PARTICIPANTS = 20


def local_empirical_sensitivity(
    query: Callable[[object], float], database: SensitiveDatabase
) -> float:
    """``~LS_q(P, M) = max_{p∈P} |q(M(P)) - q(M(P-{p}))|`` (Def. 9)."""
    participants = database.participants
    if not participants:
        return 0.0
    full = float(query(database.content()))
    best = 0.0
    for p in participants:
        reduced = float(query(database.content(participants - {p})))
        best = max(best, abs(full - reduced))
    return best


def global_empirical_sensitivity(
    query: Callable[[object], float], database: SensitiveDatabase
) -> float:
    """``~GS_q(P, M) = max over ancestors of ~LS`` (Def. 10).

    Enumerates all participant subsets — exponential, guarded at
    ``MAX_EXACT_PARTICIPANTS`` participants.  This is the test oracle for
    the bounding sequences; production code paths use the universal
    empirical sensitivity of the K-relation instead.
    """
    participants = sorted(database.participants)
    if len(participants) > MAX_EXACT_PARTICIPANTS:
        raise SensitiveModelError(
            f"exact ~GS enumeration over {len(participants)} participants "
            f"(limit {MAX_EXACT_PARTICIPANTS}) — use universal empirical "
            "sensitivity on the K-relation form instead"
        )
    value_cache: Dict[FrozenSet[str], float] = {}

    def value(subset: FrozenSet[str]) -> float:
        if subset not in value_cache:
            value_cache[subset] = float(query(database.content(subset)))
        return value_cache[subset]

    best = 0.0
    for r in range(1, len(participants) + 1):
        for combo in itertools.combinations(participants, r):
            subset = frozenset(combo)
            base = value(subset)
            for p in subset:
                best = max(best, abs(base - value(subset - {p})))
    return best


def impact(participant: str, relation: SensitiveKRelation) -> List[object]:
    """``impact(p, R) = {t : R(t) ≁ R(t)|p→False}`` (Def. 15).

    A tuple whose annotation does not mention ``p`` is never impacted; for
    the rest, φ-equivalence of ``R(t)`` and ``R(t)|p→False`` is tested
    (for positive expressions the substitution can only shrink the
    function, so inequivalence is the common case).
    """
    if participant not in relation.participants:
        raise SensitiveModelError(f"{participant!r} is not a participant")
    impacted = []
    for tup, annotation in relation.items():
        if participant not in annotation.variables():
            continue
        reduced = restrict(annotation, {participant: False})
        if reduced == FALSE or not phi_equivalent(annotation, reduced):
            impacted.append(tup)
    return impacted


def universal_empirical_sensitivity(
    query: LinearQuery,
    relation: SensitiveKRelation,
    participant: str = None,
) -> float:
    """``~US_q`` (Def. 16) for one participant or the max over all.

    ``~US_q(p, R) = Σ_{t ∈ impact(p,R)} q(t)``;
    ``~US_q(P, R) = max_p ~US_q(p, R)``.

    For the common case (every annotation mentions each of its variables
    essentially, e.g. DNF), this equals the largest total weight of tuples
    whose annotation mentions ``p``.
    """
    if participant is not None:
        return float(sum(query(t) for t in impact(participant, relation)))
    # Group tuples by variable first so each annotation is scanned once.
    by_var: Dict[str, float] = {}
    for tup, annotation in relation.items():
        weight = query(tup)
        if weight == 0:
            continue
        for name in annotation.variables():
            reduced = restrict(annotation, {name: False})
            if reduced == FALSE or not phi_equivalent(annotation, reduced):
                by_var[name] = by_var.get(name, 0.0) + weight
    return max(by_var.values(), default=0.0)
