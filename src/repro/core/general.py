"""The general but inefficient implementation (Sec. 4.2).

For an arbitrary monotonic query ``q`` on an arbitrary sensitive database,
Eq. 13–14 define::

    H_i = min_{|P'| = i} q(M(P'))
    G_i = min_{|P'| = i} ~GS_q(P', M)

Theorem 2 shows ``H`` is a recursive sequence and ``G`` a (1-)bounding
sequence, so the framework releases an answer with error roughly
proportional to the *global empirical sensitivity* ``~GS_q(P, M)``.

The computation enumerates all participant subsets — ``O(2^|P|)`` query
evaluations — so this implementation is only usable for small ``P``.  It
exists (as in the paper) as the fully general mechanism and doubles as the
exact oracle against which the efficient LP implementation is tested.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, FrozenSet, Optional

from ..errors import SensitiveModelError
from .framework import RecursiveMechanismBase
from .sensitive import SensitiveDatabase

__all__ = ["GeneralRecursiveMechanism"]

#: hard cap on exact subset enumeration
MAX_PARTICIPANTS = 18


class GeneralRecursiveMechanism(RecursiveMechanismBase):
    """Eq. 13–14 by exhaustive subset enumeration.

    Parameters
    ----------
    database:
        The sensitive database ``(P, M)``.
    query:
        A monotonic real-valued query on database contents: ``q(M(P'))``
        must be 0 at ``M(∅)`` and nondecreasing along the ancestor order.
        Monotonicity is *checked* on the enumerated lattice (cheap here,
        since every subset is visited anyway) and violations raise.
    check_monotone:
        Set False to skip the lattice monotonicity check.
    """

    def __init__(
        self,
        database: SensitiveDatabase,
        query: Callable[[object], float],
        check_monotone: bool = True,
    ):
        super().__init__()
        self.database = database
        self.query = query
        participants = sorted(database.participants)
        if len(participants) > MAX_PARTICIPANTS:
            raise SensitiveModelError(
                f"general mechanism enumerates 2^|P| subsets; |P|="
                f"{len(participants)} exceeds the cap {MAX_PARTICIPANTS}"
            )
        self._participants = participants

        # q(M(P')) for every subset
        self._value: Dict[FrozenSet[str], float] = {}
        for r in range(len(participants) + 1):
            for combo in itertools.combinations(participants, r):
                subset = frozenset(combo)
                self._value[subset] = float(query(database.content(subset)))

        empty_value = self._value[frozenset()]
        if check_monotone and empty_value != 0.0:
            raise SensitiveModelError(
                f"query is not monotonic: q(M(∅)) = {empty_value} != 0"
            )

        # ~LS at every subset, and ~GS by lattice dynamic programming:
        # gs[S] = max(ls[S], max_p gs[S - {p}])
        self._ls: Dict[FrozenSet[str], float] = {}
        self._gs: Dict[FrozenSet[str], float] = {}
        for r in range(len(participants) + 1):
            for combo in itertools.combinations(participants, r):
                subset = frozenset(combo)
                base = self._value[subset]
                ls = 0.0
                gs = 0.0
                for p in subset:
                    smaller = subset - {p}
                    drop = base - self._value[smaller]
                    if check_monotone and drop < -1e-12:
                        raise SensitiveModelError(
                            f"query is not monotonic: q decreases when "
                            f"{p!r} joins {sorted(smaller)}"
                        )
                    ls = max(ls, abs(drop))
                    gs = max(gs, self._gs[smaller])
                self._ls[subset] = ls
                self._gs[subset] = max(ls, gs)

        # H_i / G_i per level
        n = len(participants)
        self._h_levels = [float("inf")] * (n + 1)
        self._g_levels = [float("inf")] * (n + 1)
        for subset, value in self._value.items():
            level = len(subset)
            self._h_levels[level] = min(self._h_levels[level], value)
            self._g_levels[level] = min(self._g_levels[level], self._gs[subset])

    # -- framework plumbing -----------------------------------------------------
    @property
    def num_participants(self) -> int:
        return len(self._participants)

    def _h_entry(self, i: int) -> float:
        return self._h_levels[i]

    def _g_entry(self, i: int) -> float:
        return self._g_levels[i]

    def true_answer(self) -> Optional[float]:
        return self._value[frozenset(self._participants)]

    # -- exposed exact quantities (test oracle) -------------------------------------
    def h_sequence(self) -> list:
        """All ``H_0..H_{|P|}`` (Eq. 13)."""
        return list(self._h_levels)

    def g_sequence(self) -> list:
        """All ``G_0..G_{|P|}`` (Eq. 14)."""
        return list(self._g_levels)

    def global_empirical_sensitivity(self) -> float:
        """``~GS_q(P, M) = G_{|P|}``."""
        return self._g_levels[-1]
