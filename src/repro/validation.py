"""Uniform entry-point validation of user-supplied parameters.

Every public entry point (the one-shot API wrappers, ``PrivateSession``,
the mechanism registry, the CLI, and the experiment harness) funnels its
``epsilon`` and ``workers`` arguments through these two helpers, so an
invalid value fails immediately with one clear :class:`ValueError` message
instead of surfacing later as a NaN answer or a cryptic LP failure.
(:class:`~repro.errors.PrivacyParameterError` subclasses both
:class:`ValueError` and the library's :class:`~repro.errors.MechanismError`,
so either ``except`` style catches it.)
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from .errors import PrivacyParameterError

__all__ = ["validate_epsilon", "validate_workers"]


def validate_epsilon(epsilon, name: str = "epsilon") -> float:
    """Validate a privacy budget value; returns it as a ``float``.

    Accepts any real number strictly greater than zero.  ``None``, NaN,
    infinities, non-numbers, and non-positive values all raise
    :class:`~repro.errors.PrivacyParameterError` (a :class:`ValueError`)
    with the same message shape, so every entry point reports budget
    mistakes identically.
    """
    if isinstance(epsilon, bool) or not isinstance(
        epsilon, (int, float, np.integer, np.floating)
    ):
        raise PrivacyParameterError(
            f"{name} must be a positive finite number, got {epsilon!r}"
        )
    value = float(epsilon)
    if not math.isfinite(value) or value <= 0:
        raise PrivacyParameterError(
            f"{name} must be a positive finite number, got {epsilon!r}"
        )
    return value


def validate_workers(workers, name: str = "workers") -> Optional[int]:
    """Validate a worker count; returns ``None`` or an ``int >= 1``.

    ``None`` means "resolve from ``$REPRO_WORKERS`` / the CPU count"
    (:func:`repro.parallel.pool.resolve_workers`); anything else must be an
    integer ``>= 1``.  Zero, negative, fractional and non-integer values
    raise :class:`ValueError` with one clear message.
    """
    if workers is None:
        return None
    if isinstance(workers, bool) or not isinstance(workers, (int, np.integer)):
        raise ValueError(
            f"{name} must be a positive integer (>= 1) or None, got {workers!r}"
        )
    value = int(workers)
    if value < 1:
        raise ValueError(
            f"{name} must be a positive integer (>= 1) or None, got {workers!r}"
        )
    return value
