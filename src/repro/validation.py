"""Uniform entry-point validation of user-supplied parameters.

Every public entry point (the one-shot API wrappers, ``PrivateSession``,
the mechanism registry, the CLI, and the experiment harness) funnels its
``epsilon`` and ``workers`` arguments through these two helpers, so an
invalid value fails immediately with one clear :class:`ValueError` message
instead of surfacing later as a NaN answer or a cryptic LP failure.
(:class:`~repro.errors.PrivacyParameterError` subclasses both
:class:`ValueError` and the library's :class:`~repro.errors.MechanismError`,
so either ``except`` style catches it.)

The structured-input validators live here too: the ``repro batch`` JSON
workload spec (:func:`validate_batch_spec`) and the network service's wire
requests (:func:`validate_service_request`) are checked field by field —
unknown keys and wrong types are rejected with the offending field's path
in the message, never a deep traceback from the middle of the mechanism
stack.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional

import numpy as np

from .errors import PrivacyParameterError

__all__ = [
    "validate_epsilon",
    "validate_workers",
    "validate_batch_spec",
    "validate_service_request",
]


def validate_epsilon(epsilon, name: str = "epsilon") -> float:
    """Validate a privacy budget value; returns it as a ``float``.

    Accepts any real number strictly greater than zero.  ``None``, NaN,
    infinities, non-numbers, and non-positive values all raise
    :class:`~repro.errors.PrivacyParameterError` (a :class:`ValueError`)
    with the same message shape, so every entry point reports budget
    mistakes identically.
    """
    if isinstance(epsilon, bool) or not isinstance(
        epsilon, (int, float, np.integer, np.floating)
    ):
        raise PrivacyParameterError(
            f"{name} must be a positive finite number, got {epsilon!r}"
        )
    value = float(epsilon)
    if not math.isfinite(value) or value <= 0:
        raise PrivacyParameterError(
            f"{name} must be a positive finite number, got {epsilon!r}"
        )
    return value


def validate_workers(workers, name: str = "workers") -> Optional[int]:
    """Validate a worker count; returns ``None`` or an ``int >= 1``.

    ``None`` means "resolve from ``$REPRO_WORKERS`` / the CPU count"
    (:func:`repro.parallel.pool.resolve_workers`); anything else must be an
    integer ``>= 1``.  Zero, negative, fractional and non-integer values
    raise :class:`ValueError` with one clear message.
    """
    if workers is None:
        return None
    if isinstance(workers, bool) or not isinstance(workers, (int, np.integer)):
        raise ValueError(
            f"{name} must be a positive integer (>= 1) or None, got {workers!r}"
        )
    value = int(workers)
    if value < 1:
        raise ValueError(
            f"{name} must be a positive integer (>= 1) or None, got {workers!r}"
        )
    return value


# ---------------------------------------------------------------------------
# Structured-input validation (batch specs, wire requests)
# ---------------------------------------------------------------------------

def _is_int(value) -> bool:
    return isinstance(value, (int, np.integer)) and not isinstance(value, bool)


def _is_number(value) -> bool:
    return (isinstance(value, (int, float, np.integer, np.floating))
            and not isinstance(value, bool))


def _is_positive_number(value) -> bool:
    return _is_number(value) and math.isfinite(float(value)) and float(value) > 0


def _check_fields(
    obj: Dict, path: str, fields: Dict[str, tuple], errors: List[str]
) -> None:
    """Validate one mapping against ``{key: (predicate, expectation)}``.

    Unknown keys and failed predicates each append one
    ``"path.key: ..."`` line to ``errors``.
    """
    for key in obj:
        if key not in fields:
            known = ", ".join(sorted(fields))
            errors.append(f"{path}{key}: unknown key (known keys: {known})")
    for key, (predicate, expectation) in fields.items():
        if key in obj and not predicate(obj[key]):
            errors.append(f"{path}{key}: must be {expectation}, got {obj[key]!r}")


_GRAPH_FIELDS = {
    "nodes": (lambda v: _is_int(v) and v >= 1, "a positive integer"),
    "avgdeg": (_is_positive_number, "a positive number"),
    "seed": (_is_int, "an integer"),
    "edge_list": (lambda v: isinstance(v, str), "a file-path string"),
    "lenient": (
        lambda v: isinstance(v, bool),
        "a boolean (skip self-loop/duplicate edge-list lines)",
    ),
    "dataset": (lambda v: isinstance(v, str), "a dataset-name string"),
    "scale": (_is_positive_number, "a positive number"),
}

#: Option names that collide with the query call's own keyword arguments
#: — they must be given as top-level fields, never inside ``options``.
RESERVED_OPTION_KEYS = frozenset(
    {
        "query",
        "epsilon",
        "privacy",
        "mechanism",
        "label",
        "user",
        "seed",
        "rng",
        "params",
        "weight",
        "options",
    }
)


def _is_options_dict(value) -> bool:
    return (isinstance(value, dict)
            and all(isinstance(k, str) and k not in RESERVED_OPTION_KEYS
                    for k in value))


#: The dynamic-graph update vocabulary (kept in sync with
#: :data:`repro.dynamic.delta.DELTA_KINDS`; duplicated to keep this
#: module import-light).
UPDATE_ACTION_KINDS = ("add_node", "remove_node", "add_edge", "remove_edge")

_EDGE_ACTION_KINDS = ("add_edge", "remove_edge")


def _is_node_label(value) -> bool:
    """A node label as it appears in JSON: an int or a string."""
    return isinstance(value, (str, int, np.integer)) and not isinstance(value, bool)


def _check_update_action(action, path: str, errors: List[str]) -> None:
    """Validate one graph-update action object, field by field."""
    if not isinstance(action, dict):
        errors.append(f"{path}: must be an object, got {type(action).__name__}")
        return
    kind = action.get("action")
    if kind not in UPDATE_ACTION_KINDS:
        errors.append(
            f"{path}.action: must be one of "
            f"{', '.join(UPDATE_ACTION_KINDS)}, got {kind!r}"
        )
        return
    if kind in _EDGE_ACTION_KINDS:
        fields = {
            "action": (lambda v: True, ""),
            "u": (_is_node_label, "a node label (int or string)"),
            "v": (_is_node_label, "a node label (int or string)"),
        }
        _check_fields(action, path + ".", fields, errors)
        for endpoint in ("u", "v"):
            if endpoint not in action:
                errors.append(f"{path}.{endpoint}: required for {kind}")
    else:
        fields = {
            "action": (lambda v: True, ""),
            "node": (_is_node_label, "a node label (int or string)"),
        }
        if kind == "remove_node":
            # Emitted by GraphDelta.to_dict (audit export); accepted so
            # exported update logs can be replayed verbatim.  The server
            # re-captures the actual incident edges at application time.
            fields["removed_edges"] = (
                lambda v: isinstance(v, list),
                "a list of [u, v] pairs",
            )
        _check_fields(action, path + ".", fields, errors)
        if "node" not in action:
            errors.append(f"{path}.node: required for {kind}")


def _check_update_actions(actions, path: str, errors: List[str]) -> None:
    if not isinstance(actions, list) or not actions:
        errors.append(f"{path}: must be a non-empty array of update actions")
        return
    for index, action in enumerate(actions):
        _check_update_action(action, f"{path}[{index}]", errors)


_UPDATE_ITEM_FIELDS = {
    "update": (
        lambda v: isinstance(v, list) and len(v) > 0,
        "a non-empty array of update actions",
    ),
    "label": (lambda v: isinstance(v, str), "a string"),
}


_QUERY_ITEM_FIELDS = {
    "query": (
        lambda v: isinstance(v, str), 'a query-name string (e.g. "triangle", "2-star")'
    ),
    "epsilon": (_is_positive_number, "a positive finite number"),
    "privacy": (lambda v: v in ("node", "edge"), '"node" or "edge"'),
    "mechanism": (lambda v: isinstance(v, str), "a mechanism-name string"),
    "label": (lambda v: isinstance(v, str), "a string"),
    "user": (lambda v: isinstance(v, str), "a tenant-name string"),
    "seed": (_is_int, "an integer"),
    "options": (
        _is_options_dict,
        "an object with string keys (mechanism options only — "
        "query/epsilon/privacy/... are top-level fields)",
    ),
}


def _check_query_item(item, path: str, errors: List[str]) -> None:
    # Presence of query/epsilon is deliberately NOT enforced here: the
    # batch runner reports a missing field as that one item's failure and
    # keeps the rest of the workload going.
    if not isinstance(item, dict):
        errors.append(f"{path}: must be an object, got {type(item).__name__}")
        return
    if "update" in item:
        # An interleaved graph-update step, not a query.
        _check_fields(item, path + ".", _UPDATE_ITEM_FIELDS, errors)
        if isinstance(item["update"], list) and item["update"]:
            _check_update_actions(item["update"], f"{path}.update", errors)
        return
    _check_fields(item, path + ".", _QUERY_ITEM_FIELDS, errors)


_BATCH_TOP_FIELDS = {
    "graph": (lambda v: isinstance(v, dict), "an object"),
    "budget": (_is_positive_number, "a positive number"),
    "seed": (_is_int, "an integer"),
    "workers": (lambda v: _is_int(v) and v >= 1, "a positive integer"),
    "queries": (
        lambda v: isinstance(v, list) and len(v) > 0,
        "a non-empty array of query objects",
    ),
}


def validate_batch_spec(spec: Any) -> Dict:
    """Validate a ``repro batch`` JSON workload spec, field by field.

    Returns the spec unchanged when valid.  Raises :class:`ValueError`
    whose message lists **every** offending field with its path — unknown
    keys, wrong types, and missing required fields — so a workload author
    fixes the whole spec in one round trip instead of chasing tracebacks.
    """
    if not isinstance(spec, dict):
        raise ValueError(f"batch spec must be a JSON object, got {type(spec).__name__}")
    errors: List[str] = []
    _check_fields(spec, "", _BATCH_TOP_FIELDS, errors)
    graph = spec.get("graph")
    if isinstance(graph, dict):
        _check_fields(graph, "graph.", _GRAPH_FIELDS, errors)
        if "edge_list" in graph and "dataset" in graph:
            errors.append("graph: pass either edge_list or dataset, not both")
    if "queries" not in spec:
        errors.append("queries: required")
    elif isinstance(spec["queries"], list):
        for index, item in enumerate(spec["queries"]):
            _check_query_item(item, f"queries[{index}]", errors)
    if errors:
        raise ValueError("invalid batch spec:\n  " + "\n  ".join(errors))
    return spec


#: Wire-protocol operations the service understands.  ``stats``,
#: ``snapshot``, and ``log`` arrived with protocol v2 (multi-dataset
#: routing + replication); the rest are the v1 vocabulary.
SERVICE_OPS = (
    "hello", "ping", "budget", "query", "audit", "update", "stats", "snapshot",
    "log", "metrics",
)


def _is_wire_seed(value) -> bool:
    if _is_int(value):
        return True
    if isinstance(value, dict):
        extra = set(value) - {"entropy", "spawn_key"}
        if extra or "entropy" not in value:
            return False
        if not (_is_int(value["entropy"]) and value["entropy"] >= 0):
            return False
        spawn_key = value.get("spawn_key", [])
        return (isinstance(spawn_key, list)
                and all(_is_int(k) and k >= 0 for k in spawn_key))
    return False


_SERVICE_COMMON_FIELDS = {
    "v": (_is_int, "an integer protocol version"),
    "id": (
        lambda v: isinstance(v, (str, int)) and not isinstance(v, bool),
        "a string or integer correlation id",
    ),
    "op": (lambda v: v in SERVICE_OPS, f"one of {', '.join(SERVICE_OPS)}"),
    # Protocol v2: every request frame may name its dataset (absent →
    # the server's default) and a consistency floor on its graph version.
    "dataset": (lambda v: isinstance(v, str) and len(v) > 0,
                "a non-empty dataset-name string"),
    "min_version": (lambda v: _is_int(v) and v >= 0,
                    "a non-negative integer graph version"),
}

_SERVICE_OP_FIELDS = {
    "hello": {},
    "ping": {},
    "stats": {},
    "metrics": {},
    "budget": {"user": (lambda v: isinstance(v, str), "a tenant-name string")},
    "query": {
        **{k: v for k, v in _QUERY_ITEM_FIELDS.items() if k != "seed"},
        "seed": (_is_wire_seed, "an integer or {entropy, spawn_key} object"),
        "at_version": (
            lambda v: _is_int(v) and v >= 0, "a non-negative integer graph version"
        ),
    },
    "audit": {
        "replay": (lambda v: isinstance(v, bool), "a boolean"),
        "user": (lambda v: isinstance(v, str), "a tenant-name string"),
    },
    "update": {
        "actions": (
            lambda v: isinstance(v, list) and len(v) > 0,
            "a non-empty array of update actions",
        ),
        "token": (lambda v: isinstance(v, str), "the admin token string"),
        "label": (lambda v: isinstance(v, str), "a string"),
    },
    "snapshot": {},
    "log": {
        "since": (
            lambda v: _is_int(v) and v >= 0, "a non-negative integer graph version"
        ),
    },
}


def validate_service_request(request: Any) -> Dict:
    """Validate one decoded wire-protocol request frame.

    Returns the frame unchanged when valid; raises :class:`ValueError`
    naming every offending field.  Version *negotiation* (rejecting a
    ``v`` outside ``SUPPORTED_VERSIONS``) is the service's job — this
    only checks shape.
    """
    if not isinstance(request, dict):
        raise ValueError(f"request must be a JSON object, got {type(request).__name__}")
    errors: List[str] = []
    if "op" not in request:
        errors.append(f"op: required (one of {', '.join(SERVICE_OPS)})")
    _check_fields(
        request,
        "",
        {**_SERVICE_COMMON_FIELDS, **_SERVICE_OP_FIELDS.get(request.get("op"), {})},
        errors,
    )
    if request.get("op") == "query" and not errors:
        if "query" not in request:
            errors.append("query: required")
        if "epsilon" not in request:
            errors.append("epsilon: required")
    if request.get("op") == "update" and not errors:
        if "actions" not in request:
            errors.append("actions: required")
        else:
            _check_update_actions(request["actions"], "actions", errors)
    if errors:
        raise ValueError("invalid request: " + "; ".join(errors))
    return request
