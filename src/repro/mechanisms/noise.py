"""Baseline mechanisms as registry entries (edge privacy only).

Adapters giving the baseline zoo (:mod:`repro.baselines`) the uniform
``Mechanism`` contract, so the session layer and the experiment harness
dispatch every mechanism the same way:

* ``"laplace"`` — global-sensitivity Laplace; the sensitivity must be
  supplied (``global_sensitivity=...``) because subgraph counts have no
  useful data-independent bound — omitted it is treated as unbounded and
  the release raises, reproducing Fig. 1's "not solvable" row;
* ``"smooth"`` (alias ``"local-sensitivity"``) — NRS07 for triangles,
  Karwa et al. for k-stars (ε-DP) and k-triangles ((ε,δ)-DP);
* ``"rhms"`` — RHMS output perturbation ((ε,γ)-adversarial privacy);
* ``"pinq"`` — PINQ-style restricted-join Laplace with clipping
  semantics (``bound=...`` declares the per-participant tuple cap).

All reject ``privacy="node"`` with a clear error — none of them achieves
node differential privacy with nontrivial utility, which is the paper's
point of comparison.
"""

from __future__ import annotations

import math
import re

from ..baselines.kstar_karwa import KarwaKStarMechanism
from ..baselines.ktriangle_karwa import KarwaKTriangleMechanism
from ..baselines.laplace import GlobalSensitivityLaplace
from ..baselines.pinq import PINQStyleLaplace
from ..baselines.rhms import RHMSMechanism
from ..baselines.triangles_nrs import NRSTriangleMechanism
from ..errors import MechanismError
from ..graphs.graph import Graph
from ..results import ResultBase
from ..rng import RngLike
from ..subgraphs.patterns import Pattern
from .base import Mechanism, PreparedQuery, QuerySpec, register

__all__ = [
    "LaplaceBaseline",
    "SmoothBaseline",
    "RHMSBaseline",
    "PinqBaseline",
    "exact_pattern_count",
]


def exact_pattern_count(graph: Graph, pattern: Pattern) -> float:
    """Exact occurrence count, via closed forms when the name matches.

    ``triangle`` / ``<k>-star`` / ``<k>-triangle`` use the specialized
    counters; anything else enumerates occurrences with the generic
    matcher (prepare-time only, never in a trial loop).
    """
    from ..subgraphs.counting import (
        count_k_stars,
        count_k_triangles,
        count_triangles,
    )

    if pattern.name == "triangle":
        return float(count_triangles(graph))
    match = re.fullmatch(r"(\d+)-star", pattern.name)
    if match:
        return float(count_k_stars(graph, int(match.group(1))))
    match = re.fullmatch(r"(\d+)-triangle", pattern.name)
    if match:
        return float(count_k_triangles(graph, int(match.group(1))))
    from ..subgraphs.annotate import occurrences_for_pattern

    return float(len(occurrences_for_pattern(graph, pattern)))


class _PreparedBaseline(PreparedQuery):
    """Prepared baseline: a bound ``run(epsilon, rng)``-style closure."""

    def __init__(self, spec: QuerySpec, runner, truth: float):
        super().__init__(spec)
        self._runner = runner
        self._truth = float(truth)

    @property
    def true_answer(self) -> float:
        """The exact count (diagnostics only)."""
        return self._truth

    def _release(self, epsilon, rng: RngLike, params) -> ResultBase:
        if params is not None:
            raise MechanismError(
                "mechanism params apply to the recursive mechanism only"
            )
        return self._runner(epsilon, rng)


@register
class LaplaceBaseline(Mechanism):
    """Global-sensitivity Laplace (Dwork et al.); edge privacy, bounded GS only.

    Option ``global_sensitivity``: the caller-certified ``GS_q``.  When
    omitted the query is treated as unbounded (unrestricted joins) and
    every release raises, mirroring Fig. 1.
    """

    name = "laplace"
    privacy_models = ("edge",)

    def __init__(self, data, global_sensitivity: float = math.inf):
        super().__init__(data, global_sensitivity=global_sensitivity)

    def _prepare(self, spec: QuerySpec) -> _PreparedBaseline:
        if spec.pattern is None:
            raise MechanismError(
                f"mechanism {self.name!r} answers subgraph pattern queries"
            )
        truth = exact_pattern_count(self._graph(), spec.pattern)
        laplace = GlobalSensitivityLaplace(self.options["global_sensitivity"])
        return _PreparedBaseline(
            spec, lambda epsilon, rng: laplace.run(truth, epsilon, rng), truth
        )


@register
class SmoothBaseline(Mechanism):
    """Local/smooth-sensitivity baselines: NRS07 triangles, Karwa k-stars/k-triangles.

    Dispatches on the pattern: ``triangle`` → NRS07 (ε-DP, Cauchy noise),
    ``<k>-star`` → Karwa et al. (ε-DP), ``<k>-triangle`` → Karwa et al.
    ((ε,δ)-DP; option ``delta``, default 0.1 as in the paper's Sec. 6).
    Option ``exact_pairs`` forces the exact NRS pair scan.
    """

    name = "smooth"
    aliases = ("local-sensitivity",)
    privacy_models = ("edge",)

    def __init__(self, data, delta: float = 0.1, exact_pairs: bool = False):
        super().__init__(data, delta=delta, exact_pairs=exact_pairs)

    def _prepare(self, spec: QuerySpec) -> _PreparedBaseline:
        if spec.pattern is None:
            raise MechanismError(
                f"mechanism {self.name!r} answers subgraph pattern queries"
            )
        graph = self._graph()
        pattern_name = spec.pattern.name
        truth = exact_pattern_count(graph, spec.pattern)
        if pattern_name == "triangle":
            nrs = NRSTriangleMechanism(graph, exact_pairs=self.options["exact_pairs"])
            return _PreparedBaseline(
                spec, lambda epsilon, rng: nrs.run(epsilon, rng), truth
            )
        star = re.fullmatch(r"(\d+)-star", pattern_name)
        if star:
            karwa_star = KarwaKStarMechanism(graph, int(star.group(1)))
            return _PreparedBaseline(
                spec, lambda epsilon, rng: karwa_star.run(epsilon, rng), truth
            )
        ktri = re.fullmatch(r"(\d+)-triangle", pattern_name)
        if ktri:
            karwa_tri = KarwaKTriangleMechanism(graph, int(ktri.group(1)))
            delta = self.options["delta"]
            return _PreparedBaseline(
                spec,
                lambda epsilon, rng: karwa_tri.run(epsilon, delta, rng),
                truth,
            )
        raise MechanismError(
            f"no local-sensitivity baseline for pattern {pattern_name!r}"
        )


@register
class RHMSBaseline(Mechanism):
    """RHMS output perturbation (Rastogi et al.); (ε,γ)-adversarial privacy."""

    name = "rhms"
    privacy_models = ("edge",)

    def _prepare(self, spec: QuerySpec) -> _PreparedBaseline:
        if spec.pattern is None:
            raise MechanismError(
                f"mechanism {self.name!r} answers subgraph pattern queries"
            )
        truth = exact_pattern_count(self._graph(), spec.pattern)
        rhms = RHMSMechanism(self._graph(), spec.pattern, truth)
        return _PreparedBaseline(
            spec, lambda epsilon, rng: rhms.run(epsilon, rng), truth
        )


@register
class PinqBaseline(Mechanism):
    """PINQ-style restricted-join Laplace: clips to a declared per-participant bound.

    Options: ``bound`` (the declared tuple cap ``c``, default 1) and
    ``strict`` (refuse instead of clipping when the bound is violated —
    the literal "not solvable with unrestricted joins" reading).
    """

    name = "pinq"
    aliases = ("pinq-restricted",)
    privacy_models = ("edge",)

    def __init__(self, data, bound: int = 1, strict: bool = False):
        super().__init__(data, bound=bound, strict=strict)

    def _prepare(self, spec: QuerySpec) -> _PreparedBaseline:
        relation = self._relation_for(spec)
        pinq = PINQStyleLaplace(
            relation,
            max_tuples_per_participant=self.options["bound"],
            query=spec.weight,
            strict=self.options["strict"],
        )
        return _PreparedBaseline(
            spec, lambda epsilon, rng: pinq.run(epsilon, rng), pinq.true_answer
        )
