"""The paper's recursive mechanism as a registry entry.

The only mechanism in the registry that honors **node** differential
privacy (and the only one supporting arbitrary positive relational-algebra
queries).  ``prepare`` does the expensive work — building the Fig. 2
sensitive K-relation and compiling the φ-epigraph LP
(:class:`~repro.relax.encode.EncodedRelation` →
:class:`~repro.lp.compiled.CompiledProgram`) — and the resulting
:class:`PreparedRecursive` is exactly what the session cache reuses:
repeated releases skip re-encode/re-compile *and* inherit the warm
``H``/``G`` entry caches, so a warm query pays only the X-step overlay
solve plus noise.
"""

from __future__ import annotations

from typing import Optional

from ..core.efficient import EfficientRecursiveMechanism
from ..core.params import RecursiveMechanismParams
from ..results import ResultBase
from ..rng import RngLike
from .base import Mechanism, PreparedQuery, QuerySpec, register

__all__ = ["RecursiveMechanism", "PreparedRecursive"]


class PreparedRecursive(PreparedQuery):
    """A compiled recursive-mechanism query, ready for repeated release."""

    def __init__(self, spec: QuerySpec, mechanism: EfficientRecursiveMechanism):
        super().__init__(spec)
        #: The underlying :class:`EfficientRecursiveMechanism` (exposes
        #: ``lp_size`` / ``is_compiled`` diagnostics and the entry caches).
        self.mechanism = mechanism

    @property
    def true_answer(self) -> float:
        """``q(supp(R))`` — the exact count, no LP solve needed."""
        return self.mechanism.true_answer()

    def _release(self, epsilon, rng: RngLike, params) -> ResultBase:
        if params is None:
            params = RecursiveMechanismParams.paper(
                epsilon, node_privacy=self.spec.node_privacy
            )
        return self.mechanism.run(params, rng)


@register
class RecursiveMechanism(Mechanism):
    """Recursive mechanism (Chen & Zhou): node- or edge-DP, any linear query.

    Options (all optional): ``backend`` (a solver-backend registry name
    such as ``"scipy"``/``"highs"``/``"gurobi"``, a backend instance, or
    ``None`` for the auto-detected default), ``workers`` (worker
    processes for the parallel solve paths), ``bounding``
    (``"paper"``/``"uniform"``/``"auto"``), ``normalize``, ``s_bar``,
    ``compiled`` — forwarded to
    :class:`~repro.core.efficient.EfficientRecursiveMechanism`.
    """

    name = "recursive"
    aliases = ("recursive-mechanism",)
    privacy_models = ("node", "edge")

    def __init__(
        self,
        data,
        backend=None,
        workers: Optional[int] = 1,
        bounding: str = "auto",
        normalize: bool = False,
        s_bar=None,
        compiled: bool = True,
    ):
        super().__init__(
            data, backend=backend, workers=workers, bounding=bounding,
            normalize=normalize, s_bar=s_bar, compiled=compiled,
        )

    def _prepare(self, spec: QuerySpec) -> PreparedRecursive:
        relation = self._relation_for(spec)
        mechanism = EfficientRecursiveMechanism(
            relation,
            query=spec.weight,
            backend=self.options["backend"],
            normalize=self.options["normalize"],
            bounding=self.options["bounding"],
            s_bar=self.options["s_bar"],
            compiled=self.options["compiled"],
            workers=self.options["workers"],
        )
        return PreparedRecursive(spec, mechanism)
