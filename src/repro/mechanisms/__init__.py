"""Unified mechanism registry: one name, one contract, every mechanism.

The paper's recursive mechanism and the baseline zoo share one protocol
(:class:`~repro.mechanisms.base.Mechanism`): construct over the sensitive
data, ``prepare`` a query into a cacheable
:class:`~repro.mechanisms.base.PreparedQuery`, and ``release`` noisy
answers from it — or use the uniform one-shot
``run(query, epsilon, rng)``.  Lookup is by name::

    from repro import mechanisms
    cls = mechanisms.get("recursive")        # or "laplace", "smooth",
    mech = cls(graph)                        # "rhms", "pinq", ...
    result = mech.run("triangle", epsilon=1.0, rng=7, privacy="node")

Every release returns a :class:`~repro.results.ResultBase`, so the
session layer (:mod:`repro.session`), the experiment harness
(:func:`repro.experiments.mechanisms.make_runner`), and the CLI
(``repro batch``) treat all mechanisms identically.  Registered names:
``recursive`` (node/edge DP), ``laplace``, ``smooth`` (alias
``local-sensitivity``), ``rhms``, ``pinq`` (edge DP only) — see
:func:`describe` for the live table.
"""

from .base import (
    Mechanism,
    PreparedQuery,
    QuerySpec,
    available,
    describe,
    get,
    register,
    resolve_pattern,
)
from .noise import LaplaceBaseline, PinqBaseline, RHMSBaseline, SmoothBaseline
from .recursive import RecursiveMechanism

__all__ = [
    "Mechanism",
    "PreparedQuery",
    "QuerySpec",
    "register",
    "get",
    "available",
    "describe",
    "resolve_pattern",
    "RecursiveMechanism",
    "LaplaceBaseline",
    "SmoothBaseline",
    "RHMSBaseline",
    "PinqBaseline",
]
