"""Mechanism protocol, query specs, and the registry core.

A *mechanism* is anything that can privately release a statistic of the
session's data.  This module defines the uniform contract the serving
layer (:mod:`repro.session`), the experiment harness, and the CLI dispatch
through:

* :class:`QuerySpec` — what to answer: a subgraph pattern (or the wrapped
  K-relation itself), the privacy model, and an optional per-tuple weight;
* :class:`Mechanism` — constructed over the sensitive data once, turns a
  spec into a :class:`PreparedQuery` (all expensive per-query
  precomputation: match enumeration, K-relation encoding, LP compilation,
  smooth-sensitivity statistics);
* :class:`PreparedQuery` — the cacheable product; ``release(epsilon, rng)``
  is the only part that spends privacy budget and draws noise;
* :func:`register` / :func:`get` / :func:`available` — the name registry
  (``repro.mechanisms.get("recursive")``).

Every ``release`` returns a :class:`~repro.results.ResultBase`, so callers
handle the recursive mechanism and every baseline identically.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Type

from ..core.queries import LinearQuery
from ..core.sensitive import SensitiveKRelation
from ..errors import MechanismError, PrivacyParameterError
from ..graphs.graph import Graph
from ..results import ResultBase
from ..rng import RngLike
from ..subgraphs.patterns import Pattern, k_star, k_triangle, triangle
from ..validation import validate_epsilon

__all__ = [
    "QuerySpec",
    "PreparedQuery",
    "Mechanism",
    "register",
    "get",
    "available",
    "describe",
    "resolve_pattern",
]

PRIVACY_MODELS = ("node", "edge")


def resolve_pattern(query) -> Pattern:
    """Coerce a query argument to a :class:`Pattern`.

    Accepts a :class:`Pattern` unchanged, or one of the paper's query
    names: ``"triangle"``, ``"<k>-star"``, ``"<k>-triangle"``.
    """
    if isinstance(query, Pattern):
        return query
    if isinstance(query, str):
        if query == "triangle":
            return triangle()
        match = re.fullmatch(r"(\d+)-star", query)
        if match:
            return k_star(int(match.group(1)))
        match = re.fullmatch(r"(\d+)-triangle", query)
        if match:
            return k_triangle(int(match.group(1)))
        raise MechanismError(f"unknown query {query!r}")
    raise MechanismError(
        f"query must be a Pattern or a query name string, got {query!r}"
    )


def _weight_token(weight: Optional[LinearQuery]):
    """Cache token for a per-tuple weight (identity-based when custom)."""
    if weight is None:
        return None
    return ("weight", id(weight))


@dataclass(frozen=True, eq=False)
class QuerySpec:
    """One private query: what statistic, under which privacy model.

    ``pattern`` is the query subgraph for graph-wrapping sessions, or
    ``None`` when the session wraps a prebuilt
    :class:`~repro.core.sensitive.SensitiveKRelation` directly.  ``weight``
    is the nonnegative per-tuple weight ``q+`` (``None`` = counting).
    """

    pattern: Optional[Pattern]
    privacy: str = "edge"
    weight: Optional[LinearQuery] = None

    @classmethod
    def of(
        cls, query, privacy: str = "edge", weight: Optional[LinearQuery] = None
    ) -> "QuerySpec":
        """Build a spec from a query argument.

        ``query`` may be a :class:`Pattern`, a query-name string
        (``"triangle"``, ``"2-star"``, …), a
        :class:`~repro.core.queries.LinearQuery` (relation sessions:
        the weight *is* the query), or ``None`` (relation sessions:
        plain counting).
        """
        if privacy not in PRIVACY_MODELS:
            raise PrivacyParameterError(
                f"privacy must be one of {PRIVACY_MODELS}, got {privacy!r}"
            )
        if isinstance(query, LinearQuery):
            if weight is not None:
                raise MechanismError(
                    "pass the linear query either positionally or as "
                    "weight=, not both"
                )
            return cls(pattern=None, privacy=privacy, weight=query)
        if query is None:
            return cls(pattern=None, privacy=privacy, weight=weight)
        return cls(pattern=resolve_pattern(query), privacy=privacy, weight=weight)

    @property
    def node_privacy(self) -> bool:
        """Whether this spec asks for node (vs edge) differential privacy."""
        return self.privacy == "node"

    def cache_key(self) -> tuple:
        """Hashable identity for the compiled-relation cache.

        Combines the pattern token (semantic for unconstrained patterns),
        the privacy model, and the weight token — everything that changes
        the *compiled* LP structure.  Privacy-budget parameters (``ε``,
        mechanism params) are deliberately excluded: the compiled relation
        is reusable across budgets.
        """
        pattern_token = (
            ("relation",) if self.pattern is None else self.pattern.cache_token
        )
        return (pattern_token, self.privacy, _weight_token(self.weight))

    def describe(self) -> str:
        """Short human-readable form for ledgers and tables."""
        target = self.pattern.name if self.pattern is not None else "relation"
        return f"{target}/{self.privacy}"


class PreparedQuery:
    """A query with all expensive precomputation done, ready to release.

    Subclasses implement :meth:`_release`; the base validates ``epsilon``
    uniformly.  Instances are cached by the session layer and reused
    across releases — only :meth:`release` consumes randomness.
    """

    def __init__(self, spec: QuerySpec):
        self.spec = spec

    @property
    def true_answer(self) -> float:
        """The exact (non-private) answer — diagnostics only."""
        raise NotImplementedError

    def release(self, epsilon, rng: RngLike = None, params=None) -> ResultBase:
        """Spend ``epsilon`` and release one noisy answer.

        ``params`` (a :class:`~repro.core.params.RecursiveMechanismParams`)
        overrides the paper's settings for the recursive mechanism;
        baselines reject it.
        """
        if params is None:
            epsilon = validate_epsilon(epsilon)
        return self._release(epsilon, rng, params)

    def _release(self, epsilon, rng: RngLike, params) -> ResultBase:
        """Implementation hook: produce one release."""
        raise NotImplementedError


class Mechanism:
    """Base class of every registered mechanism.

    Subclasses set :attr:`name` (registry key), optional :attr:`aliases`,
    and :attr:`privacy_models`, and implement :meth:`_prepare`.  The
    shared entry points are :meth:`prepare` (cacheable precomputation) and
    the uniform one-shot :meth:`run` signature
    ``run(query, epsilon, rng)``.

    Solver-backed mechanisms take a ``backend`` option naming an entry in
    the solver-backend registry (:mod:`repro.lp.backends`): ``None`` for
    the auto-detected default, a registered name (``"scipy"``,
    ``"highs"``, ``"gurobi"``), or a backend instance.  The resolved
    backend's ``cache_token`` participates in the session cache key, so
    prepared queries are never shared across solver backends.
    """

    #: Registry key (e.g. ``"recursive"``).
    name: str = ""
    #: Alternate registry keys resolving to this class.
    aliases: Tuple[str, ...] = ()
    #: Privacy models this mechanism can honor.
    privacy_models: Tuple[str, ...] = ("edge",)

    def __init__(self, data, **options):
        self.data = data
        self.options = dict(options)

    def _graph(self) -> Graph:
        """The wrapped data as a graph, or a clear error."""
        if not isinstance(self.data, Graph):
            raise MechanismError(
                f"mechanism {self.name!r} answers subgraph queries over a "
                f"Graph; got {type(self.data).__name__}"
            )
        return self.data

    def _relation_for(self, spec: QuerySpec) -> SensitiveKRelation:
        """The sensitive K-relation for ``spec`` (built or passed through)."""
        if isinstance(self.data, SensitiveKRelation):
            if spec.pattern is not None:
                raise MechanismError(
                    "this session wraps a SensitiveKRelation; query it with "
                    "a LinearQuery (or None for counting), not a pattern"
                )
            return self.data
        if spec.pattern is None:
            raise MechanismError(
                "a graph-wrapping session needs a subgraph pattern (or "
                "query name) to answer"
            )
        from ..subgraphs.annotate import subgraph_krelation

        graph = self._graph()
        # Dynamic graphs (repro.dynamic.VersionedGraph) maintain their
        # occurrence relations incrementally under updates — preparing a
        # query over one reads the maintained relation instead of
        # re-enumerating from scratch.  The columnar store can go one step
        # further and hand back the relation in participant-index form
        # (no per-occurrence annotation objects); custom per-tuple weights
        # need the materialized occurrences, so they stay on the legacy
        # path.
        if spec.weight is None:
            relation_provider = getattr(graph, "relation_for", None)
            if relation_provider is not None:
                relation = relation_provider(spec.pattern, spec.privacy)
                if relation is not None:
                    return relation
        provider = getattr(graph, "occurrences_for", None)
        occurrences = provider(spec.pattern) if provider is not None else None
        return subgraph_krelation(
            graph, spec.pattern, privacy=spec.privacy, occurrences=occurrences
        )

    def prepare(self, spec: QuerySpec) -> PreparedQuery:
        """Do all per-query precomputation; checks the privacy model."""
        if spec.privacy not in self.privacy_models:
            raise PrivacyParameterError(
                f"mechanism {self.name!r} supports "
                f"{'/'.join(self.privacy_models)} privacy only, "
                f"got {spec.privacy!r}"
            )
        return self._prepare(spec)

    def _prepare(self, spec: QuerySpec) -> PreparedQuery:
        """Implementation hook for :meth:`prepare`."""
        raise NotImplementedError

    def run(
        self,
        query,
        epsilon,
        rng: RngLike = None,
        *,
        privacy: str = "edge",
        weight: Optional[LinearQuery] = None,
        params=None,
    ) -> ResultBase:
        """One-shot: prepare ``query`` and release once.

        The registry-wide uniform signature.  For repeated queries over
        the same data, go through a :class:`~repro.session.PrivateSession`
        instead — it caches the prepared (compiled) query.
        """
        spec = QuerySpec.of(query, privacy=privacy, weight=weight)
        return self.prepare(spec).release(epsilon, rng, params=params)


_REGISTRY: Dict[str, Type[Mechanism]] = {}


def register(cls: Type[Mechanism]) -> Type[Mechanism]:
    """Class decorator: add a :class:`Mechanism` to the registry."""
    if not cls.name:
        raise MechanismError(f"mechanism class {cls.__name__} has no name")
    for key in (cls.name, *cls.aliases):
        existing = _REGISTRY.get(key)
        if existing is not None and existing is not cls:
            raise MechanismError(
                f"mechanism name {key!r} already registered to " f"{existing.__name__}"
            )
        _REGISTRY[key] = cls
    return cls


def get(name: str) -> Type[Mechanism]:
    """Look up a mechanism class by registry name or alias.

    >>> from repro.mechanisms import get
    >>> get("recursive").privacy_models
    ('node', 'edge')
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise MechanismError(
            f"unknown mechanism {name!r}; available: "
            f"{', '.join(available())}"
        ) from None


def available() -> Tuple[str, ...]:
    """Sorted primary (non-alias) registry names."""
    return tuple(sorted({cls.name for cls in _REGISTRY.values()}))


def describe() -> List[Dict[str, str]]:
    """One row per registered mechanism (for reports, docs, the CLI)."""
    rows = []
    for name in available():
        cls = _REGISTRY[name]
        doc = (cls.__doc__ or "").strip().splitlines()[0] if cls.__doc__ else ""
        rows.append(
            {
                "mechanism": name,
                "aliases": ", ".join(cls.aliases) or "-",
                "privacy": "/".join(cls.privacy_models),
                "summary": doc,
            }
        )
    return rows
