"""Dynamic-graph subsystem: versioned storage + incremental maintenance.

The serving stack above :mod:`repro.graphs` was built over a frozen
graph; this package makes the data *evolve under the service*:

* :class:`VersionedGraph` — a :class:`~repro.graphs.Graph` with an
  append-only update log, a monotone version counter, and O(1)
  snapshots (:class:`GraphSnapshot`);
* :class:`~repro.dynamic.delta.GraphDelta` — one effective mutation, in
  replayable / JSON-wire form;
* :class:`IncrementalOccurrences` — per-pattern occurrence relations
  maintained by delta-joins against the touched neighborhood instead of
  from-scratch re-enumeration, with a full-rebuild fallback and an
  equivalence oracle.

The session layer threads the version through compiled-relation cache
keys (:meth:`repro.session.PrivateSession.apply_update`), and the
network service exposes live updates as the admin-gated v1 wire op
``update`` (``python -m repro serve --updates``).
"""

from .delta import DELTA_KINDS, GraphDelta
from .incremental import IncrementalOccurrences
from .versioned import GraphSnapshot, VersionedGraph, version_token

__all__ = [
    "DELTA_KINDS",
    "GraphDelta",
    "GraphSnapshot",
    "IncrementalOccurrences",
    "VersionedGraph",
    "version_token",
]
