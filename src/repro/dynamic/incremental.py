"""Incremental occurrence-relation maintenance under graph updates.

Enumerating a pattern's occurrences is the expensive front of every
query preparation; re-running it from scratch after each small graph
update throws away almost all of the previous work.
:class:`IncrementalOccurrences` keeps, for every registered pattern, the
full occurrence set of the *current* graph and applies each
:class:`~repro.dynamic.delta.GraphDelta` by touching only the
occurrences the delta can actually affect — the delta-join idea behind
answering queries under updates (Berkholz–Keppeler–Schweikardt):

* ``add_edge (u, v)`` — every new occurrence must *use* the new edge, and
  a connected pattern on ``k`` nodes that uses ``{u, v}`` lies entirely
  within distance ``k - 2`` of ``{u, v}``.  The maintainer therefore
  enumerates the pattern only in the induced subgraph on that
  neighborhood ball and inserts the matches containing the new edge.
* ``remove_edge (u, v)`` — an inverted index (edge → occurrences)
  drops exactly the occurrences using the edge, no scan.
* ``remove_node`` — the captured incident edges are removed in turn
  (every occurrence touching the node uses at least one of them, since
  patterns are connected).
* ``add_node`` / removing an isolated node — occurrence sets are
  unchanged (patterns have at least one edge).

The maintenance logic lives here; the *representation* of a maintained
set is a pluggable :mod:`repro.store` backend — the columnar store
(interned ids, NumPy tables, searchsorted inverted indexes) by default,
the original dict-of-frozensets as the always-available oracle
(``store="dict"`` / ``REPRO_OCC_STORE=dict``).  Both backends see the
identical insert/drop call sequence, so the canonical occurrence order
(ties broken by insertion order) and hence every downstream compiled LP
is byte-identical across them.

Constrained patterns carry opaque predicate callables with no update
algebra, so they take the :meth:`full rebuild <IncrementalOccurrences.
full_rebuild>` fallback on every delta — still correct, just not
incremental.  The equivalence oracle (:meth:`IncrementalOccurrences.
verify`) pins maintained state against a from-scratch enumeration, and
the randomized-stream tests in ``tests/test_dynamic.py`` exercise it over
insert/delete streams for every pattern family.

Occurrence *order* is part of the compiled relation's float-level
identity, so :meth:`occurrences` returns a canonically sorted tuple — the
same tuple whether the state was reached by updates or by registering the
pattern on the final graph.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..errors import GraphError
from ..graphs.graph import Graph
from ..obs import metrics as obs_metrics
from ..obs import size_buckets
from ..store.backend import (
    ColumnarOccurrenceBackend,
    DictOccurrenceBackend,
    OccurrenceBackend,
    resolve_store,
)
from ..store.interning import InternTable
from ..subgraphs.annotate import occurrences_for_pattern
from ..subgraphs.matching import Occurrence
from ..subgraphs.patterns import Pattern
from .delta import GraphDelta

__all__ = ["IncrementalOccurrences"]


def _neighborhood_ball(
    graph: Graph, seeds: Iterable[object], radius: int
) -> Set[object]:
    """All nodes within ``radius`` hops of any seed (BFS)."""
    frontier = [node for node in seeds if graph.has_node(node)]
    ball = set(frontier)
    for _ in range(radius):
        if not frontier:
            break
        next_frontier = []
        for node in frontier:
            for neighbor in graph.neighbors(node):
                if neighbor not in ball:
                    ball.add(neighbor)
                    next_frontier.append(neighbor)
        frontier = next_frontier
    return ball


class _PatternState:
    """Maintained occurrence set of one registered pattern."""

    __slots__ = (
        "pattern",
        "incremental",
        "backend",
        "rebuilds",
        "deltas_applied",
        "ball_last",
        "ball_max",
    )

    def __init__(self, pattern: Pattern, incremental: bool, backend: OccurrenceBackend):
        self.pattern = pattern
        self.incremental = incremental
        self.backend = backend
        self.rebuilds = 0
        self.deltas_applied = 0
        # delta-join neighborhood-ball sizes (maintenance diagnostics)
        self.ball_last = 0
        self.ball_max = 0

    def rebuild(self, graph: Graph) -> None:
        self.backend.bulk_load(occurrences_for_pattern(graph, self.pattern))
        self.rebuilds += 1

    def sorted_occurrences(self) -> Tuple[Occurrence, ...]:
        return self.backend.sorted_occurrences()


class IncrementalOccurrences:
    """Maintain pattern-occurrence sets of one live graph under deltas.

    The owner (normally a :class:`~repro.dynamic.VersionedGraph`) mutates
    the graph first and then calls :meth:`apply` with the delta, so the
    maintainer always sees the *post*-mutation graph.  Standalone use
    follows the same contract::

        graph = random_graph_with_avg_degree(50, 6, rng=0)
        inc = IncrementalOccurrences(graph)
        inc.register(triangle())
        graph.add_edge(1, 2)
        inc.apply(GraphDelta.add_edge(1, 2))
        inc.verify()          # oracle: maintained == from-scratch

    ``store`` selects the occurrence representation: ``"columnar"`` (the
    default; ``$REPRO_OCC_STORE`` overrides) or ``"dict"`` (the oracle).
    """

    def __init__(self, graph: Graph, store: Optional[str] = None):
        self._graph = graph
        self._states: Dict[tuple, _PatternState] = {}
        self.store = resolve_store(store)
        # One intern table shared by every columnar pattern table, so a
        # node/edge has the same dense id in all of them.  Its graph-
        # presence flags are synced lazily at first registration and
        # maintained per delta afterwards.
        self._interner = InternTable() if self.store == "columnar" else None
        self._interner_synced = False

    @property
    def interner(self) -> Optional[InternTable]:
        """The shared intern table (``None`` under the dict store)."""
        return self._interner

    def _make_backend(self, pattern: Pattern) -> OccurrenceBackend:
        if self._interner is not None:
            return ColumnarOccurrenceBackend(
                self._interner,
                num_nodes=pattern.num_nodes,
                num_edges=pattern.graph.num_edges,
            )
        return DictOccurrenceBackend()

    def _sync_interner(self) -> None:
        if self._interner is not None and not self._interner_synced:
            self._interner.sync(self._graph)
            self._interner_synced = True

    # -- registration -----------------------------------------------------------
    def register(self, pattern: Pattern) -> None:
        """Start maintaining ``pattern`` (one full enumeration, idempotent).

        Unconstrained patterns are maintained incrementally; constrained
        ones (opaque predicates) fall back to a full rebuild per delta.
        """
        if not isinstance(pattern, Pattern):
            raise GraphError(
                f"register() takes a Pattern, got {type(pattern).__name__}"
            )
        token = pattern.cache_token
        if token in self._states:
            return
        self._sync_interner()
        incremental = not (pattern.node_constraints or pattern.edge_constraints)
        state = _PatternState(pattern, incremental, self._make_backend(pattern))
        state.rebuild(self._graph)
        state.rebuilds = 0  # the registration scan is not a fallback rebuild
        self._states[token] = state

    def patterns(self) -> List[Pattern]:
        """Every registered pattern."""
        return [state.pattern for state in self._states.values()]

    def _state(self, pattern: Pattern) -> _PatternState:
        token = pattern.cache_token
        if token not in self._states:
            self.register(pattern)
        return self._states[token]

    # -- reads ------------------------------------------------------------------
    def occurrences(self, pattern: Pattern) -> Tuple[Occurrence, ...]:
        """The pattern's occurrence tuple, canonically ordered.

        Registers the pattern on first use; afterwards this is the
        maintained set — query preparation over a dynamic graph reads it
        instead of re-enumerating.  The tuple is cached and immutable:
        repeated calls between updates return the same object, no copy.
        """
        return self._state(pattern).sorted_occurrences()

    def relation_for(self, pattern: Pattern, privacy: str):
        """A columnar-backed sensitive K-relation, or ``None`` to fall back.

        The fast relation path: when the pattern's maintained state lives
        in the columnar store (and no repr collision makes string-keyed
        orders ambiguous), the participant/annotation structure is read
        straight out of the intern table and occurrence table as index
        arrays — no per-occurrence ``Occurrence``/``And`` objects.  The
        result is float-identical to the legacy
        :func:`~repro.subgraphs.annotate.subgraph_krelation` encoding.
        """
        if privacy not in ("node", "edge"):
            return None
        state = self._state(pattern)
        backend = state.backend
        if not isinstance(backend, ColumnarOccurrenceBackend):
            return None
        interner = self._interner
        if interner is None or interner.has_repr_collision:
            return None
        if not interner.counts_match(self._graph):
            # the graph was mutated behind the maintainer's back —
            # re-anchor the presence flags before trusting them
            interner.sync(self._graph)
        from ..store.relation import conjunctive_relation

        return conjunctive_relation(backend, privacy)

    def count(self, pattern: Pattern) -> int:
        """Number of maintained occurrences of ``pattern``."""
        return len(self._state(pattern).backend)

    def info(self) -> List[Dict[str, object]]:
        """Maintenance counters, one row per registered pattern."""
        rows = []
        for state in self._states.values():
            row: Dict[str, object] = {
                "pattern": state.pattern.name,
                "incremental": state.incremental,
                "occurrences": len(state.backend),
                "deltas_applied": state.deltas_applied,
                "rebuilds": state.rebuilds,
                "ball_last": state.ball_last,
                "ball_max": state.ball_max,
            }
            row.update(state.backend.info())
            rows.append(row)
        return rows

    # -- maintenance ------------------------------------------------------------
    def apply(self, delta: GraphDelta) -> None:
        """Apply one delta (the graph must already reflect it)."""
        if not isinstance(delta, GraphDelta):
            raise GraphError(f"apply() takes a GraphDelta, got {type(delta).__name__}")
        if self._interner is not None and self._interner_synced:
            self._apply_presence(delta)
        registry = obs_metrics()
        for state in self._states.values():
            state.deltas_applied += 1
            registry.counter(
                "repro_maintenance_deltas_total", pattern=state.pattern.name
            ).inc()
            if not state.incremental:
                state.rebuild(self._graph)
                registry.counter(
                    "repro_maintenance_rebuilds_total", pattern=state.pattern.name
                ).inc()
            elif delta.kind == "add_edge":
                self._apply_edge_insert(state, delta.u, delta.v)
            elif delta.kind == "remove_edge":
                state.backend.drop_edge(delta.u, delta.v)
            elif delta.kind == "remove_node":
                for a, b in delta.removed_edges:
                    state.backend.drop_edge(a, b)
            # add_node: no occurrence can involve an isolated node

    def _apply_presence(self, delta: GraphDelta) -> None:
        """Mirror one delta into the intern table's presence flags."""
        interner = self._interner
        if delta.kind == "add_edge":
            interner.add_edge(delta.u, delta.v)
        elif delta.kind == "remove_edge":
            interner.drop_edge(delta.u, delta.v)
        elif delta.kind == "add_node":
            interner.add_node(delta.u)
        elif delta.kind == "remove_node":
            for a, b in delta.removed_edges:
                interner.drop_edge(a, b)
            interner.drop_node(delta.u)

    def _apply_edge_insert(self, state: _PatternState, u, v) -> None:
        """Delta-join for one edge insert: enumerate only around the edge.

        A connected ``k``-node occurrence containing the edge ``{u, v}``
        has every node within ``k - 2`` hops of ``{u, v}`` (shortest
        paths inside the occurrence's own spanning tree), so enumerating
        the pattern in the induced subgraph on that ball finds every new
        occurrence — and the ``uses-the-new-edge`` filter keeps exactly
        the delta.
        """
        pattern = state.pattern
        edge = frozenset((u, v))
        radius = max(pattern.num_nodes - 2, 0)
        ball = _neighborhood_ball(self._graph, (u, v), radius)
        state.ball_last = len(ball)
        if state.ball_last > state.ball_max:
            state.ball_max = state.ball_last
        obs_metrics().histogram(
            "repro_maintenance_ball_size",
            buckets=size_buckets(),
            pattern=pattern.name,
        ).observe(float(state.ball_last))
        neighborhood = self._graph.subgraph(ball)
        for occurrence in occurrences_for_pattern(neighborhood, pattern):
            uses_edge = any(frozenset(pair) == edge for pair in occurrence.edges)
            if uses_edge:
                state.backend.insert(occurrence)

    def full_rebuild(self, pattern: Optional[Pattern] = None) -> None:
        """Re-enumerate from scratch (one pattern, or all of them).

        The always-correct fallback: constrained patterns use it per
        delta, and callers can invoke it to re-anchor after mutating the
        graph behind the maintainer's back.
        """
        if pattern is not None:
            self._state(pattern).rebuild(self._graph)
            return
        for state in self._states.values():
            state.rebuild(self._graph)

    # -- the equivalence oracle -------------------------------------------------
    def diff(self, pattern: Pattern) -> Tuple[Set, Set]:
        """``(missing, extra)`` of the maintained set vs a fresh scan."""
        state = self._state(pattern)
        fresh = {
            frozenset(frozenset(pair) for pair in occ.edges)
            for occ in occurrences_for_pattern(self._graph, pattern)
        }
        maintained = state.backend.occ_keys()
        return fresh - maintained, maintained - fresh

    def verify(self, pattern: Optional[Pattern] = None) -> bool:
        """Assert maintained state equals from-scratch enumeration.

        Raises :class:`~repro.errors.GraphError` naming the first
        divergent pattern and its missing/extra occurrence counts;
        returns ``True`` when every registered pattern matches.
        """
        states = (
            [self._state(pattern)]
            if pattern is not None
            else list(self._states.values())
        )
        for state in states:
            missing, extra = self.diff(state.pattern)
            if missing or extra:
                raise GraphError(
                    f"incremental occurrences diverged for pattern "
                    f"{state.pattern.name!r}: {len(missing)} missing, "
                    f"{len(extra)} extra vs from-scratch enumeration"
                )
        return True
