"""Incremental occurrence-relation maintenance under graph updates.

Enumerating a pattern's occurrences is the expensive front of every
query preparation; re-running it from scratch after each small graph
update throws away almost all of the previous work.
:class:`IncrementalOccurrences` keeps, for every registered pattern, the
full occurrence set of the *current* graph and applies each
:class:`~repro.dynamic.delta.GraphDelta` by touching only the
occurrences the delta can actually affect — the delta-join idea behind
answering queries under updates (Berkholz–Keppeler–Schweikardt):

* ``add_edge (u, v)`` — every new occurrence must *use* the new edge, and
  a connected pattern on ``k`` nodes that uses ``{u, v}`` lies entirely
  within distance ``k - 2`` of ``{u, v}``.  The maintainer therefore
  enumerates the pattern only in the induced subgraph on that
  neighborhood ball and inserts the matches containing the new edge.
* ``remove_edge (u, v)`` — an inverted index (edge → occurrence keys)
  drops exactly the occurrences using the edge, no scan.
* ``remove_node`` — the captured incident edges are removed in turn
  (every occurrence touching the node uses at least one of them, since
  patterns are connected).
* ``add_node`` / removing an isolated node — occurrence sets are
  unchanged (patterns have at least one edge).

Constrained patterns carry opaque predicate callables with no update
algebra, so they take the :meth:`full rebuild <IncrementalOccurrences.
full_rebuild>` fallback on every delta — still correct, just not
incremental.  The equivalence oracle (:meth:`IncrementalOccurrences.
verify`) pins maintained state against a from-scratch enumeration, and
the randomized-stream tests in ``tests/test_dynamic.py`` exercise it over
insert/delete streams for every pattern family.

Occurrence *order* is part of the compiled relation's float-level
identity, so :meth:`occurrences` returns a canonically sorted list — the
same list whether the state was reached by updates or by registering the
pattern on the final graph.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..errors import GraphError
from ..graphs.graph import Graph
from ..subgraphs.annotate import occurrences_for_pattern
from ..subgraphs.matching import Occurrence
from ..subgraphs.patterns import Pattern
from .delta import GraphDelta

__all__ = ["IncrementalOccurrences"]

#: An occurrence's identity: its used-edge set with every edge reduced
#: to an orientation-free endpoint pair.  ``Occurrence.normalize_edge``
#: breaks repr ties by argument order, so two enumerations (or a delete
#: arriving in the other orientation) can disagree on the tuple for an
#: edge between distinct equal-``repr`` nodes — frozenset keys cannot.
_EdgeKey = FrozenSet[object]
_OccKey = FrozenSet[_EdgeKey]


def _edge_key(u, v) -> _EdgeKey:
    """Orientation-free identity of one undirected edge."""
    return frozenset((u, v))


def _occ_key(occurrence: Occurrence) -> _OccKey:
    """Orientation-free identity of one occurrence (its edge set)."""
    return frozenset(_edge_key(u, v) for u, v in occurrence.edges)


def _occurrence_sort_key(occurrence: Occurrence) -> Tuple[str, ...]:
    """Canonical total order over occurrences (stable across run paths)."""
    return tuple(sorted(map(repr, occurrence.edges)))


def _neighborhood_ball(graph: Graph, seeds: Iterable[object],
                       radius: int) -> Set[object]:
    """All nodes within ``radius`` hops of any seed (BFS)."""
    frontier = [node for node in seeds if graph.has_node(node)]
    ball = set(frontier)
    for _ in range(radius):
        if not frontier:
            break
        next_frontier = []
        for node in frontier:
            for neighbor in graph.neighbors(node):
                if neighbor not in ball:
                    ball.add(neighbor)
                    next_frontier.append(neighbor)
        frontier = next_frontier
    return ball


class _PatternState:
    """Maintained occurrence set of one registered pattern."""

    __slots__ = ("pattern", "incremental", "occurrences", "by_edge",
                 "rebuilds", "deltas_applied", "_sorted")

    def __init__(self, pattern: Pattern, incremental: bool):
        self.pattern = pattern
        self.incremental = incremental
        self.occurrences: Dict[_OccKey, Occurrence] = {}
        self.by_edge: Dict[_EdgeKey, Set[_OccKey]] = {}
        self.rebuilds = 0
        self.deltas_applied = 0
        self._sorted: Optional[List[Occurrence]] = None

    def insert(self, occurrence: Occurrence) -> None:
        key = _occ_key(occurrence)
        if key in self.occurrences:
            return
        self.occurrences[key] = occurrence
        for edge in key:
            self.by_edge.setdefault(edge, set()).add(key)
        self._sorted = None

    def drop_edge(self, edge: _EdgeKey) -> int:
        """Remove every occurrence using ``edge``; returns how many."""
        keys = self.by_edge.pop(edge, None)
        if not keys:
            return 0
        for key in keys:
            del self.occurrences[key]
            for other in key:
                if other == edge:
                    continue
                bucket = self.by_edge.get(other)
                if bucket is not None:
                    bucket.discard(key)
                    if not bucket:
                        del self.by_edge[other]
        self._sorted = None
        return len(keys)

    def rebuild(self, graph: Graph) -> None:
        self.occurrences.clear()
        self.by_edge.clear()
        for occurrence in occurrences_for_pattern(graph, self.pattern):
            self.insert(occurrence)
        self.rebuilds += 1
        self._sorted = None

    def sorted_occurrences(self) -> List[Occurrence]:
        if self._sorted is None:
            self._sorted = sorted(self.occurrences.values(),
                                  key=_occurrence_sort_key)
        return list(self._sorted)


class IncrementalOccurrences:
    """Maintain pattern-occurrence sets of one live graph under deltas.

    The owner (normally a :class:`~repro.dynamic.VersionedGraph`) mutates
    the graph first and then calls :meth:`apply` with the delta, so the
    maintainer always sees the *post*-mutation graph.  Standalone use
    follows the same contract::

        graph = random_graph_with_avg_degree(50, 6, rng=0)
        inc = IncrementalOccurrences(graph)
        inc.register(triangle())
        graph.add_edge(1, 2)
        inc.apply(GraphDelta.add_edge(1, 2))
        inc.verify()          # oracle: maintained == from-scratch
    """

    def __init__(self, graph: Graph):
        self._graph = graph
        self._states: Dict[tuple, _PatternState] = {}

    # -- registration -----------------------------------------------------------
    def register(self, pattern: Pattern) -> None:
        """Start maintaining ``pattern`` (one full enumeration, idempotent).

        Unconstrained patterns are maintained incrementally; constrained
        ones (opaque predicates) fall back to a full rebuild per delta.
        """
        if not isinstance(pattern, Pattern):
            raise GraphError(
                f"register() takes a Pattern, got {type(pattern).__name__}"
            )
        token = pattern.cache_token
        if token in self._states:
            return
        incremental = not (pattern.node_constraints or pattern.edge_constraints)
        state = _PatternState(pattern, incremental)
        state.rebuild(self._graph)
        state.rebuilds = 0  # the registration scan is not a fallback rebuild
        self._states[token] = state

    def patterns(self) -> List[Pattern]:
        """Every registered pattern."""
        return [state.pattern for state in self._states.values()]

    def _state(self, pattern: Pattern) -> _PatternState:
        token = pattern.cache_token
        if token not in self._states:
            self.register(pattern)
        return self._states[token]

    # -- reads ------------------------------------------------------------------
    def occurrences(self, pattern: Pattern) -> List[Occurrence]:
        """The pattern's occurrence list, canonically ordered.

        Registers the pattern on first use; afterwards this is the
        maintained set — query preparation over a dynamic graph reads it
        instead of re-enumerating.
        """
        return self._state(pattern).sorted_occurrences()

    def count(self, pattern: Pattern) -> int:
        """Number of maintained occurrences of ``pattern``."""
        return len(self._state(pattern).occurrences)

    def info(self) -> List[Dict[str, object]]:
        """Maintenance counters, one row per registered pattern."""
        return [
            {
                "pattern": state.pattern.name,
                "incremental": state.incremental,
                "occurrences": len(state.occurrences),
                "deltas_applied": state.deltas_applied,
                "rebuilds": state.rebuilds,
            }
            for state in self._states.values()
        ]

    # -- maintenance ------------------------------------------------------------
    def apply(self, delta: GraphDelta) -> None:
        """Apply one delta (the graph must already reflect it)."""
        if not isinstance(delta, GraphDelta):
            raise GraphError(
                f"apply() takes a GraphDelta, got {type(delta).__name__}"
            )
        for state in self._states.values():
            state.deltas_applied += 1
            if not state.incremental:
                state.rebuild(self._graph)
            elif delta.kind == "add_edge":
                self._apply_edge_insert(state, delta.u, delta.v)
            elif delta.kind == "remove_edge":
                state.drop_edge(_edge_key(delta.u, delta.v))
            elif delta.kind == "remove_node":
                for a, b in delta.removed_edges:
                    state.drop_edge(_edge_key(a, b))
            # add_node: no occurrence can involve an isolated node

    def _apply_edge_insert(self, state: _PatternState, u, v) -> None:
        """Delta-join for one edge insert: enumerate only around the edge.

        A connected ``k``-node occurrence containing the edge ``{u, v}``
        has every node within ``k - 2`` hops of ``{u, v}`` (shortest
        paths inside the occurrence's own spanning tree), so enumerating
        the pattern in the induced subgraph on that ball finds every new
        occurrence — and the ``uses-the-new-edge`` filter keeps exactly
        the delta.
        """
        pattern = state.pattern
        edge = _edge_key(u, v)
        radius = max(pattern.num_nodes - 2, 0)
        ball = _neighborhood_ball(self._graph, (u, v), radius)
        neighborhood = self._graph.subgraph(ball)
        for occurrence in occurrences_for_pattern(neighborhood, pattern):
            if edge in _occ_key(occurrence):
                state.insert(occurrence)

    def full_rebuild(self, pattern: Optional[Pattern] = None) -> None:
        """Re-enumerate from scratch (one pattern, or all of them).

        The always-correct fallback: constrained patterns use it per
        delta, and callers can invoke it to re-anchor after mutating the
        graph behind the maintainer's back.
        """
        if pattern is not None:
            self._state(pattern).rebuild(self._graph)
            return
        for state in self._states.values():
            state.rebuild(self._graph)

    # -- the equivalence oracle -------------------------------------------------
    def diff(self, pattern: Pattern) -> Tuple[Set[_OccKey], Set[_OccKey]]:
        """``(missing, extra)`` of the maintained set vs a fresh scan."""
        state = self._state(pattern)
        fresh = {_occ_key(occ) for occ in
                 occurrences_for_pattern(self._graph, pattern)}
        maintained = set(state.occurrences)
        return fresh - maintained, maintained - fresh

    def verify(self, pattern: Optional[Pattern] = None) -> bool:
        """Assert maintained state equals from-scratch enumeration.

        Raises :class:`~repro.errors.GraphError` naming the first
        divergent pattern and its missing/extra occurrence counts;
        returns ``True`` when every registered pattern matches.
        """
        states = ([self._state(pattern)] if pattern is not None
                  else list(self._states.values()))
        for state in states:
            missing, extra = self.diff(state.pattern)
            if missing or extra:
                raise GraphError(
                    f"incremental occurrences diverged for pattern "
                    f"{state.pattern.name!r}: {len(missing)} missing, "
                    f"{len(extra)} extra vs from-scratch enumeration"
                )
        return True
