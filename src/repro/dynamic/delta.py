"""Graph update deltas: the unit of the dynamic-graph update log.

A :class:`GraphDelta` records one *effective* mutation of a
:class:`~repro.graphs.Graph` — an edge or node insert/delete — in a form
that can be (1) replayed onto a plain graph to reconstruct any historical
version (:meth:`GraphDelta.apply_to`), (2) consumed by the incremental
occurrence maintainer (:mod:`repro.dynamic.incremental`), and (3) shipped
over the wire / stored in a session's audit ledger as plain JSON
(:meth:`GraphDelta.to_dict` / :meth:`GraphDelta.from_action`).

The wire/spec form is an *action* object::

    {"action": "add_edge", "u": 1, "v": 2}
    {"action": "remove_edge", "u": 1, "v": 2}
    {"action": "add_node", "node": 7}
    {"action": "remove_node", "node": 7}

``remove_node`` deltas additionally carry the incident edges that were
removed with the node (captured by the versioned store at removal time):
the maintainer needs them to drop every occurrence the node participated
in, and a replay of the delta does not (``Graph.remove_node`` removes
incident edges itself).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

from ..errors import GraphError

__all__ = ["GraphDelta", "DELTA_KINDS"]

#: The update vocabulary, matching the mutators of :class:`~repro.graphs.Graph`.
DELTA_KINDS = ("add_node", "remove_node", "add_edge", "remove_edge")

_EDGE_KINDS = ("add_edge", "remove_edge")
_NODE_KINDS = ("add_node", "remove_node")


@dataclass(frozen=True)
class GraphDelta:
    """One effective graph mutation.

    ``u`` is the node for node deltas, and one endpoint for edge deltas
    (``v`` is the other endpoint, ``None`` for node deltas).
    ``removed_edges`` is populated only on ``remove_node`` deltas: the
    ``(node, neighbor)`` pairs that vanished with the node.
    """

    kind: str
    u: Any
    v: Any = None
    removed_edges: Tuple[Tuple[Any, Any], ...] = field(default=())

    def __post_init__(self):
        if self.kind not in DELTA_KINDS:
            raise GraphError(
                f"unknown delta kind {self.kind!r}; "
                f"expected one of {', '.join(DELTA_KINDS)}"
            )
        if self.kind in _EDGE_KINDS and self.v is None:
            raise GraphError(f"{self.kind} delta needs both endpoints")
        if self.kind in _NODE_KINDS and self.v is not None:
            raise GraphError(f"{self.kind} delta takes a single node")

    # -- constructors -----------------------------------------------------------
    @classmethod
    def add_edge(cls, u, v) -> "GraphDelta":
        return cls("add_edge", u, v)

    @classmethod
    def remove_edge(cls, u, v) -> "GraphDelta":
        return cls("remove_edge", u, v)

    @classmethod
    def add_node(cls, node) -> "GraphDelta":
        return cls("add_node", node)

    @classmethod
    def remove_node(cls, node, removed_edges=()) -> "GraphDelta":
        return cls(
            "remove_node", node, removed_edges=tuple((a, b) for a, b in removed_edges)
        )

    @classmethod
    def from_action(cls, action) -> "GraphDelta":
        """Build a delta from its wire/spec *action* object.

        Accepts a :class:`GraphDelta` unchanged.  Raises
        :class:`~repro.errors.GraphError` with the offending field for
        malformed actions — the validation backstop behind
        :func:`repro.validation.validate_service_request`.
        """
        if isinstance(action, GraphDelta):
            return action
        if not isinstance(action, dict):
            raise GraphError(
                f"update action must be an object, got {type(action).__name__}"
            )
        kind = action.get("action")
        if kind not in DELTA_KINDS:
            raise GraphError(
                f"action must be one of {', '.join(DELTA_KINDS)}, " f"got {kind!r}"
            )
        if kind in _EDGE_KINDS:
            extra = set(action) - {"action", "u", "v"}
            if extra or "u" not in action or "v" not in action:
                raise GraphError(
                    f"{kind} action needs exactly {{action, u, v}}, "
                    f"got {sorted(action)}"
                )
            return cls(kind, action["u"], action["v"])
        # remove_node round-trips its captured incident edges (to_dict
        # emits them), so an audit-exported update log re-applies cleanly.
        allowed = {"action", "node"}
        if kind == "remove_node":
            allowed.add("removed_edges")
        extra = set(action) - allowed
        if extra or "node" not in action:
            raise GraphError(
                f"{kind} action needs exactly {{action, node}}, "
                f"got {sorted(action)}"
            )
        removed = action.get("removed_edges") or ()
        try:
            removed = tuple((a, b) for a, b in removed)
        except (TypeError, ValueError):
            raise GraphError(
                f"removed_edges must be a list of [u, v] pairs, "
                f"got {action.get('removed_edges')!r}"
            ) from None
        return cls(kind, action["node"], removed_edges=removed)

    # -- use --------------------------------------------------------------------
    @property
    def is_edge_delta(self) -> bool:
        return self.kind in _EDGE_KINDS

    def apply_to(self, graph) -> None:
        """Replay this delta onto a plain :class:`~repro.graphs.Graph`."""
        if self.kind == "add_edge":
            graph.add_edge(self.u, self.v)
        elif self.kind == "remove_edge":
            graph.remove_edge(self.u, self.v)
        elif self.kind == "add_node":
            graph.add_node(self.u)
        else:  # remove_node (removes incident edges itself)
            graph.remove_node(self.u)

    def to_dict(self) -> Dict[str, Any]:
        """The JSON-friendly action form (ledger / wire export)."""
        if self.is_edge_delta:
            return {"action": self.kind, "u": self.u, "v": self.v}
        out: Dict[str, Any] = {"action": self.kind, "node": self.u}
        if self.kind == "remove_node" and self.removed_edges:
            out["removed_edges"] = [[a, b] for a, b in self.removed_edges]
        return out

    def __repr__(self) -> str:
        if self.is_edge_delta:
            return f"GraphDelta({self.kind}, {self.u!r}-{self.v!r})"
        return f"GraphDelta({self.kind}, {self.u!r})"
