"""The versioned graph store: :class:`VersionedGraph`.

A :class:`VersionedGraph` *is* a :class:`~repro.graphs.Graph` (every
enumerator, mechanism, and statistic works on it unchanged) that
additionally:

* keeps an **append-only update log** of effective
  :class:`~repro.dynamic.delta.GraphDelta`\\ s and a **monotone version
  counter** — version ``v`` is the state after the first ``v`` deltas,
  version ``0`` the base graph;
* hands out **cheap immutable snapshots** (:meth:`snapshot` is O(1);
  :meth:`GraphSnapshot.materialize` / :meth:`at_version` replays the log
  prefix onto a copy of the base when a historical state is actually
  needed — e.g. session replay across mutations);
* owns an :class:`~repro.dynamic.incremental.IncrementalOccurrences`
  maintainer fed with every delta, so pattern-occurrence relations are
  maintained instead of re-enumerated
  (:meth:`occurrences_for` is the provider hook
  :meth:`repro.mechanisms.Mechanism._relation_for` consumes).

No-op mutations (adding a present edge/node) change neither the log nor
the version, so the version token is a faithful identity of graph
*state* for compiled-relation cache keys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from ..errors import GraphError
from ..graphs.graph import Edge, Graph, Node
from ..subgraphs.patterns import Pattern
from .delta import GraphDelta
from .incremental import IncrementalOccurrences

__all__ = ["VersionedGraph", "GraphSnapshot", "version_token"]


def version_token(version: int) -> Tuple[str, int]:
    """The hashable cache-key component naming one graph version.

    The single source of the token's shape: compiled-relation cache keys
    embed it, and the session's ``drop_stale`` invalidation matches on
    it — both through this function, so the two can never drift apart.
    """
    return ("version", version)


@dataclass(frozen=True)
class GraphSnapshot:
    """An O(1) immutable handle on one version of a :class:`VersionedGraph`.

    Holds no copied adjacency — :meth:`materialize` reconstructs the
    state (base graph + log prefix) only when asked, and the result is
    a plain independent :class:`~repro.graphs.Graph`.
    """

    store: "VersionedGraph"
    version: int

    def materialize(self) -> Graph:
        """The snapshot's state as an independent plain graph."""
        return self.store.at_version(self.version)

    def __repr__(self) -> str:
        return f"GraphSnapshot(version={self.version})"


class VersionedGraph(Graph):
    """An updatable graph with an update log, versions, and maintenance.

    Parameters
    ----------
    graph:
        Base state to copy (version 0).  Mutually exclusive with
        ``nodes``/``edges``.
    nodes / edges:
        Base state built in place (also version 0).
    store:
        Occurrence-store backend for the maintainer: ``"columnar"``
        (default) or ``"dict"`` (the oracle); ``None`` resolves
        ``$REPRO_OCC_STORE``.

    >>> g = VersionedGraph(edges=[(0, 1), (1, 2)])
    >>> g.add_edge(0, 2); g.version
    1
    >>> g.remove_edge(0, 1); [d.kind for d in g.log]
    ['add_edge', 'remove_edge']
    >>> g.at_version(0).num_edges, g.num_edges
    (2, 2)
    """

    def __init__(
        self,
        graph: Optional[Graph] = None,
        nodes: Iterable[Node] = (),
        edges: Iterable[Edge] = (),
        store: Optional[str] = None,
    ):
        # Attribute order matters: the overridden mutators consult
        # ``_recording`` and it must exist before Graph.__init__ runs them.
        self._recording = False
        self._log: List[GraphDelta] = []
        self._version = 0
        self._maintainer = IncrementalOccurrences(self, store=store)
        if graph is not None:
            if not isinstance(graph, Graph):
                raise GraphError(
                    f"VersionedGraph wraps a Graph, got {type(graph).__name__}"
                )
            if tuple(nodes) or tuple(edges):
                raise GraphError("pass either a base graph or nodes=/edges=, not both")
            super().__init__()
            self._adj = {node: set(adj) for node, adj in graph._adj.items()}
        else:
            super().__init__(nodes=nodes, edges=edges)
        self._base = Graph()
        self._base._adj = {node: set(adj) for node, adj in self._adj.items()}
        self._recording = True

    # -- identity ---------------------------------------------------------------
    @property
    def version(self) -> int:
        """The monotone state counter (0 = the base graph)."""
        return self._version

    @property
    def log(self) -> Tuple[GraphDelta, ...]:
        """The append-only update log (delta ``i`` takes ``i`` → ``i+1``)."""
        return tuple(self._log)

    @property
    def maintainer(self) -> IncrementalOccurrences:
        """The incremental occurrence maintainer fed by every delta."""
        return self._maintainer

    def version_token(self) -> Tuple[str, int]:
        """Hashable version identity for compiled-relation cache keys."""
        return version_token(self._version)

    # -- recorded mutation ------------------------------------------------------
    def _commit(self, delta: GraphDelta) -> GraphDelta:
        self._log.append(delta)
        self._version += 1
        self._maintainer.apply(delta)
        return delta

    def add_node(self, node: Node) -> None:
        if not self._recording or node in self._adj:
            return super().add_node(node)
        super().add_node(node)
        self._commit(GraphDelta.add_node(node))

    def add_edges_from(self, edges: Iterable[Edge]) -> None:
        """Bulk insert, recorded: one delta per *effective* new edge.

        Unlike the plain-graph fast path this routes every edge through
        :meth:`add_edge`, so the update log, version counter, and
        occurrence maintenance all see each insert.  For log-free bulk
        loading, build a plain :class:`~repro.graphs.Graph` first and
        wrap it (what :func:`repro.store.ingest_edge_list` does).
        """
        if not self._recording:
            return super().add_edges_from(edges)
        for u, v in edges:
            self.add_edge(u, v)

    def add_edge(self, u: Node, v: Node) -> None:
        if not self._recording:
            return super().add_edge(u, v)
        if self.has_edge(u, v):
            return  # no-op: state (and version) unchanged
        # Graph.add_edge creates missing endpoints via self.add_node —
        # suppress recording so an edge insert is one delta, not three.
        self._recording = False
        try:
            super().add_edge(u, v)
        finally:
            self._recording = True
        self._commit(GraphDelta.add_edge(u, v))

    def remove_edge(self, u: Node, v: Node) -> None:
        super().remove_edge(u, v)
        if self._recording:
            self._commit(GraphDelta.remove_edge(u, v))

    def remove_node(self, node: Node) -> List[Edge]:
        removed = super().remove_node(node)
        if self._recording:
            self._commit(GraphDelta.remove_node(node, removed))
        return removed

    def apply(self, action) -> Optional[GraphDelta]:
        """Apply one update action (wire form or :class:`GraphDelta`).

        Returns the committed delta, or ``None`` for a no-op (inserting
        an already-present edge/node — the version does not move).
        Removals of absent edges/nodes raise
        :class:`~repro.errors.GraphError` like the underlying mutators.
        """
        delta = GraphDelta.from_action(action)
        before = self._version
        if delta.kind == "add_edge":
            self.add_edge(delta.u, delta.v)
        elif delta.kind == "remove_edge":
            self.remove_edge(delta.u, delta.v)
        elif delta.kind == "add_node":
            self.add_node(delta.u)
        else:
            self.remove_node(delta.u)
        return self._log[-1] if self._version > before else None

    def apply_updates(self, actions: Iterable) -> List[GraphDelta]:
        """Apply a sequence of actions in order; returns effective deltas.

        Application is sequential, not transactional: an invalid action
        raises after the earlier ones took effect (each already logged,
        so history stays consistent).
        """
        applied = []
        for action in actions:
            delta = self.apply(action)
            if delta is not None:
                applied.append(delta)
        return applied

    # -- snapshots & history ----------------------------------------------------
    def snapshot(self) -> GraphSnapshot:
        """An O(1) immutable handle on the current version."""
        return GraphSnapshot(self, self._version)

    def at_version(self, version: int) -> Graph:
        """The state at ``version`` as an independent plain graph."""
        if not isinstance(version, int) or not 0 <= version <= self._version:
            raise GraphError(
                f"version must be an int in [0, {self._version}], " f"got {version!r}"
            )
        graph = self._base.copy()
        for delta in self._log[:version]:
            delta.apply_to(graph)
        return graph

    def checkout(self, version: int) -> "VersionedGraph":
        """A fresh :class:`VersionedGraph` based at ``version`` (empty log).

        Session replay uses this to rebuild a query's relation exactly as
        it was compiled — through the same occurrence-provider path as
        the live store, so the tuple order (and hence the compiled LP)
        is bit-identical.
        """
        return VersionedGraph(self.at_version(version), store=self._maintainer.store)

    # -- occurrence maintenance hooks -------------------------------------------
    def occurrences_for(self, pattern: Pattern):
        """Maintained (canonically ordered) occurrences of ``pattern``.

        The provider hook query preparation consumes: first use pays one
        full enumeration (registration), every later call — including
        after updates — returns the incrementally maintained relation.
        """
        return self._maintainer.occurrences(pattern)

    def relation_for(self, pattern: Pattern, privacy: str):
        """Columnar-backed sensitive K-relation, or ``None`` to fall back.

        The stronger provider hook: where :meth:`occurrences_for` hands
        back materialized occurrence objects for the legacy annotation
        path, this returns the maintained relation directly in
        participant-index form
        (:class:`~repro.store.relation.ConjunctiveKRelation`) when the
        columnar store can serve it — float-identical, no per-occurrence
        objects.  ``None`` means "use the legacy path".
        """
        return self._maintainer.relation_for(pattern, privacy)

    # -- copies -----------------------------------------------------------------
    def as_graph(self) -> Graph:
        """The current state as an independent plain graph."""
        clone = Graph()
        clone._adj = {node: set(adj) for node, adj in self._adj.items()}
        return clone

    def copy(self) -> "VersionedGraph":
        """An independent store based at the current state (history drops)."""
        return VersionedGraph(self.as_graph(), store=self._maintainer.store)

    def __repr__(self) -> str:
        return (
            f"VersionedGraph(num_nodes={self.num_nodes}, "
            f"num_edges={self.num_edges}, version={self._version})"
        )
