"""Shared release-result base for all mechanisms.

Every mechanism in this package — the recursive mechanism
(:class:`~repro.core.framework.MechanismResult`) and the baseline zoo
(:class:`~repro.baselines.common.BaselineResult`) — releases one noisy
answer and, for experiments, carries the exact answer as a diagnostic.
:class:`ResultBase` holds the error accounting both share, so the
experiment harness and the :mod:`repro.session` layer can treat any
mechanism's output uniformly (the registry contract:
``repro.mechanisms.get(name)(...).run(...)`` returns a :class:`ResultBase`).

The concrete result types stay dataclasses with their own field layouts
(the recursive mechanism exposes Δ/X intermediates that baselines do not
have), so this base deliberately defines *no* fields — only the derived
error properties over the ``answer`` / ``true_answer`` attributes every
subclass provides.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["ResultBase"]


class ResultBase:
    """Error accounting shared by every mechanism's release result.

    Subclasses provide ``answer`` (the differentially private output) and
    ``true_answer`` (the exact answer, diagnostic only — ``None`` when
    unknown); this base derives the error metrics from them.
    """

    #: The released (privacy-protected) answer; set by subclasses.
    answer: float
    #: The exact answer, for experiment diagnostics only (may be ``None``).
    true_answer: Optional[float]

    @property
    def absolute_error(self) -> Optional[float]:
        """``|answer - truth|``, or ``None`` when the truth is unknown."""
        if self.true_answer is None:
            return None
        return abs(self.answer - self.true_answer)

    @property
    def relative_error(self) -> Optional[float]:
        """``|answer - truth| / |truth|`` (the paper's accuracy metric).

        A zero truth yields ``inf`` for any nonzero answer and ``0`` for an
        exact zero answer; an unknown truth yields ``None``.
        """
        if self.true_answer is None:
            return None
        if self.true_answer == 0:
            return float("inf") if self.answer != 0 else 0.0
        return abs(self.answer - self.true_answer) / abs(self.true_answer)
