"""The ``"gurobi"`` backend: persistent Gurobi models via ``gurobipy``.

Gurobi is an *optional* dependency: the backend stays registered whether
or not ``gurobipy`` is importable and licensed, and the registry reports
it unavailable — with the reason — instead of failing at import time.
Constructing the backend without a working installation raises the
single actionable :class:`~repro.errors.LPError` naming the missing
piece and the fallback to take.

The persistent contract maps directly onto gurobipy's incremental-model
idiom (build a ``gp.Model`` once, mutate attributes, re-``optimize``):
:class:`GurobiModel` keeps one model per overlay and rebinds row RHS /
objective entries between solves, exactly like
:class:`~repro.lp.highs_engine.PersistentLP`.  Rows arrive in
``row_lower <= A x <= row_upper`` form and are split by sense —
``-inf`` lower becomes a ``<=`` row, equal bounds an ``==`` row (the
only two shapes the compiled epigraph programs produce).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import LPError
from . import status
from .backends import PersistentModel, SolverBackend, register
from .model import LPSolution

__all__ = ["GurobiBackend", "GurobiModel"]

_PROBE: Optional[Tuple[bool, str]] = None


def _probe() -> Tuple[bool, str]:
    """Import gurobipy and start an environment once; cache the outcome.

    A successful import is not enough — environment start-up is where a
    missing or expired license surfaces — so the probe goes through
    ``gp.Env`` and records whichever step failed.
    """
    global _PROBE
    if _PROBE is None:
        try:
            import gurobipy as gp
        except Exception as exc:
            _PROBE = (False, f"gurobipy is not installed: {exc}")
            return _PROBE
        try:
            env = _quiet_env(gp)
            env.dispose()
        except Exception as exc:  # pragma: no cover - needs a license
            _PROBE = (False, f"gurobipy environment failed to start: {exc}")
        else:  # pragma: no cover - needs a license
            _PROBE = (True, "")
    return _PROBE


def _quiet_env(gp):  # pragma: no cover - needs gurobipy
    """A Gurobi environment that does not print the license banner."""
    try:
        return gp.Env(params={"OutputFlag": 0, "LogToConsole": 0})
    except TypeError:  # older gurobipy without the params kwarg
        env = gp.Env.__new__(gp.Env)
        env.__init__()
        return env


class GurobiModel(PersistentModel):  # pragma: no cover - needs gurobipy
    """One Gurobi model kept alive across solves.

    Same surface as :class:`~repro.lp.highs_engine.PersistentLP`: row
    rebounds and objective-entry overwrites mutate the live model, each
    non-resumed :meth:`solve` resets the solution state first (cold
    start, mirroring the HiGHS engine's deliberate ``clearSolver``), and
    the owner-pid guard inherited from :class:`PersistentModel` makes
    cross-fork use a loud error.
    """

    backend_name = "gurobi"

    def __init__(
        self,
        gp,
        env,
        matrix,
        col_costs: np.ndarray,
        col_lower: np.ndarray,
        col_upper: np.ndarray,
        row_lower: np.ndarray,
        row_upper: np.ndarray,
        iteration_limit: Optional[int] = None,
    ):
        super().__init__()
        self._gp = gp
        a = matrix.tocsr()
        self.num_rows, self.num_cols = a.shape
        model = gp.Model("repro-epigraph", env=env)
        model.setParam("OutputFlag", 0)
        x = model.addMVar(
            self.num_cols,
            lb=np.asarray(col_lower, dtype=float),
            ub=np.asarray(col_upper, dtype=float),
        )
        model.setObjective(np.asarray(col_costs, dtype=float) @ x, gp.GRB.MINIMIZE)
        lower = np.asarray(row_lower, dtype=float)
        upper = np.asarray(row_upper, dtype=float)
        self._senses = []
        constraints = []
        for row in range(self.num_rows):
            coeffs = a.getrow(row)
            expr = coeffs @ x
            if np.isneginf(lower[row]):
                constraints.append(model.addConstr(expr <= float(upper[row])))
                self._senses.append("<")
            elif lower[row] == upper[row]:
                constraints.append(model.addConstr(expr == float(upper[row])))
                self._senses.append("=")
            else:
                raise LPError(
                    f"[lp-backend {self.backend_name}] range row {row} "
                    f"({lower[row]}, {upper[row]}) is not representable; "
                    "compiled programs only emit <= and == rows"
                )
        model.update()
        self._constraints = constraints
        self._vars = x
        self._model = model
        if iteration_limit is not None:
            self.base_iteration_limit = int(iteration_limit)
            model.setParam("IterationLimit", float(iteration_limit))

    # -- per-solve mutations -------------------------------------------------
    def set_row_bounds(self, row: int, lower: float, upper: float) -> None:
        self._assert_owner()
        sense = self._senses[row]
        if sense == "=" and lower != upper:
            raise LPError(
                f"[lp-backend {self.backend_name}] equality row {row} "
                f"cannot take bounds ({lower}, {upper})"
            )
        self._constraints[row].RHS = float(upper)

    def set_col_costs(self, indices, values) -> None:
        self._assert_owner()
        for index, value in zip(np.asarray(indices), np.asarray(values)):
            self._vars[int(index)].Obj = float(value)

    def set_iteration_limit(self, limit: int) -> None:
        self._model.setParam("IterationLimit", float(limit))

    # -- solving -------------------------------------------------------------
    def solve(
        self, resume: bool = False, warm_values: Optional[np.ndarray] = None
    ) -> LPSolution:
        self._assert_owner()
        gp = self._gp
        if not resume:
            # cold start per solve, mirroring the HiGHS engine; a bare
            # primal point is not a usable LP warm start without a basis,
            # so warm_values is accepted (contract) but not applied
            self._model.reset()
        self._model.optimize()
        code = self._model.Status
        if code == gp.GRB.OPTIMAL:
            name = status.OPTIMAL
        elif code == gp.GRB.INFEASIBLE:
            name = status.INFEASIBLE
        elif code in (gp.GRB.UNBOUNDED, gp.GRB.INF_OR_UNBD):
            name = status.UNBOUNDED
        elif code == gp.GRB.ITERATION_LIMIT:
            name = status.ITERATION_LIMIT
        else:
            name = status.ERROR
        self.last_iteration_count = int(self._model.IterCount) + int(
            getattr(self._model, "BarIterCount", 0)
        )
        message = f"gurobi status {code}"
        if name != status.OPTIMAL:
            return LPSolution(name, float("nan"), np.zeros(0), message=message)
        return LPSolution(
            status.OPTIMAL,
            float(self._model.ObjVal),
            np.asarray(self._vars.X, dtype=float),
            message=message,
        )

    def __repr__(self) -> str:
        return f"GurobiModel(num_cols={self.num_cols}, num_rows={self.num_rows})"


@register
class GurobiBackend(SolverBackend):
    """Persistent-model backend over ``gurobipy`` (optional, licensed).

    Parameters
    ----------
    max_iterations:
        Optional simplex iteration limit applied to every model
        (truncated solves report ``"iteration_limit"``, matching the
        other backends).
    """

    name = "gurobi"
    aliases = ("gurobipy", "grb")
    supports_persistent = True
    supports_multi_rhs = True
    supports_warm_start = True
    #: commercial solver, unmeasured on this workload until a licensed
    #: runner reports in — ranked between the measured HiGHS winner and
    #: the portable scipy baseline
    preference = 20

    def __init__(self, max_iterations: Optional[int] = None):
        ok, reason = _probe()
        if not ok:
            raise LPError(
                f"[lp-backend {self.name}] backend unavailable: {reason}; "
                "fall back with REPRO_LP_BACKEND=scipy or "
                "REPRO_LP_BACKEND=highs (or --lp-backend)"
            )
        self.max_iterations = None if max_iterations is None else int(max_iterations)
        import gurobipy as gp  # pragma: no cover - needs gurobipy

        self._gp = gp  # pragma: no cover
        self._env = _quiet_env(gp)  # pragma: no cover

    @classmethod
    def availability(cls) -> Tuple[bool, str]:
        return _probe()

    @property
    def cache_token(self):
        return ("lp-backend", self.name, self.max_iterations)

    def fork_reset(self) -> None:  # pragma: no cover - needs gurobipy
        """Drop the inherited environment; workers start their own."""
        self._env = _quiet_env(self._gp)

    def solve_arrays(
        self,
        c: np.ndarray,
        a_ub,
        b_ub: Optional[np.ndarray],
        a_eq,
        b_eq: Optional[np.ndarray],
        bounds,
        objective_constant: float = 0.0,
    ) -> LPSolution:  # pragma: no cover - needs gurobipy
        """One-shot solve through a throwaway persistent model."""
        from scipy import sparse

        blocks = []
        lowers = []
        uppers = []
        if a_ub is not None:
            blocks.append(sparse.csr_matrix(a_ub))
            lowers.append(np.full(len(b_ub), -np.inf))
            uppers.append(np.asarray(b_ub, dtype=float))
        if a_eq is not None:
            blocks.append(sparse.csr_matrix(a_eq))
            lowers.append(np.asarray(b_eq, dtype=float))
            uppers.append(np.asarray(b_eq, dtype=float))
        n = len(c)
        if blocks:
            matrix = sparse.vstack(blocks, format="csr")
            row_lower = np.concatenate(lowers)
            row_upper = np.concatenate(uppers)
        else:
            matrix = sparse.csr_matrix((0, n))
            row_lower = np.zeros(0)
            row_upper = np.zeros(0)
        bounds = np.asarray(bounds, dtype=float)
        # repro: allow(fork-safety) — throwaway model scoped to this call
        # (never stored, so it cannot cross a fork); the owner-pid guard
        # is pinned by tests/test_backends.py::test_persistent_model_fork_guard
        model = self.build_persistent(
            matrix,
            col_costs=np.asarray(c, dtype=float),
            col_lower=bounds[:, 0],
            col_upper=bounds[:, 1],
            row_lower=row_lower,
            row_upper=row_upper,
        )
        solution = model.solve()
        if solution.is_optimal and objective_constant:
            solution.objective += float(objective_constant)
        return solution

    def build_persistent(
        self,
        matrix,
        col_costs: np.ndarray,
        col_lower: np.ndarray,
        col_upper: np.ndarray,
        row_lower: np.ndarray,
        row_upper: np.ndarray,
    ) -> GurobiModel:  # pragma: no cover - needs gurobipy
        return GurobiModel(
            self._gp,
            self._env,
            matrix,
            col_costs=col_costs,
            col_lower=col_lower,
            col_upper=col_upper,
            row_lower=row_lower,
            row_upper=row_upper,
            iteration_limit=self.max_iterations,
        )

    def __repr__(self) -> str:
        return f"GurobiBackend(max_iterations={self.max_iterations!r})"
