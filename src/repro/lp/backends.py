"""The solver-backend contract and registry.

Every released answer bottoms out in the φ-epigraph LP solves, and which
solver executes them used to be an ad-hoc two-way gate (persistent HiGHS
bindings when SciPy exposes them, :func:`scipy.optimize.linprog`
otherwise) threaded implicitly through :class:`~repro.lp.compiled.
CompiledProgram`.  This module promotes that gate into a registry
mirroring :mod:`repro.mechanisms`:

* :class:`SolverBackend` — the contract: ``solve_arrays`` for one-shot
  array solves, :meth:`~SolverBackend.build_persistent` for a live model
  built once from the compiled CSR blocks and mutated in place between
  solves, capability flags (``supports_persistent``,
  ``supports_multi_rhs``, ``supports_warm_start``) that
  :class:`~repro.lp.compiled.CompiledProgram` consults instead of
  type-checking, and a :meth:`~SolverBackend.fork_reset` hook for the
  :mod:`repro.parallel` fork-after-compile scheme.
* :class:`PersistentModel` — the base of every persistent model,
  carrying the owner-pid guard (a live solver must never be used across
  ``fork()``) and the generic RHS-sweep and iteration-budget APIs the
  Δ-probe race and batched solves are written against.
* :func:`register` / :func:`get` / :func:`create` / :func:`resolve` /
  :func:`available` / :func:`describe` — the registry.  Backends are
  addressed by name (``"scipy"``, ``"highs"``, ``"gurobi"``); an
  unavailable backend (missing bindings, missing license) stays
  *registered* and reports why it cannot run instead of disappearing.
* :func:`default_backend` — resolution order: the ``REPRO_LP_BACKEND``
  environment variable if set, else *measured* preferences loaded from a
  ``BENCH_backends.json`` (:func:`load_preferences`, auto-loaded from
  ``$REPRO_LP_PREFERENCES`` or ``--lp-preferences``), else the available
  backend with the highest static ``preference``.  Static preferences
  encode measured performance on the epigraph workload (the
  persistent-HiGHS path beats per-call ``linprog`` ~2.6× here), not
  alphabetical accident; a measured file from *this* machine overrides
  them with its actual ``fig5`` wall-clock ranking.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Type, Union

import numpy as np

from ..errors import LPError
from .model import LPSolution

__all__ = [
    "BACKEND_ENV",
    "PREFERENCES_ENV",
    "SolverBackend",
    "PersistentModel",
    "register",
    "get",
    "create",
    "resolve",
    "registered",
    "available",
    "describe",
    "default_backend",
    "load_preferences",
    "clear_preferences",
]

#: Environment variable naming the backend every entry point defaults to.
BACKEND_ENV = "REPRO_LP_BACKEND"

#: Environment variable pointing at a ``BENCH_backends.json`` whose
#: measured ``fig5`` timings rank the auto-detected default backend.
PREFERENCES_ENV = "REPRO_LP_PREFERENCES"

_INT_MAX = 2147483647


class PersistentModel:
    """Base of every backend's persistent model.

    A persistent model is live solver state built **once** from the
    compiled CSR blocks and then only mutated between solves (a row's
    bounds, a few objective entries).  Two invariants are enforced here
    rather than per backend:

    * **fork safety** — live solver state must never be driven from a
      process other than the one that built it (copy-on-write pages
      would be mutated in several processes at once).  Every mutating
      entry point calls :meth:`_assert_owner`, turning silent cross-fork
      misuse into a loud :class:`~repro.errors.LPError`; forked workers
      drop inherited models via ``CompiledProgram.fork_reset`` and
      rebuild their own lazily.
    * **iteration budgets** — the Δ-probe race throttles both strands
      through :meth:`set_iteration_limit` / :meth:`restore_iteration_limits`
      without knowing the backend's native option names.

    Subclasses implement :meth:`set_row_bounds`, :meth:`set_col_costs`,
    :meth:`solve` and :meth:`set_iteration_limit`.
    """

    #: backend name carried into error messages (set by the builder)
    backend_name = "persistent"

    def __init__(self):
        self._owner_pid = os.getpid()
        #: iterations of the most recent :meth:`solve`
        self.last_iteration_count = 0
        #: the configured per-solve budget ceiling (restored after
        #: temporary overrides by :meth:`restore_iteration_limits`)
        self.base_iteration_limit = _INT_MAX

    def _assert_owner(self) -> None:
        if os.getpid() != self._owner_pid:
            raise LPError(
                f"[lp-backend {self.backend_name}] persistent model was "
                "built in another process and cannot be used across "
                "fork(); drop it and re-instantiate in this worker "
                "(see CompiledProgram.fork_reset)"
            )

    # -- per-solve mutations (implemented by each backend) -------------------
    def set_row_bounds(self, row: int, lower: float, upper: float) -> None:
        """Rebind one row's ``lower <= a·x <= upper`` in place."""
        raise NotImplementedError

    def set_col_costs(self, indices, values) -> None:
        """Overwrite the objective coefficients of the given columns."""
        raise NotImplementedError

    def solve(self, resume: bool = False, warm_values=None) -> LPSolution:
        """Solve the current model state.

        ``resume`` continues from the previous basis where the backend
        supports it; ``warm_values`` primes a primal starting point.
        Backends without those capabilities may ignore both — results
        must not depend on them, only wall-clock.
        """
        raise NotImplementedError

    def set_iteration_limit(self, limit: int) -> None:
        """Cap the next solve's iterations (Δ-probe race budgets)."""
        raise NotImplementedError

    def restore_iteration_limits(self) -> None:
        """Undo :meth:`set_iteration_limit` back to the configured caps."""
        self.set_iteration_limit(self.base_iteration_limit)

    # -- batched solves ------------------------------------------------------
    def solve_rhs_sweep(self, row: int, values) -> List[LPSolution]:
        """Solve the model once per RHS value of one row — one backend call.

        This is the multi-RHS entry point behind
        ``CompiledProgram.solve_many``: the H-entry sweep rebinds the
        single mass row ``Σf = i`` and re-solves, so the whole sweep is
        one call into the backend instead of N overlay dispatches.  The
        default implementation performs exactly the pointwise
        ``set_row_bounds`` + ``solve`` sequence, which keeps sweep
        results byte-identical to pointwise solves by construction;
        backends with a native multi-RHS API may override it under the
        same identity obligation.
        """
        self._assert_owner()
        solutions = []
        for value in values:
            self.set_row_bounds(row, float(value), float(value))
            solutions.append(self.solve())
        return solutions


class SolverBackend:
    """Contract every LP backend implements.

    Class attributes (the registry reads them without instantiating):

    ``name`` / ``aliases``
        Registry spellings.  ``name`` is the canonical identity carried
        into cache keys, ledger entries, and the service hello frame.
    ``supports_persistent``
        Whether :meth:`build_persistent` returns a live
        :class:`PersistentModel`.  When false, ``CompiledProgram`` hands
        the prebuilt arrays to :meth:`solve_arrays` per call.  The flag —
        not the backend's type — gates the persistent path, so an
        instrumented subclass that wants to observe every solve simply
        leaves it false.
    ``supports_multi_rhs``
        Whether H-entry RHS sweeps should be vectorised through
        :meth:`PersistentModel.solve_rhs_sweep` (one backend call) when
        running in-process.
    ``supports_warm_start``
        Whether :meth:`PersistentModel.solve` honors ``resume=True`` /
        ``warm_values`` — required by the in-process Δ-probe budget race.
    ``preference``
        Auto-detect rank (higher wins among available backends); encodes
        measured performance on the epigraph workload.
    """

    name = "abstract"
    aliases: Tuple[str, ...] = ()
    supports_persistent = False
    supports_multi_rhs = False
    supports_warm_start = False
    preference = 0

    # -- availability --------------------------------------------------------
    @classmethod
    def availability(cls) -> Tuple[bool, str]:
        """``(available, reason)`` — ``reason`` explains unavailability."""
        return True, ""

    @classmethod
    def available(cls) -> bool:
        return cls.availability()[0]

    # -- identity ------------------------------------------------------------
    @property
    def cache_token(self):
        """Hashable identity for session cache keys and replay.

        Two instances configured identically must produce equal tokens
        (so compiled relations are shared), and any knob that could
        change a solve must be in the token (so they are not shared
        across genuinely different solvers).
        """
        return ("lp-backend", self.name)

    # -- solving -------------------------------------------------------------
    def solve_arrays(
        self,
        c: np.ndarray,
        a_ub,
        b_ub: Optional[np.ndarray],
        a_eq,
        b_eq: Optional[np.ndarray],
        bounds,
        objective_constant: float = 0.0,
    ) -> LPSolution:
        """One-shot solve of a program already assembled as arrays."""
        raise NotImplementedError

    def build_persistent(
        self,
        matrix,
        col_costs: np.ndarray,
        col_lower: np.ndarray,
        col_upper: np.ndarray,
        row_lower: np.ndarray,
        row_upper: np.ndarray,
    ) -> PersistentModel:
        """A live model over ``row_lower <= A x <= row_upper`` (once)."""
        raise LPError(
            f"[lp-backend {self.name}] backend does not support "
            "persistent models (supports_persistent is false)"
        )

    # -- parallel plumbing ---------------------------------------------------
    def fork_reset(self) -> None:
        """Drop per-process solver state after ``fork()`` (default: none).

        Called in every forked worker through the weak-ref reset registry
        (:func:`repro.parallel.pool.register_fork_reset`).  Backends whose
        ``solve_arrays`` is self-contained need nothing here; backends
        holding process-wide native state (environments, license tokens)
        must drop it so workers re-initialise their own.
        """


# -- registry ----------------------------------------------------------------

_REGISTRY: Dict[str, Type[SolverBackend]] = {}
_INSTANCES: Dict[str, SolverBackend] = {}
_BUILTIN_LOADED = False


def register(cls: Type[SolverBackend]) -> Type[SolverBackend]:
    """Register a backend class under its ``name`` and ``aliases``.

    Usable as a decorator.  Re-registering a name overwrites it (latest
    wins), so a deployment can shadow a builtin with a tuned subclass.
    """
    for spelling in (cls.name, *cls.aliases):
        _REGISTRY[str(spelling).lower()] = cls
    return cls


def _ensure_builtin() -> None:
    """Import the builtin backend modules so they self-register."""
    global _BUILTIN_LOADED
    if _BUILTIN_LOADED:
        return
    _BUILTIN_LOADED = True
    from . import gurobi_backend, highs_engine, scipy_backend  # noqa: F401


def registered() -> List[str]:
    """Canonical names of every registered backend (aliases folded)."""
    _ensure_builtin()
    names = []
    for cls in _REGISTRY.values():
        if cls.name not in names:
            names.append(cls.name)
    return sorted(names)


def available() -> List[str]:
    """Names of the registered backends that can actually run here."""
    _ensure_builtin()
    return [name for name in registered() if _REGISTRY[name].available()]


def get(name: str) -> Type[SolverBackend]:
    """The backend class registered under ``name`` (or an alias).

    Lookup succeeds for unavailable backends too — callers inspect
    ``cls.availability()`` — but an unknown name raises an
    :class:`~repro.errors.LPError` listing the registry.
    """
    _ensure_builtin()
    cls = _REGISTRY.get(str(name).lower())
    if cls is None:
        raise LPError(
            f"unknown LP backend {name!r}; registered backends: "
            f"{', '.join(registered())}"
        )
    return cls


def create(name: str, **kwargs) -> SolverBackend:
    """Instantiate the named backend, or raise one actionable error.

    The error names the backend, the missing module or license, and the
    fallback to take — instead of silently degrading to another solver.
    """
    cls = get(name)
    ok, reason = cls.availability()
    if not ok:
        fallbacks = [other for other in available() if other != cls.name]
        hint = (
            f"; available backends: {', '.join(fallbacks)} "
            f"(select one with {BACKEND_ENV} or --lp-backend)"
            if fallbacks
            else ""
        )
        raise LPError(f"[lp-backend {cls.name}] backend unavailable: {reason}{hint}")
    return cls(**kwargs)


#: Measured ``name -> fig5 wall seconds`` (loaded preferences), or None.
_MEASURED: Optional[Dict[str, float]] = None
_PREFS_ENV_CHECKED = False


def load_preferences(path: Union[str, Path]) -> Dict[str, float]:
    """Load measured backend timings from a ``BENCH_backends.json``.

    The file is what ``benchmarks/bench_backends.py`` writes: the
    ``fig5`` object maps each benchmarked backend name to (among other
    counters) its ``wall_seconds`` over the paper's query grid.  Those
    wall-clock numbers become the auto-detect ranking — on the next
    :func:`default_backend` resolution the measured-fastest *available*
    backend wins, instead of the static ``preference`` guess.  An
    explicit ``REPRO_LP_BACKEND`` still overrides everything.

    Returns the ``name -> wall_seconds`` map that was installed.
    Unparseable files and files without usable ``fig5`` timings raise
    :class:`~repro.errors.LPError` (a measurement you pointed at should
    never be half-applied silently).
    """
    global _MEASURED
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        raise LPError(f"backend preferences file not found: {path}") from None
    except json.JSONDecodeError as error:
        raise LPError(
            f"backend preferences file {path} is not valid JSON: {error}"
        ) from None
    fig5 = payload.get("fig5")
    if not isinstance(fig5, dict):
        raise LPError(f"backend preferences file {path} has no 'fig5' timing object")
    measured: Dict[str, float] = {}
    for name, row in fig5.items():
        seconds = row.get("wall_seconds") if isinstance(row, dict) else None
        if isinstance(seconds, (int, float)) and seconds > 0:
            measured[str(name).lower()] = float(seconds)
    if not measured:
        raise LPError(
            f"backend preferences file {path} carries no positive "
            "'wall_seconds' entries under 'fig5'"
        )
    _MEASURED = measured
    return dict(measured)


def clear_preferences() -> None:
    """Drop loaded measured preferences (static ranking applies again)."""
    global _MEASURED, _PREFS_ENV_CHECKED
    _MEASURED = None
    _PREFS_ENV_CHECKED = False


def _measured_preferences() -> Optional[Dict[str, float]]:
    """Loaded timings, lazily pulling ``$REPRO_LP_PREFERENCES`` once."""
    global _PREFS_ENV_CHECKED
    if _MEASURED is None and not _PREFS_ENV_CHECKED:
        _PREFS_ENV_CHECKED = True
        env_path = os.environ.get(PREFERENCES_ENV)
        if env_path:
            load_preferences(env_path)
    return _MEASURED


def default_backend() -> SolverBackend:
    """The backend every entry point uses when none is named.

    ``REPRO_LP_BACKEND`` wins when set (raising the actionable
    unavailability error rather than silently substituting); next a
    loaded measured-preferences file ranks the available backends by
    their ``fig5`` wall clock (fastest wins — see
    :func:`load_preferences`); otherwise the available backend with the
    highest static ``preference``.  Instances are cached per name, so
    repeated resolution shares one backend object (and its
    compiled-relation cache entries).
    """
    _ensure_builtin()
    requested = os.environ.get(BACKEND_ENV)
    if requested:
        name = get(requested).name
    else:
        candidates = available()
        if not candidates:
            raise LPError(
                "no LP backend is available in this environment "
                f"(registered: {', '.join(registered())})"
            )
        name = None
        measured = _measured_preferences()
        if measured:
            timed = [n for n in candidates if n in measured]
            if timed:
                name = min(timed, key=lambda n: measured[n])
        if name is None:
            name = max(candidates, key=lambda n: _REGISTRY[n].preference)
    instance = _INSTANCES.get(name)
    if instance is None:
        instance = create(name)
        _INSTANCES[name] = instance
    return instance


def resolve(backend=None) -> SolverBackend:
    """Normalise a backend argument to an instance.

    ``None`` → :func:`default_backend`; a string → :func:`create` by
    name; anything exposing ``solve_arrays`` or ``solve`` passes through
    unchanged (custom and instrumented backends keep working untouched).
    """
    if backend is None:
        return default_backend()
    if isinstance(backend, str):
        name = get(backend).name
        instance = _INSTANCES.get(name)
        if instance is None:
            instance = create(name)
            _INSTANCES[name] = instance
        return instance
    if not (hasattr(backend, "solve_arrays") or hasattr(backend, "solve")):
        raise LPError(
            f"{backend!r} is not an LP backend: expected a name, None, or "
            "an object with solve_arrays/solve"
        )
    return backend


def describe() -> List[Dict]:
    """One row per registered backend — the registry table.

    Each row carries the canonical name, aliases, availability (with
    reason when unavailable), capability flags, and auto-detect
    preference; the CLI and README render this directly.
    """
    _ensure_builtin()
    rows = []
    for name in registered():
        cls = _REGISTRY[name]
        ok, reason = cls.availability()
        rows.append(
            {
                "name": name,
                "aliases": sorted(
                    spelling
                    for spelling, registered_cls in _REGISTRY.items()
                    if registered_cls is cls and spelling != name
                ),
                "available": ok,
                "reason": reason,
                "supports_persistent": cls.supports_persistent,
                "supports_multi_rhs": cls.supports_multi_rhs,
                "supports_warm_start": cls.supports_warm_start,
                "preference": cls.preference,
            }
        )
    rows.sort(key=lambda row: -row["preference"])
    return rows
