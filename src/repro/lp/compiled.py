"""The φ-epigraph LP compiled once into reusable solver structures.

The efficient recursive mechanism solves the *same* base program —
the epigraph rows of every annotation node, box bounds, and the
``Σ_t q(t)·v_root(t)`` objective — dozens of times per release, varying
only a tiny per-call overlay:

* ``H_i``: one equality row ``Σ_p f_p = i`` whose RHS is the only thing
  that changes between calls;
* ``G_i``: one extra column ``z`` and one ``z ≥ Σ_t q·S_{t,p}·v_root(t)``
  row per participant (identical across calls) plus the same mass row;
* the Δ-search predicate ``G_i ≤ τ``: the same rows with ``z`` replaced
  by the constant ``τ/2`` — a pure feasibility program, usually far
  cheaper than minimizing the degenerate min-max objective;
* the ``X`` step (Eq. 20): a rank-one perturbation of the objective by
  ``-Δ̂`` on the participant columns.

The legacy path (:class:`~repro.lp.model.LinearProgram` +
:meth:`~repro.lp.scipy_backend.ScipyBackend.solve`) re-walks the Python
constraint list and re-assembles CSR matrices on every solve.  A
:class:`CompiledProgram` performs the assembly exactly once and, when the
backend advertises ``supports_persistent``, additionally loads each
overlay into a persistent model
(:meth:`~repro.lp.backends.SolverBackend.build_persistent`) so per-call
work shrinks to mutating one row's bounds (or a few objective entries)
and re-running the solver.  Otherwise it hands the prebuilt arrays to
``backend.solve_arrays`` — the capability *flag*, not the backend's
type, selects the path, so an instrumented backend that wants to observe
every solve simply leaves the flag false.

The compiled path is an optimization, not a semantic fork: every solve
returns the same :class:`~repro.lp.model.LPSolution` the slow path would,
and ``tests/test_compiled_equivalence.py`` pins the paths — and every
available backend — together.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np
from scipy import sparse

from ..errors import LPError
from ..obs import metrics as obs_metrics
from ..obs import size_buckets
from ..parallel.pool import (
    fork_available,
    map_tasks,
    register_fork_reset,
    resolve_workers,
)
from ..parallel.race import StrandError, first_decided
from .backends import PersistentModel
from .model import LPSolution

__all__ = ["CompiledProgram"]

_INF = float("inf")


def _observe_solve(overlay: str, backend, elapsed: float, model=None) -> None:
    """Record one overlay solve: latency always, simplex iterations when
    the persistent engine reports them (the arrays path has none)."""
    registry = obs_metrics()
    registry.histogram(
        "repro_lp_solve_seconds", overlay=overlay, backend=backend.name
    ).observe(elapsed)
    iterations = getattr(model, "last_iteration_count", 0) if model is not None else 0
    if iterations:
        registry.histogram(
            "repro_lp_iterations",
            buckets=size_buckets(),
            overlay=overlay,
            backend=backend.name,
        ).observe(float(iterations))


#: First iteration budget of the Δ-probe race (doubles each round).
RACE_INITIAL_BUDGET = 256

#: Feasibility-strand iterations after which the exact strand joins the
#: race.  Cheap probes (the common case) finish well under this and never
#: pay for the second strand; pathological phase-1 probes get rescued by
#: the exact solve at a bounded extra cost.
RACE_EXACT_LAG = 1024


def _csr(rows, cols, vals, shape) -> Optional[sparse.csr_matrix]:
    """A CSR matrix from COO triplets, or ``None`` for zero rows."""
    if shape[0] == 0:
        return None
    return sparse.csr_matrix((vals, (rows, cols)), shape=shape)


class CompiledProgram:
    """One-time assembly of the epigraph LP plus cheap overlay solves.

    Parameters
    ----------
    num_variables:
        Structural variable count (participants first, then node variables).
    num_participants:
        Number of participant columns; these occupy indices
        ``0..num_participants-1`` and carry the mass row.
    ub_rows / ub_cols / ub_vals / ub_rhs:
        COO triplets of the base epigraph constraints, already normalized
        to ``A_ub x <= b_ub`` form.
    objective:
        Dense ``Σ_t q(t)·v_root(t)`` coefficient vector (length
        ``num_variables``).
    objective_constant:
        Weight of constant-``True`` annotations, added to every H/X value.
    g_rows:
        Per-participant ``{root column: q·S}`` coefficient maps for the
        Eq. 19 min-max rows (only participants with positive sensitivity).
    backend:
        A solver exposing ``solve_arrays(c, a_ub, b_ub, a_eq, b_eq,
        bounds, objective_constant) -> LPSolution`` — any
        :class:`~repro.lp.backends.SolverBackend`.  Backends advertising
        ``supports_persistent`` get their models built once from the
        compiled blocks via ``build_persistent`` and mutated in place
        per call.
    """

    def __init__(
        self,
        num_variables: int,
        num_participants: int,
        ub_rows: np.ndarray,
        ub_cols: np.ndarray,
        ub_vals: np.ndarray,
        ub_rhs: np.ndarray,
        objective: np.ndarray,
        objective_constant: float,
        g_rows: Sequence[Dict[int, float]],
        backend,
    ):
        if not hasattr(backend, "solve_arrays"):
            raise LPError(
                f"backend {backend!r} has no solve_arrays entry point; "
                "use the LinearProgram fallback instead"
            )
        self.backend = backend
        self.num_variables = int(num_variables)
        self.num_participants = int(num_participants)
        if len(objective) != self.num_variables:
            raise LPError(
                f"{self._err_prefix()} objective length does not match "
                "variable count"
            )

        # All structural variables live in the unit cube.
        self._bounds = np.empty((self.num_variables, 2))
        self._bounds[:, 0] = 0.0
        self._bounds[:, 1] = 1.0

        self._a_ub = _csr(ub_rows, ub_cols, ub_vals, (len(ub_rhs), self.num_variables))
        # linprog wants b_ub=None (not an empty array) when A_ub is None
        self._b_ub = (
            np.asarray(ub_rhs, dtype=float) if self._a_ub is not None else None
        )

        # Mass row Σ_p f_p: only its RHS varies between H/G calls.
        self._a_mass = sparse.csr_matrix(
            (
                np.ones(self.num_participants),
                (
                    np.zeros(self.num_participants, dtype=np.int64),
                    np.arange(self.num_participants, dtype=np.int64),
                ),
            ),
            shape=(1, self.num_variables),
        )

        self._c = np.asarray(objective, dtype=float)
        self._constant = float(objective_constant)
        self._g_row_maps: List[Dict[int, float]] = [dict(row) for row in g_rows]
        # The persistent path replaces backend.solve_arrays, so it is
        # gated on the capability flag, never the backend's type — a
        # custom/instrumented backend (subclass or duck-typed) that must
        # keep receiving every solve simply leaves the flag unset.
        self._use_engine = bool(getattr(backend, "supports_persistent", False))
        # primal optimum of the most recent exact G solve — warm-start
        # seed for the exact strand of later Δ-probe races
        self._last_g_optimum: Optional[np.ndarray] = None
        # lazily assembled overlays (arrays and/or persistent models)
        self._g_overlay = None
        self._h_model: Optional[PersistentModel] = None
        self._g_model: Optional[PersistentModel] = None
        self._x_model: Optional[PersistentModel] = None
        self._feas_model: Optional[PersistentModel] = None
        self._feas_arrays = None
        # memoized shared-memory export spec (see export_shared)
        self._shared_spec: Optional[Dict] = None
        # Forked workers inherit the CSR blocks copy-on-write but must
        # re-instantiate the per-process persistent models lazily.
        register_fork_reset(self)

    def _err_prefix(self) -> str:
        """The ``[lp-backend <name>]`` prefix of every LPError raised here."""
        name = getattr(self.backend, "name", None) or type(self.backend).__name__
        return f"[lp-backend {name}]"

    def fork_reset(self) -> None:
        """Drop per-process solver state (called in each forked worker).

        The compiled arrays (CSR blocks, bounds, objective, the lazily
        assembled G overlay) are process-agnostic and stay shared through
        copy-on-write; only the persistent models — live solver state
        owned by the parent — and the warm-start seed are dropped, to be
        rebuilt lazily from the shared arrays on first use in the worker.
        The backend's own :meth:`~repro.lp.backends.SolverBackend.
        fork_reset` hook runs too, so backends holding process-wide
        native state (e.g. a Gurobi environment) re-initialise it.
        """
        self._h_model = None
        self._g_model = None
        self._x_model = None
        self._feas_model = None
        self._last_g_optimum = None
        reset = getattr(self.backend, "fork_reset", None)
        if reset is not None:
            reset()

    # -- shared-memory export / attach ---------------------------------------
    def export_shared(self) -> Dict:
        """Export the compiled base blocks into named shared-memory segments.

        Returns a small JSON-able *spec* — segment names plus shapes,
        dtypes, and the scalar metadata — from which
        :meth:`attach_shared` rebuilds an equivalent program in **any**
        process, mapping the same physical pages read-only instead of
        copying them.  This is the fork-free sharing path: spawn-started
        workers, sibling service processes, and processes older than the
        compilation all attach by name.

        Exported blocks: the ``A_ub`` CSR triple, its RHS, the objective
        vector, and the G rows as one CSR block.  *Derived* state is
        deliberately not shipped — the unit-cube bounds, the mass row,
        the lazily assembled overlays, and all persistent models are
        rebuilt on the attach side (the persistent ones through the
        backend's ``build_persistent``, exactly as forked workers do).

        The spec is memoized: repeated calls (one per spawn pool, say)
        reuse the same segments.  Balance with :meth:`release_shared`;
        unreleased segments are unlinked at interpreter exit by the
        :mod:`repro.parallel.shm` registry.  Requires a registry-named
        backend (the attach side re-creates it by name).
        """
        from ..parallel import shm

        if self._shared_spec is not None:
            return self._shared_spec
        backend_name = getattr(self.backend, "name", None)
        if not backend_name or not isinstance(backend_name, str):
            raise LPError(
                f"{self._err_prefix()} shared export needs a registry-named "
                "backend (attachers re-create it by name); this backend has "
                "no usable .name"
            )
        g_csr = self._g_matrix(self.num_variables)
        spec: Dict = {
            "num_variables": self.num_variables,
            "num_participants": self.num_participants,
            "objective_constant": self._constant,
            "backend": backend_name,
            "objective": shm.export_array(self._c),
            "g": _export_csr(g_csr),
            "ub": None,
            "rhs": None,
        }
        if self._a_ub is not None:
            spec["ub"] = _export_csr(self._a_ub)
            spec["rhs"] = shm.export_array(self._b_ub)
        self._shared_spec = spec
        return spec

    def release_shared(self) -> None:
        """Release this program's exported segments (owner side).

        Safe when nothing was exported.  After release the spec is
        forgotten, so a later :meth:`export_shared` exports afresh.
        """
        from ..parallel import shm

        if self._shared_spec is not None:
            spec, self._shared_spec = self._shared_spec, None
            shm.release_spec(spec)

    @classmethod
    def attach_shared(cls, spec: Dict, backend=None) -> "CompiledProgram":
        """Rebuild a program over the segments named in ``spec``.

        The attached arrays are mapped read-only; everything derived —
        bounds, mass row, overlays, persistent models — is rebuilt
        locally, so solves are byte-identical to the exporting program's
        (pinned by ``tests/test_shm.py``).  ``backend`` defaults to the
        spec's registry name, re-created in this process.
        """
        from ..parallel import shm
        from .backends import resolve

        backend = resolve(backend if backend is not None else spec["backend"])
        program = object.__new__(cls)
        program.backend = backend
        program.num_variables = int(spec["num_variables"])
        program.num_participants = int(spec["num_participants"])
        program._constant = float(spec["objective_constant"])
        program._bounds = np.empty((program.num_variables, 2))
        program._bounds[:, 0] = 0.0
        program._bounds[:, 1] = 1.0
        program._c = shm.attach_array(spec["objective"])
        if spec["ub"] is not None:
            program._a_ub = _attach_csr(spec["ub"])
            program._b_ub = shm.attach_array(spec["rhs"])
        else:
            program._a_ub = None
            program._b_ub = None
        program._a_mass = sparse.csr_matrix(
            (
                np.ones(program.num_participants),
                (
                    np.zeros(program.num_participants, dtype=np.int64),
                    np.arange(program.num_participants, dtype=np.int64),
                ),
            ),
            shape=(1, program.num_variables),
        )
        g_csr = _attach_csr(spec["g"])
        program._g_row_maps = [
            {
                int(col): float(val)
                for col, val in zip(
                    g_csr.indices[g_csr.indptr[row]:g_csr.indptr[row + 1]],
                    g_csr.data[g_csr.indptr[row]:g_csr.indptr[row + 1]],
                )
            }
            for row in range(g_csr.shape[0])
        ]
        program._use_engine = bool(getattr(backend, "supports_persistent", False))
        program._last_g_optimum = None
        program._g_overlay = None
        program._h_model = None
        program._g_model = None
        program._x_model = None
        program._feas_model = None
        program._feas_arrays = None
        program._shared_spec = None
        register_fork_reset(program)
        return program

    def __shared_spawn__(self):
        """The :func:`repro.parallel.pool.map_tasks` spawn protocol:
        ``(importable rebuild callable, picklable spec)``."""
        return _rebuild_shared_program, self.export_shared()

    # -- shared helpers ------------------------------------------------------
    def _num_ub_rows(self) -> int:
        return 0 if self._a_ub is None else self._a_ub.shape[0]

    def _ub_row_lower(self) -> np.ndarray:
        return np.full(self._num_ub_rows(), -_INF)

    def _with_constant(self, solution: LPSolution, constant: float) -> LPSolution:
        if solution.is_optimal and constant:
            solution.objective += constant
        return solution

    def _g_matrix(self, num_cols: int) -> sparse.csr_matrix:
        """The per-participant ``Σ q·S·v_root`` rows as a sparse block."""
        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        for row_index, row_map in enumerate(self._g_row_maps):
            for var, coeff in row_map.items():
                rows.append(row_index)
                cols.append(var)
                vals.append(float(coeff))
        return sparse.csr_matrix(
            (vals, (rows, cols)), shape=(len(self._g_row_maps), num_cols)
        )

    # -- H -------------------------------------------------------------------
    def _build_h_model(self) -> PersistentModel:
        blocks = (
            [self._a_ub, self._a_mass] if self._a_ub is not None else [self._a_mass]
        )
        matrix = sparse.vstack(blocks, format="csr")
        row_lower = np.concatenate([self._ub_row_lower(), [0.0]])
        upper = self._b_ub if self._b_ub is not None else np.zeros(0)
        row_upper = np.concatenate([upper, [0.0]])
        return self.backend.build_persistent(
            matrix,
            col_costs=self._c,
            col_lower=self._bounds[:, 0],
            col_upper=self._bounds[:, 1],
            row_lower=row_lower,
            row_upper=row_upper,
        )

    def _ensure_h_model(self) -> PersistentModel:
        if self._h_model is None:
            self._h_model = self._build_h_model()
        return self._h_model

    def solve_h(self, i: float) -> LPSolution:
        """``H_i`` with only the mass-row RHS rebuilt per call."""
        tick = time.perf_counter()
        if self._use_engine:
            model = self._ensure_h_model()
            model.set_row_bounds(model.num_rows - 1, float(i), float(i))
            solution = self._with_constant(model.solve(), self._constant)
            _observe_solve("h", self.backend, time.perf_counter() - tick, model)
            return solution
        solution = self.backend.solve_arrays(
            c=self._c,
            a_ub=self._a_ub,
            b_ub=self._b_ub,
            a_eq=self._a_mass,
            b_eq=np.array([float(i)]),
            bounds=self._bounds,
            objective_constant=self._constant,
        )
        _observe_solve("h", self.backend, time.perf_counter() - tick)
        return solution

    # -- G -------------------------------------------------------------------
    def _build_g_overlay(self):
        """Append the ``z`` column and per-participant min-max rows once."""
        n = self.num_variables
        z = n  # the extra column index
        g_block = sparse.hstack(
            [
                self._g_matrix(n),
                sparse.csr_matrix(
                    (
                        np.full(len(self._g_row_maps), -1.0),
                        (
                            np.arange(len(self._g_row_maps), dtype=np.int64),
                            np.zeros(len(self._g_row_maps), dtype=np.int64),
                        ),
                    ),
                    shape=(len(self._g_row_maps), 1),
                ),
            ],
            format="csr",
        )
        if self._a_ub is not None:
            padded = sparse.hstack(
                [self._a_ub, sparse.csr_matrix((self._a_ub.shape[0], 1))],
                format="csr",
            )
            a_ub = sparse.vstack([padded, g_block], format="csr")
            b_ub = np.concatenate([self._b_ub, np.zeros(len(self._g_row_maps))])
        else:
            a_ub = g_block
            b_ub = np.zeros(len(self._g_row_maps))
        a_eq = sparse.hstack([self._a_mass, sparse.csr_matrix((1, 1))], format="csr")
        bounds = np.vstack([self._bounds, [[0.0, _INF]]])
        c = np.zeros(n + 1)
        c[z] = 1.0
        self._g_overlay = (c, a_ub, b_ub, a_eq, bounds)

    def _ensure_g_model(self) -> PersistentModel:
        if self._g_model is None:
            c, a_ub, b_ub, a_eq, bounds = self._g_overlay
            matrix = sparse.vstack([a_ub, a_eq], format="csr")
            self._g_model = self.backend.build_persistent(
                matrix,
                col_costs=c,
                col_lower=bounds[:, 0],
                col_upper=bounds[:, 1],
                row_lower=np.concatenate([np.full(len(b_ub), -_INF), [0.0]]),
                row_upper=np.concatenate([b_ub, [0.0]]),
            )
        return self._g_model

    def solve_g(self, i: float) -> LPSolution:
        """The Eq. 19 min-max LP; the z overlay is assembled on first use."""
        if not self._g_row_maps:
            raise LPError(
                f"{self._err_prefix()} relation has no G rows — " "G_i is identically 0"
            )
        if self._g_overlay is None:
            self._build_g_overlay()
        c, a_ub, b_ub, a_eq, bounds = self._g_overlay
        tick = time.perf_counter()
        if self._use_engine:
            model = self._ensure_g_model()
            model.set_row_bounds(model.num_rows - 1, float(i), float(i))
            solution = model.solve()
            _observe_solve("g", self.backend, time.perf_counter() - tick, model)
            return solution
        solution = self.backend.solve_arrays(
            c=c,
            a_ub=a_ub,
            b_ub=b_ub,
            a_eq=a_eq,
            b_eq=np.array([float(i)]),
            bounds=bounds,
            objective_constant=0.0,
        )
        _observe_solve("g", self.backend, time.perf_counter() - tick)
        return solution

    # -- batched overlay solves ----------------------------------------------
    def solve_many(
        self, tasks: Sequence, workers: Optional[int] = None
    ) -> List[LPSolution]:
        """Batched overlay solves: multi-RHS sweeps or worker fan-out.

        ``tasks`` is a sequence of ``("h", i)``, ``("g", i)`` or
        ``("x", delta_hat)`` pairs; the result list matches task order and
        carries the same :class:`LPSolution` objects the pointwise calls
        return.

        Two execution strategies, picked per call:

        * **multi-RHS sweep** — when the solves run in-process
          (``workers`` resolves to 1) on a backend advertising
          ``supports_multi_rhs``, a homogeneous H (or G) sweep varies
          only the mass-row RHS, so the whole batch becomes *one*
          backend call (:meth:`~repro.lp.backends.PersistentModel.
          solve_rhs_sweep`) against the already-built persistent model
          instead of N overlay dispatches.  The sweep performs the
          identical rebind+solve sequence, so results are byte-identical
          to the pointwise path.
        * **worker fan-out** — otherwise the tasks shard across workers
          forked after compilation: workers inherit the compiled CSR
          blocks copy-on-write and lazily build their own persistent
          models (the parent's do not survive the fork).  ``workers``
          resolves through :func:`repro.parallel.pool.resolve_workers`;
          ``workers=1`` without multi-RHS support runs the same solves
          sequentially in-process.
        """
        task_list = [(str(kind), float(value)) for kind, value in tasks]
        if (
            task_list
            and self._use_engine
            and getattr(self.backend, "supports_multi_rhs", False)
            and resolve_workers(workers) == 1
        ):
            kinds = {kind for kind, _ in task_list}
            if kinds == {"h"}:
                model = self._ensure_h_model()
                solutions = model.solve_rhs_sweep(
                    model.num_rows - 1, [value for _, value in task_list]
                )
                return [
                    self._with_constant(solution, self._constant)
                    for solution in solutions
                ]
            if kinds == {"g"} and self._g_row_maps:
                if self._g_overlay is None:
                    self._build_g_overlay()
                model = self._ensure_g_model()
                return model.solve_rhs_sweep(
                    model.num_rows - 1, [value for _, value in task_list]
                )
        return map_tasks(_solve_overlay_task, task_list, payload=self, workers=workers)

    # -- the Δ-search predicate ----------------------------------------------
    def _prepare_feas_model(self, i: float, half: float) -> PersistentModel:
        """Build (once) and re-bound the feasibility model for one probe."""
        num_g = len(self._g_row_maps)
        if self._feas_model is None:
            blocks = [self._g_matrix(self.num_variables), self._a_mass]
            if self._a_ub is not None:
                blocks.insert(0, self._a_ub)
            matrix = sparse.vstack(blocks, format="csr")
            row_lower = np.concatenate(
                [self._ub_row_lower(), np.full(num_g, -_INF), [0.0]]
            )
            upper = self._b_ub if self._b_ub is not None else np.zeros(0)
            row_upper = np.concatenate([upper, np.zeros(num_g), [0.0]])
            self._feas_model = self.backend.build_persistent(
                matrix,
                col_costs=np.zeros(self.num_variables),
                col_lower=self._bounds[:, 0],
                col_upper=self._bounds[:, 1],
                row_lower=row_lower,
                row_upper=row_upper,
            )
        model = self._feas_model
        first_g = model.num_rows - 1 - num_g
        for offset in range(num_g):
            model.set_row_bounds(first_g + offset, -_INF, half)
        model.set_row_bounds(model.num_rows - 1, float(i), float(i))
        return model

    def solve_g_decide(self, i: float, threshold: float, workers: int = 1):
        """Decide ``G_i ≤ threshold``; returns ``(bool, exact G or None)``.

        Neither formulation of the test dominates: the feasibility probe
        (``z`` pinned at ``threshold/2``) is fast when the answer is
        clear-cut but its phase-1 can grind near the boundary, while the
        exact min-max solve is sometimes cheap where the probe crawls and
        vice versa — which regime a relation falls in is not predictable
        from its size.  With ``workers >= 2`` the two formulations run to
        completion in *separate forked processes* and the first decided
        answer wins while the loser is terminated — latency is the
        minimum of the strands.  Serially (``workers=1``, the default,
        or no fork support) they instead interleave in-process as an
        iteration-budget race: each strand gets a doubling budget
        (:meth:`~repro.lp.backends.PersistentModel.set_iteration_limit`)
        and resumes warm from where it stopped, costing at most ~2× the
        cheaper strand — which requires a persistent backend advertising
        ``supports_warm_start``; other backends take the plain
        feasibility probe.  When the exact strand wins, its value is
        returned so callers can cache it (tightening the Δ-search's
        convexity bounds for later probes).
        """
        if not self._g_row_maps:
            return 0.0 <= threshold, 0.0
        if resolve_workers(workers) >= 2 and fork_available():
            return self._race_decide_processes(float(i), float(threshold))
        if not (
            self._use_engine and getattr(self.backend, "supports_warm_start", False)
        ):
            return self.solve_g_feasible(i, threshold), None
        if self._g_overlay is None:
            self._build_g_overlay()
        feas = self._prepare_feas_model(i, float(threshold) / 2.0)
        exact = self._ensure_g_model()
        exact.set_row_bounds(exact.num_rows - 1, float(i), float(i))
        feas_budget = exact_budget = RACE_INITIAL_BUDGET
        feas_spent = 0
        feas_fresh = exact_fresh = True
        feas_alive = exact_alive = True
        try:
            while feas_alive or exact_alive:
                if feas_alive:
                    cap = min(feas_budget, feas.base_iteration_limit)
                    feas.set_iteration_limit(cap)
                    solution = feas.solve(resume=not feas_fresh)
                    feas_fresh = False
                    feas_spent += feas.last_iteration_count
                    if solution.is_optimal:
                        return True, None
                    if solution.status == "infeasible":
                        return False, None
                    if solution.status != "iteration_limit":
                        raise LPError(
                            f"{self._err_prefix()} G_{i} <= {threshold} "
                            f"probe failed: {solution.status} "
                            f"{solution.message}"
                        )
                    if cap >= feas.base_iteration_limit:
                        feas_alive = False  # backend iteration cap exhausted
                    feas_budget *= 2
                if exact_alive and (feas_spent >= RACE_EXACT_LAG or not feas_alive):
                    # join at parity with the feasibility strand's spend so
                    # a pathological phase-1 cannot starve the exact solve
                    exact_budget = max(exact_budget, feas_spent)
                    cap = min(exact_budget, exact.base_iteration_limit)
                    exact.set_iteration_limit(cap)
                    solution = exact.solve(
                        resume=not exact_fresh, warm_values=self._last_g_optimum
                    )
                    exact_fresh = False
                    if solution.is_optimal:
                        self._last_g_optimum = solution.x
                        value = max(0.0, 2.0 * float(solution.objective))
                        return value <= threshold, value
                    if solution.status != "iteration_limit":
                        raise LPError(
                            f"{self._err_prefix()} G_{i} exact solve "
                            f"failed: {solution.status} {solution.message}"
                        )
                    if cap >= exact.base_iteration_limit:
                        exact_alive = False
                    exact_budget *= 2
            raise LPError(
                f"{self._err_prefix()} G_{i} <= {threshold} probe hit the "
                "configured iteration limit on both strands "
                "(iteration_limit)"
            )
        finally:
            for model in (feas, exact):
                model.restore_iteration_limits()

    def _race_decide_processes(self, i: float, threshold: float):
        """The Δ-probe race across two forked processes.

        Each strand runs its formulation to completion (no interleaved
        budgets) in its own process; both inherit the compiled arrays
        copy-on-write and rebuild only the one model their strand needs.
        Works on the arrays-fallback path too — neither strand requires
        a persistent backend.  When the exact strand wins, its optimum
        additionally seeds the parent's warm-start cache.
        """
        # Assemble the G overlay (pure arrays) in the parent first, so
        # every forked exact strand inherits it copy-on-write instead of
        # rebuilding — and then discarding — it once per probe.
        if self._g_overlay is None:
            self._build_g_overlay()

        def feasibility_strand():
            return self.solve_g_feasible(i, threshold), None, None

        def exact_strand():
            solution = self.solve_g(i)
            if not solution.is_optimal:
                raise LPError(
                    f"{self._err_prefix()} G_{i} exact solve failed: "
                    f"{solution.status} {solution.message}"
                )
            value = max(0.0, 2.0 * float(solution.objective))
            return value <= threshold, value, np.asarray(solution.x, dtype=float)

        try:
            _, (decided, value, optimum) = first_decided(
                [("feasibility", feasibility_strand), ("exact", exact_strand)]
            )
        except StrandError as exc:
            raise LPError(
                f"{self._err_prefix()} G_{i} <= {threshold} process race "
                f"failed: {exc}"
            ) from exc
        if optimum is not None and len(optimum) == self.num_variables + 1:
            self._last_g_optimum = optimum
        return decided, value

    def solve_g_feasible(self, i: float, bound: float) -> bool:
        """Exact predicate ``G_i ≤ bound`` as a feasibility program.

        ``G_i = 2·min z`` with ``z ≥ Σ_t q·S_{t,p}·v_root(t)`` per
        participant, so ``G_i ≤ bound`` iff the polytope with ``z`` fixed
        to ``bound/2`` is nonempty.  Feasibility is usually much cheaper
        than optimizing the degenerate min-max objective, and the Δ binary
        search only consumes the boolean.
        """
        if not self._g_row_maps:
            return 0.0 <= bound
        half = float(bound) / 2.0
        num_g = len(self._g_row_maps)
        if self._use_engine:
            model = self._prepare_feas_model(i, half)
            solution = model.solve()
        else:
            if self._feas_arrays is None:
                g_mat = self._g_matrix(self.num_variables)
                a_feas = (
                    sparse.vstack([self._a_ub, g_mat], format="csr")
                    if self._a_ub is not None
                    else g_mat
                )
                self._feas_arrays = a_feas
            base = self._b_ub if self._b_ub is not None else np.zeros(0)
            solution = self.backend.solve_arrays(
                c=np.zeros(self.num_variables),
                a_ub=self._feas_arrays,
                b_ub=np.concatenate([base, np.full(num_g, half)]),
                a_eq=self._a_mass,
                b_eq=np.array([float(i)]),
                bounds=self._bounds,
                objective_constant=0.0,
            )
        if solution.is_optimal:
            return True
        if solution.status == "infeasible":
            return False
        raise LPError(
            f"{self._err_prefix()} G_{i} <= {bound} feasibility probe "
            f"failed: {solution.status} {solution.message}"
        )

    # -- X -------------------------------------------------------------------
    def solve_x(self, delta_hat: float) -> LPSolution:
        """Eq. 20: the base program with a ``-Δ̂`` objective perturbation."""
        constant = self._constant + self.num_participants * float(delta_hat)
        participant_cols = np.arange(self.num_participants)
        tick = time.perf_counter()
        if self._use_engine and self._a_ub is not None:
            if self._x_model is None:
                self._x_model = self.backend.build_persistent(
                    self._a_ub,
                    col_costs=self._c,
                    col_lower=self._bounds[:, 0],
                    col_upper=self._bounds[:, 1],
                    row_lower=self._ub_row_lower(),
                    row_upper=self._b_ub,
                )
            self._x_model.set_col_costs(
                participant_cols,
                self._c[: self.num_participants] - float(delta_hat),
            )
            solution = self._with_constant(self._x_model.solve(), constant)
            _observe_solve("x", self.backend, time.perf_counter() - tick, self._x_model)
            return solution
        c = self._c.copy()
        c[: self.num_participants] -= float(delta_hat)
        solution = self.backend.solve_arrays(
            c=c,
            a_ub=self._a_ub,
            b_ub=self._b_ub,
            a_eq=None,
            b_eq=None,
            bounds=self._bounds,
            objective_constant=constant,
        )
        _observe_solve("x", self.backend, time.perf_counter() - tick)
        return solution

    def __repr__(self) -> str:
        return (
            f"CompiledProgram(num_variables={self.num_variables}, "
            f"num_ub_rows={self._num_ub_rows()}, "
            f"num_g_rows={len(self._g_row_maps)}, "
            f"engine={self._use_engine})"
        )


def _export_csr(matrix: sparse.csr_matrix) -> Dict:
    """Export one CSR matrix as three named segments plus its shape."""
    from ..parallel import shm

    return {
        "data": shm.export_array(matrix.data),
        "indices": shm.export_array(matrix.indices),
        "indptr": shm.export_array(matrix.indptr),
        "shape": [int(matrix.shape[0]), int(matrix.shape[1])],
    }


def _attach_csr(spec: Dict) -> sparse.csr_matrix:
    """Map an exported CSR back over its segments (arrays stay read-only)."""
    from ..parallel import shm

    return sparse.csr_matrix(
        (
            shm.attach_array(spec["data"]),
            shm.attach_array(spec["indices"]),
            shm.attach_array(spec["indptr"]),
        ),
        shape=tuple(spec["shape"]),
        copy=False,
    )


def _rebuild_shared_program(spec) -> CompiledProgram:
    """Spawn-worker initializer target: attach the shared program."""
    return CompiledProgram.attach_shared(spec)


def _solve_overlay_task(program: CompiledProgram, task) -> LPSolution:
    """Worker-side dispatch for :meth:`CompiledProgram.solve_many`."""
    kind, value = task
    if kind == "h":
        return program.solve_h(value)
    if kind == "g":
        return program.solve_g(value)
    if kind == "x":
        return program.solve_x(value)
    raise LPError(f"unknown overlay task kind {kind!r}")
