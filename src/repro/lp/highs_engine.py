"""The ``"highs"`` backend: persistent HiGHS models via SciPy's bindings.

:func:`scipy.optimize.linprog` rebuilds the HiGHS model object — CSC
conversion, option validation, ``passModel`` — on **every** call, which for
the small-to-medium φ-epigraph programs costs as much as the solve itself.
SciPy ships the underlying highspy-style bindings as
``scipy.optimize._highspy._core``; a :class:`PersistentLP` loads the model
into a HiGHS instance **once** and then only mutates the handful of numbers
that change between solves (a row's bounds, a few objective entries).

Each solve still starts from a cleared solver state (``clearSolver``), i.e.
cold with presolve: on the heavily degenerate epigraph LPs a warm simplex
basis skips presolve and is measurably *slower* than a fresh presolved
solve, so we keep the model reuse and drop the basis reuse.

This is a private SciPy API, so :class:`HighsBackend` is gated behind a
lazy, cached probe: :func:`engine_available` answers cheaply after the
first check, :func:`engine_unavailable_reason` records *why* the bindings
are unusable, and :func:`require_engine` raises one actionable
:class:`~repro.errors.LPError` naming the missing module and the fallback
to take (``REPRO_LP_BACKEND=scipy``) instead of degrading silently.
"""

from __future__ import annotations

import warnings
from typing import Dict, Optional, Tuple

import numpy as np
from scipy.optimize import OptimizeWarning

from ..errors import LPError
from . import status
from .backends import PersistentModel, register
from .model import LPSolution
from .scipy_backend import ScipyBackend

__all__ = [
    "engine_available",
    "engine_unavailable_reason",
    "require_engine",
    "PersistentLP",
    "HighsBackend",
]

#: The private SciPy module the persistent engine is built on.
ENGINE_MODULE = "scipy.optimize._highspy._core"

_REQUIRED_NAMES = ("_Highs", "HighsLp", "MatrixFormat")

_core = None
_PROBE: Optional[Tuple[bool, str]] = None


def _probe() -> Tuple[bool, str]:
    """Import and validate the bindings once; cache ``(ok, reason)``."""
    global _core, _PROBE
    if _PROBE is None:
        try:
            import scipy.optimize._highspy._core as core
        except Exception as exc:  # pragma: no cover - layout-dependent
            _PROBE = (False, f"{ENGINE_MODULE} failed to import: {exc}")
        else:
            missing = [name for name in _REQUIRED_NAMES if not hasattr(core, name)]
            if missing:  # pragma: no cover - layout-dependent
                _PROBE = (
                    False,
                    f"{ENGINE_MODULE} lacks {', '.join(missing)}",
                )
            else:
                _core = core
                _PROBE = (True, "")
    return _PROBE


def engine_available() -> bool:
    """Whether SciPy exposes the bindings :class:`PersistentLP` needs."""
    return _probe()[0]


def engine_unavailable_reason() -> str:
    """Why the bindings are unusable (empty string when available)."""
    return _probe()[1]


def require_engine(backend_name: str = "highs") -> None:
    """Raise one actionable error when the bindings are missing.

    Names the module that failed, the reason, and the fallback to take —
    the single loud failure the registry surfaces instead of each call
    site silently degrading to a different solver.
    """
    ok, reason = _probe()
    if not ok:
        raise LPError(
            f"[lp-backend {backend_name}] persistent HiGHS engine "
            f"unavailable: {reason}; fall back to the pure-linprog "
            "backend with REPRO_LP_BACKEND=scipy (or --lp-backend scipy)"
        )


def _status_name(model_status) -> str:
    if model_status == _core.HighsModelStatus.kOptimal:
        return status.OPTIMAL
    if model_status == _core.HighsModelStatus.kInfeasible:
        return status.INFEASIBLE
    if model_status == _core.HighsModelStatus.kUnbounded:
        return status.UNBOUNDED
    if model_status == _core.HighsModelStatus.kIterationLimit:
        return status.ITERATION_LIMIT
    return status.ERROR


class PersistentLP(PersistentModel):
    """One HiGHS model kept alive across solves.

    Parameters
    ----------
    matrix:
        The full constraint matrix (any scipy-sparse format; converted to
        CSC once).  Row activities are constrained to
        ``row_lower <= A x <= row_upper`` — encode a ``<=`` row with
        ``-inf`` lower and an ``==`` row with equal bounds.
    col_costs / col_lower / col_upper:
        Objective and box bounds per column (``np.inf`` allowed).
    row_lower / row_upper:
        Initial row bounds; mutable per solve via :meth:`set_row_bounds`.
    options:
        HiGHS option name → value pairs set once at construction (e.g.
        ``{"simplex_iteration_limit": 100, "presolve": "off"}``).
    """

    backend_name = "highs"

    def __init__(
        self,
        matrix,
        col_costs: np.ndarray,
        col_lower: np.ndarray,
        col_upper: np.ndarray,
        row_lower: np.ndarray,
        row_upper: np.ndarray,
        options: Optional[Dict] = None,
    ):
        require_engine(self.backend_name)
        # the owner-pid fork guard lives in PersistentModel: a persistent
        # model must not cross a fork (the C++ solver state would be
        # mutated through copy-on-write pages in several processes at
        # once); workers re-instantiate their own models lazily
        # (CompiledProgram.fork_reset).
        super().__init__()
        a = matrix.tocsc()
        num_rows, num_cols = a.shape
        lp = _core.HighsLp()
        lp.num_col_ = num_cols
        lp.num_row_ = num_rows
        lp.a_matrix_.num_col_ = num_cols
        lp.a_matrix_.num_row_ = num_rows
        lp.a_matrix_.format_ = _core.MatrixFormat.kColwise
        lp.a_matrix_.start_ = a.indptr.astype(np.int32)
        lp.a_matrix_.index_ = a.indices.astype(np.int32)
        lp.a_matrix_.value_ = a.data.astype(float)
        lp.col_cost_ = np.asarray(col_costs, dtype=float)
        lp.col_lower_ = np.asarray(col_lower, dtype=float)
        lp.col_upper_ = np.asarray(col_upper, dtype=float)
        lp.row_lower_ = np.asarray(row_lower, dtype=float)
        lp.row_upper_ = np.asarray(row_upper, dtype=float)

        self.num_rows = num_rows
        self.num_cols = num_cols
        self._solver = _core._Highs()
        self._solver.setOptionValue("output_flag", False)
        for key, value in (options or {}).items():
            if self._solver.setOptionValue(key, value) != _core.HighsStatus.kOk:
                # mirror linprog, which warns on unrecognized options
                # rather than silently diverging from the configuration
                warnings.warn(
                    f"HiGHS rejected option {key}={value!r}; "
                    "solving with its default instead",
                    OptimizeWarning,
                    stacklevel=3,
                )
        #: the configured iteration caps, restored after temporary overrides
        self.base_simplex_limit = int(
            (options or {}).get("simplex_iteration_limit", 2147483647)
        )
        self.base_ipm_limit = int(
            (options or {}).get("ipm_iteration_limit", 2147483647)
        )
        #: the tighter of the two — the effective per-solve budget ceiling
        self.base_iteration_limit = min(self.base_simplex_limit, self.base_ipm_limit)
        if self._solver.passModel(lp) == _core.HighsStatus.kError:
            raise LPError(
                f"[lp-backend {self.backend_name}] HiGHS rejected the " "compiled model"
            )

    # -- per-solve mutations -------------------------------------------------
    def set_row_bounds(self, row: int, lower: float, upper: float) -> None:
        """Rebound one row (e.g. the ``Σf = i`` mass row) in place."""
        self._assert_owner()
        self._solver.changeRowBounds(int(row), float(lower), float(upper))

    def set_col_costs(self, indices: np.ndarray, values: np.ndarray) -> None:
        """Overwrite the objective coefficients of the given columns."""
        self._assert_owner()
        idx = np.asarray(indices, dtype=np.int32)
        self._solver.changeColsCost(len(idx), idx, np.asarray(values, dtype=float))

    def set_option(self, key: str, value) -> None:
        """Set a HiGHS option (e.g. a temporary iteration budget)."""
        self._solver.setOptionValue(key, value)

    def set_iteration_limit(self, limit: int) -> None:
        """Cap both codes' iterations for the next solve (race budgets)."""
        self.set_option("simplex_iteration_limit", int(limit))
        self.set_option("ipm_iteration_limit", int(limit))

    def restore_iteration_limits(self) -> None:
        self.set_option("simplex_iteration_limit", self.base_simplex_limit)
        self.set_option("ipm_iteration_limit", self.base_ipm_limit)

    # -- solving -------------------------------------------------------------
    def solve(
        self, resume: bool = False, warm_values: Optional[np.ndarray] = None
    ) -> LPSolution:
        """Solve; statuses match the canonical set (:mod:`repro.lp.status`).

        ``resume=True`` keeps the solver state from the previous ``run``
        so an iteration-limited solve continues warm instead of starting
        over — the building block of the Δ-probe race.  ``warm_values``
        (ignored when resuming) seeds a fresh solve with a primal point,
        e.g. the optimum of a neighboring Δ-search probe.
        """
        self._assert_owner()
        if not resume:
            self._solver.clearSolver()
            if warm_values is not None and len(warm_values) == self.num_cols:
                warm = _core.HighsSolution()
                warm.col_value = np.asarray(warm_values, dtype=float)
                warm.value_valid = True
                self._solver.setSolution(warm)
        run_status = self._solver.run()
        model_status = self._solver.getModelStatus()
        name = _status_name(model_status)
        message = self._solver.modelStatusToString(model_status)
        if run_status == _core.HighsStatus.kError and name == "optimal":
            name = status.ERROR
        info = self._solver.getInfo()
        self.last_iteration_count = int(info.simplex_iteration_count) + int(
            info.ipm_iteration_count
        )
        if name != "optimal":
            return LPSolution(name, float("nan"), np.zeros(0), message=message)
        x = np.asarray(self._solver.getSolution().col_value, dtype=float)
        return LPSolution(
            "optimal", float(info.objective_function_value), x, message=message
        )

    def __repr__(self) -> str:
        return f"PersistentLP(num_cols={self.num_cols}, num_rows={self.num_rows})"


_SOLVER_BY_METHOD = {"highs": "choose", "highs-ds": "simplex", "highs-ipm": "ipm"}


@register
class HighsBackend(ScipyBackend):
    """The persistent-model backend over SciPy's private HiGHS bindings.

    Shares every knob (and the one-shot ``solve_arrays`` path) with
    :class:`~repro.lp.scipy_backend.ScipyBackend` — the two are
    numerically byte-identical on the epigraph workload, which the
    cross-backend equivalence matrix pins — but additionally builds
    :class:`PersistentLP` models from the compiled CSR blocks, so
    per-call work shrinks to mutating one row's bounds and re-running
    the solver.
    """

    name = "highs"
    aliases = ("persistent", "highspy")
    supports_persistent = True
    supports_multi_rhs = True
    supports_warm_start = True
    #: measured winner on this workload: model reuse beats per-call
    #: linprog assembly ~2.6× on the fig5 sweep (see BENCH_backends.json)
    preference = 30

    def __init__(self, *args, **kwargs):
        require_engine(self.name)
        super().__init__(*args, **kwargs)

    @classmethod
    def availability(cls) -> Tuple[bool, str]:
        return _probe()

    def _engine_options(self, num_variables: int) -> Dict:
        """Translate the scipy-style knobs into HiGHS option names.

        Honors the method selection (including the ``"adaptive"``
        simplex/IPM switch on large degenerate programs); scipy-style
        option names are translated, anything else passes through as a
        native HiGHS option.
        """
        options: Dict = {}
        method = self._resolve_method(num_variables)
        options["solver"] = _SOLVER_BY_METHOD.get(method, "choose")
        raw = dict(self.options)
        max_iterations = self.max_iterations
        if max_iterations is None and "maxiter" in raw:
            max_iterations = raw["maxiter"]
        raw.pop("maxiter", None)
        if max_iterations is not None:
            options["simplex_iteration_limit"] = int(max_iterations)
            options["ipm_iteration_limit"] = int(max_iterations)
        if "presolve" in raw:
            options["presolve"] = "on" if raw.pop("presolve") else "off"
        options.update(raw)  # native HiGHS options pass through unchanged
        return options

    def build_persistent(
        self,
        matrix,
        col_costs: np.ndarray,
        col_lower: np.ndarray,
        col_upper: np.ndarray,
        row_lower: np.ndarray,
        row_upper: np.ndarray,
    ) -> PersistentLP:
        return PersistentLP(
            matrix,
            col_costs=col_costs,
            col_lower=col_lower,
            col_upper=col_upper,
            row_lower=row_lower,
            row_upper=row_upper,
            options=self._engine_options(matrix.shape[1]),
        )
