"""Persistent HiGHS models through SciPy's bundled HiGHS bindings.

:func:`scipy.optimize.linprog` rebuilds the HiGHS model object — CSC
conversion, option validation, ``passModel`` — on **every** call, which for
the small-to-medium φ-epigraph programs costs as much as the solve itself.
SciPy ships the underlying highspy-style bindings as
``scipy.optimize._highspy._core``; a :class:`PersistentLP` loads the model
into a HiGHS instance **once** and then only mutates the handful of numbers
that change between solves (a row's bounds, a few objective entries).

Each solve still starts from a cleared solver state (``clearSolver``), i.e.
cold with presolve: on the heavily degenerate epigraph LPs a warm simplex
basis skips presolve and is measurably *slower* than a fresh presolved
solve, so we keep the model reuse and drop the basis reuse.

This is a private SciPy API, so everything is gated behind
:func:`engine_available`; callers must fall back to
:meth:`~repro.lp.scipy_backend.ScipyBackend.solve_arrays` when it returns
False (older/newer SciPy layouts, other interpreters).
"""

from __future__ import annotations

import os
import warnings
from typing import Dict, Optional

import numpy as np
from scipy.optimize import OptimizeWarning

from ..errors import LPError
from .model import LPSolution

__all__ = ["engine_available", "PersistentLP"]

try:  # pragma: no cover - exercised implicitly by the compiled-LP tests
    import scipy.optimize._highspy._core as _core

    _AVAILABLE = all(
        hasattr(_core, name) for name in ("_Highs", "HighsLp", "MatrixFormat")
    )
except Exception:  # pragma: no cover
    _core = None
    _AVAILABLE = False


def engine_available() -> bool:
    """Whether SciPy exposes the bindings :class:`PersistentLP` needs."""
    return _AVAILABLE


def _status_name(model_status) -> str:
    if model_status == _core.HighsModelStatus.kOptimal:
        return "optimal"
    if model_status == _core.HighsModelStatus.kInfeasible:
        return "infeasible"
    if model_status == _core.HighsModelStatus.kUnbounded:
        return "unbounded"
    if model_status == _core.HighsModelStatus.kIterationLimit:
        return "iteration_limit"
    return "error"


class PersistentLP:
    """One HiGHS model kept alive across solves.

    Parameters
    ----------
    matrix:
        The full constraint matrix (any scipy-sparse format; converted to
        CSC once).  Row activities are constrained to
        ``row_lower <= A x <= row_upper`` — encode a ``<=`` row with
        ``-inf`` lower and an ``==`` row with equal bounds.
    col_costs / col_lower / col_upper:
        Objective and box bounds per column (``np.inf`` allowed).
    row_lower / row_upper:
        Initial row bounds; mutable per solve via :meth:`set_row_bounds`.
    options:
        HiGHS option name → value pairs set once at construction (e.g.
        ``{"simplex_iteration_limit": 100, "presolve": "off"}``).
    """

    def __init__(
        self,
        matrix,
        col_costs: np.ndarray,
        col_lower: np.ndarray,
        col_upper: np.ndarray,
        row_lower: np.ndarray,
        row_upper: np.ndarray,
        options: Optional[Dict] = None,
    ):
        if not _AVAILABLE:
            raise LPError("scipy's HiGHS bindings are unavailable")
        a = matrix.tocsc()
        num_rows, num_cols = a.shape
        lp = _core.HighsLp()
        lp.num_col_ = num_cols
        lp.num_row_ = num_rows
        lp.a_matrix_.num_col_ = num_cols
        lp.a_matrix_.num_row_ = num_rows
        lp.a_matrix_.format_ = _core.MatrixFormat.kColwise
        lp.a_matrix_.start_ = a.indptr.astype(np.int32)
        lp.a_matrix_.index_ = a.indices.astype(np.int32)
        lp.a_matrix_.value_ = a.data.astype(float)
        lp.col_cost_ = np.asarray(col_costs, dtype=float)
        lp.col_lower_ = np.asarray(col_lower, dtype=float)
        lp.col_upper_ = np.asarray(col_upper, dtype=float)
        lp.row_lower_ = np.asarray(row_lower, dtype=float)
        lp.row_upper_ = np.asarray(row_upper, dtype=float)

        self.num_rows = num_rows
        self.num_cols = num_cols
        #: simplex + IPM iterations of the most recent :meth:`solve`
        self.last_iteration_count = 0
        # A persistent model must not cross a fork: the C++ solver state
        # would be mutated through copy-on-write pages in several
        # processes at once.  Workers re-instantiate their own models
        # (CompiledProgram.fork_reset); this guard turns silent misuse
        # into a loud error.
        self._owner_pid = os.getpid()
        self._solver = _core._Highs()
        self._solver.setOptionValue("output_flag", False)
        for key, value in (options or {}).items():
            if self._solver.setOptionValue(key, value) != _core.HighsStatus.kOk:
                # mirror linprog, which warns on unrecognized options
                # rather than silently diverging from the configuration
                warnings.warn(
                    f"HiGHS rejected option {key}={value!r}; "
                    "solving with its default instead",
                    OptimizeWarning,
                    stacklevel=3,
                )
        #: the configured iteration caps, restored after temporary overrides
        self.base_simplex_limit = int(
            (options or {}).get("simplex_iteration_limit", 2147483647)
        )
        self.base_ipm_limit = int(
            (options or {}).get("ipm_iteration_limit", 2147483647)
        )
        #: the tighter of the two — the effective per-solve budget ceiling
        self.base_iteration_limit = min(
            self.base_simplex_limit, self.base_ipm_limit
        )
        if self._solver.passModel(lp) == _core.HighsStatus.kError:
            raise LPError("HiGHS rejected the compiled model")

    # -- per-solve mutations -------------------------------------------------
    def _assert_owner(self) -> None:
        if os.getpid() != self._owner_pid:
            raise LPError(
                "PersistentLP was built in another process and cannot be "
                "used across fork(); drop it and re-instantiate in this "
                "worker (see CompiledProgram.fork_reset)"
            )

    def set_row_bounds(self, row: int, lower: float, upper: float) -> None:
        """Rebound one row (e.g. the ``Σf = i`` mass row) in place."""
        self._assert_owner()
        self._solver.changeRowBounds(int(row), float(lower), float(upper))

    def set_col_costs(self, indices: np.ndarray, values: np.ndarray) -> None:
        """Overwrite the objective coefficients of the given columns."""
        self._assert_owner()
        idx = np.asarray(indices, dtype=np.int32)
        self._solver.changeColsCost(
            len(idx), idx, np.asarray(values, dtype=float)
        )

    def set_option(self, key: str, value) -> None:
        """Set a HiGHS option (e.g. a temporary iteration budget)."""
        self._solver.setOptionValue(key, value)

    # -- solving -------------------------------------------------------------
    def solve(
        self, resume: bool = False, warm_values: Optional[np.ndarray] = None
    ) -> LPSolution:
        """Solve; statuses match the LPSolution set.

        ``resume=True`` keeps the solver state from the previous ``run``
        so an iteration-limited solve continues warm instead of starting
        over — the building block of the Δ-probe race.  ``warm_values``
        (ignored when resuming) seeds a fresh solve with a primal point,
        e.g. the optimum of a neighboring Δ-search probe.
        """
        self._assert_owner()
        if not resume:
            self._solver.clearSolver()
            if warm_values is not None and len(warm_values) == self.num_cols:
                warm = _core.HighsSolution()
                warm.col_value = np.asarray(warm_values, dtype=float)
                warm.value_valid = True
                self._solver.setSolution(warm)
        run_status = self._solver.run()
        model_status = self._solver.getModelStatus()
        name = _status_name(model_status)
        message = self._solver.modelStatusToString(model_status)
        if run_status == _core.HighsStatus.kError and name == "optimal":
            name = "error"
        info = self._solver.getInfo()
        self.last_iteration_count = int(info.simplex_iteration_count) + int(
            info.ipm_iteration_count
        )
        if name != "optimal":
            return LPSolution(name, float("nan"), np.zeros(0), message=message)
        x = np.asarray(self._solver.getSolution().col_value, dtype=float)
        return LPSolution(
            "optimal", float(info.objective_function_value), x, message=message
        )

    def __repr__(self) -> str:
        return f"PersistentLP(num_cols={self.num_cols}, num_rows={self.num_rows})"
