"""Linear programming layer.

The efficient recursive mechanism (Sec. 5.3 of the paper) reduces each
``H_i`` / ``G_i`` evaluation to a linear program with ``O(L)`` variables.
This package provides:

* :class:`~repro.lp.model.LinearProgram` — a small declarative LP builder
  (minimization, ``<=`` / ``>=`` / ``==`` rows, box bounds).
* :mod:`repro.lp.backends` — the solver-backend registry.
  ``backends.get("highs"|"scipy"|"gurobi")`` looks up a backend class,
  ``backends.resolve(None | name | instance)`` normalises any backend
  argument, and ``backends.default_backend()`` picks the best available
  solver (``REPRO_LP_BACKEND`` overrides the measured-preference order).
* :class:`~repro.lp.scipy_backend.ScipyBackend` — the ``"scipy"``
  backend: portable :func:`scipy.optimize.linprog` (HiGHS) on sparse
  matrices; always available, no persistent state.
* :class:`~repro.lp.highs_engine.HighsBackend` — the ``"highs"``
  backend: persistent HiGHS models through SciPy's private bindings;
  the measured winner here and the auto-detect default when available.
* ``repro.lp.gurobi_backend.GurobiBackend`` — the ``"gurobi"`` backend
  (optional ``gurobipy`` dependency; registered but reported
  unavailable without the package and a license).
* :class:`~repro.lp.simplex.SimplexBackend` — a self-contained dense
  two-phase primal simplex (Bland's rule), dependency-free and auditable;
  suitable for small programs and used to cross-check HiGHS in tests.
* :class:`~repro.lp.compiled.CompiledProgram` — the hot path: the base
  epigraph program assembled **once** into CSR/NumPy arrays, with cheap
  per-call overlays for the ``H_i`` / ``G_i`` / ``X`` solves (used by
  :class:`~repro.relax.encode.EncodedRelation` whenever the backend
  exposes ``solve_arrays``).
"""

from . import backends, status
from .backends import SolverBackend
from .compiled import CompiledProgram
from .highs_engine import HighsBackend
from .model import Constraint, LinearProgram, LPSolution
from .scipy_backend import ScipyBackend
from .simplex import SimplexBackend

#: The portable baseline backend instance (kept for backward
#: compatibility — entry points resolve :func:`repro.lp.backends.
#: default_backend` instead, which prefers the persistent ``"highs"``
#: backend when SciPy's bindings are importable).
DEFAULT_BACKEND = ScipyBackend()

__all__ = [
    "LinearProgram",
    "Constraint",
    "LPSolution",
    "SolverBackend",
    "ScipyBackend",
    "HighsBackend",
    "SimplexBackend",
    "CompiledProgram",
    "DEFAULT_BACKEND",
    "backends",
    "status",
]
