"""Linear programming layer.

The efficient recursive mechanism (Sec. 5.3 of the paper) reduces each
``H_i`` / ``G_i`` evaluation to a linear program with ``O(L)`` variables.
This package provides:

* :class:`~repro.lp.model.LinearProgram` — a small declarative LP builder
  (minimization, ``<=`` / ``>=`` / ``==`` rows, box bounds).
* :class:`~repro.lp.scipy_backend.ScipyBackend` — the default solver, using
  :func:`scipy.optimize.linprog` with the HiGHS method on sparse matrices.
* :class:`~repro.lp.simplex.SimplexBackend` — a self-contained dense
  two-phase primal simplex (Bland's rule), dependency-free and auditable;
  suitable for small programs and used to cross-check HiGHS in tests.
* :class:`~repro.lp.compiled.CompiledProgram` — the hot path: the base
  epigraph program assembled **once** into CSR/NumPy arrays, with cheap
  per-call overlays for the ``H_i`` / ``G_i`` / ``X`` solves (used by
  :class:`~repro.relax.encode.EncodedRelation` whenever the backend
  exposes ``solve_arrays``).
"""

from .compiled import CompiledProgram
from .model import Constraint, LinearProgram, LPSolution
from .scipy_backend import ScipyBackend
from .simplex import SimplexBackend

DEFAULT_BACKEND = ScipyBackend()

__all__ = [
    "LinearProgram",
    "Constraint",
    "LPSolution",
    "ScipyBackend",
    "SimplexBackend",
    "CompiledProgram",
    "DEFAULT_BACKEND",
]
