"""HiGHS backend via :func:`scipy.optimize.linprog`.

Constraint rows are assembled into sparse CSR matrices, so programs with the
``O(L)`` variables produced by large K-relations stay cheap to build.
"""

from __future__ import annotations

from typing import List

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from ..errors import LPError
from .model import LinearProgram, LPSolution

__all__ = ["ScipyBackend"]

_STATUS_MAP = {
    0: "optimal",
    1: "error",  # iteration limit
    2: "infeasible",
    3: "unbounded",
    4: "error",
}


class ScipyBackend:
    """Solve :class:`LinearProgram` instances with HiGHS.

    Parameters
    ----------
    method:
        The :func:`scipy.optimize.linprog` method.  The default
        ``"adaptive"`` uses the dual simplex (``"highs"``) for small
        programs and the interior-point code (``"highs-ipm"``) for large
        ones: the φ-epigraph LPs of big K-relations are heavily degenerate,
        where simplex stalls (observed >10× slowdowns) while IPM stays
        stable.
    ipm_threshold:
        Variable count above which ``"adaptive"`` switches to IPM.
    """

    def __init__(self, method: str = "adaptive", ipm_threshold: int = 3000):
        self.method = method
        self.ipm_threshold = int(ipm_threshold)

    def _resolve_method(self, lp: LinearProgram) -> str:
        if self.method != "adaptive":
            return self.method
        if lp.num_variables > self.ipm_threshold:
            return "highs-ipm"
        return "highs"

    def solve(self, lp: LinearProgram) -> LPSolution:
        """Solve the program; never raises on infeasible/unbounded (see status)."""
        n = lp.num_variables
        if n == 0:
            return LPSolution("optimal", lp.objective_constant, np.zeros(0))

        rows_ub: List[int] = []
        cols_ub: List[int] = []
        vals_ub: List[float] = []
        rhs_ub: List[float] = []
        rows_eq: List[int] = []
        cols_eq: List[int] = []
        vals_eq: List[float] = []
        rhs_eq: List[float] = []

        for constraint in lp.constraints:
            if constraint.sense == "==":
                row = len(rhs_eq)
                rhs_eq.append(constraint.rhs)
                for index, value in zip(constraint.indices, constraint.coefficients):
                    rows_eq.append(row)
                    cols_eq.append(index)
                    vals_eq.append(value)
            else:
                # normalize ">= rhs" to "-row <= -rhs"
                flip = -1.0 if constraint.sense == ">=" else 1.0
                row = len(rhs_ub)
                rhs_ub.append(flip * constraint.rhs)
                for index, value in zip(constraint.indices, constraint.coefficients):
                    rows_ub.append(row)
                    cols_ub.append(index)
                    vals_ub.append(flip * value)

        a_ub = (
            sparse.csr_matrix(
                (vals_ub, (rows_ub, cols_ub)), shape=(len(rhs_ub), n)
            )
            if rhs_ub
            else None
        )
        a_eq = (
            sparse.csr_matrix(
                (vals_eq, (rows_eq, cols_eq)), shape=(len(rhs_eq), n)
            )
            if rhs_eq
            else None
        )

        result = linprog(
            c=lp.objective_vector(),
            A_ub=a_ub,
            b_ub=np.asarray(rhs_ub) if rhs_ub else None,
            A_eq=a_eq,
            b_eq=np.asarray(rhs_eq) if rhs_eq else None,
            bounds=lp.bounds(),
            method=self._resolve_method(lp),
        )

        status = _STATUS_MAP.get(result.status, "error")
        if status != "optimal":
            return LPSolution(status, float("nan"), np.zeros(0), message=result.message)
        return LPSolution(
            "optimal",
            float(result.fun) + lp.objective_constant,
            np.asarray(result.x, dtype=float),
            message=result.message,
        )

    def __repr__(self) -> str:
        return f"ScipyBackend(method={self.method!r})"
