"""The ``"scipy"`` backend: HiGHS via :func:`scipy.optimize.linprog`.

Constraint rows are assembled into sparse CSR matrices, so programs with the
``O(L)`` variables produced by large K-relations stay cheap to build.  For
the hot path, :meth:`ScipyBackend.solve_arrays` accepts prebuilt CSR/NumPy
arrays directly (see :class:`~repro.lp.compiled.CompiledProgram`) and skips
the per-solve assembly entirely.

This is the portable baseline of the backend registry: always available
wherever SciPy is, every solve a self-contained ``linprog`` call with no
persistent solver state (all capability flags false).  The ``"highs"``
backend (:class:`~repro.lp.highs_engine.HighsBackend`) layers persistent
models on top of the same knobs and is preferred automatically when
SciPy's private HiGHS bindings are importable.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from . import status
from .backends import SolverBackend, register
from .model import LinearProgram, LPSolution

__all__ = ["ScipyBackend"]


@register
class ScipyBackend(SolverBackend):
    """Solve :class:`LinearProgram` instances with HiGHS via linprog.

    Parameters
    ----------
    method:
        The :func:`scipy.optimize.linprog` method.  The default
        ``"adaptive"`` uses the dual simplex (``"highs"``) for small
        programs and the interior-point code (``"highs-ipm"``) for large
        ones: the φ-epigraph LPs of big K-relations are heavily degenerate,
        where simplex stalls (observed >10× slowdowns) while IPM stays
        stable.
    ipm_threshold:
        Variable count above which ``"adaptive"`` switches to IPM.
    max_iterations:
        Optional HiGHS iteration limit (``maxiter``).  When the solver
        stops on it, the returned status is ``"iteration_limit"`` (not a
        bare ``"error"``) and the HiGHS message is carried through, so
        callers can distinguish a truncated solve from solver failure.
    options:
        Extra :func:`scipy.optimize.linprog` options merged into every
        call (e.g. ``{"presolve": False}``); ``max_iterations`` wins over
        an explicit ``maxiter`` key here.
    """

    name = "scipy"
    aliases = ("linprog",)
    supports_persistent = False
    supports_multi_rhs = False
    supports_warm_start = False
    #: portable baseline — always available, never the measured winner
    preference = 10

    def __init__(
        self,
        method: str = "adaptive",
        ipm_threshold: int = 3000,
        max_iterations: Optional[int] = None,
        options: Optional[Dict] = None,
    ):
        self.method = method
        self.ipm_threshold = int(ipm_threshold)
        self.max_iterations = None if max_iterations is None else int(max_iterations)
        self.options = dict(options) if options else {}

    @property
    def cache_token(self):
        return (
            "lp-backend",
            self.name,
            self.method,
            self.ipm_threshold,
            self.max_iterations,
            tuple(sorted((key, repr(value)) for key, value in self.options.items())),
        )

    def fork_reset(self) -> None:
        """Fork-reset protocol hook (see :mod:`repro.parallel.pool`).

        Every solve here is a self-contained :func:`linprog` call with no
        per-process solver state, so a forked worker can keep using the
        inherited backend as-is — unlike persistent models, which must be
        re-instantiated per process.
        """

    def _resolve_method(self, program_size) -> str:
        """Pick the HiGHS code for a program (a variable count or an LP)."""
        num_variables = getattr(program_size, "num_variables", program_size)
        if self.method != "adaptive":
            return self.method
        if num_variables > self.ipm_threshold:
            return "highs-ipm"
        return "highs"

    def _solver_options(self) -> Optional[Dict]:
        options = dict(self.options)
        if self.max_iterations is not None:
            options["maxiter"] = self.max_iterations
        return options or None

    def solve_arrays(
        self,
        c: np.ndarray,
        a_ub,
        b_ub: Optional[np.ndarray],
        a_eq,
        b_eq: Optional[np.ndarray],
        bounds,
        objective_constant: float = 0.0,
    ) -> LPSolution:
        """Solve a program already assembled as arrays/CSR matrices.

        This is the zero-copy entry point used by
        :class:`~repro.lp.compiled.CompiledProgram`: nothing here touches
        Python-object constraint lists, so per-call overhead is just the
        :func:`scipy.optimize.linprog` invocation itself.
        """
        n = len(c)
        if n == 0:
            return LPSolution("optimal", float(objective_constant), np.zeros(0))
        result = linprog(
            c=c,
            A_ub=a_ub,
            b_ub=b_ub,
            A_eq=a_eq,
            b_eq=b_eq,
            bounds=bounds,
            method=self._resolve_method(n),
            options=self._solver_options(),
        )
        name = status.canonical(status.LINPROG_STATUS.get(result.status, status.ERROR))
        if name != status.OPTIMAL:
            return LPSolution(name, float("nan"), np.zeros(0), message=result.message)
        return LPSolution(
            "optimal",
            float(result.fun) + float(objective_constant),
            np.asarray(result.x, dtype=float),
            message=result.message,
        )

    def solve(self, lp: LinearProgram) -> LPSolution:
        """Solve the program; never raises on infeasible/unbounded (see status)."""
        n = lp.num_variables
        if n == 0:
            return LPSolution("optimal", lp.objective_constant, np.zeros(0))

        rows_ub: List[int] = []
        cols_ub: List[int] = []
        vals_ub: List[float] = []
        rhs_ub: List[float] = []
        rows_eq: List[int] = []
        cols_eq: List[int] = []
        vals_eq: List[float] = []
        rhs_eq: List[float] = []

        for constraint in lp.constraints:
            if constraint.sense == "==":
                row = len(rhs_eq)
                rhs_eq.append(constraint.rhs)
                for index, value in zip(constraint.indices, constraint.coefficients):
                    rows_eq.append(row)
                    cols_eq.append(index)
                    vals_eq.append(value)
            else:
                # normalize ">= rhs" to "-row <= -rhs"
                flip = -1.0 if constraint.sense == ">=" else 1.0
                row = len(rhs_ub)
                rhs_ub.append(flip * constraint.rhs)
                for index, value in zip(constraint.indices, constraint.coefficients):
                    rows_ub.append(row)
                    cols_ub.append(index)
                    vals_ub.append(flip * value)

        a_ub = (
            sparse.csr_matrix(
                (vals_ub, (rows_ub, cols_ub)), shape=(len(rhs_ub), n)
            )
            if rhs_ub
            else None
        )
        a_eq = (
            sparse.csr_matrix(
                (vals_eq, (rows_eq, cols_eq)), shape=(len(rhs_eq), n)
            )
            if rhs_eq
            else None
        )

        return self.solve_arrays(
            c=lp.objective_vector(),
            a_ub=a_ub,
            b_ub=np.asarray(rhs_ub) if rhs_ub else None,
            a_eq=a_eq,
            b_eq=np.asarray(rhs_eq) if rhs_eq else None,
            bounds=lp.bounds(),
            objective_constant=lp.objective_constant,
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(method={self.method!r})"
