"""Canonical solve-status names shared by every LP backend.

Each backend translates its solver's native termination codes into this
one set of spellings, so ``"iteration_limit"`` / ``"infeasible"`` /
``"optimal"`` cannot drift between backends — callers branch on these
strings (the Δ-probe race, the mechanism's ``_check`` guards, the tests)
and a misspelled status would silently take the error path.
"""

from __future__ import annotations

__all__ = [
    "OPTIMAL",
    "INFEASIBLE",
    "UNBOUNDED",
    "ITERATION_LIMIT",
    "ERROR",
    "CANONICAL_STATUSES",
    "LINPROG_STATUS",
    "canonical",
]

OPTIMAL = "optimal"
INFEASIBLE = "infeasible"
UNBOUNDED = "unbounded"
ITERATION_LIMIT = "iteration_limit"
ERROR = "error"

#: Every status an :class:`~repro.lp.model.LPSolution` may carry.
CANONICAL_STATUSES = (OPTIMAL, INFEASIBLE, UNBOUNDED, ITERATION_LIMIT, ERROR)

#: :func:`scipy.optimize.linprog` ``result.status`` codes → canonical names.
LINPROG_STATUS = {
    0: OPTIMAL,
    1: ITERATION_LIMIT,
    2: INFEASIBLE,
    3: UNBOUNDED,
    4: ERROR,
}


def canonical(name: str) -> str:
    """Validate a status spelling, returning it unchanged.

    Backends route their translations through this so a typo'd mapping
    fails loudly at translation time instead of surfacing as a mystery
    status deep inside a mechanism run.
    """
    if name not in CANONICAL_STATUSES:
        raise ValueError(
            f"{name!r} is not a canonical LP status; expected one of "
            f"{CANONICAL_STATUSES}"
        )
    return name
