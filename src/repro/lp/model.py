"""Declarative linear program builder.

A :class:`LinearProgram` collects variables (with box bounds), sparse
constraint rows, and a linear minimization objective, then hands the whole
program to a backend.  The builder is deliberately minimal — just enough
structure for the φ-epigraph encodings used by the efficient recursive
mechanism — but fully general for tests and ablations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import LPError

__all__ = ["LinearProgram", "Constraint", "LPSolution"]

_SENSES = ("<=", ">=", "==")


@dataclass(frozen=True)
class Constraint:
    """A sparse linear constraint ``sum(coeff * x[idx]) sense rhs``."""

    indices: Tuple[int, ...]
    coefficients: Tuple[float, ...]
    sense: str
    rhs: float

    def __post_init__(self):
        if self.sense not in _SENSES:
            raise LPError(
                f"constraint sense must be one of {_SENSES}, got {self.sense!r}"
            )
        if len(self.indices) != len(self.coefficients):
            raise LPError("indices and coefficients must have equal length")


@dataclass
class LPSolution:
    """Result of solving a linear program.

    Attributes
    ----------
    status:
        ``"optimal"``, ``"infeasible"``, ``"unbounded"``,
        ``"iteration_limit"`` (solver stopped on its iteration budget —
        see ``ScipyBackend(max_iterations=...)``), or ``"error"``.
    objective:
        Optimal objective value (including the objective constant), or
        ``nan`` when not optimal.
    x:
        Optimal variable values (empty array when not optimal).
    message:
        Backend-specific diagnostic text.
    """

    status: str
    objective: float
    x: np.ndarray
    message: str = ""

    @property
    def is_optimal(self) -> bool:
        return self.status == "optimal"


class LinearProgram:
    """A minimization LP under construction.

    Example
    -------
    >>> lp = LinearProgram()
    >>> x = lp.add_variable(lb=0.0, ub=1.0, name="x")
    >>> y = lp.add_variable(lb=0.0, ub=1.0, name="y")
    >>> lp.add_constraint({x: 1.0, y: 1.0}, ">=", 1.0)
    >>> lp.set_objective({x: 2.0, y: 3.0})
    >>> from repro.lp import DEFAULT_BACKEND
    >>> sol = DEFAULT_BACKEND.solve(lp)
    >>> round(sol.objective, 6)
    2.0
    """

    def __init__(self):
        self._lower: List[float] = []
        self._upper: List[Optional[float]] = []
        self._names: List[Optional[str]] = []
        self._constraints: List[Constraint] = []
        self._objective: Dict[int, float] = {}
        self._objective_constant: float = 0.0

    def clone(self) -> "LinearProgram":
        """A shallow structural copy sharing the (immutable) constraints.

        Used by callers that repeatedly solve the same base program with
        one extra row (e.g. the ``Σf = i`` slice of the H/G encodings):
        cloning costs one list copy instead of re-encoding.
        """
        other = LinearProgram()
        other._lower = list(self._lower)
        other._upper = list(self._upper)
        other._names = list(self._names)
        other._constraints = list(self._constraints)
        other._objective = dict(self._objective)
        other._objective_constant = self._objective_constant
        return other

    # -- variables ----------------------------------------------------------
    def add_variable(
        self,
        lb: float = 0.0,
        ub: Optional[float] = None,
        name: Optional[str] = None,
    ) -> int:
        """Add a variable with bounds ``lb <= x <= ub`` and return its index."""
        if ub is not None and ub < lb:
            raise LPError(f"upper bound {ub} below lower bound {lb}")
        self._lower.append(float(lb))
        self._upper.append(None if ub is None else float(ub))
        self._names.append(name)
        return len(self._lower) - 1

    def add_variables(
        self, count: int, lb: float = 0.0, ub: Optional[float] = None
    ) -> List[int]:
        """Add ``count`` identical variables; return their indices."""
        return [self.add_variable(lb=lb, ub=ub) for _ in range(count)]

    @property
    def num_variables(self) -> int:
        return len(self._lower)

    @property
    def num_constraints(self) -> int:
        return len(self._constraints)

    def bounds(self) -> List[Tuple[float, Optional[float]]]:
        """Per-variable ``(lb, ub)`` pairs (``None`` = unbounded above)."""
        return list(zip(self._lower, self._upper))

    def variable_name(self, index: int) -> Optional[str]:
        """The optional debug name attached at :meth:`add_variable`."""
        return self._names[index]

    # -- constraints ----------------------------------------------------------
    def add_constraint(
        self, coefficients: Dict[int, float], sense: str, rhs: float
    ) -> None:
        """Add ``sum(c_j * x_j) sense rhs`` where coefficients maps index->c."""
        for index in coefficients:
            if not 0 <= index < self.num_variables:
                raise LPError(f"constraint references unknown variable {index}")
        items = sorted(coefficients.items())
        self._constraints.append(
            Constraint(
                indices=tuple(index for index, _ in items),
                coefficients=tuple(float(value) for _, value in items),
                sense=sense,
                rhs=float(rhs),
            )
        )

    @property
    def constraints(self) -> Sequence[Constraint]:
        return tuple(self._constraints)

    # -- objective ------------------------------------------------------------
    def set_objective(
        self, coefficients: Dict[int, float], constant: float = 0.0
    ) -> None:
        """Set the minimization objective ``sum(c_j x_j) + constant``."""
        for index in coefficients:
            if not 0 <= index < self.num_variables:
                raise LPError(f"objective references unknown variable {index}")
        self._objective = {int(k): float(v) for k, v in coefficients.items()}
        self._objective_constant = float(constant)

    def objective_vector(self) -> np.ndarray:
        """The dense objective coefficient vector ``c``."""
        c = np.zeros(self.num_variables)
        for index, value in self._objective.items():
            c[index] = value
        return c

    @property
    def objective_constant(self) -> float:
        return self._objective_constant

    def __repr__(self) -> str:
        return (
            f"LinearProgram(num_variables={self.num_variables}, "
            f"num_constraints={self.num_constraints})"
        )
