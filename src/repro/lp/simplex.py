"""A self-contained dense two-phase primal simplex solver.

This backend exists so the whole mechanism can be audited end-to-end without
trusting an external solver, and so the test suite can cross-check HiGHS on
small programs.  It uses the classical tableau method with Bland's rule
(guaranteeing termination) and is intended for programs with at most a few
hundred variables — the benchmarks use :class:`~repro.lp.ScipyBackend`.

Standard-form conversion: every variable ``lb <= x <= ub`` is shifted to
``x' = x - lb >= 0`` (finite upper bounds become extra rows), and every
inequality gains a slack/surplus column; phase 1 drives artificials to zero.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..errors import LPError
from .model import LinearProgram, LPSolution

__all__ = ["SimplexBackend"]

_EPS = 1e-9


class SimplexBackend:
    """Dense two-phase primal simplex with Bland's anti-cycling rule."""

    def __init__(self, max_iterations: int = 100_000):
        self.max_iterations = max_iterations

    def solve(self, lp: LinearProgram) -> LPSolution:
        """Solve via two-phase simplex; status mirrors the SciPy backend."""
        n = lp.num_variables
        if n == 0:
            return LPSolution("optimal", lp.objective_constant, np.zeros(0))

        bounds = lp.bounds()
        lower = np.array([lb for lb, _ in bounds], dtype=float)

        # Rows: original constraints (rhs adjusted for the lb shift) plus one
        # "<=" row per finite upper bound.
        rows: List[Tuple[np.ndarray, str, float]] = []
        for constraint in lp.constraints:
            row = np.zeros(n)
            for index, value in zip(constraint.indices, constraint.coefficients):
                row[index] += value
            shift = float(row @ lower)
            rows.append((row, constraint.sense, constraint.rhs - shift))
        for index, (lb, ub) in enumerate(bounds):
            if ub is not None:
                row = np.zeros(n)
                row[index] = 1.0
                rows.append((row, "<=", ub - lb))

        c = lp.objective_vector()
        objective_shift = float(c @ lower)

        solution = self._solve_standard(rows, c)
        if solution is None:
            return LPSolution("infeasible", float("nan"), np.zeros(0))
        status, x_shifted, objective = solution
        if status == "unbounded":
            return LPSolution("unbounded", float("nan"), np.zeros(0))
        x = x_shifted + lower
        return LPSolution(
            "optimal",
            objective + objective_shift + lp.objective_constant,
            x,
        )

    # -- tableau machinery ----------------------------------------------------
    def _solve_standard(
        self,
        rows: List[Tuple[np.ndarray, str, float]],
        c: np.ndarray,
    ) -> Optional[Tuple[str, np.ndarray, float]]:
        """Solve min c'x s.t. rows, x >= 0.  None means infeasible."""
        n = len(c)
        m = len(rows)
        if m == 0:
            # Feasible iff objective bounded: any negative cost is unbounded.
            if np.any(c < -_EPS):
                return ("unbounded", np.zeros(n), float("nan"))
            return ("optimal", np.zeros(n), 0.0)

        # Count extra columns: one slack/surplus per inequality, artificials
        # where needed (">=" rows, "==" rows, and "<=" rows with negative rhs
        # are first sign-normalized so rhs >= 0).
        norm_rows = []
        for row, sense, rhs in rows:
            row = row.copy()
            if rhs < 0:
                row = -row
                rhs = -rhs
                sense = {"<=": ">=", ">=": "<=", "==": "=="}[sense]
            norm_rows.append((row, sense, rhs))

        num_slack = sum(1 for _, sense, _ in norm_rows if sense != "==")
        a = np.zeros((m, n + num_slack))
        b = np.zeros(m)
        needs_artificial = []
        slack_col = n
        for i, (row, sense, rhs) in enumerate(norm_rows):
            a[i, :n] = row
            b[i] = rhs
            if sense == "<=":
                a[i, slack_col] = 1.0
                needs_artificial.append(False)
                slack_col += 1
            elif sense == ">=":
                a[i, slack_col] = -1.0
                needs_artificial.append(True)
                slack_col += 1
            else:
                needs_artificial.append(True)

        artificial_cols = []
        extra = sum(needs_artificial)
        if extra:
            art = np.zeros((m, extra))
            j = 0
            for i, needed in enumerate(needs_artificial):
                if needed:
                    art[i, j] = 1.0
                    artificial_cols.append(n + num_slack + j)
                    j += 1
            a = np.hstack([a, art])

        total = a.shape[1]
        basis = [-1] * m
        # initial basis: slack for "<=" rows, artificial otherwise
        slack_col = n
        art_iter = iter(artificial_cols)
        for i, (row, sense, rhs) in enumerate(norm_rows):
            if sense == "<=":
                basis[i] = slack_col
                slack_col += 1
            else:
                if sense == ">=":
                    slack_col += 1
                basis[i] = next(art_iter)

        tableau = np.hstack([a, b.reshape(-1, 1)])

        if artificial_cols:
            phase1_cost = np.zeros(total)
            phase1_cost[artificial_cols] = 1.0
            status = self._run_simplex(tableau, basis, phase1_cost)
            if status == "unbounded":  # cannot happen in phase 1
                raise LPError("phase 1 unbounded — internal error")
            value = self._objective_value(tableau, basis, phase1_cost)
            if value > 1e-7:
                return None  # infeasible
            self._drive_out_artificials(tableau, basis, set(artificial_cols))

        full_cost = np.zeros(total)
        full_cost[:n] = c
        blocked = set(artificial_cols)
        status = self._run_simplex(tableau, basis, full_cost, blocked_columns=blocked)
        x = np.zeros(total)
        for i, col in enumerate(basis):
            if col >= 0:
                x[col] = tableau[i, -1]
        if status == "unbounded":
            return ("unbounded", x[:n], float("nan"))
        return ("optimal", x[:n], float(full_cost @ x))

    def _objective_value(self, tableau, basis, cost) -> float:
        total = tableau.shape[1] - 1
        x = np.zeros(total)
        for i, col in enumerate(basis):
            if col >= 0:
                x[col] = tableau[i, -1]
        return float(cost @ x)

    def _run_simplex(
        self,
        tableau: np.ndarray,
        basis: List[int],
        cost: np.ndarray,
        blocked_columns=frozenset(),
    ) -> str:
        m, width = tableau.shape
        total = width - 1
        for _ in range(self.max_iterations):
            # reduced costs: z_j - c_j with z from basic costs
            cb = cost[basis]
            reduced = cost.copy()
            reduced -= cb @ tableau[:, :total]
            entering = -1
            for j in range(total):  # Bland: smallest index with negative cost
                if j in blocked_columns:
                    continue
                if reduced[j] < -_EPS:
                    entering = j
                    break
            if entering < 0:
                return "optimal"
            # ratio test (Bland ties: smallest basis index)
            best_ratio = None
            leaving = -1
            for i in range(m):
                coeff = tableau[i, entering]
                if coeff > _EPS:
                    ratio = tableau[i, -1] / coeff
                    if (
                        best_ratio is None
                        or ratio < best_ratio - _EPS
                        or (
                            abs(ratio - best_ratio) <= _EPS
                            and basis[i] < basis[leaving]
                        )
                    ):
                        best_ratio = ratio
                        leaving = i
            if leaving < 0:
                return "unbounded"
            self._pivot(tableau, leaving, entering)
            basis[leaving] = entering
        raise LPError("simplex iteration limit exceeded")

    @staticmethod
    def _pivot(tableau: np.ndarray, row: int, col: int) -> None:
        tableau[row] /= tableau[row, col]
        for i in range(tableau.shape[0]):
            if i != row and abs(tableau[i, col]) > _EPS:
                tableau[i] -= tableau[i, col] * tableau[row]

    def _drive_out_artificials(self, tableau, basis, artificial_cols) -> None:
        """Pivot basic artificials out of the basis where possible."""
        m, width = tableau.shape
        total = width - 1
        for i in range(m):
            if basis[i] in artificial_cols:
                pivot_col = -1
                for j in range(total):
                    if j not in artificial_cols and abs(tableau[i, j]) > _EPS:
                        pivot_col = j
                        break
                if pivot_col >= 0:
                    self._pivot(tableau, i, pivot_col)
                    basis[i] = pivot_col
                # else: redundant row with zero rhs; leave the artificial at 0.

    def __repr__(self) -> str:
        return f"SimplexBackend(max_iterations={self.max_iterations})"
