"""Process-pool execution layer: shared compiled state, two ways.

Three tiers of parallelism build on the same principle — pay the
expensive one-time compilation once and share the compiled arrays with
every worker, re-instantiating per-process solver state (persistent
HiGHS models) lazily in each worker:

1. batch overlay solves
   (:meth:`~repro.lp.compiled.CompiledProgram.solve_many`);
2. the concurrent Δ-probe race (:func:`~repro.parallel.race.first_decided`
   underneath :meth:`~repro.lp.compiled.CompiledProgram.solve_g_decide`);
3. experiment sharding
   (:class:`~repro.experiments.harness.ParallelHarness`).

Two sharing schemes implement it.  *Fork-after-compile*
(:class:`~repro.parallel.pool.WorkerPool`) forks workers after the
arrays exist so they inherit them copy-on-write — free, but the fork
must happen after compilation in the compiling process.  *Shared-memory
attach* (:mod:`repro.parallel.shm` + :class:`~repro.parallel.pool
.SpawnWorkerPool`) exports the arrays into named refcounted segments
that **any** process attaches read-only by name — no ordering
constraint, same physical pages.  ``$REPRO_START_METHOD`` selects the
scheme (default: fork where available).

``workers=1`` (or a platform with no start method at all) takes an
in-process fallback with byte-identical results; the worker count
resolves as argument > ``$REPRO_WORKERS`` > ``os.cpu_count()``.
"""

from .pool import (
    SpawnWorkerPool,
    WorkerPool,
    fork_available,
    map_tasks,
    register_fork_reset,
    resolve_start_method,
    resolve_workers,
    run_fork_resets,
    spawn_available,
)
from .race import StrandError, first_decided
from .shm import (
    SegmentRegistry,
    attach_array,
    export_array,
    registry,
    release_spec,
    shm_available,
)

__all__ = [
    "WorkerPool",
    "SpawnWorkerPool",
    "fork_available",
    "spawn_available",
    "map_tasks",
    "register_fork_reset",
    "resolve_start_method",
    "resolve_workers",
    "run_fork_resets",
    "StrandError",
    "first_decided",
    "SegmentRegistry",
    "registry",
    "export_array",
    "attach_array",
    "release_spec",
    "shm_available",
]
