"""Process-pool execution layer: fork-after-compile parallelism.

Three tiers of parallelism build on the same primitive — fork workers
*after* the expensive one-time compilation so they inherit the compiled
arrays copy-on-write, and re-instantiate per-process solver state
(persistent HiGHS models) lazily in each worker:

1. batch overlay solves
   (:meth:`~repro.lp.compiled.CompiledProgram.solve_many`);
2. the concurrent Δ-probe race (:func:`~repro.parallel.race.first_decided`
   underneath :meth:`~repro.lp.compiled.CompiledProgram.solve_g_decide`);
3. experiment sharding
   (:class:`~repro.experiments.harness.ParallelHarness`).

``workers=1`` (or a platform without ``fork``) takes an in-process
fallback with byte-identical results; the worker count resolves as
argument > ``$REPRO_WORKERS`` > ``os.cpu_count()``.
"""

from .pool import (
    WorkerPool,
    fork_available,
    map_tasks,
    register_fork_reset,
    resolve_workers,
    run_fork_resets,
)
from .race import StrandError, first_decided

__all__ = [
    "WorkerPool",
    "fork_available",
    "map_tasks",
    "register_fork_reset",
    "resolve_workers",
    "run_fork_resets",
    "StrandError",
    "first_decided",
]
