"""Named shared-memory segments: compiled blocks any process can attach.

The fork-after-compile scheme (:mod:`repro.parallel.pool`) shares the
compiled CSR blocks with workers through copy-on-write pages, which is
free but imposes an *ordering constraint*: the fork must happen after
compilation, in the same process, and can never be repeated for a
process that already exists.  This module removes that constraint by
promoting the arrays into named POSIX shared-memory segments
(:class:`multiprocessing.shared_memory.SharedMemory`): the owner exports
each block once, and **any** process — a spawn-started worker, a
sibling service process, a process started before compilation — attaches
read-only by segment name and maps the same physical pages.

Lifecycle is the hard part, so it is centralised in one process-wide
refcounted :class:`SegmentRegistry`:

* the *owner* creates segments (``create``) and is responsible for the
  final ``unlink`` — segments it still owns are unlinked at interpreter
  exit via ``atexit``, so a crashed benchmark does not leak ``/dev/shm``
  entries;
* *attachers* map by name (``attach``); repeated attaches of the same
  name share one mapping and bump a refcount, and :meth:`~SegmentRegistry
  .release` unmaps at zero (owners additionally unlink at zero);
* attached segments bypass the stdlib ``resource_tracker`` — the
  tracker assumes every process that opens a segment owns it and would
  unlink it when the *attacher* exits, destroying the owner's data
  mid-flight (bpo-38119); ownership here is explicit instead.

:func:`export_array` / :func:`attach_array` are the NumPy-facing pair:
export copies an array into a fresh segment and returns a JSON-able spec
``{"segment", "shape", "dtype"}``; attach maps the spec back into a
**read-only** ndarray view (``writeable=False`` — many readers, no
writer is the whole contract).  :meth:`repro.lp.compiled.CompiledProgram
.export_shared` builds on these to ship whole compiled programs.
"""

from __future__ import annotations

import atexit
import threading
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..obs import metrics as obs_metrics

__all__ = [
    "SegmentRegistry",
    "registry",
    "export_array",
    "attach_array",
    "release_spec",
    "shm_available",
]


def shm_available() -> bool:
    """Whether named shared-memory segments work on this platform."""
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover - all supported platforms have it
        return False
    return True


def _attach_untracked(name: str):
    """Open the named segment without resource-tracker registration.

    The stdlib tracker unlinks every segment a process ever opened when
    that process exits — correct for owners, catastrophic for read-only
    attachers (the owner's segment disappears underneath it, bpo-38119;
    and with many attachers the shared tracker cache makes even
    ``unregister`` race noisily).  Ownership is explicit in
    :class:`SegmentRegistry`, so attachers never register: Python ≥ 3.13
    exposes ``track=False`` for exactly this; earlier versions get a
    momentary register shim (callers hold the registry lock).
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13
        pass
    from multiprocessing import resource_tracker

    original = resource_tracker.register

    def _skip_shared_memory(resource_name, rtype):
        if rtype != "shared_memory":  # pragma: no cover - nothing else here
            original(resource_name, rtype)

    resource_tracker.register = _skip_shared_memory
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


class SegmentRegistry:
    """Process-wide refcounted registry of named shared-memory segments.

    One mapping per segment name per process, however many attachers
    there are; ``release`` drops a reference and unmaps at zero.  The
    creating process *owns* its segments: they are unlinked (removed
    from ``/dev/shm``) when released to zero or at :meth:`shutdown`,
    whichever comes first.  Attach-only processes never unlink.
    """

    def __init__(self):
        self._lock = threading.RLock()
        #: name -> [SharedMemory, refcount, owned]
        self._segments: Dict[str, list] = {}

    def _track(self) -> None:
        """Mirror the mapped-segment count into the metrics registry."""
        obs_metrics().gauge("repro_shm_segments").set(len(self._segments))

    # -- creation / attachment -----------------------------------------------
    def create(self, nbytes: int):
        """Create (and own) a new segment of at least ``nbytes`` bytes."""
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(create=True, size=max(1, int(nbytes)))
        with self._lock:
            self._segments[shm.name] = [shm, 1, True]
            self._track()
        return shm

    def attach(self, name: str):
        """Map the named segment (refcounted; shared within the process)."""
        with self._lock:
            entry = self._segments.get(name)
            if entry is not None:
                entry[1] += 1
                return entry[0]
            shm = _attach_untracked(name)
            self._segments[name] = [shm, 1, False]
            self._track()
            return shm

    # -- release -------------------------------------------------------------
    def release(self, name: str) -> None:
        """Drop one reference; unmap (and unlink, if owned) at zero."""
        with self._lock:
            entry = self._segments.get(name)
            if entry is None:
                return
            entry[1] -= 1
            if entry[1] > 0:
                return
            del self._segments[name]
            self._track()
            self._dispose(entry)

    def shutdown(self) -> None:
        """Unmap every segment and unlink every owned one (atexit hook)."""
        with self._lock:
            entries = list(self._segments.values())
            self._segments.clear()
            self._track()
        for entry in entries:
            self._dispose(entry)

    @staticmethod
    def _dispose(entry) -> None:
        shm, _, owned = entry
        try:
            shm.close()
        except BufferError:
            # An ndarray view still points into the mapping; the memory
            # stays mapped until that view dies, but the name can (and
            # must) still be removed below.
            pass
        if owned:
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    # -- introspection -------------------------------------------------------
    def refcount(self, name: str) -> int:
        """Current reference count of ``name`` in this process (0 if unknown)."""
        with self._lock:
            entry = self._segments.get(name)
            return 0 if entry is None else entry[1]

    def owned(self) -> List[str]:
        """Names of the segments this process created and must unlink."""
        with self._lock:
            return sorted(name for name, entry in self._segments.items() if entry[2])

    def __len__(self) -> int:
        with self._lock:
            return len(self._segments)


#: The process-wide registry (one per process, attachers included).
_REGISTRY: Optional[SegmentRegistry] = None
_REGISTRY_LOCK = threading.Lock()


def registry() -> SegmentRegistry:
    """The process-wide :class:`SegmentRegistry` (created on first use,
    drained by ``atexit`` so owned segments never outlive the process)."""
    global _REGISTRY
    with _REGISTRY_LOCK:
        if _REGISTRY is None:
            _REGISTRY = SegmentRegistry()
            atexit.register(_REGISTRY.shutdown)
        return _REGISTRY


# -- NumPy-facing helpers ----------------------------------------------------
def export_array(array: np.ndarray) -> Dict:
    """Copy ``array`` into a fresh owned segment; returns its wire spec.

    The spec — ``{"segment": name, "shape": [...], "dtype": "..."}`` —
    is JSON-able, so it can ride protocol frames or pickle into spawn
    workers.  The caller (or :func:`release_spec`) releases the segment.
    """
    array = np.ascontiguousarray(array)
    shm = registry().create(array.nbytes)
    view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
    view[...] = array
    del view  # drop the writable view so close() is not pinned by it
    return {
        "segment": shm.name,
        "shape": list(array.shape),
        "dtype": str(array.dtype),
    }


def attach_array(spec: Dict) -> np.ndarray:
    """Map a spec back into a **read-only** ndarray over the segment.

    Many processes may hold views of the same segment concurrently; the
    writeable flag is cleared so an accidental in-place mutation raises
    instead of corrupting every reader at once.
    """
    shm = registry().attach(spec["segment"])
    view = np.ndarray(
        tuple(spec["shape"]), dtype=np.dtype(spec["dtype"]), buffer=shm.buf
    )
    view.flags.writeable = False
    return view


def release_spec(spec) -> None:
    """Release every ``{"segment": ...}`` reference reachable in ``spec``.

    Walks nested dicts/lists (the shape :meth:`CompiledProgram.
    export_shared` produces), so one call balances one export or one
    attach of a whole compiled program.
    """
    for name in _segment_names(spec):
        registry().release(name)


def _segment_names(spec) -> Iterable[str]:
    if isinstance(spec, dict):
        name = spec.get("segment")
        if isinstance(name, str):
            yield name
        for value in spec.values():
            yield from _segment_names(value)
    elif isinstance(spec, (list, tuple)):
        for value in spec:
            yield from _segment_names(value)
