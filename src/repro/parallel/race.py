"""First-decided-wins races between forked strands.

The Δ-search predicate ``G_i ≤ τ`` has two exact formulations — a pure
feasibility probe and the exact min-max solve — and which one is cheap on
a given relation is not predictable from its size.  The serial fallback
interleaves them under doubling iteration budgets inside one process
(:meth:`~repro.lp.compiled.CompiledProgram.solve_g_decide`); with a
second core available it is strictly better to run each strand to
completion in its *own* forked process and keep whichever answers first,
killing the loser outright.  Total latency is then the **minimum** of the
two strands instead of (up to) twice the cheaper one, and neither strand
pays resume/budget bookkeeping.

Strand callables are inherited through the fork — they may close over
compiled programs and other unpicklable state.  Each child runs
:func:`~repro.parallel.pool.run_fork_resets` first, so persistent HiGHS
models are re-instantiated per process instead of mutating copy-on-write
pages of the parent's solver.
"""

from __future__ import annotations

import multiprocessing
import time
from multiprocessing.connection import wait as _connection_wait
from typing import Callable, List, Sequence, Tuple

from .pool import run_fork_resets

__all__ = ["StrandError", "first_decided"]


class StrandError(RuntimeError):
    """Every strand of a race failed; carries the per-strand messages."""


def _strand_main(connection, fn: Callable) -> None:
    """Child side: run the strand to completion and ship the result."""
    run_fork_resets()
    try:
        connection.send(("ok", fn()))
    except BaseException as exc:  # report, never hang the parent
        connection.send(("error", f"{type(exc).__name__}: {exc}"))
    finally:
        connection.close()


def first_decided(strands: Sequence[Tuple[str, Callable]], timeout=None):
    """Race named strands in forked processes; first success wins.

    Parameters
    ----------
    strands:
        ``(name, fn)`` pairs; each ``fn()`` runs to completion in its own
        forked process.  Results must be picklable (strand state itself
        is inherited, not pickled).
    timeout:
        Optional overall timeout in seconds; ``None`` waits forever.

    Returns
    -------
    (name, result)
        Of the first strand whose ``fn()`` returned.  Losing strands are
        terminated immediately.

    Raises
    ------
    StrandError
        When every strand raised or died (including on timeout).
    """
    context = multiprocessing.get_context("fork")
    processes = []
    readers = {}
    try:
        for name, fn in strands:
            reader, writer = context.Pipe(duplex=False)
            process = context.Process(
                target=_strand_main, args=(writer, fn), daemon=True
            )
            process.start()
            writer.close()  # child holds the only write end now
            processes.append(process)
            readers[reader] = (name, process)

        deadline = None if timeout is None else time.monotonic() + timeout
        failures: List[str] = []
        while readers:
            handles = list(readers) + [p.sentinel for _, p in readers.values()]
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            ready = _connection_wait(handles, remaining)
            if not ready:
                failures.append(f"timed out after {timeout}s")
                break
            for reader in [r for r in readers if r in ready]:
                name, process = readers[reader]
                try:
                    status, value = reader.recv()
                except EOFError:
                    status, value = "error", "strand died without reporting"
                if status == "ok":
                    return name, value
                failures.append(f"{name}: {value}")
                del readers[reader]
            # a sentinel fired without its pipe becoming readable: the
            # strand crashed hard (e.g. was killed) — drop it
            for reader in [r for r in readers if not readers[r][1].is_alive()]:
                if reader.poll():
                    continue  # result raced in; picked up next iteration
                name, _ = readers[reader]
                failures.append(f"{name}: strand process died")
                del readers[reader]
        raise StrandError("every strand of the race failed: " + "; ".join(failures))
    finally:
        for process in processes:
            if process.is_alive():
                process.terminate()
        for process in processes:
            process.join()
