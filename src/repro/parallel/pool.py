"""Fork-after-compile worker pools.

The expensive part of every mechanism evaluation is the one-time
compilation of an :class:`~repro.relax.encode.EncodedRelation` into a
:class:`~repro.lp.compiled.CompiledProgram` (CSR blocks, bounds, G rows).
Forking worker processes *after* that compilation lets every worker
inherit the base arrays through copy-on-write for free, so the marginal
cost of answering one more overlay solve on an idle core is just the
solve itself.  That is the same amortize-preprocessing-across-many-
evaluations principle that drives compiled query answering under updates.

Two things do **not** survive the fork:

* persistent solver models (any :class:`~repro.lp.backends.PersistentModel`
  — HiGHS, Gurobi, or a third-party backend's) hold native solver state
  that must not be mutated concurrently from several processes sharing
  copy-on-write pages of bookkeeping — each worker lazily re-instantiates
  its own models from the (shared) arrays via the backend's
  ``build_persistent`` hook;
* in-flight NumPy generators — parallel trial running therefore derives
  one :class:`numpy.random.SeedSequence` child per task up front
  (:func:`repro.rng.spawn_seed_sequences`), which keeps released answers
  byte-identical between serial and parallel execution at a fixed seed.

The first point is enforced through a process-wide registry: objects with
per-process solver state call :func:`register_fork_reset` at construction
time, and every worker runs :func:`run_fork_resets` immediately after the
fork, before touching any task.

Since PR 7 the fork *ordering constraint* — workers must be forked
after compilation, from the compiling process — is optional: payloads
that implement the ``__shared_spawn__`` protocol (notably
:class:`~repro.lp.compiled.CompiledProgram` via
:mod:`repro.parallel.shm`) export their base arrays into named
shared-memory segments, and :class:`SpawnWorkerPool` workers started
with the ``spawn`` method attach those segments read-only by name and
rebuild the payload in place.  Any process can join at any time; the
physical pages are still shared, exactly as under copy-on-write.
Select the method explicitly with ``$REPRO_START_METHOD`` (``fork`` /
``spawn``); the default remains ``fork`` where available.

Platforms without the ``fork`` start method (Windows, some embedded
interpreters) and ``workers=1`` runs take a clean in-process fallback:
the same task functions run sequentially in the parent, with identical
results.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import weakref
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..obs import metrics as obs_metrics
from ..obs import tracer as obs_tracer

__all__ = [
    "fork_available",
    "spawn_available",
    "resolve_workers",
    "resolve_start_method",
    "register_fork_reset",
    "run_fork_resets",
    "map_tasks",
    "WorkerPool",
    "SpawnWorkerPool",
]

#: Environment variable consulted when ``workers`` is not given explicitly.
WORKERS_ENV = "REPRO_WORKERS"

#: Environment variable selecting the worker start method (fork/spawn).
START_METHOD_ENV = "REPRO_START_METHOD"

#: Objects whose per-process solver state must be dropped in forked
#: children (weak references — registration must not leak programs).
_FORK_RESETTABLE: "weakref.WeakSet" = weakref.WeakSet()

#: Payloads of live pools, inherited by forked workers through fork
#: (never pickled); keyed so concurrent pools do not clash.
_PAYLOADS: Dict[int, Tuple[Callable, object]] = {}
_PAYLOAD_KEYS = itertools.count(1)

#: Set in each worker by the pool initializer: the key of the payload
#: this worker serves.
_ACTIVE_KEY: Optional[int] = None


def fork_available() -> bool:
    """Whether copy-on-write worker pools can be used on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def spawn_available() -> bool:
    """Whether spawn-started (shared-memory-attaching) pools can be used."""
    return "spawn" in multiprocessing.get_all_start_methods()


def resolve_start_method() -> str:
    """The worker start method pools should use: ``fork`` or ``spawn``.

    ``$REPRO_START_METHOD`` wins when set (and must name an available
    method); otherwise ``fork`` where the platform has it — copy-on-write
    inheritance needs no segment bookkeeping — falling back to ``spawn``.
    Note the capability asymmetry: fork pools carry *any* payload, spawn
    pools only payloads implementing ``__shared_spawn__`` (everything
    else degrades to the in-process serial fallback).
    """
    env = os.environ.get(START_METHOD_ENV)
    if env is not None and env.strip():
        method = env.strip().lower()
        if method not in ("fork", "spawn"):
            raise ValueError(
                f"${START_METHOD_ENV} must be 'fork' or 'spawn', got {env!r}"
            )
        if method not in multiprocessing.get_all_start_methods():
            raise ValueError(
                f"${START_METHOD_ENV}={method} is not available on this " "platform"
            )
        return method
    if fork_available():
        return "fork"
    return "spawn" if spawn_available() else "fork"


def _available_cpus() -> int:
    """CPUs actually schedulable for this process (cgroup/affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve a worker count: argument > ``$REPRO_WORKERS`` > CPU count.

    An explicit argument (or ``$REPRO_WORKERS`` value) must be an integer
    ``>= 1`` — anything else raises :class:`ValueError` with the uniform
    :func:`repro.validation.validate_workers` message.  Returns 1 when the
    platform cannot fork (the in-process fallback), so callers can branch
    on ``workers > 1``.
    """
    from ..validation import validate_workers

    workers = validate_workers(workers)
    if workers is None:
        env = os.environ.get(WORKERS_ENV)
        if env is not None and env.strip():
            try:
                workers = int(env)
            except ValueError:
                raise ValueError(
                    f"${WORKERS_ENV} must be an integer, got {env!r}"
                ) from None
            workers = validate_workers(workers, name=f"${WORKERS_ENV}")
        else:
            workers = _available_cpus()
    if workers > 1 and not fork_available() and not spawn_available():
        return 1  # no usable multiprocess start method at all
    if workers > 1 and multiprocessing.current_process().daemon:
        # Pool workers are daemonic and may not fork children of their
        # own (e.g. a mechanism built with workers>=2 running inside a
        # ParallelHarness shard) — demote to the in-process fallback
        # instead of crashing on "daemonic processes are not allowed to
        # have children".
        return 1
    return workers


def register_fork_reset(obj) -> None:
    """Register ``obj.fork_reset()`` to run in every forked worker.

    ``obj`` is held weakly; objects with per-process solver state (for
    example :class:`~repro.lp.compiled.CompiledProgram`) register
    themselves at construction time.
    """
    _FORK_RESETTABLE.add(obj)


def run_fork_resets() -> None:
    """Drop per-process solver state after a fork (child side)."""
    for obj in list(_FORK_RESETTABLE):
        obj.fork_reset()


def _worker_init(key: int) -> None:
    """Pool initializer: runs in each worker right after the fork."""
    global _ACTIVE_KEY
    _ACTIVE_KEY = key
    run_fork_resets()
    # Telemetry state inherited through the fork belongs to the parent:
    # re-baseline the metrics registry (so this worker only ever ships
    # increments it caused) and switch the tracer to buffer mode (the
    # parent's sink stream must not be written from two processes).
    obs_metrics().rebaseline()
    obs_tracer().worker_mode()


class _ObsTask:
    """A task wrapped with the submitter's span context."""

    def __init__(self, context, task):
        self.context = context
        self.task = task


class _ObsEnvelope:
    """A worker result plus the telemetry it produced.

    Crosses the result pipe in place of the bare result; the pool
    unwraps it parent-side (merging metrics deltas and buffered spans
    into the parent's registry/tracer) before any caller sees it.
    """

    def __init__(self, result, metrics_delta, spans):
        self.result = result
        self.metrics_delta = metrics_delta
        self.spans = spans


def _wrap_task(task):
    """Attach the current span context (when tracing is active)."""
    context = obs_tracer().current_context()
    return task if context is None else _ObsTask(context, task)


def _absorb(envelope):
    """Merge one envelope's telemetry; returns the bare result."""
    obs_metrics().merge(envelope.metrics_delta)
    if envelope.spans:
        obs_tracer().absorb(envelope.spans)
    return envelope.result


def _run_enveloped(fn, payload, task):
    """Worker-side execution: activate context, run, pack telemetry."""
    tracing = obs_tracer()
    if isinstance(task, _ObsTask):
        token = tracing.activate(task.context)
        try:
            result = fn(payload, task.task)
        finally:
            tracing.deactivate(token)
    else:
        result = fn(payload, task)
    return _ObsEnvelope(result, obs_metrics().drain_delta(), tracing.drain_buffered())


def _invoke(task):
    """Run one task against the worker's inherited payload."""
    fn, payload = _PAYLOADS[_ACTIVE_KEY]
    return _run_enveloped(fn, payload, task)


class _PoolResult:
    """Handle to one submitted task (``ready()`` / ``get(timeout)``).

    Wraps the pool's ``AsyncResult`` so ``get()`` hands back the bare
    worker result: the telemetry envelope was already merged by the
    completion callback, which runs before the result becomes ready.
    """

    __slots__ = ("_async",)

    def __init__(self, async_result):
        self._async = async_result

    def ready(self) -> bool:
        return self._async.ready()

    def get(self, timeout: Optional[float] = None):
        value = self._async.get(timeout)
        return value.result if isinstance(value, _ObsEnvelope) else value


class WorkerPool:
    """A pool of processes forked after the payload was built.

    Parameters
    ----------
    workers:
        Number of worker processes (must be ≥ 2; use :func:`map_tasks`
        for the transparent serial fallback).
    fn:
        ``fn(payload, task) -> result``.  Inherited by the workers via
        fork, so closures over unpicklable state (compiled programs,
        persistent solver handles, mechanism objects) are fine; only
        tasks and results cross process boundaries and must pickle.
    payload:
        Arbitrary object handed to every ``fn`` call, inherited
        copy-on-write — fork happens at construction time, so build (and
        warm) the payload *before* creating the pool.
    """

    def __init__(self, workers: int, fn: Callable, payload=None):
        if workers < 2:
            raise ValueError(f"WorkerPool needs >= 2 workers, got {workers}")
        if not fork_available():
            raise RuntimeError("WorkerPool requires the 'fork' start method")
        self._key = next(_PAYLOAD_KEYS)
        _PAYLOADS[self._key] = (fn, payload)
        #: Weak refs to every AsyncResult handed out by :meth:`submit`
        #: that may still be in flight — close() fails them instead of
        #: letting an abandoned ``.get()`` block forever.
        self._pending: List["weakref.ref"] = []
        context = multiprocessing.get_context("fork")
        self._pool = context.Pool(
            processes=workers,
            initializer=_worker_init,
            initargs=(
                self._key,
            ),
        )

    def map(self, tasks: Sequence) -> List:
        """Run every task; results come back in task order."""
        tasks = [_wrap_task(task) for task in tasks]
        obs_metrics().counter("repro_pool_tasks_total", mode="fork").inc(len(tasks))
        return [_absorb(envelope) for envelope in self._pool.map(_invoke, tasks)]

    def submit(
        self,
        task,
        callback: Optional[Callable] = None,
        error_callback: Optional[Callable] = None,
    ):
        """Schedule one task asynchronously; returns a result handle.

        The session layer's future-based fan-out: the returned handle's
        ``get()`` blocks for (and re-raises errors from) the worker-side
        run; ``ready()`` polls it.  ``callback`` / ``error_callback``
        fire on the pool's result-handler thread when the task completes
        — ``callback`` receives the bare result (the telemetry envelope
        is unwrapped and merged first).
        """
        if self._pool is None:
            raise RuntimeError("WorkerPool is closed")
        registry = obs_metrics()
        registry.counter("repro_pool_tasks_total", mode="fork").inc()
        inflight_gauge = registry.gauge("repro_pool_inflight")
        inflight_gauge.inc()

        def _on_envelope(envelope) -> None:
            inflight_gauge.dec()
            value = _absorb(envelope)
            if callback is not None:
                callback(value)

        def _on_failure(error: BaseException) -> None:
            inflight_gauge.dec()
            if error_callback is not None:
                error_callback(error)

        result = self._pool.apply_async(
            _invoke,
            (
                _wrap_task(task),
            ),
            callback=_on_envelope,
            error_callback=_on_failure,
        )
        still_pending = []
        for ref in self._pending:
            existing = ref()  # bind once: the target may be GC'd anytime
            if existing is not None and not existing.ready():
                still_pending.append(ref)
        still_pending.append(weakref.ref(result))
        self._pending = still_pending
        return _PoolResult(result)

    def inflight(self) -> int:
        """Number of submitted tasks whose results are not yet ready.

        Only counts results something still holds a reference to — an
        abandoned (garbage-collected) result cannot be waited on, so it
        does not block callers that need a drained pool (e.g.
        ``PrivateSession.apply_update``).
        """
        count = 0
        for ref in self._pending:
            result = ref()
            if result is not None and not result.ready():
                count += 1
        return count

    def close(self) -> None:
        """Terminate the workers and release the payload slot.

        Safe to call with submissions still in flight: the pool is
        terminated without waiting for them, and every unconsumed
        ``AsyncResult`` is failed with a
        :class:`~repro.errors.WorkerPoolError` — an abandoned
        ``result.get()`` raises promptly instead of deadlocking on a
        result that can no longer arrive.
        """
        if self._pool is not None:
            pool, self._pool = self._pool, None
            pool.terminate()
            pool.join()
            self._fail_pending()
        _PAYLOADS.pop(self._key, None)

    def _fail_pending(self) -> None:
        """Resolve abandoned in-flight submissions with a clear error."""
        from ..errors import WorkerPoolError

        error = WorkerPoolError(
            "worker pool was shut down before this task completed; "
            "its result was abandoned"
        )
        for ref in self._pending:
            result = ref()
            if result is None or result.ready():
                continue
            try:
                # AsyncResult._set is the only way to resolve a result the
                # terminated pool will never deliver; it marks the result
                # ready and fires the error callback (stable across
                # CPython 3.8-3.13).
                result._set(0, (False, error))
            except Exception:  # pragma: no cover - belt and braces
                pass
        self._pending = []

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- spawn-started pools over shared-memory payloads -------------------------

#: Set in each spawn worker by the pool initializer: (fn, rebuilt payload).
_SPAWN_STATE: Optional[Tuple[Callable, object]] = None


def _spawn_worker_init(fn: Callable, rebuild: Callable, spec) -> None:
    """Spawn-pool initializer: rebuild the payload from its shared spec."""
    global _SPAWN_STATE
    _SPAWN_STATE = (fn, rebuild(spec))


def _spawn_invoke(task):
    """Run one task against the worker's rebuilt payload."""
    fn, payload = _SPAWN_STATE
    return _run_enveloped(fn, payload, task)


class SpawnWorkerPool:
    """A pool whose workers *attach* the payload instead of inheriting it.

    The shared-memory counterpart of :class:`WorkerPool`: workers start
    with the ``spawn`` method (fresh interpreters — nothing is inherited)
    and rebuild the payload by calling ``rebuild(spec)``, where ``spec``
    is a small picklable description — typically shared-memory segment
    names exported through :mod:`repro.parallel.shm`, so the big arrays
    are mapped, not copied.  This removes the fork ordering constraint:
    the pool may be created before, after, or long after compilation, in
    any process that can resolve the segment names.

    ``fn`` and ``rebuild`` must be importable module-level callables
    (they cross the spawn boundary by pickle); payloads advertise their
    ``(rebuild, spec)`` pair through the ``__shared_spawn__`` protocol.
    """

    def __init__(self, workers: int, fn: Callable, rebuild: Callable, spec):
        if workers < 2:
            raise ValueError(f"SpawnWorkerPool needs >= 2 workers, got {workers}")
        if not spawn_available():  # pragma: no cover - spawn is universal
            raise RuntimeError("SpawnWorkerPool requires the 'spawn' start method")
        context = multiprocessing.get_context("spawn")
        self._pool = context.Pool(
            processes=workers,
            initializer=_spawn_worker_init,
            initargs=(fn, rebuild, spec),
        )

    def map(self, tasks: Sequence) -> List:
        """Run every task; results come back in task order."""
        tasks = [_wrap_task(task) for task in tasks]
        obs_metrics().counter("repro_pool_tasks_total", mode="spawn").inc(len(tasks))
        return [_absorb(envelope) for envelope in self._pool.map(_spawn_invoke, tasks)]

    def close(self) -> None:
        """Terminate the workers (their segment mappings die with them)."""
        if self._pool is not None:
            pool, self._pool = self._pool, None
            pool.terminate()
            pool.join()

    def __enter__(self) -> "SpawnWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def map_tasks(
    fn: Callable,
    tasks: Sequence,
    payload=None,
    workers: Optional[int] = None,
) -> List:
    """``[fn(payload, task) for task in tasks]``, fanned across workers.

    The single entry point used by the batch APIs: resolves ``workers``
    (argument > env > CPU count) and falls back to a sequential
    in-process loop when only one worker is available (or useful).
    Otherwise the start method (:func:`resolve_start_method`) picks the
    sharing scheme: ``fork`` pools fork *after* ``payload`` exists so
    workers inherit it copy-on-write; ``spawn`` pools rebuild the
    payload from its ``__shared_spawn__`` spec (shared-memory segment
    names) in each worker — payloads without that protocol run serially.
    Results are always in task order and identical across all three
    execution modes.
    """
    tasks = list(tasks)
    workers = min(resolve_workers(workers), len(tasks))
    if workers <= 1:
        return [fn(payload, task) for task in tasks]
    method = resolve_start_method()
    if method == "fork" and fork_available():
        with WorkerPool(workers, fn, payload) as pool:
            return pool.map(tasks)
    shared = getattr(payload, "__shared_spawn__", None)
    if shared is not None and spawn_available():
        rebuild, spec = shared()
        with SpawnWorkerPool(workers, fn, rebuild, spec) as pool:
            return pool.map(tasks)
    return [fn(payload, task) for task in tasks]
