"""The ``repro lint`` subcommand.

Thin argparse glue over :func:`repro.analysis.core.lint_paths`: collect
paths, select rules, apply the committed baseline, render text or JSON,
and turn the outcome into a process exit code — ``0`` clean, ``1`` any
active finding or stale baseline entry, ``2`` bad usage.  The parser
itself is declared here (not in :mod:`repro.cli`) so the analysis
package stays self-contained; :mod:`repro.cli` just mounts it.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Optional

from ..errors import AnalysisError
from . import rules as _rules  # noqa: F401  (imported to populate the registry)
from .baseline import DEFAULT_BASELINE, apply_baseline, write_baseline
from .core import describe, get, lint_paths
from .corpus import explain_text
from .reporting import render_json, render_text

__all__ = ["configure_parser", "run"]


def configure_parser(sub) -> None:
    """Mount the ``lint`` subcommand on the CLI's subparsers object."""
    lint = sub.add_parser(
        "lint",
        help="run the repo's AST-based invariant linter",
        description=(
            "Static checks for the invariants the test suite can only "
            "probe by example: seeded randomness, sorted set iteration, "
            "fork-reset enrollment, two-phase budget accounting, and a "
            "non-blocking service event loop."
        ),
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        metavar="PATH",
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="ID",
        dest="rules",
        help="run only this rule (repeatable; default: all)",
    )
    lint.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (json is the CI artifact)",
    )
    lint.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="baseline file of grandfathered findings "
        f"(default: {DEFAULT_BASELINE} when present)",
    )
    lint.add_argument(
        "--no-baseline", action="store_true", help="ignore any baseline file"
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="record every active finding as the new " "baseline and exit 0",
    )
    lint.add_argument(
        "--show-suppressed",
        action="store_true",
        help="include pragma-suppressed findings in the " "text report",
    )
    lint.add_argument(
        "--output", metavar="FILE", default=None, help="also write the report to FILE"
    )
    lint.add_argument(
        "--list-rules", action="store_true", help="list registered rules and exit"
    )
    lint.add_argument(
        "--explain",
        metavar="RULE-ID",
        default=None,
        help="print a rule's rationale and its corpus " "examples, then exit",
    )


def _emit(text: str, output: Optional[str]) -> None:
    print(text, end="" if text.endswith("\n") else "\n")
    if output:
        Path(output).write_text(
            text if text.endswith("\n") else text + "\n", encoding="utf-8")


def run(args) -> int:
    """Execute ``repro lint`` for parsed ``args``; returns exit code."""
    try:
        return _run(args)
    except AnalysisError as error:
        print(error, file=sys.stderr)
        return 2


def _run(args) -> int:
    if args.list_rules:
        width = max(len(row["rule"]) for row in describe())
        for row in describe():
            print(f"{row['rule']:<{width}}  {row['title']}")
        return 0
    if args.explain:
        rule_cls = get(args.explain)
        print(explain_text(rule_cls.id, rule_cls.title, rule_cls.rationale), end="")
        return 0
    if args.rules:
        for rule_id in args.rules:
            get(rule_id)  # fail fast with the available list
    report = lint_paths(
        [Path(p) for p in args.paths], rules=args.rules, root=Path.cwd()
    )

    if args.write_baseline:
        path = Path(args.baseline or DEFAULT_BASELINE)
        entries = write_baseline(report, path)
        print(
            f"wrote {entries} baseline entr"
            f"{'ies' if entries != 1 else 'y'} to {path}"
        )
        return 0

    if not args.no_baseline:
        path = Path(args.baseline) if args.baseline else Path(DEFAULT_BASELINE)
        if args.baseline or path.exists():
            apply_baseline(report, path)

    if args.format == "json":
        _emit(render_json(report), args.output)
    else:
        _emit(render_text(report, show_suppressed=args.show_suppressed), args.output)
    failed = bool(report.active) or bool(report.stale_baseline)
    return 1 if failed else 0
