"""The committed-findings baseline: grandfather, don't forget.

A baseline file records findings that existed when a rule landed, so
the lint gate can demand "no *new* findings" without requiring the
whole backlog to be fixed in the same change.  Entries are keyed by
:attr:`Finding.fingerprint` — ``(path, rule, stripped source line)`` —
so they survive line-number drift but die with the offending line,
and a *stale* entry (the finding no longer occurs) fails the run just
like a new finding: the baseline must always describe the tree
exactly.

The file is JSON, sorted, and diff-friendly; regenerate it with
``python -m repro lint src --write-baseline``.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import List, Tuple

from ..errors import AnalysisError
from .core import LintReport

__all__ = [
    "DEFAULT_BASELINE",
    "load_baseline",
    "apply_baseline",
    "write_baseline",
]

#: Repo-root-relative default location.
DEFAULT_BASELINE = "lint-baseline.json"

_VERSION = 1


def load_baseline(path: Path) -> "Counter[Tuple[str, str, str]]":
    """Fingerprint multiset from a baseline file (empty if absent)."""
    if not path.exists():
        return Counter()
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as error:
        raise AnalysisError(f"unreadable baseline {path}: {error}") from error
    if not isinstance(payload, dict) or payload.get("version") != _VERSION:
        raise AnalysisError(
            f"baseline {path}: expected {{'version': {_VERSION}, " "'findings': [...]}}"
        )
    counts: "Counter[Tuple[str, str, str]]" = Counter()
    for entry in payload.get("findings", []):
        try:
            key = (entry["path"], entry["rule"], entry["snippet"])
            count = int(entry.get("count", 1))
        except (KeyError, TypeError, ValueError) as error:
            raise AnalysisError(
                f"baseline {path}: malformed entry {entry!r}"
            ) from error
        counts[key] += count
    return counts


def apply_baseline(report: LintReport, path: Path) -> None:
    """Suppress baselined findings in place; record stale entries.

    Each baseline entry absorbs at most its ``count`` matching active
    findings; leftovers in either direction surface — extra findings
    stay active, unconsumed entries land in ``report.stale_baseline``.
    """
    remaining = load_baseline(path)
    for finding in report.findings:
        if finding.suppressed:
            continue
        key = finding.fingerprint
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            finding.suppressed = True
            finding.reason = f"baselined in {path.name}"
            report.baselined += 1
    report.stale_baseline = [
        {"path": key[0], "rule": key[1], "snippet": key[2], "count": count}
        for key, count in sorted(remaining.items())
        if count > 0
    ]


def write_baseline(report: LintReport, path: Path) -> int:
    """Write every active finding as the new baseline; returns entry count.

    Pragma-suppressed findings are *not* baselined — they are already
    explained at the source line.
    """
    counts: "Counter[Tuple[str, str, str]]" = Counter(
        finding.fingerprint for finding in report.active
    )
    findings: List[dict] = [
        {"path": key[0], "rule": key[1], "snippet": key[2], "count": count}
        for key, count in sorted(counts.items())
    ]
    payload = {"version": _VERSION, "findings": findings}
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return len(findings)
