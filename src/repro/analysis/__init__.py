"""AST-based static analysis for the repo's own invariants.

The test suite pins the system's guarantees *by example* — audit-replay
determinism, cross-backend byte-identity, fork-clean solver state,
balanced budget holds.  This package pins the *patterns* behind those
guarantees at lint time: a small rule framework (registry, per-file
visitor dispatch, suppression pragmas, baseline) plus one rule per
recurring hazard class, exposed as ``python -m repro lint``.

>>> from repro.analysis import available
>>> "rng-determinism" in available()
True
"""

from . import rules as _rules  # noqa: F401  (populates the registry)
from .baseline import apply_baseline, load_baseline, write_baseline
from .core import (
    Finding,
    LintReport,
    Rule,
    SourceModule,
    all_rules,
    available,
    describe,
    get,
    iter_source_files,
    lint_paths,
    register,
)
from .reporting import render_json, render_text

__all__ = [
    "Finding",
    "LintReport",
    "Rule",
    "SourceModule",
    "all_rules",
    "available",
    "describe",
    "get",
    "iter_source_files",
    "lint_paths",
    "register",
    "apply_baseline",
    "load_baseline",
    "write_baseline",
    "render_json",
    "render_text",
]
