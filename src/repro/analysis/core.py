"""AST-based invariant linting: findings, pragmas, the rule registry.

The privacy guarantees of this codebase rest on conventions no type
checker sees: released answers must be byte-identical at a fixed seed,
native solver handles must never cross a fork unreset, and every budget
``reserve()`` must reach ``commit()`` or ``rollback()`` on every path.
This module is the chassis those rules plug into:

* :class:`Finding` — one diagnostic, with a source-line fingerprint that
  survives line-number drift (the baseline layer keys on it);
* :class:`SourceModule` — a parsed file plus the import-alias map (so
  rules match ``np.random.default_rng`` however numpy was imported) and
  the ``# repro: allow(rule-id) — reason`` suppression pragmas;
* :class:`Rule` and :func:`register` / :func:`get` / :func:`available` —
  the registry, mirroring :mod:`repro.mechanisms.base`;
* :func:`lint_paths` — the driver: collect files, run rules, apply
  pragmas, and return a :class:`LintReport`.

Pragmas suppress a finding on the same physical line, or on the line
directly below a standalone pragma comment.  Every pragma must carry a
reason (it doubles as documentation of the deliberate exception); the
``pragma`` meta-rule flags unknown rule ids, missing reasons, and
pragmas that no longer suppress anything.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Type

from ..errors import AnalysisError

__all__ = [
    "Finding",
    "Pragma",
    "SourceModule",
    "Rule",
    "LintReport",
    "register",
    "get",
    "available",
    "describe",
    "all_rules",
    "iter_source_files",
    "lint_paths",
    "PARSE_RULE_ID",
]

#: Pseudo-rule id for files the parser rejects (not in the registry).
PARSE_RULE_ID = "parse-error"

#: Matches ``repro: allow(rule-id[, rule-id]) — reason`` in a comment
#: (em/en dash, ``:`` or ``--`` all accepted as the reason separator);
#: the reason runs to the end of the comment or the next ``#``.
_PRAGMA_RE = re.compile(
    r"#\s*repro:\s*allow\(\s*(?P<rules>[^)]*?)\s*\)"
    r"(?:\s*(?:—|–|--|:|-)\s*(?P<reason>[^#]*?))?\s*(?:#.*)?$"
)


@dataclass
class Finding:
    """One diagnostic from one rule at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    snippet: str = ""
    suppressed: bool = False
    reason: str = ""

    @property
    def fingerprint(self) -> Tuple[str, str, str]:
        """Baseline identity: stable under line-number drift.

        Keyed on the *stripped source line*, not the line number, so
        edits elsewhere in the file don't invalidate baseline entries.
        """
        return (self.path, self.rule, self.snippet)

    def to_dict(self) -> dict:
        """JSON-ready mapping with every reported field."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "suppressed": self.suppressed,
            "reason": self.reason,
        }

    def location(self) -> str:
        """``path:line:col`` anchor used by the text reporter."""
        return f"{self.path}:{self.line}:{self.col}"


@dataclass
class Pragma:
    """One ``# repro: allow(...)`` suppression comment."""

    line: int            #: physical line the comment sits on (1-based)
    target: int          #: line whose findings it suppresses
    rules: Tuple[str, ...]
    reason: str
    used: bool = False


def _parse_pragmas(text: str, lines: Sequence[str]) -> List[Pragma]:
    """All pragmas in a file, each bound to the line it suppresses.

    Only real ``COMMENT`` tokens count (pragma syntax quoted inside a
    docstring is documentation, not a suppression).  A pragma trailing
    code suppresses its own line; a pragma that *is* the whole line
    suppresses the next code line (continuation comments — the rest of
    a multi-line reason — and blank lines are skipped over).
    """
    pragmas = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, IndentationError):  # ast already vetted it
        return []
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _PRAGMA_RE.search(token.string)
        if match is None:
            continue
        row, col = token.start
        rules = tuple(
            name.strip() for name in match.group("rules").split(",") if name.strip()
        )
        standalone = not lines[row - 1][:col].strip()
        target = row
        if standalone:
            target = row + 1
            while target <= len(lines):
                stripped = lines[target - 1].strip()
                if stripped and not stripped.startswith("#"):
                    break
                target += 1
        pragmas.append(
            Pragma(
                line=row,
                target=target,
                rules=rules,
                reason=(match.group("reason") or "").strip(),
            )
        )
    return pragmas


class SourceModule:
    """One parsed source file, ready for rules to inspect.

    ``path`` is the display path (repo-root-relative, forward slashes);
    rules use it to scope checks (e.g. fork calls outside
    ``repro/parallel/``).  Raises :class:`SyntaxError` if the file does
    not parse — the driver turns that into a ``parse-error`` finding.
    """

    def __init__(self, path: str, text: str):
        self.path = path
        self.text = text
        self.lines: List[str] = text.splitlines()
        self.tree: ast.AST = ast.parse(text, filename=path)
        self.pragmas: List[Pragma] = _parse_pragmas(text, self.lines)
        self._pragma_index: Dict[int, List[Pragma]] = {}
        for pragma in self.pragmas:
            self._pragma_index.setdefault(pragma.target, []).append(pragma)
        self.aliases = self._collect_aliases()

    # -- import-alias resolution ------------------------------------

    def _collect_aliases(self) -> Dict[str, str]:
        """Map local names to the dotted names they were imported as.

        ``import numpy as np`` → ``{"np": "numpy"}``;
        ``from numpy import random as npr`` → ``{"npr": "numpy.random"}``;
        relative imports are normalized by stripping the leading dots
        (``from ..parallel.pool import register_fork_reset`` resolves the
        local name to ``parallel.pool.register_fork_reset``).
        """
        aliases: Dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    local = item.asname or item.name.split(".", 1)[0]
                    target = item.name if item.asname else local
                    aliases[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = (node.module or "").lstrip(".")
                for item in node.names:
                    if item.name == "*":
                        continue
                    local = item.asname or item.name
                    aliases[local] = (f"{base}.{item.name}" if base else item.name)
        return aliases

    def qualname(self, node: ast.AST) -> str:
        """Dotted name of an expression, with the root alias expanded.

        Returns ``""`` for anything that is not a plain dotted chain
        (subscripts, calls, literals).
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return ""
        root = self.aliases.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))

    def call_name(self, call: ast.Call) -> str:
        """Resolved dotted name of a call's target (``""`` if opaque)."""
        return self.qualname(call.func)

    # -- findings and suppression ------------------------------------

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` anchored at ``node``'s source line."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        snippet = ""
        if 1 <= line <= len(self.lines):
            snippet = self.lines[line - 1].strip()
        return Finding(
            rule=rule,
            path=self.path,
            line=line,
            col=col,
            message=message,
            snippet=snippet,
        )

    def suppress(self, finding: Finding) -> bool:
        """Apply any matching pragma; returns True when suppressed."""
        for pragma in self._pragma_index.get(finding.line, ()):
            if finding.rule in pragma.rules:
                pragma.used = True
                finding.suppressed = True
                finding.reason = pragma.reason
                return True
        return False


class Rule:
    """Base class of every registered lint rule.

    Subclasses set :attr:`id`, :attr:`title`, and :attr:`rationale`, and
    implement :meth:`check`.  :meth:`post_check` runs after every
    selected rule's findings have been collected and pragma-matched —
    the hook the ``pragma`` meta-rule uses to spot unused suppressions.
    """

    #: Registry key (e.g. ``"rng-determinism"``).
    id: str = ""
    #: One-line summary for tables and ``--list-rules``.
    title: str = ""
    #: Why the invariant matters — printed by ``--explain``.
    rationale: str = ""

    def check(self, module: SourceModule) -> Iterable[Finding]:
        """Yield findings for one parsed module."""
        raise NotImplementedError

    def post_check(self, module: SourceModule, full_run: bool) -> Iterable[Finding]:
        """Second pass after suppression; ``full_run`` is True when every
        registered rule ran (so pragma usage is fully known)."""
        return ()


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add a :class:`Rule` to the registry."""
    if not cls.id:
        raise AnalysisError(f"rule class {cls.__name__} has no id")
    existing = _REGISTRY.get(cls.id)
    if existing is not None and existing is not cls:
        raise AnalysisError(
            f"rule id {cls.id!r} already registered to {existing.__name__}"
        )
    _REGISTRY[cls.id] = cls
    return cls


def get(rule_id: str) -> Type[Rule]:
    """Look up a rule class by id."""
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise AnalysisError(
            f"unknown rule {rule_id!r}; available: {', '.join(available())}"
        ) from None


def available() -> Tuple[str, ...]:
    """Sorted registered rule ids."""
    return tuple(sorted(_REGISTRY))


def describe() -> List[Dict[str, str]]:
    """One row per registered rule (for ``--list-rules``, docs)."""
    return [
        {"rule": rule_id, "title": _REGISTRY[rule_id].title} for rule_id in available()
    ]


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in id order."""
    return [_REGISTRY[rule_id]() for rule_id in available()]


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    files: int = 0
    rules: Tuple[str, ...] = ()
    #: Baseline bookkeeping, filled in by :mod:`repro.analysis.baseline`.
    baselined: int = 0
    stale_baseline: List[dict] = field(default_factory=list)

    @property
    def active(self) -> List[Finding]:
        """Findings that are neither suppressed nor baselined."""
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> List[Finding]:
        return [f for f in self.findings if f.suppressed]

    def sort(self) -> None:
        """Order findings by location for stable reports."""
        self.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))


def iter_source_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories to a sorted list of ``*.py`` files."""
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py" or path.is_file():
            files.append(path)
        else:
            raise AnalysisError(f"no such file or directory: {path}")
    seen = set()
    unique = []
    for item in files:
        if item not in seen:
            seen.add(item)
            unique.append(item)
    return unique


def display_path(path: Path, root: Optional[Path] = None) -> str:
    """Repo-root-relative forward-slash path for reports and baselines."""
    resolved = path.resolve()
    if root is not None:
        try:
            return resolved.relative_to(root.resolve()).as_posix()
        except ValueError:
            pass
    return path.as_posix()


def lint_paths(
    paths: Sequence[Path],
    *,
    rules: Optional[Sequence[str]] = None,
    root: Optional[Path] = None,
) -> LintReport:
    """Run the selected rules over every Python file under ``paths``.

    ``rules=None`` runs the full registry (and therefore enables the
    unused-pragma check); an explicit subset skips it, since pragma
    usage is only meaningful when every rule had a chance to match.
    """
    if rules is None:
        selected = all_rules()
        full_run = True
    else:
        selected = [get(rule_id)() for rule_id in rules]
        full_run = len({r.id for r in selected}) == len(available())
    report = LintReport(rules=tuple(rule.id for rule in selected))
    for file_path in iter_source_files([Path(p) for p in paths]):
        report.files += 1
        shown = display_path(file_path, root)
        try:
            text = file_path.read_text(encoding="utf-8")
        except OSError as error:
            raise AnalysisError(f"cannot read {file_path}: {error}") from error
        try:
            module = SourceModule(shown, text)
        except SyntaxError as error:
            report.findings.append(
                Finding(
                    rule=PARSE_RULE_ID,
                    path=shown,
                    line=error.lineno or 1,
                    col=(error.offset or 1) - 1,
                    message=f"file does not parse: {error.msg}",
                )
            )
            continue
        module_findings: List[Finding] = []
        for rule in selected:
            for finding in rule.check(module):
                module.suppress(finding)
                module_findings.append(finding)
        for rule in selected:
            for finding in rule.post_check(module, full_run):
                module_findings.append(finding)
        report.findings.extend(module_findings)
    report.sort()
    return report
