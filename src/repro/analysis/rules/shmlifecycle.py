"""Rule: exported shared-memory segments must have a registered release.

Named POSIX segments (:mod:`repro.parallel.shm`) outlive the mapping
that created them: a process that calls ``export_shared(...)`` /
``export_array(...)`` and never releases the spec leaks ``/dev/shm``
entries until the owner's ``atexit`` hook — or forever, if the process
is killed.  The repo's contract is that every export is *paired* with a
registered release in the same lifecycle scope:

* a method exporting segments belongs to a class that also defines (or
  calls) ``release_shared``/``release_spec`` — the class owns both ends
  of the lifecycle;
* a free function exporting segments belongs to a module that releases
  somewhere — e.g. a benchmark that exports in setup and releases in its
  ``finally``;
* a module that only ever exports has no balancing release at all and is
  flagged.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from ..core import Finding, Rule, SourceModule, register

__all__ = ["ShmLifecycleRule"]

#: Call / definition suffixes that create an owned or attached segment.
_EXPORT_NAMES = ("export_shared", "export_array")

#: Call / definition names that balance one: the registered releases of
#: repro.parallel.shm plus the registry's own terminal operations.
_RELEASE_NAMES = ("release_shared", "release_spec", "release", "shutdown")


def _calls_in(node: ast.AST):
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            yield child


def _is_export(call: ast.Call, module: SourceModule) -> bool:
    name = module.call_name(call)
    return any(name.split(".")[-1] == suffix for suffix in _EXPORT_NAMES)


def _has_release(node: ast.AST, module: SourceModule) -> bool:
    """Whether ``node`` contains a release call or defines a release hook."""
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            name = module.call_name(child).split(".")[-1]
            if name in _RELEASE_NAMES:
                return True
        elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if child.name in _RELEASE_NAMES:
                return True
    return False


def _enclosing_class(tree: ast.AST, target: ast.AST) -> Optional[ast.ClassDef]:
    """The innermost class whose body (transitively) contains ``target``."""
    found = None
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and any(
            child is target for child in ast.walk(node)
        ):
            found = node  # walk() visits outer classes first; keep the last
    return found


@register
class ShmLifecycleRule(Rule):
    """Flag shared-memory exports with no paired registered release."""

    id = "shm-lifecycle"
    title = "shared-memory exports need a paired registered release"
    rationale = (
        "export_shared()/export_array() copy data into *named* POSIX "
        "shared-memory segments that outlive the exporting mapping; "
        "without a balancing release_shared()/release_spec() the names "
        "leak in /dev/shm until atexit — or forever if the process is "
        "killed.  The lifecycle scope that exports must also release: a "
        "class that exports defines (or calls) the release; a module "
        "whose functions export must release somewhere, e.g. in the "
        "caller's finally block."
    )

    def check(self, module: SourceModule) -> Iterable[Finding]:
        exports = [call for call in _calls_in(module.tree) if _is_export(call, module)]
        if not exports:
            return
        # Defining the export is not performing it: a module that
        # implements `def export_shared()` (repro/parallel/shm.py,
        # CompiledProgram) is the lifecycle *provider*, and its own
        # release definitions pair it below anyway.
        if _has_release(module.tree, module):
            return
        for call in exports:
            owner = _enclosing_class(module.tree, call)
            scope = f"class {owner.name}" if owner is not None else "this module"
            yield module.finding(
                self.id,
                call,
                f"`{module.call_name(call)}(...)` exports a named "
                f"shared-memory segment, but {scope} never calls "
                "release_shared()/release_spec() — the segment leaks in "
                "/dev/shm if this process dies before atexit",
            )
