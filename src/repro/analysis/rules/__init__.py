"""Registered lint rules — importing this package populates the registry.

Each module contributes one invariant checker:

* :mod:`.rng` — ``rng-determinism``: entropy and clocks must be seeded;
* :mod:`.iteration` — ``iter-order``: sets feeding ordered output must
  be sorted;
* :mod:`.forksafe` — ``fork-safety``: native solver handles must enroll
  in the fork-reset registry;
* :mod:`.accounting` — ``budget-two-phase``: every ``reserve()`` must
  reach ``commit()``/``rollback()``;
* :mod:`.eventloop` — ``async-blocking``: no blocking calls on the
  service event loop;
* :mod:`.shmlifecycle` — ``shm-lifecycle``: shared-memory exports need
  a paired registered release;
* :mod:`.pragmas` — ``pragma``: suppressions must name a real rule, a
  reason, and an actual finding.
"""

from . import (
    accounting,
    eventloop,
    forksafe,
    iteration,
    pragmas,
    rng,
    shmlifecycle,
)

__all__ = [
    "accounting",
    "eventloop",
    "forksafe",
    "iteration",
    "pragmas",
    "rng",
    "shmlifecycle",
]
