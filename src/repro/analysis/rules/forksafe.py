"""Rule: native solver state must never cross a fork unreset.

A forked child inherits the parent's Gurobi environments and HiGHS
model pointers by COW page, and touching them corrupts both processes.
The repo's contract (:mod:`repro.parallel.pool`) is:

* any class that acquires a persistent native model (a
  ``backend.build_persistent(...)`` call) must define a ``fork_reset()``
  hook **and** enroll instances via ``register_fork_reset(...)`` so the
  pool's fork hook clears them in the child;
* no module-level (import-time) solver handles — they would predate any
  registration and leak into every fork;
* forks themselves happen only through :mod:`repro.parallel` — direct
  ``os.fork`` / ``multiprocessing`` use elsewhere bypasses
  ``run_fork_resets()`` entirely.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..core import Finding, Rule, SourceModule, register

__all__ = ["ForkSafetyRule"]

#: Call targets that create a forked (or forkable) process directly.
_FORK_CALLS = {
    "os.fork",
    "multiprocessing.Pool",
    "multiprocessing.Process",
    "multiprocessing.get_context",
    "concurrent.futures.ProcessPoolExecutor",
}

#: Files allowed to fork: the parallel execution layer owns the
#: fork-reset hook, so forks made there run it.
_FORK_LAYER = "repro/parallel/"


def _calls_in(node: ast.AST, module: SourceModule):
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            yield child


def _is_build_persistent(call: ast.Call) -> bool:
    return (
        isinstance(call.func, ast.Attribute) and call.func.attr == "build_persistent"
    )


def _registers_fork_reset(call: ast.Call, module: SourceModule) -> bool:
    name = module.call_name(call)
    return name.endswith("register_fork_reset")


@register
class ForkSafetyRule(Rule):
    """Flag native solver handles created outside the fork-reset registry."""

    id = "fork-safety"
    title = "native solver handles must enroll in the fork-reset registry"
    rationale = (
        "Forked workers inherit the parent's native solver state (Gurobi "
        "environments, HiGHS models) as copy-on-write memory; using it in "
        "the child corrupts both sides.  repro/parallel/pool.py runs "
        "fork_reset() on every registered holder in each forked child, so "
        "a class that calls backend.build_persistent(...) must define "
        "fork_reset() and call register_fork_reset(self); module-level "
        "solver handles and forks made outside repro/parallel/ bypass the "
        "registry entirely."
    )

    def check(self, module: SourceModule) -> Iterable[Finding]:
        # 1. Classes acquiring persistent models must carry the contract.
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            builds = [
                call for call in _calls_in(node, module) if _is_build_persistent(call)
            ]
            if not builds:
                continue
            has_hook = any(
                isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                and item.name == "fork_reset"
                for item in node.body
            )
            registers = any(
                _registers_fork_reset(call, module) for call in _calls_in(node, module)
            )
            if not has_hook:
                yield module.finding(
                    self.id,
                    builds[0],
                    f"class {node.name} builds a persistent solver model "
                    "but defines no fork_reset() hook",
                )
            if not registers:
                yield module.finding(
                    self.id,
                    builds[0],
                    f"class {node.name} builds a persistent solver model "
                    "but never calls register_fork_reset(...)",
                )
        # 2. No import-time solver handles.
        tree = module.tree
        if isinstance(tree, ast.Module):
            for stmt in tree.body:
                if isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    continue
                for call in _calls_in(stmt, module):
                    if _is_build_persistent(call):
                        yield module.finding(
                            self.id,
                            call,
                            "module-level persistent solver model: built "
                            "at import time, it predates any fork-reset "
                            "registration and leaks into every fork",
                        )
        # 3. Forks only through the parallel layer.
        if _FORK_LAYER not in module.path:
            for call in _calls_in(module.tree, module):
                name = module.call_name(call)
                if name in _FORK_CALLS:
                    yield module.finding(
                        self.id,
                        call,
                        f"`{name}(...)` forks outside repro/parallel/ — "
                        "the child skips run_fork_resets(); go through "
                        "repro.parallel.pool instead",
                    )
