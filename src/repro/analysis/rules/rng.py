"""Rule: every random draw and timestamp must be seed-derived.

Released answers are pinned byte-for-byte at a fixed seed (audit replay,
cross-backend and cross-worker tests), so any entropy that does not flow
from the session's ``SeedSequence`` spawning (:mod:`repro.rng`) silently
breaks reproducibility.  The stdlib ``random`` module, numpy's *global*
RNG, unseeded ``default_rng()`` / ``RandomState()`` / ``SeedSequence()``
constructions, and wall-clock reads (``time.time``, ``datetime.now``)
are all such leaks.  ``time.perf_counter`` / ``monotonic`` stay legal:
they feed the ``seconds`` bookkeeping, never a released value.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..core import Finding, Rule, SourceModule, register

__all__ = ["RngDeterminismRule"]

#: numpy.random module-level functions that draw from (or reseed) the
#: process-global legacy RNG.
_NUMPY_GLOBAL_DRAWS = {
    "seed",
    "random",
    "rand",
    "randn",
    "randint",
    "random_sample",
    "choice",
    "shuffle",
    "permutation",
    "normal",
    "uniform",
    "laplace",
    "exponential",
    "poisson",
    "binomial",
    "bytes",
}

#: Zero-argument construction of these numpy.random types pulls OS
#: entropy instead of a caller-provided seed.
_NUMPY_SEEDED_TYPES = {"default_rng", "RandomState", "Generator", "SeedSequence"}

#: Wall-clock reads (perf_counter/monotonic are fine: interval-only).
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


def _first_arg_is_seed(call: ast.Call) -> bool:
    """True when the call passes an explicit, non-``None`` seed.

    ``SeedSequence`` spells its seed parameter ``entropy``; the others
    use ``seed`` (or the first positional argument).
    """
    for keyword in call.keywords:
        if keyword.arg in ("seed", "entropy"):
            return not (
                isinstance(keyword.value, ast.Constant) and keyword.value.value is None
            )
    if not call.args:
        return False
    first = call.args[0]
    return not (isinstance(first, ast.Constant) and first.value is None)


@register
class RngDeterminismRule(Rule):
    """Flag entropy sources not derived from the session seed."""

    id = "rng-determinism"
    title = "randomness and timestamps must derive from the session seed"
    rationale = (
        "Released answers are byte-identical at a fixed seed — the audit "
        "log replays them, and the cross-backend/worker/replica tests pin "
        "them.  Entropy from the stdlib `random` module, numpy's global "
        "RNG, an unseeded default_rng()/RandomState()/SeedSequence(), or "
        "a wall-clock read (time.time, datetime.now) bypasses the "
        "SeedSequence spawning in repro/rng.py and breaks that guarantee. "
        "Thread a Generator (or seed) down from the session instead; "
        "time.perf_counter is fine for duration bookkeeping."
    )

    def check(self, module: SourceModule) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = module.call_name(node)
            if not name:
                continue
            if name == "random" or name.startswith("random."):
                yield module.finding(
                    self.id,
                    node,
                    f"stdlib `{name}` draws from untracked global state; "
                    "use a numpy Generator threaded from the session seed",
                )
            elif name.startswith("numpy.random."):
                attr = name[len("numpy.random."):]
                if attr in _NUMPY_GLOBAL_DRAWS:
                    yield module.finding(
                        self.id,
                        node,
                        f"`numpy.random.{attr}` uses the process-global "
                        "RNG; draw from an explicitly seeded Generator",
                    )
                elif attr in _NUMPY_SEEDED_TYPES and not _first_arg_is_seed(node):
                    yield module.finding(
                        self.id,
                        node,
                        f"unseeded `numpy.random.{attr}()` pulls OS "
                        "entropy; pass a seed derived from repro.rng",
                    )
            elif name in _WALL_CLOCK:
                yield module.finding(
                    self.id,
                    node,
                    f"wall-clock read `{name}()` is nondeterministic; "
                    "use time.perf_counter for durations, or pass "
                    "timestamps in explicitly",
                )
