"""Rule: no blocking calls inside ``async def`` bodies.

The serving layer (:mod:`repro.service`) is a single asyncio event loop
multiplexing every connected tenant; one synchronous stall — a
``time.sleep``, a blocking ``queue.get()`` / ``future.result()``, raw
socket or file I/O, a subprocess wait, or a direct ``solve_arrays``
LP solve — freezes all of them at once, and the backpressure tests
read that as the service being down.  Blocking work belongs in
``session.submit(...)`` (the worker pool) or
``loop.run_in_executor(...)``; pauses are ``await asyncio.sleep(...)``.

The check flags calls lexically inside an ``async def`` (nested
synchronous ``def`` bodies are exempt — those run in executors).  The
zero-argument restriction on ``.get()`` / ``.wait()`` keeps
``dict.get(key)`` and ``asyncio.wait(tasks)`` silent.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from ..core import Finding, Rule, SourceModule, register

__all__ = ["EventLoopRule"]

#: Dotted call targets that always block the loop.
_BLOCKING_CALLS = {
    "time.sleep": "time.sleep() stalls the event loop; "
    "await asyncio.sleep(...) instead",
    "socket.socket": "raw sockets block the loop; use asyncio streams",
    "socket.create_connection": "raw sockets block the loop; use "
    "asyncio.open_connection(...)",
    "subprocess.run": "subprocess waits block the loop; use "
    "asyncio.create_subprocess_exec(...)",
    "subprocess.check_output": "subprocess waits block the loop; use "
    "asyncio.create_subprocess_exec(...)",
    "subprocess.check_call": "subprocess waits block the loop; use "
    "asyncio.create_subprocess_exec(...)",
    "subprocess.call": "subprocess waits block the loop; use "
    "asyncio.create_subprocess_exec(...)",
    "os.system": "os.system() blocks the loop; use "
    "asyncio.create_subprocess_exec(...)",
    "urllib.request.urlopen": "synchronous HTTP blocks the loop",
    "open": "synchronous file I/O blocks the loop; run it in an " "executor",
    "input": "input() blocks the loop",
}

#: Zero-argument method calls that are blocking waits on every plausible
#: receiver (dict.get/str.join-style uses always pass arguments).
_BLOCKING_METHODS = {
    "get": "a zero-argument .get() is a blocking queue read; "
    "await the async queue, or run it in an executor",
    "result": "future.result() blocks until completion; await an "
    "asyncio future, or run it in an executor",
    "wait": "a zero-argument .wait() blocks on an event; await the "
    "asyncio equivalent",
    "acquire": "a zero-argument .acquire() blocks on a lock; use "
    "asyncio.Lock and await it",
}

#: Socket-style method calls that block regardless of arity.
_BLOCKING_IO_METHODS = {"recv", "recv_into", "sendall"}


@register
class EventLoopRule(Rule):
    """Flag blocking calls made directly inside ``async def`` bodies."""

    id = "async-blocking"
    title = "async def bodies must not make blocking calls"
    rationale = (
        "repro/service/ runs every tenant on one asyncio loop, so a "
        "single blocking call — time.sleep, a bare queue .get() or "
        "future .result(), sync socket/file I/O, or an inline "
        "solve_arrays LP solve — stalls all connections and trips the "
        "backpressure bound.  Route CPU/blocking work through "
        "session.submit() or loop.run_in_executor(), and sleep with "
        "await asyncio.sleep().  Nested sync helpers defined inside the "
        "coroutine are exempt: they execute in the executor, not the "
        "loop."
    )

    def check(self, module: SourceModule) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_coroutine(module, node)

    def _check_coroutine(
        self, module: SourceModule, func: ast.AsyncFunctionDef
    ) -> Iterable[Finding]:
        for call in self._loop_calls(func):
            name = module.call_name(call)
            if name in _BLOCKING_CALLS:
                yield module.finding(
                    self.id,
                    call,
                    f"`{name}(...)` in async def {func.name}: "
                    f"{_BLOCKING_CALLS[name]}",
                )
                continue
            if name.endswith("solve_arrays") or (
                    isinstance(call.func, ast.Attribute)
                    and call.func.attr == "solve_arrays"):
                yield module.finding(
                    self.id,
                    call,
                    f"direct solve_arrays(...) in async def {func.name}: "
                    "LP solves are CPU-bound — go through "
                    "session.submit() or an executor",
                )
                continue
            if not isinstance(call.func, ast.Attribute):
                continue
            attr = call.func.attr
            if attr in _BLOCKING_IO_METHODS:
                yield module.finding(
                    self.id,
                    call,
                    f"socket-style .{attr}(...) in async def "
                    f"{func.name} blocks the loop; use asyncio streams",
                )
            elif attr in _BLOCKING_METHODS and not call.args and not call.keywords:
                yield module.finding(
                    self.id,
                    call,
                    f".{attr}() in async def {func.name}: "
                    f"{_BLOCKING_METHODS[attr]}",
                )

    def _loop_calls(self, func: ast.AsyncFunctionDef) -> List[ast.Call]:
        """Calls whose nearest enclosing function is this coroutine.

        Calls that are the direct operand of ``await`` are exempt —
        ``await queue.get()`` is the async-native pattern, not a block.
        """
        calls: List[ast.Call] = []
        awaited: set = set()
        stack: List[ast.AST] = list(func.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # a different execution context
            if isinstance(node, ast.Await):
                awaited.add(id(node.value))
            if isinstance(node, ast.Call) and id(node) not in awaited:
                calls.append(node)
            stack.extend(ast.iter_child_nodes(node))
        calls.sort(key=lambda c: (c.lineno, c.col_offset))
        return calls
