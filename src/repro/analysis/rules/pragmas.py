"""Meta-rule: suppression pragmas must stay honest.

A ``# repro: allow(rule-id) — reason`` pragma is a documented waiver of
a real invariant, so the waiver itself is linted: the rule id must
exist (else a typo silently suppresses nothing), the reason must be
present (it is the documentation — and by repo convention it names the
test that pins the invariant dynamically), and a pragma that no longer
matches any finding must be deleted (else waivers outlive the hazard
they excused).  The unused check only runs when every registered rule
ran, since a ``--rule`` subset cannot know what the others would have
matched.  Pragma findings are themselves unsuppressable.
"""

from __future__ import annotations

from typing import Iterable

from ..core import Finding, Rule, SourceModule, available, register

__all__ = ["PragmaHygieneRule"]


@register
class PragmaHygieneRule(Rule):
    """Meta-rule: suppression pragmas must be well-formed and earn their keep."""

    id = "pragma"
    title = "suppression pragmas must name a real rule, a reason, a finding"
    rationale = (
        "`# repro: allow(rule-id) — reason` waives a privacy-relevant "
        "invariant, so the waiver is held to its own contract: the rule "
        "id must be registered (a typo would suppress nothing, "
        "silently), the reason is mandatory documentation (name the "
        "test that pins the excepted behavior dynamically), and a "
        "pragma matching no finding is stale and must go — otherwise "
        "waivers outlive the hazards they excused."
    )

    def check(self, module: SourceModule) -> Iterable[Finding]:
        for pragma in module.pragmas:
            anchor = _Line(pragma.line)
            if not pragma.rules:
                yield module.finding(
                    self.id,
                    anchor,
                    "pragma names no rule: use " "`# repro: allow(rule-id) — reason`",
                )
            for rule_id in pragma.rules:
                if rule_id not in available():
                    yield module.finding(
                        self.id,
                        anchor,
                        f"pragma names unknown rule {rule_id!r}; "
                        f"registered: {', '.join(available())}",
                    )
            if not pragma.reason:
                yield module.finding(
                    self.id,
                    anchor,
                    "pragma has no reason: every suppression must say "
                    "why (and which test pins the invariant)",
                )

    def post_check(self, module: SourceModule, full_run: bool) -> Iterable[Finding]:
        if not full_run:
            return
        for pragma in module.pragmas:
            if pragma.rules and not pragma.used and all(
                rule_id in available() for rule_id in pragma.rules
            ):
                yield module.finding(
                    self.id,
                    _Line(pragma.line),
                    f"unused pragma: no {'/'.join(pragma.rules)} finding "
                    f"on line {pragma.target} — delete it",
                )


class _Line:
    """A bare line anchor for findings not tied to an AST node."""

    def __init__(self, lineno: int):
        self.lineno = lineno
        self.col_offset = 0
