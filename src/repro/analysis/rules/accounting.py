"""Rule: every ``accountant.reserve()`` must commit or roll back.

The budget accountant is two-phase (:mod:`repro.session.accountant`): a
``reserve()`` places a hold, and only ``commit(entry)`` or
``rollback()`` releases it.  A code path that returns, raises, or falls
off the end of the function while a :class:`Reservation` is still held
leaks budget — the hold is never released, and every later query sees a
smaller budget than the ledger can explain.

The check is a conservative control-flow walk over each function that
binds a local name to a ``*.reserve(...)`` call on an accountant-like
receiver.  It tracks the name through ``if``/``try``/``finally``/loop
structure and flags every explicit ``return`` / ``raise`` — and the
function's fall-through exit — reachable while the reservation is held.
Exception handlers are entered pessimistically (the exception may have
fired before the resolving call), which is exactly why the canonical
pattern rolls back in ``except BaseException`` before re-raising.
Passing the reservation to another function, storing it on an object,
or returning it transfers ownership and ends tracking.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..core import Finding, Rule, SourceModule, register

__all__ = ["TwoPhaseAccountingRule"]

_HELD = "held"
_RESOLVED = "resolved"

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _reserve_target(stmt: ast.stmt, module: SourceModule) -> Optional[str]:
    """Local name bound to an accountant ``reserve()`` call, if any."""
    if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
        return None
    target = stmt.targets[0]
    if not isinstance(target, ast.Name):
        return None
    for call in ast.walk(stmt.value):
        if _is_reserve_call(call, module):
            return target.id
    return None


def _is_reserve_call(node: ast.AST, module: SourceModule) -> bool:
    if not (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "reserve"):
        return False
    receiver = module.qualname(node.func.value).lower()
    return "accountant" in receiver or receiver.endswith("acct")


def _resolutions(node: ast.AST, tracked: Set[str]) -> Set[str]:
    """Tracked names resolved by a ``commit``/``rollback`` call in ``node``."""
    resolved = set()
    for call in ast.walk(node):
        if (isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and call.func.attr in ("commit", "rollback")
                and isinstance(call.func.value, ast.Name)
                and call.func.value.id in tracked):
            resolved.add(call.func.value.id)
    return resolved


def _escapes(node: ast.AST, tracked: Set[str]) -> Set[str]:
    """Tracked names whose value leaves this function's custody here.

    Any load of the name that is not a plain ``name.attr`` receiver —
    an argument position, a return value, a container element, a
    closure capture — hands the reservation to code we cannot see, so
    tracking stops (conservatively assuming the recipient resolves it).
    """
    receiver_loads = set()
    for attr in ast.walk(node):
        if isinstance(attr, ast.Attribute) and isinstance(attr.value, ast.Name):
            receiver_loads.add(id(attr.value))
    escaped = set()
    for name in ast.walk(node):
        if (isinstance(name, ast.Name) and name.id in tracked
                and isinstance(name.ctx, ast.Load)
                and id(name) not in receiver_loads):
            escaped.add(name.id)
    return escaped


class _FunctionWalk:
    """One function's reservation-liveness walk."""

    def __init__(self, rule_id: str, module: SourceModule, func: ast.AST):
        self.rule_id = rule_id
        self.module = module
        self.func = func
        self.anchors: Dict[str, ast.AST] = {}
        self.findings: List[Finding] = []
        self._seen: Set[Tuple[int, str]] = set()

    def run(self) -> List[Finding]:
        body = list(self.func.body)
        end_states = self._walk(body, [{}])
        for state in end_states:
            for var, status in state.items():
                if status == _HELD:
                    self._flag(
                        self.anchors[var],
                        f"reservation {var!r} may reach the end of "
                        f"{self.func.name}() without commit() or "
                        "rollback()",
                    )
        return self.findings

    # -- state plumbing ----------------------------------------------

    def _flag(self, node: ast.AST, message: str) -> None:
        key = (getattr(node, "lineno", 0), message)
        if key not in self._seen:
            self._seen.add(key)
            self.findings.append(self.module.finding(self.rule_id, node, message))

    def _held_vars(self, state: Dict[str, str]) -> List[str]:
        return [var for var, status in state.items() if status == _HELD]

    def _apply_simple(self, stmt: ast.stmt, state: Dict[str, str]) -> None:
        """Effects of a non-branching statement on one state."""
        tracked = set(state)
        for var in _resolutions(stmt, tracked):
            state[var] = _RESOLVED
        for var in _escapes(stmt, tracked):
            if state[var] == _HELD:
                state[var] = _RESOLVED
        var = _reserve_target(stmt, self.module)
        if var is not None:
            if state.get(var) == _HELD:
                self._flag(
                    stmt,
                    f"reservation {var!r} re-bound while still held",
                )
            state[var] = _HELD
            self.anchors[var] = stmt

    def _walk(
        self, stmts: List[ast.stmt], states: List[Dict[str, str]]
    ) -> List[Dict[str, str]]:
        for stmt in stmts:
            states = self._step(stmt, states)
            if not states:
                break
        return self._dedupe(states)

    def _dedupe(self, states: List[Dict[str, str]]) -> List[Dict[str, str]]:
        unique: List[Dict[str, str]] = []
        seen = set()
        for state in states:
            key = tuple(sorted(state.items()))
            if key not in seen:
                seen.add(key)
                unique.append(state)
        return unique

    def _step(
        self, stmt: ast.stmt, states: List[Dict[str, str]]
    ) -> List[Dict[str, str]]:
        if isinstance(stmt, _FUNCTION_NODES + (ast.ClassDef,)):
            # A nested scope: closure capture counts as an escape.
            for state in states:
                for var in _escapes(stmt, set(state)):
                    state[var] = _RESOLVED
            return states
        if isinstance(stmt, (ast.Return, ast.Raise)):
            for state in states:
                self._apply_simple(stmt, state)
                for var in self._held_vars(state):
                    kind = ("return" if isinstance(stmt, ast.Return) else "raise")
                    self._flag(
                        stmt,
                        f"{kind} leaks reservation {var!r}: neither "
                        "commit() nor rollback() ran on this path",
                    )
            return []
        if isinstance(stmt, ast.If):
            out: List[Dict[str, str]] = []
            for state in states:
                out.extend(self._walk(list(stmt.body), [dict(state)]))
                out.extend(self._walk(list(stmt.orelse), [dict(state)]))
            return out
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            out = [dict(state) for state in states]  # zero iterations
            for state in states:
                out.extend(self._walk(list(stmt.body), [dict(state)]))
            if stmt.orelse:
                out = self._walk(list(stmt.orelse), out)
            return out
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for state in states:
                for item in stmt.items:
                    self._apply_item(item, state)
            return self._walk(list(stmt.body), states)
        if isinstance(stmt, ast.Try):
            return self._step_try(stmt, states)
        for state in states:
            self._apply_simple(stmt, state)
        return states

    def _apply_item(self, item: ast.withitem, state: Dict[str, str]) -> None:
        tracked = set(state)
        for var in _resolutions(item.context_expr, tracked):
            state[var] = _RESOLVED
        for var in _escapes(item.context_expr, tracked):
            if state[var] == _HELD:
                state[var] = _RESOLVED

    def _step_try(
        self, stmt: ast.Try, states: List[Dict[str, str]]
    ) -> List[Dict[str, str]]:
        entry = [dict(state) for state in states]
        body_out = self._walk(list(stmt.body), [dict(s) for s in states])
        # The exception may fire at any point in the body: a handler is
        # entered with every reservation acquired-or-held so far still
        # pessimistically held.
        handler_entry: Dict[str, str] = {}
        for state in entry:
            for var, status in state.items():
                if status == _HELD or handler_entry.get(var) == _HELD:
                    handler_entry[var] = _HELD
                else:
                    handler_entry.setdefault(var, status)
        for body_stmt in stmt.body:
            for node in ast.walk(body_stmt):
                if isinstance(node, ast.stmt):
                    var = _reserve_target(node, self.module)
                    if var is not None:
                        handler_entry[var] = _HELD
                        self.anchors.setdefault(var, node)
        handler_out: List[Dict[str, str]] = []
        for handler in stmt.handlers:
            handler_out.extend(self._walk(list(handler.body), [dict(handler_entry)]))
        if stmt.orelse:
            body_out = self._walk(list(stmt.orelse), body_out)
        out = body_out + handler_out
        if stmt.finalbody:
            fin_out: List[Dict[str, str]] = []
            for state in self._dedupe(out) or [{}]:
                fin_out.extend(self._walk(list(stmt.finalbody), [dict(state)]))
            out = fin_out
        return out


@register
class TwoPhaseAccountingRule(Rule):
    """CFG walk: every ``reserve()`` must commit or roll back."""

    id = "budget-two-phase"
    title = "reserve() must reach commit() or rollback() on every path"
    rationale = (
        "BudgetAccountant.reserve() places a hold that only "
        "commit(entry) or rollback() releases; a path that returns or "
        "raises with the Reservation still held leaks budget — later "
        "queries are refused against spend no ledger entry explains.  "
        "The canonical shape is: reserve, try the work, rollback-and-"
        "reraise in `except BaseException`, then commit with the ledger "
        "entry.  Exception handlers are analyzed pessimistically (the "
        "exception may predate your resolving call), so resolve before "
        "re-raising."
    )

    def check(self, module: SourceModule) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, _FUNCTION_NODES):
                continue
            reserves = any(
                _reserve_target(stmt, module) is not None
                for stmt in ast.walk(node)
                if isinstance(stmt, ast.stmt)
            )
            if not reserves:
                continue
            walk = _FunctionWalk(self.id, module, node)
            for finding in walk.run():
                yield finding
