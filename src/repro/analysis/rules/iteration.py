"""Rule: never iterate a set in an order-sensitive position unsorted.

Occurrence lists, cache keys, wire frames, and LP row order all feed
released (or pinned) bytes, so anything assembled by *iterating* a set
must fix the order first — PR 5's equal-repr orientation bug was exactly
this hazard.  The rule is syntactic: an expression that is visibly
set-valued (a set literal/comprehension, a ``set()``/``frozenset()``
call, a ``|  &  -  ^`` combination of one, or a ``.union(...)``-family
method call) iterated by a ``for`` loop, a comprehension, or an
order-preserving constructor (``list``/``tuple``/``enumerate``/``sum``)
without an intervening ``sorted(...)``.

Dict iteration is deliberately not flagged: Python dicts are
insertion-ordered, and the codebase leans on that (ledgers, wire
frames).  Membership tests, ``len``, ``min``/``max`` over sets are
order-insensitive and stay silent.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..core import Finding, Rule, SourceModule, register

__all__ = ["IterationOrderRule"]

_SET_METHODS = {"union", "intersection", "difference", "symmetric_difference"}
_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
_ORDERED_CONSUMERS = {"list", "tuple", "enumerate", "sum"}


def _is_set_expr(node: ast.AST, module: SourceModule) -> bool:
    """Syntactically set-valued?  (No dataflow: names stay opaque.)"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = module.call_name(node)
        if name in ("set", "frozenset"):
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in _SET_METHODS:
            return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
        return (_is_set_expr(node.left, module) or _is_set_expr(node.right, module))
    return False


@register
class IterationOrderRule(Rule):
    """Flag set/dict iteration feeding ordered or released output."""

    id = "iter-order"
    title = "sets feeding ordered output must pass through sorted(...)"
    rationale = (
        "Set iteration order depends on hash seeding and insertion "
        "history, so a set iterated into an occurrence list, cache key, "
        "wire frame, or LP row order yields run-to-run different bytes — "
        "the determinism tests only catch it when hashes happen to "
        "collide differently.  Wrap the set in sorted(...) (or another "
        "canonical-order step) before iterating.  Dicts are exempt: "
        "they are insertion-ordered by construction."
    )

    def check(self, module: SourceModule) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_set_expr(node.iter, module):
                    yield module.finding(
                        self.id,
                        node.iter,
                        "for-loop over a set: iteration order is "
                        "unspecified — wrap in sorted(...)",
                    )
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for comp in node.generators:
                    if _is_set_expr(comp.iter, module):
                        yield module.finding(
                            self.id,
                            comp.iter,
                            "comprehension over a set: iteration order is "
                            "unspecified — wrap in sorted(...)",
                        )
            elif isinstance(node, ast.Call):
                name = module.call_name(node)
                if (
                    name in _ORDERED_CONSUMERS and node.args and _is_set_expr(
                        node.args[0], module
                    )
                ):
                    yield module.finding(
                        self.id,
                        node,
                        f"`{name}(...)` materializes a set in hash order "
                        "— wrap the set in sorted(...)",
                    )
