"""The example corpus shared by the self-tests and ``--explain``.

``tests/corpus/<rule-id>/bad.py`` holds minimal true positives — every
line a rule must flag carries an ``# expect: <rule-id>`` marker — and
``good.py`` holds the near-miss negatives the rule must stay silent
on.  :mod:`tests.test_analysis` asserts flagged lines == marked lines,
and ``repro lint --explain RULE-ID`` prints the same two files, so the
documentation can never drift from what the tests enforce.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Optional

__all__ = [
    "corpus_root",
    "corpus_files",
    "expected_lines",
    "explain_text",
    "EXPECT_RE",
]

#: ``# expect: rule-id[, rule-id]`` marker on a line a rule must flag.
EXPECT_RE = re.compile(r"#\s*expect:\s*(?P<rules>[\w,\s-]+?)\s*$")


def corpus_root(start: Optional[Path] = None) -> Optional[Path]:
    """Locate ``tests/corpus`` from the source checkout, if present.

    Walks up from this file (or ``start``) looking for a directory that
    contains ``tests/corpus`` — robust to running from ``src/`` or an
    installed location inside the repo; returns ``None`` outside one.
    """
    here = (start or Path(__file__)).resolve()
    for parent in [here] + list(here.parents):
        candidate = parent / "tests" / "corpus"
        if candidate.is_dir():
            return candidate
    return None


def corpus_files(rule_id: str, root: Optional[Path] = None) -> Dict[str, Path]:
    """``{"bad": ..., "good": ...}`` for one rule (existing files only)."""
    base = root if root is not None else corpus_root()
    files: Dict[str, Path] = {}
    if base is None:
        return files
    for kind in ("bad", "good"):
        path = base / rule_id / f"{kind}.py"
        if path.is_file():
            files[kind] = path
    return files


def expected_lines(path: Path) -> Dict[int, List[str]]:
    """``{line: [rule ids]}`` from the ``# expect:`` markers in a file."""
    expectations: Dict[int, List[str]] = {}
    for index, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        match = EXPECT_RE.search(line)
        if match:
            expectations[index] = [
                name.strip() for name in match.group("rules").split(",")
                if name.strip()
            ]
    return expectations


def explain_text(
    rule_id: str, title: str, rationale: str, root: Optional[Path] = None
) -> str:
    """The ``--explain`` page: rationale plus the corpus examples."""
    lines = [f"{rule_id}: {title}", "", rationale.strip(), ""]
    files = corpus_files(rule_id, root)
    if not files:
        lines.append(
            "(corpus examples unavailable: tests/corpus/ not found "
            "relative to this installation)"
        )
        return "\n".join(lines) + "\n"
    headers = {
        "bad": "Offending (each `# expect:` line is flagged):",
        "good": "Fixed / near-miss (no findings):",
    }
    for kind in ("bad", "good"):
        if kind not in files:
            continue
        lines.append(headers[kind])
        lines.append("")
        for text_line in files[kind].read_text(encoding="utf-8").splitlines():
            lines.append(f"    {text_line}" if text_line else "")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
