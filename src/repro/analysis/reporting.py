"""Text and JSON renderings of a :class:`~repro.analysis.core.LintReport`.

The text form is for humans at a terminal (one ``path:line:col`` line
per finding, grouped counts at the end); the JSON form is the CI
artifact — stable keys, findings sorted, suppressed findings included
but flagged, so a dashboard can diff runs.
"""

from __future__ import annotations

import json

from .core import LintReport

__all__ = ["render_text", "render_json"]


def render_text(report: LintReport, *, show_suppressed: bool = False) -> str:
    """Human-readable report; active findings only unless asked."""
    lines = []
    for finding in report.findings:
        if finding.suppressed and not show_suppressed:
            continue
        marker = " [suppressed]" if finding.suppressed else ""
        lines.append(
            f"{finding.location()}: {finding.rule}: " f"{finding.message}{marker}"
        )
        if finding.snippet:
            lines.append(f"    {finding.snippet}")
        if finding.suppressed and finding.reason:
            lines.append(f"    reason: {finding.reason}")
    active = report.active
    summary = (
        f"{report.files} file{'s' if report.files != 1 else ''} checked, "
        f"{len(active)} finding{'s' if len(active) != 1 else ''}"
    )
    if report.suppressed:
        summary += f" ({len(report.suppressed)} suppressed by pragma)"
    if report.baselined:
        summary += f" ({report.baselined} baselined)"
    if report.stale_baseline:
        plural = "ies" if len(report.stale_baseline) != 1 else "y"
        summary += f", {len(report.stale_baseline)} stale baseline entr{plural}"
        for entry in report.stale_baseline:
            lines.append(
                f"stale baseline entry: {entry['path']}: {entry['rule']}: "
                f"{entry['snippet']!r} no longer occurs — remove it"
            )
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-readable report (the CI artifact)."""
    payload = {
        "files": report.files,
        "rules": list(report.rules),
        "findings": [f.to_dict() for f in report.findings],
        "summary": {
            "active": len(report.active),
            "suppressed": len(report.suppressed),
            "baselined": report.baselined,
            "stale_baseline": len(report.stale_baseline),
        },
        "stale_baseline": report.stale_baseline,
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
