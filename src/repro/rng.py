"""Randomness utilities shared across the library.

All randomized components in this package accept either an integer seed, a
:class:`numpy.random.Generator`, or ``None`` (fresh entropy) and normalize it
through :func:`ensure_rng`.  Laplace sampling is centralized here so that the
noise distribution used by every mechanism is implemented exactly once.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from .errors import PrivacyParameterError

__all__ = [
    "RngLike",
    "ensure_rng",
    "laplace",
    "laplace_array",
    "split_rng",
    "spawn_seed_sequences",
]

RngLike = Union[None, int, np.random.Generator]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``rng``.

    Parameters
    ----------
    rng:
        ``None`` for OS entropy, an ``int`` seed for reproducibility, or an
        existing generator (returned unchanged).
    """
    if rng is None:
        # repro: allow(rng-determinism) — rng=None is the documented
        # OS-entropy path; the seeded path is pinned by
        # tests/test_rng_queries.py::test_int_seed_reproducible
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"cannot build a Generator from {rng!r}")


def split_rng(rng: RngLike, n: int) -> list:
    """Split ``rng`` into ``n`` independent child generators.

    Used by experiment sweeps so that trials are independent yet the whole
    sweep stays reproducible from one seed.
    """
    parent = ensure_rng(rng)
    seeds = parent.integers(0, 2**63 - 1, size=n)
    return [np.random.default_rng(int(s)) for s in seeds]


def spawn_seed_sequences(rng: RngLike, n: int) -> list:
    """``n`` independent :class:`numpy.random.SeedSequence` children.

    The deterministic per-task seeding scheme of the parallel execution
    layer: every task (trial repetition, sweep grid point) receives its
    own child sequence derived up front in task order, so the generator a
    task uses is a function of the base seed and the task index only —
    *not* of which worker ran it or in what order.  Serial (``workers=1``)
    and parallel runs therefore release byte-identical answers at a fixed
    seed.  Seed sequences pickle cheaply, so they are what crosses the
    process boundary (generators are built worker-side).

    An integer seed maps straight onto ``SeedSequence(seed)``; a
    ``Generator`` contributes entropy by drawing once from its stream
    (deterministic given the generator state); ``None`` uses OS entropy.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} seed sequences")
    if rng is None:
        # repro: allow(rng-determinism) — rng=None is the documented
        # OS-entropy path; seeded spawning is pinned by
        # tests/test_rng_queries.py::test_children_independent_and_reproducible
        base = np.random.SeedSequence()
    elif isinstance(rng, (int, np.integer)):
        base = np.random.SeedSequence(int(rng))
    else:
        generator = ensure_rng(rng)
        base = np.random.SeedSequence(int(generator.integers(0, 2**63 - 1)))
    return base.spawn(n)


def laplace(scale: float, rng: RngLike = None) -> float:
    """Draw one sample from the Laplace distribution ``Lap(scale)``.

    The density is ``Lap(y | b) = exp(-|y|/b) / (2b)`` (Eq. 4 of the paper).
    ``scale == 0`` returns exactly ``0.0`` (the degenerate distribution),
    which arises for queries with zero sensitivity.
    """
    if scale < 0:
        raise PrivacyParameterError(f"Laplace scale must be >= 0, got {scale}")
    if scale == 0:
        return 0.0
    return float(ensure_rng(rng).laplace(loc=0.0, scale=scale))


def laplace_array(scale: float, size: int, rng: RngLike = None) -> np.ndarray:
    """Draw ``size`` i.i.d. samples from ``Lap(scale)``."""
    if scale < 0:
        raise PrivacyParameterError(f"Laplace scale must be >= 0, got {scale}")
    if scale == 0:
        return np.zeros(size)
    return ensure_rng(rng).laplace(loc=0.0, scale=scale, size=size)
