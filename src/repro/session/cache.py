"""Compiled-relation cache: pay encode/compile once per distinct query.

Preparing a query is the expensive part of every release — enumerating
pattern occurrences, building the sensitive K-relation, and compiling the
φ-epigraph LP into CSR blocks.  A release from an already-prepared query
is just an overlay solve plus noise.  :class:`CompiledRelationCache` maps
:meth:`repro.mechanisms.QuerySpec.cache_key`-style keys to the prepared
objects so repeated (or concurrent) queries reuse them, and counts
hits/misses so callers can *assert* the reuse (the instrumentation the
acceptance tests and ``benchmarks/bench_session.py`` read).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

__all__ = ["CacheInfo", "CompiledRelationCache", "options_token"]


def _value_token(value):
    """Hashable token for one option value (identity for rich objects)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    token = getattr(value, "cache_token", None)
    if token is not None:
        return token
    return (type(value).__name__, id(value))


def options_token(options: Dict) -> Tuple:
    """Canonical hashable token for a mechanism-options dict."""
    return tuple(sorted((key, _value_token(value)) for key, value in options.items()))


@dataclass(frozen=True)
class CacheInfo:
    """A snapshot of cache instrumentation counters."""

    hits: int
    misses: int
    size: int


class CompiledRelationCache:
    """Keyed store of prepared (compiled) queries with hit/miss counters.

    Not thread-safe by itself; the session serializes access (queries are
    prepared from the submitting thread only).
    """

    def __init__(self):
        self._entries: Dict[tuple, object] = {}
        self._hits = 0
        self._misses = 0

    def get_or_build(self, key: tuple, build: Callable[[], object]):
        """Return ``(value, hit)`` — building and storing on first use."""
        if key in self._entries:
            self._hits += 1
            return self._entries[key], True
        self._misses += 1
        value = build()
        self._entries[key] = value
        return value, False

    def info(self) -> CacheInfo:
        """Current hit/miss/size counters."""
        return CacheInfo(hits=self._hits, misses=self._misses,
                         size=len(self._entries))

    def clear(self) -> None:
        """Drop every cached entry (counters are kept)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key) -> bool:
        return key in self._entries
