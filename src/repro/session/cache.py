"""Compiled-relation cache: pay encode/compile once per distinct query.

Preparing a query is the expensive part of every release — enumerating
pattern occurrences, building the sensitive K-relation, and compiling the
φ-epigraph LP into CSR blocks.  A release from an already-prepared query
is just an overlay solve plus noise.  :class:`CompiledRelationCache` maps
:meth:`repro.mechanisms.QuerySpec.cache_key`-style keys to the prepared
objects so repeated (or concurrent) queries reuse them, and counts
hits/misses so callers can *assert* the reuse (the instrumentation the
acceptance tests and ``benchmarks/bench_session.py`` read).

:class:`SharedCompiledCache` lifts the same store to *cross-session*
scope: thread-safe, LRU-ordered, and size-bounded, so a long-lived
serving process (many sessions, many tenants) reuses one compiled
``CompiledProgram`` — with its warm H/G entry caches — for every tenant
querying the same pattern, while old entries age out instead of growing
without bound.  :func:`shared_cache` hands out the process-wide instance
(the one ``repro serve`` mounts by default).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

__all__ = [
    "CacheInfo",
    "CompiledRelationCache",
    "DatasetCacheView",
    "SharedCompiledCache",
    "shared_cache",
    "options_token",
    "data_token",
]


def _value_token(value):
    """Hashable token for one option value (identity for rich objects)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    token = getattr(value, "cache_token", None)
    if token is not None:
        return token
    return (type(value).__name__, id(value))


def options_token(options: Dict) -> Tuple:
    """Canonical hashable token for a mechanism-options dict."""
    return tuple(sorted((key, _value_token(value)) for key, value in options.items()))


#: Attribute carrying a dataset's identity token (set lazily, once).
_DATA_TOKEN_ATTR = "_repro_data_token"
_DATA_TOKEN_COUNTER = iter(range(1, 2**63))


def data_token(data) -> object:
    """A process-unique identity token for one sensitive dataset.

    Cache keys must distinguish *which* data a query was compiled over —
    two sessions over different graphs mounted on one shared cache must
    never exchange compiled programs.  The token is stamped onto the
    object on first use (so it is never reused after garbage collection,
    unlike a raw ``id()``); objects refusing attributes fall back to
    identity, which is safe for anything the caller keeps alive.
    """
    token = getattr(data, _DATA_TOKEN_ATTR, None)
    if token is None:
        token = next(_DATA_TOKEN_COUNTER)
        try:
            setattr(data, _DATA_TOKEN_ATTR, token)
        except AttributeError:  # __slots__/frozen objects
            return (type(data).__name__, id(data))
    return token


@dataclass(frozen=True)
class CacheInfo:
    """A snapshot of cache instrumentation counters."""

    hits: int
    misses: int
    size: int
    evictions: int = 0
    maxsize: Optional[int] = None
    invalidations: int = 0


class CompiledRelationCache:
    """Keyed store of prepared (compiled) queries with hit/miss counters.

    Not thread-safe by itself; the session serializes access (queries are
    prepared from the submitting thread only).
    """

    def __init__(self):
        self._entries: Dict[tuple, object] = {}
        self._hits = 0
        self._misses = 0
        self._invalidations = 0

    def get_or_build(self, key: tuple, build: Callable[[], object]):
        """Return ``(value, hit)`` — building and storing on first use."""
        if key in self._entries:
            self._hits += 1
            return self._entries[key], True
        self._misses += 1
        value = build()
        self._entries[key] = value
        return value, False

    def invalidate(self, predicate: Callable[[tuple], bool]) -> int:
        """Drop every entry whose key satisfies ``predicate``.

        The dynamic-graph hook: after an update has superseded a graph
        version, the session can invalidate that version's compiled
        relations explicitly (they are never *served* to new queries
        either way — the version lives in the key — but invalidation
        frees the memory and forecloses replay reuse).  Returns the
        number of entries removed.
        """
        removed = [key for key in self._entries if predicate(key)]
        for key in removed:
            del self._entries[key]
        self._invalidations += len(removed)
        return len(removed)

    def info(self) -> CacheInfo:
        """Current hit/miss/size counters."""
        return CacheInfo(
            hits=self._hits,
            misses=self._misses,
            size=len(self._entries),
            invalidations=self._invalidations,
        )

    def clear(self) -> None:
        """Drop every cached entry (counters are kept)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key) -> bool:
        return key in self._entries


class SharedCompiledCache(CompiledRelationCache):
    """A process-wide compiled-relation cache: thread-safe, LRU, bounded.

    Many sessions (one per tenant, or one per connection) can mount the
    same instance, so the expensive enumerate/encode/compile work for a
    given ``(mechanism, options, pattern, privacy, weight)`` key is paid
    once per *process* instead of once per session — and the cached
    :class:`~repro.lp.compiled.CompiledProgram` keeps its warm H/G entry
    caches across tenants.

    ``maxsize`` bounds the entry count; the least-recently-*used* entry is
    evicted when a build pushes the store over the bound (``None`` =
    unbounded).  Builds run under the lock: two tenants racing on the same
    cold key compile once, with the loser blocking until the winner's
    entry is ready.
    """

    def __init__(self, maxsize: Optional[int] = None):
        super().__init__()
        if maxsize is not None and (
            not isinstance(maxsize, int) or isinstance(maxsize, bool) or maxsize < 1
        ):
            raise ValueError(
                f"maxsize must be a positive integer or None, got {maxsize!r}"
            )
        self._entries: "OrderedDict[tuple, object]" = OrderedDict()
        self._maxsize = maxsize
        self._evictions = 0
        self._lock = threading.RLock()
        self._views: Dict[str, "DatasetCacheView"] = {}

    @property
    def maxsize(self) -> Optional[int]:
        """The entry-count bound (``None`` = unbounded)."""
        return self._maxsize

    def get_or_build(self, key: tuple, build: Callable[[], object]):
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._hits += 1
                self._entries.move_to_end(key)
                return entry, True
            self._misses += 1
            value = build()
            self._entries[key] = value
            while self._maxsize is not None and len(self._entries) > self._maxsize:
                self._entries.popitem(last=False)
                self._evictions += 1
            return value, False

    def invalidate(self, predicate: Callable[[tuple], bool]) -> int:
        with self._lock:
            return super().invalidate(predicate)

    def resize(self, maxsize: Optional[int]) -> None:
        """Change the bound, evicting LRU entries if now over it."""
        with self._lock:
            if maxsize is not None and (
                not isinstance(maxsize, int) or isinstance(maxsize, bool) or maxsize < 1
            ):
                raise ValueError(
                    f"maxsize must be a positive integer or None, " f"got {maxsize!r}"
                )
            self._maxsize = maxsize
            while maxsize is not None and len(self._entries) > maxsize:
                self._entries.popitem(last=False)
                self._evictions += 1

    def info(self) -> CacheInfo:
        with self._lock:
            return CacheInfo(
                hits=self._hits,
                misses=self._misses,
                size=len(self._entries),
                evictions=self._evictions,
                maxsize=self._maxsize,
                invalidations=self._invalidations,
            )

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def namespaced(self, dataset: str) -> "DatasetCacheView":
        """A per-dataset view of this cache (storage shared, counters not).

        The router mounts one view per served dataset: entries still live
        in — and are LRU-bounded by — this one process-wide store, but
        each view counts its own hits/misses/invalidations, so per-dataset
        serving stats never conflate tenants' datasets.  Repeated calls
        with one name return the same view (counters accumulate across a
        dataset's sessions).
        """
        if not isinstance(dataset, str) or not dataset:
            raise ValueError(f"dataset must be a non-empty string, got {dataset!r}")
        with self._lock:
            view = self._views.get(dataset)
            if view is None:
                view = DatasetCacheView(self, dataset)
                self._views[dataset] = view
            return view


class DatasetCacheView(CompiledRelationCache):
    """One dataset's window onto a :class:`SharedCompiledCache`.

    Keys are prefixed with ``("dataset", name)`` before touching the
    parent store — so the parent's LRU bound, locking, and eviction apply
    globally — while the hit/miss/invalidation counters here are this
    dataset's alone.  (The parent's own counters keep counting every
    access, preserving the process-global totals.)
    """

    def __init__(self, parent: SharedCompiledCache, dataset: str):
        super().__init__()
        self._parent = parent
        self._dataset = dataset
        self._prefix = ("dataset", dataset)

    @property
    def dataset(self) -> str:
        """The namespace (dataset name) this view serves."""
        return self._dataset

    def get_or_build(self, key: tuple, build: Callable[[], object]):
        value, hit = self._parent.get_or_build((self._prefix,) + key, build)
        if hit:
            self._hits += 1
        else:
            self._misses += 1
        return value, hit

    def invalidate(self, predicate: Callable[[tuple], bool]) -> int:
        def namespaced_predicate(key: tuple) -> bool:
            return (len(key) > 0 and key[0] == self._prefix and predicate(key[1:]))

        removed = self._parent.invalidate(namespaced_predicate)
        self._invalidations += removed
        return removed

    def _keys(self):
        with self._parent._lock:
            return [
                key
                for key in self._parent._entries
                if len(key) > 0 and key[0] == self._prefix
            ]

    def info(self) -> CacheInfo:
        return CacheInfo(
            hits=self._hits,
            misses=self._misses,
            size=len(self._keys()),
            maxsize=self._parent.maxsize,
            invalidations=self._invalidations,
        )

    def clear(self) -> None:
        self._parent.invalidate(lambda key: len(key) > 0 and key[0] == self._prefix)

    def __len__(self) -> int:
        return len(self._keys())

    def __contains__(self, key) -> bool:
        with self._parent._lock:
            return ((self._prefix,) + key) in self._parent._entries


#: Default bound of the process-wide shared cache (compiled programs can
#: be large; a serving process wants reuse, not unbounded growth).
DEFAULT_SHARED_MAXSIZE = 128

_SHARED: Optional[SharedCompiledCache] = None
_SHARED_LOCK = threading.Lock()


def shared_cache() -> SharedCompiledCache:
    """The process-wide :class:`SharedCompiledCache` (created on first use).

    Every caller in the process gets the same instance, so sessions
    created with ``cache=shared_cache()`` — and the network service, which
    does this by default — share compiled relations.  Use
    :meth:`SharedCompiledCache.resize` to change its bound.
    """
    global _SHARED
    with _SHARED_LOCK:
        if _SHARED is None:
            _SHARED = SharedCompiledCache(maxsize=DEFAULT_SHARED_MAXSIZE)
        return _SHARED
