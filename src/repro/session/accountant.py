"""Session budget accounting: hard-capped sequential composition + ledger.

Differential privacy composes additively over sequential releases on the
same database, so a serving session's global guarantee is the sum of the
per-query budgets.  :class:`BudgetAccountant` enforces that sum against a
hard cap (``None`` = unlimited but still fully ledgered) and keeps one
:class:`LedgerEntry` per release — enough to *replay* the whole session:
each entry records the mechanism, the query, the exact ε charged, and the
seed material the noise was drawn from, so
:meth:`repro.session.PrivateSession.replay` can re-execute the audit log
and verify it reproduces the released answers bit-for-bit.

The spent total is computed with :func:`math.fsum` over the ledger, so
sequential composition sums exactly (no drift from incremental ``+=``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.accountant import BudgetExceededError
from ..validation import validate_epsilon

__all__ = ["BudgetExhausted", "LedgerEntry", "BudgetAccountant"]

#: Absolute slack when comparing the spent sum against the cap — charges
#: that exactly exhaust the budget must not be rejected for float dust.
_CAP_TOLERANCE = 1e-12


class BudgetExhausted(BudgetExceededError):
    """The session's hard privacy-budget cap would be exceeded.

    Subclasses :class:`~repro.core.accountant.BudgetExceededError` (and so
    :class:`~repro.errors.PrivacyParameterError` / :class:`ValueError`),
    so existing ``except`` clauses keep working.
    """


@dataclass
class LedgerEntry:
    """One charged release in a session's audit log.

    ``seed`` is the replayable noise source (an ``int`` or a
    ``numpy.random.SeedSequence``) when the session controlled the
    randomness, or ``None`` when the caller passed an in-flight generator
    (such an entry is audited for budget but cannot be replayed).
    ``answer`` is filled when the release completes (asynchronous
    submissions start as ``"pending"``).
    """

    index: int
    label: str
    mechanism: str
    query: str
    epsilon: float
    seed: Any = None
    answer: Optional[float] = None
    status: str = "released"
    cache_hit: bool = False
    seconds: float = 0.0
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def replayable(self) -> bool:
        """Whether this release can be re-executed from recorded state."""
        return self.seed is not None and self.status == "released"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly form for exported audit logs."""
        return {
            "index": self.index,
            "label": self.label,
            "mechanism": self.mechanism,
            "query": self.query,
            "epsilon": self.epsilon,
            "seed": repr(self.seed) if self.seed is not None else None,
            "answer": self.answer,
            "status": self.status,
            "cache_hit": self.cache_hit,
            "seconds": self.seconds,
        }


class BudgetAccountant:
    """Hard-capped sequential-composition (pure ε) accountant with a ledger.

    Parameters
    ----------
    budget:
        The total ε cap.  ``None`` disables the cap (every release is
        still ledgered) — the mode the one-shot API wrappers use.

    >>> accountant = BudgetAccountant(1.0)
    >>> accountant.charge(LedgerEntry(0, "triangles", "recursive",
    ...                               "triangle/node", 0.75))
    >>> accountant.spent, accountant.remaining
    (0.75, 0.25)
    """

    def __init__(self, budget: Optional[float] = None):
        self.budget = None if budget is None else validate_epsilon(budget, "budget")
        self._ledger: List[LedgerEntry] = []

    # -- bookkeeping -----------------------------------------------------------
    @property
    def spent(self) -> float:
        """Exact (``math.fsum``) total ε charged so far."""
        return math.fsum(entry.epsilon for entry in self._ledger)

    @property
    def remaining(self) -> Optional[float]:
        """Budget left under the cap, or ``None`` for unlimited sessions."""
        if self.budget is None:
            return None
        return self.budget - self.spent

    @property
    def ledger(self) -> Tuple[LedgerEntry, ...]:
        """The audit log, in release order (a defensive copy)."""
        return tuple(self._ledger)

    def __len__(self) -> int:
        return len(self._ledger)

    def can_afford(self, epsilon: float) -> bool:
        """Whether one more ε-release fits under the cap."""
        if self.budget is None:
            return True
        return self.spent + epsilon <= self.budget + _CAP_TOLERANCE

    def check(self, epsilon: float, label: str = "release") -> float:
        """Validate ε and raise :class:`BudgetExhausted` if it won't fit."""
        epsilon = validate_epsilon(epsilon)
        if not self.can_afford(epsilon):
            remaining = self.remaining
            raise BudgetExhausted(
                f"release {label!r} needs eps={epsilon:g} but only "
                f"{remaining:.6g} of the session budget "
                f"(eps={self.budget:g}) remains"
            )
        return epsilon

    def charge(self, entry: LedgerEntry) -> LedgerEntry:
        """Append a checked release to the ledger (spends its ε)."""
        entry.epsilon = self.check(entry.epsilon, label=entry.label)
        entry.index = len(self._ledger)
        self._ledger.append(entry)
        return entry

    def audit_log(self) -> List[Dict[str, Any]]:
        """The ledger as JSON-friendly dicts (for export / inspection)."""
        return [entry.to_dict() for entry in self._ledger]
