"""Session budget accounting: hard-capped sequential composition + ledger.

Differential privacy composes additively over sequential releases on the
same database, so a serving session's global guarantee is the sum of the
per-query budgets.  :class:`BudgetAccountant` enforces that sum against a
hard cap (``None`` = unlimited but still fully ledgered) and keeps one
:class:`LedgerEntry` per release — enough to *replay* the whole session:
each entry records the mechanism, the query, the exact ε charged, and the
seed material the noise was drawn from, so
:meth:`repro.session.PrivateSession.replay` can re-execute the audit log
and verify it reproduces the released answers bit-for-bit.

Concurrent serving (many requests in flight before any completes) uses
the two-phase :meth:`BudgetAccountant.reserve` →
:meth:`Reservation.commit` / :meth:`Reservation.rollback` protocol: a
reservation holds its ε against the cap immediately (so racing admissions
can never oversubscribe the budget), a commit converts the hold into a
ledger charge without re-checking, and a rollback releases it (for
requests that never touched the data).

Multi-tenant serving partitions one global cap into per-user sub-budgets
with :class:`HierarchicalAccountant`: every reserve/charge names a user,
each user's releases compose sequentially against that user's own cap
*and* the shared global cap, and a refusal says which of the two was hit
(:attr:`BudgetExhausted.user` carries the tenant).

The spent totals are computed with :func:`math.fsum` over the ledger, so
sequential composition sums exactly (no drift from incremental ``+=``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.accountant import BudgetExceededError
from ..validation import validate_epsilon

__all__ = [
    "BudgetExhausted",
    "LedgerEntry",
    "Reservation",
    "BudgetAccountant",
    "HierarchicalAccountant",
]

#: Absolute slack when comparing the spent sum against the cap — charges
#: that exactly exhaust the budget must not be rejected for float dust.
_CAP_TOLERANCE = 1e-12


class BudgetExhausted(BudgetExceededError):
    """The session's hard privacy-budget cap would be exceeded.

    Subclasses :class:`~repro.core.accountant.BudgetExceededError` (and so
    :class:`~repro.errors.PrivacyParameterError` / :class:`ValueError`),
    so existing ``except`` clauses keep working.  ``user`` names the
    tenant whose sub-budget refused the release (``None`` when the shared
    global cap was the binding constraint).
    """

    def __init__(self, message: str, *, user: Optional[str] = None):
        super().__init__(message)
        self.user = user


@dataclass
class LedgerEntry:
    """One charged release in a session's audit log.

    ``seed`` is the replayable noise source (an ``int`` or a
    ``numpy.random.SeedSequence``) when the session controlled the
    randomness, or ``None`` when the caller passed an in-flight generator
    (such an entry is audited for budget but cannot be replayed).
    ``answer`` is filled when the release completes (asynchronous
    submissions start as ``"pending"``).  ``user`` is the tenant the
    release was charged to (``None`` for single-tenant sessions).
    """

    index: int
    label: str
    mechanism: str
    query: str
    epsilon: float
    seed: Any = None
    answer: Optional[float] = None
    status: str = "released"
    cache_hit: bool = False
    seconds: float = 0.0
    user: Optional[str] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def replayable(self) -> bool:
        """Whether this release can be re-executed from recorded state."""
        return self.seed is not None and self.status == "released"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly form for exported audit logs."""
        return {
            "index": self.index,
            "label": self.label,
            "mechanism": self.mechanism,
            "query": self.query,
            "epsilon": self.epsilon,
            "seed": repr(self.seed) if self.seed is not None else None,
            "answer": self.answer,
            "status": self.status,
            "cache_hit": self.cache_hit,
            "seconds": self.seconds,
            "user": self.user,
            # Dynamic sessions: which graph version the entry saw
            # (queries) or produced (updates); None over static data.
            "version": self.extra.get("version"),
            # Update entries: the effective deltas, in action form.
            "update": self.extra.get("update"),
            # LP-backed releases: which solver backend produced the
            # answer, so replay verifies against the same one.
            "lp_backend": self.extra.get("lp_backend"),
        }


class Reservation:
    """An ε hold against the budget, pending :meth:`commit` or :meth:`rollback`.

    Created by :meth:`BudgetAccountant.reserve`.  While held, the ε counts
    against the cap (and the user's sub-budget) exactly as if it were
    spent, so concurrent admissions cannot collectively oversubscribe.
    """

    def __init__(
        self,
        accountant: "BudgetAccountant",
        epsilon: float,
        label: str,
        user: Optional[str],
    ):
        self.epsilon = epsilon
        self.label = label
        self.user = user
        self._accountant: Optional[BudgetAccountant] = accountant

    @property
    def active(self) -> bool:
        """Whether the hold is still outstanding."""
        return self._accountant is not None

    def _release_hold(self) -> "BudgetAccountant":
        accountant = self._accountant
        if accountant is None:
            raise ValueError(
                f"reservation {self.label!r} was already committed or " "rolled back"
            )
        self._accountant = None
        accountant._reservations.remove(self)
        return accountant

    def commit(self, entry: LedgerEntry) -> LedgerEntry:
        """Convert the hold into a ledger charge (no re-check needed).

        ``entry.epsilon`` must equal the reserved ε; ``entry.user`` is
        filled from the reservation when unset.
        """
        if entry.epsilon != self.epsilon:
            raise ValueError(
                f"reservation {self.label!r} holds eps={self.epsilon:g} but "
                f"the entry charges eps={entry.epsilon:g}"
            )
        if entry.user is None:
            entry.user = self.user
        accountant = self._release_hold()
        return accountant._append(entry)

    def rollback(self) -> None:
        """Release the hold without charging anything."""
        self._release_hold()


class BudgetAccountant:
    """Hard-capped sequential-composition (pure ε) accountant with a ledger.

    Parameters
    ----------
    budget:
        The total ε cap.  ``None`` disables the cap (every release is
        still ledgered) — the mode the one-shot API wrappers use.

    >>> accountant = BudgetAccountant(1.0)
    >>> _ = accountant.charge(LedgerEntry(0, "triangles", "recursive",
    ...                                   "triangle/node", 0.75))
    >>> accountant.spent, accountant.remaining
    (0.75, 0.25)
    """

    def __init__(self, budget: Optional[float] = None):
        self.budget = None if budget is None else validate_epsilon(budget, "budget")
        self._ledger: List[LedgerEntry] = []
        self._reservations: List[Reservation] = []

    # -- bookkeeping -----------------------------------------------------------
    @property
    def spent(self) -> float:
        """Exact (``math.fsum``) total ε charged so far."""
        return math.fsum(entry.epsilon for entry in self._ledger)

    @property
    def reserved(self) -> float:
        """Total ε held by outstanding (uncommitted) reservations."""
        return math.fsum(r.epsilon for r in self._reservations)

    @property
    def remaining(self) -> Optional[float]:
        """Budget left under the cap (net of outstanding reservations),
        or ``None`` for unlimited sessions."""
        if self.budget is None:
            return None
        return self.budget - math.fsum([self.spent, self.reserved])

    @property
    def ledger(self) -> Tuple[LedgerEntry, ...]:
        """The audit log, in release order (a defensive copy)."""
        return tuple(self._ledger)

    def __len__(self) -> int:
        return len(self._ledger)

    def can_afford(self, epsilon: float, user: Optional[str] = None) -> bool:
        """Whether one more ε-release fits under the cap(s)."""
        return self._refusal(epsilon, user) is None

    def _refusal(
        self, epsilon: float, user: Optional[str]
    ) -> Optional[Tuple[str, Optional[str]]]:
        """``None`` if the charge fits, else ``(reason, binding user)``."""
        if self.budget is None:
            return None
        total = math.fsum([self.spent, self.reserved, epsilon])
        if total > self.budget + _CAP_TOLERANCE:
            return ("global", None)
        return None

    def check(
        self, epsilon: float, label: str = "release", user: Optional[str] = None
    ) -> float:
        """Validate ε and raise :class:`BudgetExhausted` if it won't fit."""
        epsilon = validate_epsilon(epsilon)
        refusal = self._refusal(epsilon, user)
        if refusal is not None:
            raise self._exhausted(epsilon, label, refusal)
        return epsilon

    def _exhausted(
        self, epsilon: float, label: str, refusal: Tuple[str, Optional[str]]
    ) -> BudgetExhausted:
        reason, binding_user = refusal
        if reason == "user":
            remaining = self.user_remaining(binding_user)
            cap = self.user_budget(binding_user)
            return BudgetExhausted(
                f"release {label!r} needs eps={epsilon:g} but only "
                f"{remaining:.6g} of user {binding_user!r}'s sub-budget "
                f"(eps={cap:g}) remains",
                user=binding_user,
            )
        return BudgetExhausted(
            f"release {label!r} needs eps={epsilon:g} but only "
            f"{self.remaining:.6g} of the session budget "
            f"(eps={self.budget:g}) remains"
        )

    def reserve(
        self, epsilon: float, label: str = "release", user: Optional[str] = None
    ) -> Reservation:
        """Hold ε against the cap until committed or rolled back.

        Raises :class:`BudgetExhausted` immediately when the hold cannot
        fit (counting every outstanding reservation), so admission order
        alone decides which requests are refused.
        """
        epsilon = self.check(epsilon, label=label, user=user)
        reservation = Reservation(self, epsilon, label, user)
        self._reservations.append(reservation)
        return reservation

    def charge(self, entry: LedgerEntry) -> LedgerEntry:
        """Append a checked release to the ledger (spends its ε).

        One-phase convenience over :meth:`reserve` + :meth:`commit` for
        callers that check and charge at the same point.
        """
        entry.epsilon = self.check(entry.epsilon, label=entry.label, user=entry.user)
        return self._append(entry)

    def record(self, entry: LedgerEntry) -> LedgerEntry:
        """Append a zero-cost administrative entry without a budget check.

        Graph updates (``status="update"``, ``epsilon=0.0``) are audited
        in the same ledger as releases — they change what later answers
        mean — but spend no privacy budget, so they bypass the ε
        validation of :meth:`charge`.
        """
        if entry.epsilon != 0.0:
            raise ValueError(
                f"record() is for zero-epsilon entries; {entry.label!r} "
                f"charges eps={entry.epsilon:g} — use charge()/reserve()"
            )
        return self._append(entry)

    def _append(self, entry: LedgerEntry) -> LedgerEntry:
        entry.index = len(self._ledger)
        self._ledger.append(entry)
        return entry

    # -- per-user introspection (trivial in the single-tenant base) ------------
    def user_budget(self, user: Optional[str]) -> Optional[float]:
        """The sub-budget cap for ``user`` (``None`` = uncapped)."""
        return None

    def user_spent(self, user: Optional[str]) -> float:
        """Exact total ε charged to ``user`` so far."""
        return math.fsum(entry.epsilon for entry in self._ledger if entry.user == user)

    def user_remaining(self, user: Optional[str]) -> Optional[float]:
        """ε left in ``user``'s sub-budget (``None`` = uncapped)."""
        return None

    def users(self) -> Tuple[str, ...]:
        """Every tenant that appears in the ledger or holds a reservation."""
        seen = {e.user for e in self._ledger} | {r.user for r in self._reservations}
        return tuple(sorted(user for user in seen if user is not None))

    def audit_log(self) -> List[Dict[str, Any]]:
        """The ledger as JSON-friendly dicts (for export / inspection)."""
        return [entry.to_dict() for entry in self._ledger]


class HierarchicalAccountant(BudgetAccountant):
    """A global ε cap partitioned into per-user sub-budgets.

    The multi-tenant serving accountant: every release names a tenant, and
    it must fit under **both** the shared global cap (sequential
    composition over *all* releases — the privacy guarantee towards the
    sensitive dataset) and that tenant's own sub-budget (the service's
    fairness/quota guarantee).  Releases with ``user=None`` are only
    checked against the global cap.

    Parameters
    ----------
    budget:
        The shared global ε cap (``None`` = unlimited).
    default_user_budget:
        Sub-budget granted to any tenant not explicitly configured;
        ``None`` leaves unknown tenants uncapped (global cap only).
    user_budgets:
        Explicit ``{user: cap}`` overrides.

    >>> accountant = HierarchicalAccountant(1.0, default_user_budget=0.6)
    >>> r = accountant.reserve(0.5, label="q0", user="alice")
    >>> _ = r.commit(LedgerEntry(0, "q0", "recursive", "triangle/node",
    ...                          0.5, user="alice"))
    >>> round(accountant.user_remaining("alice"), 6)
    0.1
    >>> accountant.can_afford(0.2, user="alice")  # alice's sub-budget binds
    False
    >>> accountant.can_afford(0.2, user="bob")    # global cap still has room
    True
    """

    def __init__(
        self,
        budget: Optional[float] = None,
        *,
        default_user_budget: Optional[float] = None,
        user_budgets: Optional[Dict[str, float]] = None,
    ):
        super().__init__(budget)
        self.default_user_budget = (
            None if default_user_budget is None else validate_epsilon(
                default_user_budget, "default_user_budget"
            )
        )
        self._user_budgets: Dict[str, float] = {}
        for user, cap in (user_budgets or {}).items():
            self.set_user_budget(user, cap)

    def set_user_budget(self, user: str, budget: float) -> None:
        """Set (or tighten/loosen) one tenant's sub-budget cap."""
        self._user_budgets[user] = validate_epsilon(budget, f"user budget for {user!r}")

    def user_budget(self, user: Optional[str]) -> Optional[float]:
        if user is None:
            return None
        cap = self._user_budgets.get(user)
        return self.default_user_budget if cap is None else cap

    def user_reserved(self, user: Optional[str]) -> float:
        """Total ε held for ``user`` by outstanding reservations."""
        return math.fsum(r.epsilon for r in self._reservations if r.user == user)

    def user_remaining(self, user: Optional[str]) -> Optional[float]:
        cap = self.user_budget(user)
        if cap is None:
            return None
        return cap - math.fsum([self.user_spent(user), self.user_reserved(user)])

    def users(self) -> Tuple[str, ...]:
        seen = set(self._user_budgets) | {e.user for e in self._ledger} | {
            r.user for r in self._reservations
        }
        return tuple(sorted(user for user in seen if user is not None))

    def _refusal(self, epsilon, user):
        refusal = super()._refusal(epsilon, user)
        if refusal is not None:
            return refusal
        cap = self.user_budget(user)
        if cap is not None:
            total = math.fsum(
                [self.user_spent(user), self.user_reserved(user), epsilon]
            )
            if total > cap + _CAP_TOLERANCE:
                return ("user", user)
        return None
